"""Edge-case tests across modules (inputs the happy paths never hit)."""

import numpy as np
import pytest

from repro.analysis.plotting import SvgFigure
from repro.analysis.report import render_key_values, render_table
from repro.cluster.network import Flow, max_min_fair_rates
from repro.core.diagnosis import DiagnosisSystem
from repro.core.evalsched import (CoordinatorConfig, TrialCoordinator,
                                  lpt_pack)
from repro.evaluation.datasets import EvalDataset
from repro.sim.engine import Engine
from repro.training.profiler import UtilizationTimeline
from repro.workload.trace import Trace


class TestEngineEdges:
    def test_zero_delay_timeout(self):
        engine = Engine()
        fired = []
        engine.timeout(0.0, "now").subscribe(
            lambda ev: fired.append(engine.now))
        engine.run()
        assert fired == [0.0]

    def test_event_chain_through_many_hops(self):
        engine = Engine()
        events = [engine.event() for _ in range(50)]
        for upstream, downstream in zip(events, events[1:]):
            upstream.subscribe(
                lambda ev, d=downstream: d.succeed(ev.value + 1))
        got = []
        events[-1].subscribe(lambda ev: got.append(ev.value))
        events[0].succeed(0)
        engine.run()
        assert got == [49]

    def test_run_twice_is_safe(self):
        engine = Engine()
        engine.call_at(1.0, lambda: None)
        engine.run()
        assert engine.run() == 1.0  # empty second run keeps the clock


class TestNetworkEdges:
    def test_zero_capacity_flow_via_tiny_cap(self):
        rates = max_min_fair_rates(
            {"l": 100.0}, [Flow("a", ("l",), rate_cap=1e-9)])
        assert rates["a"] == pytest.approx(1e-9)

    def test_flow_over_same_link_twice(self):
        # A flow listing a link twice consumes two shares of it.
        rates = max_min_fair_rates({"l": 100.0},
                                   [Flow("loop", ("l", "l"))])
        assert rates["loop"] == pytest.approx(50.0)

    def test_no_flows(self):
        assert max_min_fair_rates({"l": 10.0}, []) == {}


class TestDiagnosisEdges:
    def test_empty_log(self):
        diagnosis = DiagnosisSystem().diagnose([])
        assert diagnosis.reason == "Unknown"
        assert diagnosis.path == "unknown"

    def test_log_of_blank_lines(self):
        diagnosis = DiagnosisSystem().diagnose(["", "   ", ""])
        assert diagnosis.reason == "Unknown"

    def test_unicode_heavy_log(self):
        lines = ["训练中 step=1 ✓", "RuntimeError: CUDA error: "
                 "an illegal memory access was encountered"]
        diagnosis = DiagnosisSystem().diagnose(lines)
        assert diagnosis.reason == "CUDAError"

    def test_single_line_log(self):
        diagnosis = DiagnosisSystem().diagnose(
            ["OSError: [Errno 28] No space left on device"])
        assert diagnosis.reason == "OSError"


class TestEvalSchedEdges:
    def test_more_gpus_than_datasets(self):
        datasets = [EvalDataset("only", 10, 100.0, 1.0, 5.0)]
        assignments = lpt_pack(datasets, gpus=64)
        used = [a for a in assignments if a.datasets]
        assert len(used) == 1

    def test_zero_metric_round(self):
        datasets = [EvalDataset(f"d{i}", 10, 60.0, 1.0, 0.0)
                    for i in range(4)]
        outcome = TrialCoordinator(
            CoordinatorConfig(n_nodes=1)).compare(datasets)
        assert outcome["speedup"] > 1.0  # loading decoupling alone wins

    def test_identical_datasets_balance_perfectly(self):
        datasets = [EvalDataset(f"d{i}", 10, 60.0, 0.0, 0.0)
                    for i in range(8)]
        assignments = lpt_pack(datasets, gpus=8)
        loads = [a.gpu_seconds() for a in assignments]
        assert max(loads) == pytest.approx(min(loads))


class TestRenderEdges:
    def test_table_with_mixed_types(self):
        text = render_table([{"a": True, "b": None, "c": 1.23456e9}])
        assert "True" in text
        assert "None" in text

    def test_key_values_without_title(self):
        text = render_key_values({"x": 1})
        assert text.strip().startswith("x:")

    def test_missing_column_filled_blank(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}],
                            columns=["a", "b"])
        assert text  # renders without KeyError


class TestTimelineEdges:
    def test_empty_timeline_statistics(self):
        timeline = UtilizationTimeline(times=np.empty(0),
                                       sm=np.empty(0), tc=np.empty(0))
        assert timeline.mean_sm() == 0.0
        assert timeline.peak_sm() == 0.0
        assert timeline.idle_fraction() == 0.0
        assert timeline.duration == 0.0

    def test_svg_with_many_series_cycles_palette(self):
        figure = SvgFigure("many", "x", "y")
        for index in range(12):
            figure.add_series(f"s{index}", [0.0, 1.0],
                              [float(index), float(index)])
        assert figure.render().count("<polyline") == 12


class TestTraceEdges:
    def test_trace_with_only_cpu_jobs(self):
        from repro.scheduler.job import Job, JobType

        trace = Trace("x", [Job("c", "x", JobType.OTHER, 0.0, 10.0, 0)])
        assert trace.gpu_jobs() == []
        assert trace.durations().size == 0
        assert trace.mean_gpu_demand() == 0.0

    def test_unicode_failure_reason_round_trip(self, tmp_path):
        from repro.scheduler.job import FinalStatus, Job, JobType

        job = Job("u", "x", JobType.DEBUG, 0.0, 5.0, 1,
                  final_status=FinalStatus.FAILED,
                  failure_reason="错误Error")
        trace = Trace("x", [job])
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = Trace.from_csv(path)
        assert loaded.jobs[0].failure_reason == "错误Error"
