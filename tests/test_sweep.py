"""Parallel seed sweeps: determinism, merge arithmetic, CLI."""

import json

import pytest

from repro.obs import Tracer
from repro.sweep import SeedRun, SweepResult, _run_seed, run_sweep


class TestDeterminism:
    def test_serial_and_parallel_merge_identically(self):
        """workers=4 must produce the byte-identical merged artifact."""
        seeds = [0, 1, 2, 3]
        serial = run_sweep("smoke", seeds, workers=1)
        parallel = run_sweep("smoke", seeds, workers=4)
        assert serial.to_json() == parallel.to_json()
        assert serial.digest() == parallel.digest()

    def test_runs_ordered_by_input_seed_order(self):
        result = run_sweep("smoke", [3, 1, 2], workers=2)
        assert [run.seed for run in result.runs] == [3, 1, 2]

    def test_single_seed_short_circuits_pool(self):
        result = run_sweep("smoke", [0], workers=8)
        assert len(result.runs) == 1
        assert result.runs[0].seed == 0


class TestMerge:
    def test_merged_sums_counts(self):
        result = run_sweep("smoke", [0, 1])
        merged = result.merged()
        assert merged["runs"] == 2
        assert merged["faults_injected"] == sum(
            run.summary["faults_injected"] for run in result.runs)
        assert merged["events"] == sum(run.events
                                       for run in result.runs)

    def test_merged_dict_metrics_are_keywise(self):
        result = run_sweep("smoke", [0, 1])
        merged = result.merged()
        for kind, count in merged["faults_by_kind"].items():
            assert count == sum(
                run.summary["faults_by_kind"].get(kind, 0)
                for run in result.runs)

    def test_per_seed_event_log_hashes_exposed(self):
        result = run_sweep("smoke", [0, 1])
        hashes = result.merged()["event_log_sha256"]
        assert set(hashes) == {"0", "1"}
        # seed 0 of smoke equals a direct run of the scenario
        assert hashes["0"] == _run_seed("smoke", 0).event_log_sha256

    def test_empty_sweep_merge(self):
        empty = SweepResult(scenario="smoke", seeds=(), runs=())
        assert empty.merged() == {"scenario": "smoke", "seeds": [],
                                  "runs": 0}


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_sweep("no-such-scenario", [0])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep("smoke", [0, 0])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            run_sweep("smoke", [])

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep("smoke", [0], workers=0)


class TestTracerSeam:
    def test_sweep_counts_runs_on_tracer(self):
        tracer = Tracer()
        run_sweep("smoke", [0, 1], tracer=tracer)
        assert tracer.counters["sweep.runs"].last == 2.0

    def test_default_null_tracer_records_nothing(self):
        result = run_sweep("smoke", [0])  # must not raise
        assert isinstance(result.runs[0], SeedRun)


class TestCli:
    def test_sweep_subcommand_writes_merged_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        code = main(["sweep", "--scenario", "smoke", "--seeds", "0,1",
                     "--workers", "2", "--json-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["runs"] == 2
        assert payload["seeds"] == [0, 1]
        assert "digest" in capsys.readouterr().out

    def test_sweep_subcommand_rejects_bad_seeds(self):
        from repro.cli import main

        assert main(["sweep", "--seeds", "a,b"]) == 2
        assert main(["sweep", "--seeds", "0,0"]) == 2
