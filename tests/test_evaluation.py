"""Tests for the evaluation substrate (§4.2)."""

import pytest

from repro.evaluation.datasets import (DATASET_CATALOG, EvalDataset,
                                       dataset_by_name, standard_catalog)
from repro.evaluation.harness import (EvalStage, EvalTrial,
                                      humaneval_profile)


class TestCatalog:
    def test_sixty_three_datasets(self):
        """§6.2's round covers 63 datasets."""
        assert len(DATASET_CATALOG) == 63

    def test_names_unique(self):
        names = [d.name for d in DATASET_CATALOG]
        assert len(set(names)) == len(names)

    def test_code_benchmarks_have_heavy_metrics(self):
        """§4.2: correctness tests take up to ~30 CPU minutes."""
        for name in ("humaneval", "mbpp", "chatbot-arena"):
            assert dataset_by_name(name).metric_cpu_seconds > 15 * 60

    def test_loglikelihood_benchmarks_have_light_metrics(self):
        assert dataset_by_name("hellaswag").metric_cpu_seconds < 60

    def test_scaled_runtime(self):
        base = dataset_by_name("mmlu")
        scaled = base.scaled(4.0)
        assert scaled.inference_seconds == pytest.approx(
            4 * base.inference_seconds)
        assert scaled.metric_cpu_seconds == base.metric_cpu_seconds

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            dataset_by_name("mmlu").scaled(0.0)

    def test_split_partitions_work(self):
        dataset = dataset_by_name("mmlu")
        shards = dataset.split(4)
        assert len(shards) == 4
        total = sum(s.inference_seconds for s in shards)
        assert total == pytest.approx(dataset.inference_seconds)
        assert all(not s.splittable for s in shards)

    def test_unsplittable_dataset_returns_itself(self):
        arena = dataset_by_name("chatbot-arena")
        assert arena.split(4) == [arena]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_by_name("nonexistent")

    def test_standard_catalog_scaling(self):
        catalog = standard_catalog(model_scale=2.0)
        assert catalog[0].inference_seconds == pytest.approx(
            2 * DATASET_CATALOG[0].inference_seconds)


class TestTrial:
    def trial(self, **overrides):
        defaults = dict(datasets=[dataset_by_name("humaneval")])
        defaults.update(overrides)
        return EvalTrial(**defaults)

    def test_staged_load_much_faster(self):
        """§6.2: PCIe from shared memory beats remote storage."""
        remote = self.trial()
        staged = self.trial(model_staged=True)
        assert staged.load_seconds() < remote.load_seconds() / 10

    def test_preprocess_cache_shrinks_stage(self):
        cached = self.trial(preprocess_cached=True)
        cold = self.trial()
        assert cached.preprocess_seconds() < cold.preprocess_seconds()

    def test_profile_orders_stages(self):
        profile = self.trial().profile()
        stages = [segment.stage for segment in profile.segments]
        assert stages == [EvalStage.MODEL_LOAD, EvalStage.PREPROCESS,
                          EvalStage.INFERENCE, EvalStage.METRIC]

    def test_decoupled_metric_drops_gpu_tail(self):
        coupled = self.trial().profile()
        decoupled = self.trial().profile(decoupled_metric=True)
        assert (coupled.total - decoupled.total) == pytest.approx(
            dataset_by_name("humaneval").metric_cpu_seconds)

    def test_multi_dataset_trial_sums_stages(self):
        trial = self.trial(datasets=[dataset_by_name("wic"),
                                     dataset_by_name("wsc")])
        assert trial.inference_seconds() == pytest.approx(50.0 + 25.0)

    def test_empty_trial_rejected(self):
        with pytest.raises(ValueError):
            EvalTrial(datasets=[])


class TestHumanEvalProfile:
    """The Fig. 13 anchors."""

    def test_load_preprocess_near_29_5_pct(self):
        profile = humaneval_profile()
        fraction = (profile.stage_fraction(EvalStage.MODEL_LOAD)
                    + profile.stage_fraction(EvalStage.PREPROCESS))
        assert fraction == pytest.approx(0.295, abs=0.03)

    def test_metric_tail_near_19_pct(self):
        profile = humaneval_profile()
        assert profile.stage_fraction(EvalStage.METRIC) == pytest.approx(
            0.19, abs=0.02)

    def test_gpu_busy_about_half(self):
        assert humaneval_profile().gpu_busy_fraction == pytest.approx(
            0.5, abs=0.05)

    def test_pre_inference_exceeds_one_minute(self):
        """§4.2: over 1 minute passes before GPU inference starts."""
        profile = humaneval_profile()
        pre = (profile.stage_seconds(EvalStage.MODEL_LOAD)
               + profile.stage_seconds(EvalStage.PREPROCESS))
        assert pre > 60.0

    def test_metric_tail_is_42_seconds(self):
        assert humaneval_profile().stage_seconds(
            EvalStage.METRIC) == pytest.approx(42.0)

    def test_timeline_idle_during_metric_tail(self):
        profile = humaneval_profile()
        timeline = profile.utilization_timeline(resolution=1.0)
        tail = timeline.sm[timeline.times > profile.total - 30.0]
        assert tail.mean() < 0.1

    def test_timeline_busy_during_inference(self):
        profile = humaneval_profile()
        timeline = profile.utilization_timeline(resolution=1.0)
        start = profile.segments[2].start
        end = profile.segments[2].end
        window = timeline.sm[(timeline.times > start + 5)
                             & (timeline.times < end - 5)]
        assert window.mean() > 0.3
