"""Tests for the Trace container and serialization."""

import numpy as np
import pytest

from repro.scheduler.job import FinalStatus, Job, JobType
from repro.workload.trace import Trace


def make_trace():
    jobs = [
        Job("a", "seren", JobType.PRETRAIN, 10.0, 1000.0, 128,
            final_status=FinalStatus.COMPLETED, gpu_utilization=0.99),
        Job("b", "seren", JobType.EVALUATION, 5.0, 120.0, 2,
            final_status=FinalStatus.FAILED, failure_reason="TypeError",
            gpu_utilization=0.05),
        Job("c", "seren", JobType.EVALUATION, 20.0, 60.0, 1,
            final_status=FinalStatus.CANCELED, gpu_utilization=0.95),
        Job("d", "seren", JobType.OTHER, 1.0, 30.0, 0),
    ]
    return Trace("seren", jobs)


class TestSlices:
    def test_sorted_by_submit_time(self):
        assert [j.job_id for j in make_trace()] == ["d", "b", "a", "c"]

    def test_gpu_vs_cpu_jobs(self):
        trace = make_trace()
        assert len(trace.gpu_jobs()) == 3
        assert [j.job_id for j in trace.cpu_jobs()] == ["d"]

    def test_of_type(self):
        assert len(make_trace().of_type(JobType.EVALUATION)) == 2

    def test_filter_returns_new_trace(self):
        trace = make_trace()
        filtered = trace.filter(lambda j: j.gpu_demand > 1)
        assert len(filtered) == 2
        assert len(trace) == 4


class TestAggregates:
    def test_durations_vector(self):
        durations = make_trace().durations(JobType.EVALUATION)
        assert sorted(durations) == [60.0, 120.0]

    def test_gpu_time_share(self):
        shares = make_trace().gpu_time_share_by_type()
        total = 128 * 1000 + 2 * 120 + 1 * 60
        assert shares[JobType.PRETRAIN] == pytest.approx(128000 / total)

    def test_count_share(self):
        shares = make_trace().count_share_by_type()
        assert shares[JobType.EVALUATION] == pytest.approx(2 / 3)

    def test_status_counts(self):
        counts = make_trace().status_counts()
        assert counts[FinalStatus.FAILED] == 1

    def test_status_gpu_time(self):
        times = make_trace().status_gpu_time()
        assert times[FinalStatus.CANCELED] == pytest.approx(60.0)

    def test_mean_gpu_demand(self):
        assert make_trace().mean_gpu_demand() == pytest.approx(
            (128 + 2 + 1) / 3)

    def test_queueing_delays_skips_unstarted(self):
        trace = make_trace()
        trace.gpu_jobs()[0].mark_started(15.0)
        delays = trace.queueing_delays()
        assert delays.size == 1

    def test_empty_trace_aggregates(self):
        trace = Trace("x", [])
        assert trace.count_share_by_type() == {}
        assert trace.gpu_time_share_by_type() == {}
        assert trace.mean_gpu_demand() == 0.0


class TestSerialization:
    def test_csv_round_trip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = Trace.from_csv(path)
        assert len(loaded) == len(trace)
        by_id = {j.job_id: j for j in loaded}
        assert by_id["b"].failure_reason == "TypeError"
        assert by_id["a"].job_type is JobType.PRETRAIN
        assert by_id["a"].gpu_utilization == pytest.approx(0.99)

    def test_jsonl_round_trip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert np.allclose(sorted(loaded.durations()),
                           sorted(trace.durations()))

    def test_csv_preserves_started_jobs(self, tmp_path):
        trace = make_trace()
        job = trace.gpu_jobs()[0]
        job.mark_started(12.0)
        job.mark_finished(1012.0)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = Trace.from_csv(path)
        reloaded = {j.job_id: j for j in loaded}[job.job_id]
        assert reloaded.queueing_delay == pytest.approx(
            job.queueing_delay)
