"""Tests for the loss-curve simulator and spike recovery (§5.3/§6.1)."""

import numpy as np
import pytest

from repro.core.recovery.detector import LossSpikeDetector
from repro.training.loss import (LossCurveConfig, LossSimulator, SpikeSpec,
                                 train_with_spike_recovery)


class TestLossSimulator:
    def test_trend_decreases(self):
        config = LossCurveConfig()
        trend = config.trend(np.arange(0, 5000, 100))
        assert (np.diff(trend) < 0).all()

    def test_trend_approaches_floor(self):
        config = LossCurveConfig()
        assert config.trend(10 ** 9) == pytest.approx(config.floor,
                                                      abs=0.01)

    def test_healthy_curve_tracks_trend(self):
        simulator = LossSimulator(seed=1)
        curve = simulator.generate(2000)
        trend = simulator.config.trend(np.arange(2000))
        assert np.abs(curve - trend).max() < 0.1

    def test_non_recovering_spike_stays_elevated(self):
        simulator = LossSimulator(seed=2)
        curve = simulator.generate(
            500, [SpikeSpec(step=100, magnitude=3.0, recovers=False)])
        trend = simulator.config.trend(np.arange(500))
        assert curve[120] > 2.0 * trend[120]
        assert curve[499] > 2.0 * trend[499]

    def test_recovering_spike_decays(self):
        simulator = LossSimulator(seed=3)
        curve = simulator.generate(
            500, [SpikeSpec(step=100, magnitude=3.0, recovers=True,
                            recovery_steps=10)])
        trend = simulator.config.trend(np.arange(500))
        assert curve[100] > 2.0 * trend[100]
        assert curve[150] == pytest.approx(trend[150], abs=0.1)

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            LossSimulator().generate(0)

    def test_deterministic(self):
        a = LossSimulator(seed=9).generate(300)
        b = LossSimulator(seed=9).generate(300)
        assert np.allclose(a, b)


class TestSpikeRecovery:
    def test_spike_triggers_rollback(self):
        result = train_with_spike_recovery(
            total_steps=2000, spike_steps=[900],
            checkpoint_interval=200, seed=4)
        assert result.rollback_count == 1
        rollback = result.rollbacks[0]
        assert rollback["restart_from"] <= 800
        assert rollback["detected_at"] >= 900
        assert result.final_step == 2000

    def test_skipped_data_prevents_reoccurrence(self):
        result = train_with_spike_recovery(
            total_steps=2000, spike_steps=[900],
            checkpoint_interval=200, seed=5)
        revisits = [step for step in result.steps if step == 900]
        # step 900 is executed twice (original + retry) but spikes once.
        assert len(revisits) == 2
        assert result.rollback_count == 1

    def test_final_losses_healthy(self):
        result = train_with_spike_recovery(
            total_steps=1500, spike_steps=[700], seed=6)
        config = LossCurveConfig()
        tail = result.losses[-50:]
        trend = config.trend(result.final_step)
        assert max(tail) < 1.5 * trend

    def test_multiple_spikes_all_handled(self):
        result = train_with_spike_recovery(
            total_steps=3000, spike_steps=[700, 1800],
            checkpoint_interval=200, seed=7)
        assert result.rollback_count == 2
        assert result.final_step == 3000

    def test_no_spikes_no_rollbacks(self):
        result = train_with_spike_recovery(
            total_steps=1000, spike_steps=[], seed=8)
        assert result.rollback_count == 0

    def test_detector_integration_with_custom_detector(self):
        detector = LossSpikeDetector(window=30, patience=4,
                                     relative_floor=0.2)
        result = train_with_spike_recovery(
            total_steps=1500, spike_steps=[600], detector=detector,
            seed=9)
        assert result.rollback_count == 1
