"""Property tests: vectorized fabric math vs the scalar references.

Hypothesis drives random fabrics through both implementations of
max-min fair water-filling and both LinkHealth lookups:

* the numpy filling agrees with the scalar reference to 1e-9 relative
  (float summation order is the only permitted difference);
* classic max-min invariants hold on whichever path dispatch picks:
  no link oversubscribed, caps respected, uncapped flows sharing one
  bottleneck link equally;
* flow-order invariance: the rate a flow receives does not depend on
  its position in the input sequence;
* LinkHealth's bisect timeline equals the linear window scan exactly —
  including on window boundaries (half-open semantics).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.linkhealth import LinkFault, LinkHealth
from repro.cluster.network import (Flow, clear_rate_cache,
                                   _fill_vector, max_min_fair_rates,
                                   max_min_fair_rates_scalar)
from repro.sim.fastpath import use_fast_path

# -- strategies ------------------------------------------------------------

link_names = st.lists(
    st.sampled_from([f"l{i}" for i in range(10)]),
    min_size=1, max_size=10, unique=True)

capacities = st.floats(min_value=0.0, max_value=1e9,
                       allow_nan=False, allow_infinity=False)

rate_caps = st.one_of(
    st.just(float("inf")),
    st.floats(min_value=1e-3, max_value=1e9,
              allow_nan=False, allow_infinity=False))


@st.composite
def fabrics(draw, max_flows=60):
    """(links, flows) with random topology, caps, and duplicates."""
    names = draw(link_names)
    links = {name: draw(capacities) for name in names}
    n_flows = draw(st.integers(1, max_flows))
    flows = []
    for index in range(n_flows):
        path = draw(st.lists(st.sampled_from(names),
                             min_size=1, max_size=4))
        flows.append(Flow(f"f{index}", tuple(path),
                          rate_cap=draw(rate_caps)))
    return links, flows


def assert_close(reference, candidate, tolerance=1e-9):
    assert reference.keys() == candidate.keys()
    for flow_id, want in reference.items():
        got = candidate[flow_id]
        if want == got:
            continue
        scale = max(abs(want), abs(got), 1.0)
        assert abs(want - got) / scale < tolerance, (
            f"{flow_id}: scalar={want!r} vector={got!r}")


# -- water-filling ---------------------------------------------------------

class TestWaterFilling:
    @given(fabrics())
    @settings(max_examples=60, deadline=None)
    def test_vector_matches_scalar(self, fabric):
        links, flows = fabric
        scalar = max_min_fair_rates_scalar(links, flows)
        vector = _fill_vector(links, flows)
        assert_close(scalar, vector)

    @given(fabrics())
    @settings(max_examples=60, deadline=None)
    def test_dispatch_matches_reference(self, fabric):
        """Whatever path dispatch picks equals the reference path."""
        links, flows = fabric
        clear_rate_cache()
        fast = max_min_fair_rates(links, flows)
        with use_fast_path(False):
            reference = max_min_fair_rates(links, flows)
        assert_close(reference, fast)

    @given(fabrics())
    @settings(max_examples=60, deadline=None)
    def test_no_link_oversubscribed(self, fabric):
        links, flows = fabric
        rates = max_min_fair_rates(links, flows)
        load = dict.fromkeys(links, 0.0)
        for flow in flows:
            for link in flow.links:
                load[link] += rates[flow.flow_id]
        for name, total in load.items():
            assert total <= links[name] * (1.0 + 1e-6) + 1e-6

    @given(fabrics())
    @settings(max_examples=60, deadline=None)
    def test_caps_respected(self, fabric):
        links, flows = fabric
        rates = max_min_fair_rates(links, flows)
        for flow in flows:
            assert rates[flow.flow_id] <= flow.rate_cap * (1.0 + 1e-9)
            assert rates[flow.flow_id] >= 0.0

    @given(st.floats(1.0, 1e9, allow_nan=False, allow_infinity=False),
           st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_single_link_equal_shares(self, bandwidth, n_flows):
        """Uncapped flows through one link split it exactly evenly."""
        links = {"l": bandwidth}
        flows = [Flow(f"f{i}", ("l",)) for i in range(n_flows)]
        rates = max_min_fair_rates(links, flows)
        share = bandwidth / n_flows
        for flow in flows:
            assert abs(rates[flow.flow_id] - share) <= share * 1e-9

    @given(fabrics(max_flows=20), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_order_invariance(self, fabric, rng):
        """A flow's rate does not depend on input order."""
        links, flows = fabric
        shuffled = list(flows)
        rng.shuffle(shuffled)
        assert_close(max_min_fair_rates_scalar(links, flows),
                     max_min_fair_rates_scalar(links, shuffled))

    def test_unknown_link_message_identical_on_both_paths(self):
        flows = [Flow(f"f{i}", ("missing",)) for i in range(64)]
        messages = []
        for fast in (True, False):
            with use_fast_path(fast):
                try:
                    max_min_fair_rates({"l": 1.0}, flows)
                except ValueError as error:
                    messages.append(str(error))
        assert len(messages) == 2
        assert messages[0] == messages[1]
        assert "unknown link" in messages[0]

    def test_small_n_cache_returns_fresh_dicts(self):
        """Mutating a cached result must not poison later calls."""
        clear_rate_cache()
        links = {"l": 10.0}
        flows = [Flow("a", ("l",)), Flow("b", ("l",))]
        first = max_min_fair_rates(links, flows)
        first["a"] = -1.0
        second = max_min_fair_rates(links, flows)
        assert second["a"] == 5.0


# -- link health -----------------------------------------------------------

fault_windows = st.lists(
    st.tuples(
        st.sampled_from(["nic:0", "nic:1", "leaf:0"]),
        st.floats(0.0, 1e4, allow_nan=False),
        st.floats(1e-3, 1e4, allow_nan=False),
        st.one_of(st.just(0.0), st.floats(0.01, 0.99))),
    min_size=0, max_size=12)

probe_times = st.lists(st.floats(-10.0, 2e4, allow_nan=False),
                       min_size=1, max_size=20)


class TestLinkHealthTimeline:
    @given(fault_windows, probe_times)
    @settings(max_examples=80, deadline=None)
    def test_bisect_equals_linear_scan(self, windows, times):
        health = LinkHealth()
        for link, start, duration, factor in windows:
            health.add(LinkFault(link=link, start=start,
                                 end=start + duration, factor=factor))
        probes = set(times)
        # boundaries are where bisect bugs live: probe every window
        # edge and its neighbourhood too
        for _, start, duration, _ in windows:
            for edge in (start, start + duration):
                probes.update((edge, edge - 1e-9, edge + 1e-9))
        for link in ("nic:0", "nic:1", "leaf:0", "never-faulted"):
            for at in sorted(probes):
                assert health.factor(link, at) == \
                    health._factor_scan(link, at), (link, at)

    @given(fault_windows)
    @settings(max_examples=40, deadline=None)
    def test_add_invalidates_timeline(self, windows):
        """Queries interleaved with add() never see stale timelines."""
        health = LinkHealth()
        for link, start, duration, factor in windows:
            health.add(LinkFault(link=link, start=start,
                                 end=start + duration, factor=factor))
            probe = start + duration / 2.0
            assert health.factor(link, probe) == \
                health._factor_scan(link, probe)

    def test_memo_hits_return_same_value(self):
        health = LinkHealth()
        health.link_down("nic:0", 10.0, 20.0)
        first = health.factor("nic:0", 15.0)
        second = health.factor("nic:0", 15.0)  # memo hit
        assert first == second == 0.0
        assert health.factor("nic:0", 20.0) == 1.0  # half-open end
