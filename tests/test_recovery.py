"""Tests for fault detection and recovery (§6.1, design 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Node, NodeHealth, seren_node_spec
from repro.core.diagnosis import DiagnosisSystem
from repro.core.recovery import (AnomalyEvent, CheckpointCatalog,
                                 CollectiveTester, FabricCollectiveTester,
                                 HangDetector, HotSparePool,
                                 LossSpikeDetector, RecoveryController,
                                 StepTimeDeviationDetector, leaf_segment,
                                 localize_network_faults, pod_segment,
                                 two_round_nccl_test, World)
from repro.failures.logs import LogGenerator


class TestNcclTest:
    def test_single_faulty_node_identified(self):
        nodes = [f"n{i}" for i in range(8)]
        tester = CollectiveTester({"n3"})
        result = two_round_nccl_test(nodes, tester)
        assert result.faulty == {"n3"}
        assert "n3" not in result.cleared

    def test_faulty_pair_in_same_world(self):
        nodes = [f"n{i}" for i in range(8)]
        tester = CollectiveTester({"n0", "n1"})  # paired together
        result = two_round_nccl_test(nodes, tester)
        assert result.faulty == {"n0", "n1"}

    def test_odd_node_count_uses_world_of_three(self):
        nodes = [f"n{i}" for i in range(7)]
        tester = CollectiveTester({"n6"})
        result = two_round_nccl_test(nodes, tester)
        assert result.faulty == {"n6"}
        assert result.cleared == set(nodes) - {"n6"}

    def test_exactly_three_nodes_form_one_world(self):
        nodes = ["a", "b", "c"]
        tester = CollectiveTester({"b"})
        result = two_round_nccl_test(nodes, tester)
        # The lone world of three fails; with no passing world there is
        # no trusted partner, so all three are conservatively convicted.
        assert result.suspects_after_round1 == set(nodes)
        assert result.faulty == set(nodes)

    def test_exactly_three_healthy_nodes_all_clear(self):
        nodes = ["a", "b", "c"]
        result = two_round_nccl_test(nodes, CollectiveTester(set()))
        assert result.faulty == set()
        assert result.cleared == set(nodes)

    def test_no_faults_clears_everyone_in_one_round(self):
        nodes = [f"n{i}" for i in range(10)]
        tester = CollectiveTester(set())
        result = two_round_nccl_test(nodes, tester)
        assert result.faulty == set()
        assert result.cleared == set(nodes)
        assert tester.tests_run == 5  # round 1 only

    def test_all_faulty_convicts_all(self):
        nodes = ["a", "b", "c", "d"]
        tester = CollectiveTester(set(nodes))
        result = two_round_nccl_test(nodes, tester)
        assert result.faulty == set(nodes)

    def test_empty_input(self):
        result = two_round_nccl_test([], CollectiveTester(set()))
        assert result.faulty == set()

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            two_round_nccl_test(["a", "a"], CollectiveTester(set()))

    def test_far_fewer_tests_than_pairwise(self):
        nodes = [f"n{i}" for i in range(64)]
        tester = CollectiveTester({"n10", "n40"})
        two_round_nccl_test(nodes, tester)
        assert tester.tests_run < 64  # vs 64*63/2 exhaustive pairs

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            CollectiveTester(set()).run_allgather(World(()))

    @given(n=st.integers(2, 40), faulty=st.data())
    @settings(max_examples=60, deadline=None)
    def test_exact_identification_property(self, n, faulty):
        """Whenever a healthy world survives round 1, the procedure
        convicts exactly the faulty set."""
        nodes = [f"n{i}" for i in range(n)]
        k = faulty.draw(st.integers(0, n - 2))
        faulty_set = set(faulty.draw(st.permutations(nodes))[:k])
        tester = CollectiveTester(faulty_set)
        result = two_round_nccl_test(nodes, tester)
        if result.suspects_after_round1 and not (
                set(nodes) - result.suspects_after_round1):
            # no trusted partner existed: conservative conviction
            assert faulty_set <= result.faulty
        else:
            assert result.faulty == faulty_set


class TestDetectors:
    def test_persistent_spike_detected(self):
        detector = LossSpikeDetector(window=20, patience=3)
        step = 0
        for step in range(30):
            assert detector.observe(step, 2.0) is None
        event = None
        for offset in range(1, 6):
            event = detector.observe(step + offset, 8.0)
            if event:
                break
        assert event is not None
        assert event.kind == "loss_spike"

    def test_transient_spike_ignored(self):
        detector = LossSpikeDetector(window=20, patience=5)
        for step in range(30):
            detector.observe(step, 2.0)
        assert detector.observe(30, 8.0) is None  # single blip
        assert detector.observe(31, 2.0) is None  # recovered
        for step in range(32, 40):
            assert detector.observe(step, 2.0) is None

    def test_gradual_descent_never_flags(self):
        detector = LossSpikeDetector()
        events = [detector.observe(step, 5.0 - step * 0.01)
                  for step in range(200)]
        assert not any(events)

    def test_spike_stats_not_polluted_by_spikes(self):
        detector = LossSpikeDetector(window=20, patience=2)
        for step in range(30):
            detector.observe(step, 2.0)
        detector.observe(30, 50.0)
        event = detector.observe(31, 50.0)
        assert event is not None

    def test_hang_detected_after_timeout(self):
        detector = HangDetector(timeout=100.0)
        assert detector.heartbeat(0.0, step=10) is None
        assert detector.heartbeat(50.0, step=10) is None
        event = detector.heartbeat(150.0, step=10)
        assert event is not None
        assert event.kind == "hang"

    def test_progress_resets_hang_timer(self):
        detector = HangDetector(timeout=100.0)
        detector.heartbeat(0.0, step=1)
        detector.heartbeat(90.0, step=2)
        assert detector.heartbeat(150.0, step=2) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LossSpikeDetector(window=1)
        with pytest.raises(ValueError):
            HangDetector(timeout=0)

    def test_warmup_shorter_than_window_never_flags(self):
        """With fewer than window // 2 samples the stats are untrusted."""
        detector = LossSpikeDetector(window=20, patience=1)
        for step in range(9):
            assert detector.observe(step, 2.0) is None
        assert detector.observe(9, 1000.0) is None  # still warming up

    def test_spike_exactly_at_relative_floor_is_not_elevated(self):
        """The bound is strict: loss == mean * (1 + floor) stays healthy."""
        at_bound = LossSpikeDetector(window=20, patience=1)
        above_bound = LossSpikeDetector(window=20, patience=1)
        for step in range(20):
            at_bound.observe(step, 2.0)
            above_bound.observe(step, 2.0)
        bound = 2.0 + 0.15 * 2.0  # std == 0, so the relative floor rules
        assert at_bound.observe(20, bound) is None
        assert above_bound.observe(20, bound + 1e-9) is not None

    def test_recovery_on_step_before_patience_resets_the_run(self):
        detector = LossSpikeDetector(window=20, patience=3)
        for step in range(20):
            detector.observe(step, 2.0)
        assert detector.observe(20, 8.0) is None
        assert detector.observe(21, 8.0) is None  # patience - 1 elevated
        assert detector.observe(22, 2.0) is None  # recovers just in time
        assert detector.observe(23, 8.0) is None  # old run must not carry
        assert detector.observe(24, 8.0) is None
        assert detector.observe(25, 8.0) is not None  # fresh full run


class TestCheckpointCatalog:
    def test_latest(self):
        catalog = CheckpointCatalog([100, 300, 200])
        assert catalog.latest() == 300

    def test_earlier_healthy_rolls_back(self):
        catalog = CheckpointCatalog([100, 200, 300, 400, 500])
        assert catalog.earlier_healthy(before_step=520, back=2) == 300

    def test_earlier_healthy_clamps_at_first(self):
        catalog = CheckpointCatalog([100])
        assert catalog.earlier_healthy(before_step=150, back=5) == 100

    def test_empty_catalog(self):
        assert CheckpointCatalog().latest() is None
        assert CheckpointCatalog().earlier_healthy(100) is None

    def test_mark_bad_quarantines_a_generation(self):
        catalog = CheckpointCatalog([100, 200, 300])
        catalog.mark_bad(300)
        assert catalog.latest() == 200
        assert catalog.quarantined == [300]
        assert catalog.earlier_healthy(before_step=310, back=0) == 200

    def test_mark_bad_is_idempotent_and_tolerates_unknown_steps(self):
        catalog = CheckpointCatalog([100])
        catalog.mark_bad(100)
        catalog.mark_bad(100)
        catalog.mark_bad(999)  # never persisted; nothing to remove
        assert catalog.quarantined == [100, 999]
        assert catalog.latest() is None


class TestRecoveryController:
    def make_controller(self, steps=(100, 200, 300)):
        nodes = [Node(name=f"n{i}", spec=seren_node_spec())
                 for i in range(6)]
        controller = RecoveryController(
            DiagnosisSystem(), CheckpointCatalog(list(steps)), nodes)
        return controller, nodes

    def test_infrastructure_failure_cordons_and_restarts(self):
        controller, nodes = self.make_controller()
        log = LogGenerator(seed=1).failed_log("NVLinkError", n_steps=30)
        tester = CollectiveTester({"n2"})
        plan = controller.handle_failure(log.lines, tester)
        assert plan.restart
        assert plan.restart_checkpoint_step == 300
        assert plan.cordoned_nodes == {"n2"}
        assert not nodes[2].schedulable

    def test_script_failure_never_restarts(self):
        controller, _ = self.make_controller()
        log = LogGenerator(seed=2).failed_log("TypeError", n_steps=20)
        plan = controller.handle_failure(log.lines)
        assert not plan.restart
        assert any(action.kind == "notify" for action in plan.actions)

    def test_framework_failure_restarts_and_notifies(self):
        controller, _ = self.make_controller()
        log = LogGenerator(seed=3).failed_log("OutOfMemoryError",
                                              n_steps=20)
        plan = controller.handle_failure(log.lines)
        assert plan.restart
        assert any(action.kind == "notify" for action in plan.actions)

    def test_loss_spike_rolls_back_and_skips_data(self):
        controller, _ = self.make_controller()
        event = AnomalyEvent(kind="loss_spike", step=310, detail="")
        plan = controller.handle_anomaly(event)
        assert plan.restart
        assert plan.skip_batches
        assert plan.restart_checkpoint_step == 100  # two saves earlier

    def test_hang_treated_as_infrastructure(self):
        controller, _ = self.make_controller()
        event = AnomalyEvent(kind="hang", step=42, detail="")
        plan = controller.handle_anomaly(event,
                                         CollectiveTester({"n1"}))
        assert plan.restart
        assert plan.cordoned_nodes == {"n1"}

    def test_unknown_anomaly_rejected(self):
        controller, _ = self.make_controller()
        with pytest.raises(ValueError):
            controller.handle_anomaly(AnomalyEvent("alien", 1, ""))

    def test_automation_rate_tracks_script_errors(self):
        controller, _ = self.make_controller()
        generator = LogGenerator(seed=4)
        controller.handle_failure(
            generator.failed_log("CUDAError", n_steps=20).lines)
        controller.handle_failure(
            generator.failed_log("TypeError", n_steps=20).lines)
        assert controller.manual_interventions() == 1
        assert controller.automation_rate() == pytest.approx(0.5)

    def test_no_checkpoint_restarts_from_scratch(self):
        nodes = [Node(name="n0", spec=seren_node_spec())]
        controller = RecoveryController(DiagnosisSystem(),
                                        CheckpointCatalog(), nodes)
        log = LogGenerator(seed=5).failed_log("ECCError", n_steps=20)
        plan = controller.handle_failure(log.lines)
        assert plan.restart
        assert plan.restart_checkpoint_step == 0

    def test_storage_alerts_do_not_count_as_interventions(self):
        controller, _ = self.make_controller()
        controller.record_storage_alert(120, "persist degraded: 3 attempts")
        controller.record_storage_alert(240, "persist failed: outage")
        assert controller.storage_alerts == [
            (120, "persist degraded: 3 attempts"),
            (240, "persist failed: outage")]
        assert controller.manual_interventions() == 0

    def test_loss_spike_without_checkpoint_does_not_restart(self):
        """No rollback target -> notify, never a blind restart."""
        nodes = [Node(name="n0", spec=seren_node_spec())]
        controller = RecoveryController(DiagnosisSystem(),
                                        CheckpointCatalog(), nodes)
        event = AnomalyEvent(kind="loss_spike", step=50, detail="")
        plan = controller.handle_anomaly(event)
        assert not plan.restart
        assert not plan.skip_batches
        assert any(action.kind == "notify" for action in plan.actions)


class TestCordonEscalation:
    def make_controller(self):
        nodes = [Node(name=f"n{i}", spec=seren_node_spec())
                 for i in range(6)]
        controller = RecoveryController(
            DiagnosisSystem(), CheckpointCatalog([100]), nodes)
        return controller, nodes

    def infra_failure(self, controller, seed):
        log = LogGenerator(seed=seed).failed_log("NVLinkError", n_steps=20)
        return controller.handle_failure(log.lines, CollectiveTester({"n3"}))

    def test_first_conviction_cordons(self):
        controller, nodes = self.make_controller()
        plan = self.infra_failure(controller, seed=31)
        assert nodes[3].health is NodeHealth.CORDONED
        assert controller.conviction_counts == {"n3": 1}
        assert not any(a.kind == "escalate" for a in plan.actions)

    def test_repeat_offender_escalates_to_faulty(self):
        controller, nodes = self.make_controller()
        self.infra_failure(controller, seed=32)
        nodes[3].uncordon()  # repaired and returned to service
        plan = self.infra_failure(controller, seed=33)
        assert nodes[3].health is NodeHealth.FAULTY
        assert controller.conviction_counts == {"n3": 2}
        assert any(a.kind == "escalate" for a in plan.actions)

    def test_cordoned_node_is_excluded_until_repaired(self):
        """While cordoned, the node is out of the NCCL test world, so it
        cannot accumulate a second conviction."""
        controller, nodes = self.make_controller()
        self.infra_failure(controller, seed=34)
        plan = self.infra_failure(controller, seed=35)
        assert controller.conviction_counts == {"n3": 1}
        assert plan.cordoned_nodes == set()
        assert nodes[3].health is NodeHealth.CORDONED

    def test_faulty_node_cannot_be_uncordoned(self):
        node = Node(name="n0", spec=seren_node_spec())
        node.mark_faulty()
        assert not node.schedulable
        with pytest.raises(RuntimeError):
            node.uncordon()

    def test_cordon_does_not_demote_faulty(self):
        node = Node(name="n0", spec=seren_node_spec())
        node.mark_faulty()
        node.cordon()
        assert node.health is NodeHealth.FAULTY


class TestLinkLocalization:
    """Topology-aware localization: nodes vs leaf-uplink segments."""

    def setup_method(self):
        # 12 nodes, 6 leaves of 2 — the network-storm shape.
        self.nodes = [f"n{i}" for i in range(12)]
        self.leaf_of = {f"n{i}": i // 2 for i in range(12)}

    def make_tester(self, node_factors=None, segment_factors=None,
                    faulty=()):
        return FabricCollectiveTester(
            self.leaf_of, node_factors=node_factors,
            segment_factors=segment_factors, faulty_nodes=faulty)

    def test_healthy_fabric_clears_everyone(self):
        tester = self.make_tester()
        result = localize_network_faults(self.nodes, tester,
                                         self.leaf_of)
        assert result.cleared == set(self.nodes)
        assert not result.faulty_nodes
        assert not result.faulty_segments
        assert not result.ambiguous_segments

    def test_degraded_uplink_convicts_the_segment_not_nodes(self):
        tester = self.make_tester(segment_factors={"leaf:2": 0.3})
        result = localize_network_faults(self.nodes, tester,
                                         self.leaf_of)
        assert result.faulty_segments == {"leaf:2"}
        assert not result.faulty_nodes
        # intra-leaf traffic never crosses the uplink, so the members
        # themselves test clean
        assert {"n4", "n5"} <= result.cleared

    def test_degraded_nic_convicts_the_node_not_its_uplink(self):
        tester = self.make_tester(node_factors={"n5": 0.2})
        result = localize_network_faults(self.nodes, tester,
                                         self.leaf_of)
        assert result.faulty_nodes == {"n5"}
        assert not result.faulty_segments
        assert "n5" not in result.cleared

    def test_mixed_nic_and_uplink_faults_both_pinned(self):
        tester = self.make_tester(node_factors={"n0": 0.0},
                                  segment_factors={"leaf:4": 0.0})
        result = localize_network_faults(self.nodes, tester,
                                         self.leaf_of)
        assert result.faulty_nodes == {"n0"}
        assert result.faulty_segments == {"leaf:4"}
        # n0's partner is exonerated via the cross-leaf probe
        assert "n1" in result.cleared

    def test_two_leaf_world_is_never_convicted_on_one_witness(self):
        nodes = ["n0", "n1", "n2", "n3"]
        leaf_of = {"n0": 0, "n1": 0, "n2": 1, "n3": 1}
        tester = FabricCollectiveTester(
            leaf_of, segment_factors={"leaf:1": 0.1})
        result = localize_network_faults(nodes, tester, leaf_of)
        # One cross-leaf witness cannot tell which uplink is sick:
        # both stay ambiguous, neither is convicted (invariant 11).
        assert not result.faulty_segments
        assert result.ambiguous_segments == {"leaf:0", "leaf:1"}

    def test_lone_rep_cannot_convict_its_uplink(self):
        """Regression: a leaf with a single schedulable member has an
        untested NIC; a cycle double-failure must convict the node, not
        the (possibly healthy) uplink."""
        nodes = ["n0", "n1", "n2", "n4", "n5", "n6", "n7"]  # n3 gone
        tester = FabricCollectiveTester(
            self.leaf_of, node_factors={"n2": 0.2})
        result = localize_network_faults(nodes, tester, self.leaf_of)
        assert result.faulty_nodes == {"n2"}
        assert not result.faulty_segments
        assert leaf_segment(1) in result.ambiguous_segments

    def test_injected_faulty_node_detected(self):
        tester = self.make_tester(faulty=("n7",))
        result = localize_network_faults(self.nodes, tester,
                                         self.leaf_of)
        assert "n7" in result.faulty_nodes

    def test_empty_input(self):
        result = localize_network_faults([], self.make_tester(),
                                         self.leaf_of)
        assert not result.faulty_nodes and not result.faulty_segments

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            localize_network_faults(["n0", "n0"], self.make_tester(),
                                    self.leaf_of)

    def test_single_node_world_moves_no_fabric_bytes(self):
        tester = self.make_tester(node_factors={"n0": 0.0})
        assert tester.run_allgather(World(("n0",)))  # NIC not exercised
        assert not tester.run_allgather(World(("n0", "n1")))


class TestHandleNetworkFault:
    def make_controller(self):
        nodes = [Node(name=f"n{i}", spec=seren_node_spec())
                 for i in range(8)]
        leaf_of = {f"n{i}": i // 2 for i in range(8)}
        controller = RecoveryController(
            DiagnosisSystem(), CheckpointCatalog([100, 200]), nodes,
            leaf_of=leaf_of)
        return controller, nodes, leaf_of

    def test_requires_topology_map(self):
        nodes = [Node(name="n0", spec=seren_node_spec())]
        controller = RecoveryController(
            DiagnosisSystem(), CheckpointCatalog(), nodes)
        tester = FabricCollectiveTester({"n0": 0})
        with pytest.raises(ValueError, match="topology"):
            controller.handle_network_fault("link_down on nic:0", tester)

    def test_segment_conviction_cordons_and_restarts(self):
        controller, nodes, leaf_of = self.make_controller()
        tester = FabricCollectiveTester(
            leaf_of, segment_factors={"leaf:1": 0.0})
        plan = controller.handle_network_fault("link_down on leaf:1",
                                               tester)
        assert plan.cordoned_segments == {"leaf:1"}
        assert controller.segment_convictions == {"leaf:1": 1}
        assert not plan.cordoned_nodes
        kinds = [a.kind for a in plan.actions]
        assert "localize" in kinds and "cordon_segment" in kinds
        assert plan.restart and plan.restart_checkpoint_step == 200
        # nodes stay schedulable: the fabric is sick, not the hosts
        assert all(node.schedulable for node in nodes)

    def test_node_conviction_goes_through_cordon_path(self):
        controller, nodes, leaf_of = self.make_controller()
        tester = FabricCollectiveTester(leaf_of,
                                        node_factors={"n3": 0.1})
        plan = controller.handle_network_fault("link_degraded on nic:3",
                                               tester, restart=False)
        assert plan.cordoned_nodes == {"n3"}
        assert controller.conviction_counts == {"n3": 1}
        assert not nodes[3].schedulable
        assert not plan.restart  # degraded path resumes in place

    def test_ambiguous_segment_notifies_instead_of_cordoning(self):
        controller, nodes, leaf_of = self.make_controller()
        # cordon leaf 0's partner so its lone rep cannot pin the uplink
        nodes[1].cordon()
        tester = FabricCollectiveTester(
            leaf_of, segment_factors={"leaf:0": 0.0})
        plan = controller.handle_network_fault("link_down on leaf:0",
                                               tester)
        assert "leaf:0" not in plan.cordoned_segments
        assert any(a.kind == "notify" and "leaf:0" in a.detail
                   for a in plan.actions)

    def test_incidents_are_recorded(self):
        controller, _, leaf_of = self.make_controller()
        tester = FabricCollectiveTester(leaf_of)
        controller.handle_network_fault("link flap", tester)
        assert len(controller.incidents) == 1


class TestStepTimeDeviationDetector:
    def test_sustained_deviation_fires_after_patience(self):
        detector = StepTimeDeviationDetector(threshold=1.15, patience=2)
        assert detector.observe(10, 1.3) is None
        event = detector.observe(11, 1.3)
        assert event is not None and event.kind == "straggler"

    def test_single_elevated_probe_is_ignored(self):
        detector = StepTimeDeviationDetector(threshold=1.15, patience=2)
        assert detector.observe(10, 1.5) is None
        assert detector.observe(11, 1.0) is None  # streak reset
        assert detector.observe(12, 1.5) is None

    def test_below_threshold_never_fires(self):
        detector = StepTimeDeviationDetector(threshold=1.15, patience=1)
        for step in range(50):
            assert detector.observe(step, 1.1) is None

    def test_rearms_after_reporting(self):
        detector = StepTimeDeviationDetector(threshold=1.15, patience=2)
        detector.observe(0, 1.3)
        assert detector.observe(1, 1.3) is not None
        assert detector.observe(2, 1.3) is None  # streak restarted
        assert detector.observe(3, 1.3) is not None

    def test_threshold_boundary_counts(self):
        detector = StepTimeDeviationDetector(threshold=1.15, patience=1)
        assert detector.observe(0, 1.15) is not None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StepTimeDeviationDetector(threshold=1.0)
        with pytest.raises(ValueError):
            StepTimeDeviationDetector(patience=0)


class TestHotSparePool:
    def test_acquires_in_name_order(self):
        pool = HotSparePool(["s2", "s0", "s1"])
        assert pool.acquire("victim-a") == "s0"
        assert pool.acquire("victim-b") == "s1"
        assert pool.available == ("s2",)
        assert pool.allocated == {"s0": "victim-a", "s1": "victim-b"}

    def test_dry_pool_returns_none(self):
        pool = HotSparePool(["s0"])
        assert pool.acquire("a") == "s0"
        assert pool.dry
        assert pool.acquire("b") is None

    def test_eligibility_filter_skips_spares(self):
        pool = HotSparePool(["s0", "s1"])
        assert pool.acquire("a", eligible=lambda s: s != "s0") == "s1"
        assert pool.available == ("s0",)

    def test_reclaim_rotates_victim_in_as_standby(self):
        pool = HotSparePool(["s0"])
        pool.acquire("victim")
        assert pool.reclaim("victim") == "s0"
        # the spare stays in service; the repaired victim is the new
        # standby capacity
        assert pool.available == ("victim",)
        assert not pool.allocated

    def test_reclaim_unknown_victim_is_none(self):
        pool = HotSparePool(["s0"])
        assert pool.reclaim("never-swapped") is None
        assert pool.available == ("s0",)

    def test_swap_costs_scale_with_gang(self):
        pool = HotSparePool(["s0"], swap_delay=120.0,
                            reschedule_delay=300.0, gang_gpus=32)
        assert pool.swap_cost_gpu_hours() == pytest.approx(
            120.0 * 32 / 3600.0)
        assert pool.reschedule_cost_gpu_hours() == pytest.approx(
            300.0 * 32 / 3600.0)
        assert (pool.swap_cost_gpu_hours()
                < pool.reschedule_cost_gpu_hours())

    def test_duplicate_spares_rejected(self):
        with pytest.raises(ValueError):
            HotSparePool(["s0", "s0"])

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            HotSparePool(["s0"], swap_delay=-1.0)


class TestPodLocalization:
    """Pod-tier (core-uplink) localization: worlds that span pods also
    exercise ``pod:{p}`` segments, and partial partitions must never
    convict a fully-healthy segment."""

    def setup_method(self):
        # 24 nodes, 12 leaves of 2, 3 pods of 4 leaves — three pods so
        # the pod cycle gives every core uplink two witnesses.
        self.nodes = [f"n{i}" for i in range(24)]
        self.leaf_of = {f"n{i}": i // 2 for i in range(24)}
        self.pod_of_leaf = {leaf: leaf // 4 for leaf in range(12)}

    def localize(self, node_factors=None, segment_factors=None):
        tester = FabricCollectiveTester(
            self.leaf_of, node_factors=node_factors,
            segment_factors=segment_factors,
            pod_of_leaf=self.pod_of_leaf)
        return localize_network_faults(self.nodes, tester, self.leaf_of,
                                       pod_of_leaf=self.pod_of_leaf)

    def test_healthy_two_pod_fabric_clears_everyone(self):
        result = self.localize()
        assert result.cleared == set(self.nodes)
        assert not result.faulty_segments

    def test_degraded_core_uplink_convicts_the_pod_segment(self):
        result = self.localize(segment_factors={pod_segment(1): 0.3})
        assert pod_segment(1) in result.faulty_segments
        assert not result.faulty_nodes
        # intra-pod traffic never crosses the core, so no leaf segment
        # (and no node) of pod 1 is swept up in the conviction
        assert not any(seg.startswith("leaf:")
                       for seg in result.faulty_segments)

    def test_two_pod_fabric_is_never_convicted_on_one_witness(self):
        # With two pods the single cross-pod world cannot tell which
        # core uplink is sick: both stay ambiguous, neither convicted.
        nodes = [f"n{i}" for i in range(16)]
        leaf_of = {f"n{i}": i // 2 for i in range(16)}
        pod_of_leaf = {leaf: leaf // 4 for leaf in range(8)}
        tester = FabricCollectiveTester(
            leaf_of, segment_factors={pod_segment(1): 0.3},
            pod_of_leaf=pod_of_leaf)
        result = localize_network_faults(nodes, tester, leaf_of,
                                         pod_of_leaf=pod_of_leaf)
        assert not result.faulty_segments
        assert result.ambiguous_segments == {pod_segment(0),
                                             pod_segment(1)}

    def test_partial_partition_convicts_only_the_sick_links(self):
        # invariant 14: a degraded NIC pair must not drag its healthy
        # leaf, pod, or partner nodes into the conviction
        result = self.localize(node_factors={"n3": 0.2, "n9": 0.15})
        assert result.faulty_nodes == {"n3", "n9"}
        assert not result.faulty_segments
        assert "n2" in result.cleared and "n8" in result.cleared

    def test_single_pod_mapping_matches_leaf_only_procedure(self):
        pod_of_leaf = {leaf: 0 for leaf in range(12)}
        tester = FabricCollectiveTester(
            self.leaf_of, segment_factors={"leaf:2": 0.3},
            pod_of_leaf=pod_of_leaf)
        result = localize_network_faults(self.nodes, tester,
                                         self.leaf_of,
                                         pod_of_leaf=pod_of_leaf)
        assert result.faulty_segments == {"leaf:2"}
