"""Seed-robustness of the headline reproductions.

Each headline claim must hold across several generator seeds — a result
that only appears at one seed is calibration luck, not reproduction.
Sample sizes are kept small; the claims asserted are the orderings.
"""

import numpy as np
import pytest

from repro.core.evalsched import CoordinatorConfig, TrialCoordinator
from repro.evaluation import standard_catalog
from repro.scheduler.job import FinalStatus, JobType
from repro.training.pretrain import fig14_campaigns
from repro.workload.generator import TraceGenerator
from repro.workload.spec import KALOS_SPEC, SEREN_SPEC

SEEDS = (101, 202, 303)


@pytest.mark.parametrize("seed", SEEDS)
class TestTraceHeadlinesAcrossSeeds:
    def test_median_duration_near_two_minutes(self, seed):
        trace = TraceGenerator(KALOS_SPEC, seed=seed).generate(4000)
        assert 60 < np.median(trace.durations()) < 240

    def test_pretrain_dominates_kalos_gpu_time(self, seed):
        trace = TraceGenerator(KALOS_SPEC, seed=seed).generate(4000)
        shares = trace.gpu_time_share_by_type()
        assert shares[JobType.PRETRAIN] > 0.85
        assert shares[JobType.EVALUATION] < 0.05

    def test_failure_rate_band(self, seed):
        trace = TraceGenerator(SEREN_SPEC, seed=seed).generate(4000)
        counts = trace.status_counts()
        failed = counts[FinalStatus.FAILED] / sum(counts.values())
        assert 0.30 < failed < 0.50

    def test_canceled_jobs_hold_most_gpu_time(self, seed):
        trace = TraceGenerator(SEREN_SPEC, seed=seed).generate(4000)
        times = trace.status_gpu_time()
        assert times[FinalStatus.CANCELED] / sum(times.values()) > 0.45


@pytest.mark.parametrize("seed", SEEDS)
class TestSystemClaimsAcrossSeeds:
    def test_fig14_stability_ordering(self, seed):
        runs = fig14_campaigns(seed=seed)
        assert (runs["123B"].useful_fraction
                > runs["104B"].useful_fraction)

    def test_diagnosis_accuracy(self, seed):
        from repro.core.diagnosis import DiagnosisSystem
        from repro.failures.logs import LogGenerator

        generator = LogGenerator(seed=seed)
        system = DiagnosisSystem()
        reasons = ["NVLinkError", "CUDAError", "OutOfMemoryError",
                   "FileNotFoundError", "NCCLTimeoutError",
                   "DataloaderKilled", "TypeError", "S3StorageError"]
        correct = sum(
            system.diagnose(generator.failed_log(r, n_steps=60).lines)
            .reason == r
            for r in reasons)
        assert correct == len(reasons)


class TestEvalSchedulingDeterministic:
    def test_makespan_comparison_is_deterministic(self):
        """The coordinator itself is seed-free: identical runs agree."""
        catalog = standard_catalog()
        first = TrialCoordinator(
            CoordinatorConfig(n_nodes=4)).compare(catalog)["speedup"]
        second = TrialCoordinator(
            CoordinatorConfig(n_nodes=4)).compare(catalog)["speedup"]
        assert first == pytest.approx(second)
