"""Tests for cluster topology and the cluster factories."""

import pytest

from repro.cluster.cluster import make_acme, make_kalos, make_seren
from repro.cluster.machine import Node, seren_node_spec
from repro.cluster.topology import ClusterTopology


def small_topology(nodes=4):
    return ClusterTopology([Node(name=f"n{i}", spec=seren_node_spec())
                            for i in range(nodes)])


class TestTopology:
    def test_total_gpus(self):
        assert small_topology(4).total_gpus == 32

    def test_address_mapping(self):
        topo = small_topology()
        addr = topo.address(13)
        assert addr.node_index == 1
        assert addr.local_index == 5

    def test_address_out_of_range(self):
        with pytest.raises(IndexError):
            small_topology().address(999)

    def test_same_node(self):
        topo = small_topology()
        assert topo.same_node(0, 7)
        assert not topo.same_node(7, 8)

    def test_intra_node_group_uses_nvlink(self):
        topo = small_topology()
        bandwidth = topo.group_bandwidth(list(range(8)))
        assert bandwidth == topo.nodes[0].spec.gpu.nvlink_bandwidth

    def test_cross_node_group_uses_nic_share(self):
        topo = small_topology()
        # 16 GPUs across 2 nodes: 8 members share each node's NIC.
        bandwidth = topo.group_bandwidth(list(range(16)))
        expected = topo.nodes[0].spec.total_network_bandwidth / 8
        assert bandwidth == pytest.approx(expected)

    def test_strided_group(self):
        topo = small_topology()
        assert topo.strided_group(0, 8, 4) == [0, 8, 16, 24]

    def test_strided_group_out_of_range(self):
        with pytest.raises(IndexError):
            small_topology().strided_group(0, 8, 5)

    def test_contiguous_group(self):
        assert small_topology().contiguous_group(4, 4) == [4, 5, 6, 7]


class TestClusterFactories:
    def test_seren_scale_matches_table1(self):
        seren = make_seren()
        assert seren.node_count == 286
        assert seren.total_gpus == 2288
        assert seren.scheduler_kind == "slurm"

    def test_kalos_scale_matches_table1(self):
        kalos = make_kalos()
        assert kalos.node_count == 302
        assert kalos.total_gpus == 2416
        assert kalos.scheduler_kind == "kubernetes"

    def test_acme_total_gpus(self):
        acme = make_acme()
        assert sum(c.total_gpus for c in acme.values()) == 4704

    def test_summary_row(self):
        row = make_seren(4).summary()
        assert row["cpus_per_node"] == 128
        assert row["gpus_per_node"] == 8
        assert row["nodes"] == 4

    def test_gang_placement_prefers_whole_nodes(self):
        cluster = make_seren(4)
        placement = cluster.find_nodes_with_free_gpus(16)
        assert sum(take for _, take in placement) == 16
        assert all(take == 8 for _, take in placement)

    def test_placement_fails_when_insufficient(self):
        cluster = make_seren(2)
        assert cluster.find_nodes_with_free_gpus(17) == []

    def test_placement_skips_cordoned_nodes(self):
        cluster = make_seren(2)
        cluster.nodes[0].cordon()
        placement = cluster.find_nodes_with_free_gpus(8)
        assert placement[0][0] is cluster.nodes[1]
        assert cluster.free_gpus == 8
