"""Tests for the Job model."""

import pytest

from repro.scheduler.job import FinalStatus, Job, JobState, JobType


def make_job(**overrides):
    defaults = dict(job_id="j1", cluster="seren",
                    job_type=JobType.EVALUATION, submit_time=100.0,
                    duration=60.0, gpu_demand=2)
    defaults.update(overrides)
    return Job(**defaults)


class TestLifecycle:
    def test_initial_state_is_pending(self):
        assert make_job().state is JobState.PENDING

    def test_start_finish_transitions(self):
        job = make_job()
        job.mark_started(150.0)
        assert job.state is JobState.RUNNING
        job.mark_finished(210.0)
        assert job.state is JobState.FINISHED
        assert job.end_time == 210.0

    def test_double_start_raises(self):
        job = make_job()
        job.mark_started(150.0)
        with pytest.raises(RuntimeError):
            job.mark_started(160.0)

    def test_finish_before_start_raises(self):
        with pytest.raises(RuntimeError):
            make_job().mark_finished(200.0)


class TestDerivedMetrics:
    def test_queueing_delay(self):
        job = make_job()
        job.mark_started(130.0)
        assert job.queueing_delay == 30.0

    def test_queueing_delay_requires_start(self):
        with pytest.raises(RuntimeError):
            _ = make_job().queueing_delay

    def test_gpu_time(self):
        assert make_job(gpu_demand=4, duration=100.0).gpu_time == 400.0

    def test_cpu_job_is_not_gpu_job(self):
        assert not make_job(gpu_demand=0).is_gpu_job

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_job(duration=-1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            make_job(gpu_demand=-1)


class TestSerialization:
    def test_round_trip_preserves_fields(self):
        job = make_job(final_status=FinalStatus.FAILED,
                       failure_reason="CUDAError",
                       gpu_utilization=0.97)
        job.mark_started(120.0)
        job.mark_finished(180.0)
        clone = Job.from_record(job.to_record())
        assert clone.job_id == job.job_id
        assert clone.job_type is JobType.EVALUATION
        assert clone.final_status is FinalStatus.FAILED
        assert clone.failure_reason == "CUDAError"
        assert clone.start_time == 120.0
        assert clone.end_time == 180.0
        assert clone.gpu_utilization == pytest.approx(0.97)

    def test_round_trip_pending_job(self):
        clone = Job.from_record(make_job().to_record())
        assert clone.start_time is None
        assert clone.state is JobState.PENDING
