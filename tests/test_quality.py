"""Tests for model-quality curves and checkpoint selection (§6.2)."""

import numpy as np
import pytest

from repro.evaluation.datasets import standard_catalog
from repro.evaluation.quality import (CheckpointScore, QualityCurveConfig,
                                      QualityModel, default_curve_for,
                                      feedback_delay_cost,
                                      select_best_checkpoint)


class TestCurves:
    def test_expected_score_monotone(self):
        curve = QualityCurveConfig(floor=0.25, ceiling=0.8,
                                   half_life_steps=10_000)
        steps = np.arange(0, 100_000, 5000)
        scores = [curve.expected_score(s) for s in steps]
        assert scores == sorted(scores)

    def test_starts_at_floor_ends_at_ceiling(self):
        curve = QualityCurveConfig(floor=0.25, ceiling=0.8,
                                   half_life_steps=1000)
        assert curve.expected_score(0) == pytest.approx(0.25)
        assert curve.expected_score(10 ** 8) == pytest.approx(0.8)

    def test_half_life_semantics(self):
        curve = QualityCurveConfig(floor=0.0, ceiling=1.0,
                                   half_life_steps=500)
        assert curve.expected_score(500) == pytest.approx(0.5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            QualityCurveConfig(floor=0.9, ceiling=0.5,
                               half_life_steps=100)

    def test_default_curves_deterministic(self):
        dataset = standard_catalog()[0]
        assert default_curve_for(dataset, 3) == default_curve_for(
            dataset, 3)

    def test_harder_benchmarks_get_lower_ceilings(self):
        catalog = standard_catalog()
        by_name = {d.name: d for d in catalog}
        easy = default_curve_for(by_name["copa"], 0)
        hard = default_curve_for(by_name["mbpp"], 0)
        assert hard.ceiling < easy.ceiling


class TestQualityModel:
    def model(self, **kwargs):
        return QualityModel(standard_catalog()[:12], seed=5, **kwargs)

    def test_scores_cover_all_datasets(self):
        score = self.model().evaluate_checkpoint(10_000)
        assert len(score.scores) == 12
        assert all(0.0 <= v <= 1.0 for v in score.scores.values())

    def test_later_checkpoints_score_higher(self):
        model = self.model()
        early = model.evaluate_checkpoint(1_000).mean_score()
        late = model.evaluate_checkpoint(80_000).mean_score()
        assert late > early

    def test_regression_lowers_scores(self):
        model = self.model()
        baseline = model.evaluate_checkpoint(50_000).mean_score()
        model.add_regression(40_000, penalty=0.1)
        degraded = model.evaluate_checkpoint(50_000).mean_score()
        assert degraded < baseline - 0.05

    def test_regression_only_applies_after_its_step(self):
        model = self.model()
        model.add_regression(40_000, penalty=0.2)
        before = model.evaluate_checkpoint(30_000).mean_score()
        curve_before = np.mean([
            model.curves[d.name].expected_score(30_000)
            for d in model.datasets])
        assert before == pytest.approx(float(curve_before), abs=0.05)

    def test_best_checkpoint_selection(self):
        model = self.model()
        scores = model.evaluate_schedule([10_000, 30_000, 60_000])
        best = select_best_checkpoint(scores)
        assert best.step == 60_000

    def test_best_checkpoint_before_regression(self):
        """The §5.3/§6.2 scenario: quality regresses mid-run, and the
        evaluation loop identifies the best (earlier) checkpoint."""
        model = self.model()
        model.add_regression(45_000, penalty=0.25)
        scores = model.evaluate_schedule([20_000, 40_000, 60_000,
                                          80_000])
        best = select_best_checkpoint(scores)
        assert best.step == 40_000

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            QualityModel([])
        with pytest.raises(ValueError):
            select_best_checkpoint([])
        with pytest.raises(ValueError):
            CheckpointScore(step=1).mean_score()


class TestFeedbackDelay:
    def test_delay_wastes_training_steps(self):
        catalog = standard_catalog()[:8]
        prompt_model = QualityModel(catalog, seed=7)
        delayed_model = QualityModel(catalog, seed=7)
        checkpoints = list(range(0, 100_000, 5_000))
        prompt = feedback_delay_cost(
            prompt_model, checkpoints, regression_step=42_000,
            eval_delay_checkpoints=0, checkpoint_interval_steps=5_000)
        delayed = feedback_delay_cost(
            delayed_model, checkpoints, regression_step=42_000,
            eval_delay_checkpoints=6, checkpoint_interval_steps=5_000)
        assert delayed["wasted_steps"] > prompt["wasted_steps"]
        assert delayed["wasted_steps"] - prompt["wasted_steps"] == 30_000

    def test_regression_after_last_checkpoint(self):
        model = QualityModel(standard_catalog()[:4], seed=8)
        result = feedback_delay_cost(model, [1000], 5000, 2, 1000)
        assert result["wasted_steps"] == 0

    def test_negative_delay_rejected(self):
        model = QualityModel(standard_catalog()[:4], seed=9)
        with pytest.raises(ValueError):
            feedback_delay_cost(model, [0], 0, -1, 100)
