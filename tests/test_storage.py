"""Tests for the shared parallel file-system model."""

import pytest

from repro.cluster.storage import SharedStorage, StorageVolume
from repro.sim.engine import Engine


def make_storage():
    # Seren-like: 25 Gb/s storage NIC per node, 400 GB/s backend.
    return SharedStorage(backend_bandwidth=400e9,
                         node_nic_bandwidth=25e9 / 8.0)


class TestSharedStorage:
    def test_single_trial_gets_full_nic(self):
        storage = make_storage()
        assert storage.per_trial_load_rate(1) == pytest.approx(25e9 / 8.0)

    def test_node_nic_splits_among_trials(self):
        storage = make_storage()
        assert storage.per_trial_load_rate(8) == pytest.approx(
            25e9 / 8.0 / 8.0)

    def test_fig16_collapse_then_flat(self):
        """Fig. 16 left: 1 -> 8 trials collapses ~8x; 8 -> 256 is flat."""
        storage = make_storage()
        results = dict(storage.stress_test(14e9,
                                           [1, 2, 4, 8, 16, 64, 256]))
        assert results[1] / results[8] == pytest.approx(8.0, rel=0.01)
        assert results[8] == pytest.approx(results[256], rel=0.05)

    def test_backend_binds_at_extreme_scale(self):
        storage = SharedStorage(backend_bandwidth=10e9,
                                node_nic_bandwidth=5e9)
        # 100 single-trial nodes share a 10 GB/s backend.
        assert storage.per_trial_load_rate(1, total_trials=100) == \
            pytest.approx(0.1e9)

    def test_load_time_inverse_of_rate(self):
        storage = make_storage()
        assert storage.load_time(25e9 / 8.0, trials_per_node=1) == \
            pytest.approx(1.0)

    def test_write_contention_across_writers(self):
        storage = SharedStorage(backend_bandwidth=100e9,
                                node_nic_bandwidth=50e9)
        solo = storage.write_time(100e9, concurrent_writers=1)
        crowded = storage.write_time(100e9, concurrent_writers=10)
        assert crowded > solo

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            SharedStorage(0.0, 1.0)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            make_storage().per_trial_load_rate(0)


class TestStorageVolume:
    def test_single_read_completes_at_rate(self):
        engine = Engine()
        volume = StorageVolume(engine, nic_bandwidth=10.0)
        done = []
        volume.read(100.0).subscribe(lambda ev: done.append(engine.now))
        engine.run()
        assert done == [10.0]

    def test_concurrent_reads_slow_down(self):
        engine = Engine()
        volume = StorageVolume(engine, nic_bandwidth=10.0)
        times = []
        volume.read(100.0).subscribe(lambda ev: times.append(engine.now))
        volume.read(100.0).subscribe(lambda ev: times.append(engine.now))
        engine.run()
        # Second read observed 2-way contention when it started.
        assert times[0] == pytest.approx(10.0)
        assert times[1] == pytest.approx(20.0)

    def test_read_process_generator(self):
        engine = Engine()
        volume = StorageVolume(engine, nic_bandwidth=10.0)
        finished = []

        def worker():
            yield from volume.read_process(50.0)
            finished.append(engine.now)

        engine.process(worker())
        engine.run()
        assert finished == [5.0]
