"""Tests for the injectable storage fault decorators."""

import numpy as np
import pytest

from repro.cluster.storage import (CorruptingStorage, FlakyStorage,
                                   MonotonicClock, SlowStorage,
                                   StorageError, StorageUnavailableError,
                                   VirtualClock)
from repro.core.checkpoint import (CheckpointError, InMemoryStorage,
                                   _deserialize, _serialize)


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        before = clock.now()
        clock.sleep(0.001)
        assert clock.now() > before

    def test_virtual_clock_sleep_is_free(self):
        clock = VirtualClock(start=5.0)
        assert clock.now() == 5.0
        clock.sleep(3600.0)  # returns instantly
        assert clock.now() == 3605.0

    def test_virtual_clock_rejects_negative_sleep(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1.0)


class TestFlakyStorage:
    def test_transparent_outside_windows(self):
        clock = VirtualClock()
        flaky = FlakyStorage(InMemoryStorage(),
                             windows=[(100.0, 200.0)], clock=clock)
        flaky.write("k", b"v")
        assert flaky.read("k") == b"v"
        assert flaky.keys() == ["k"]
        assert flaky.faults_injected == 0

    def test_fails_every_op_inside_window(self):
        clock = VirtualClock()
        flaky = FlakyStorage(InMemoryStorage(),
                             windows=[(100.0, 200.0)], clock=clock)
        flaky.write("k", b"v")
        clock.advance(150.0)
        for op in (lambda: flaky.write("k2", b"x"),
                   lambda: flaky.read("k"), flaky.keys,
                   lambda: flaky.delete("k")):
            with pytest.raises(StorageUnavailableError):
                op()
        assert flaky.faults_injected == 4

    def test_window_is_half_open(self):
        clock = VirtualClock(start=200.0)  # exactly the window end
        flaky = FlakyStorage(InMemoryStorage(),
                             windows=[(100.0, 200.0)], clock=clock)
        flaky.write("k", b"v")  # no raise

    def test_seeded_fail_rate_is_deterministic(self):
        def failures(seed):
            flaky = FlakyStorage(InMemoryStorage(), fail_rate=0.5,
                                 seed=seed)
            pattern = []
            for i in range(32):
                try:
                    flaky.write(f"k{i}", b"v")
                    pattern.append(True)
                except StorageUnavailableError:
                    pattern.append(False)
            return pattern

        assert failures(7) == failures(7)
        assert failures(7) != failures(8)

    def test_rejects_bad_rate_and_empty_window(self):
        with pytest.raises(ValueError):
            FlakyStorage(InMemoryStorage(), fail_rate=1.5)
        with pytest.raises(ValueError):
            FlakyStorage(InMemoryStorage(), windows=[(5.0, 5.0)])


class TestSlowStorage:
    def test_delay_consumes_virtual_time_only(self):
        clock = VirtualClock()
        slow = SlowStorage(InMemoryStorage(), delay=30.0, clock=clock)
        slow.write("k", b"v")
        assert clock.now() == 30.0
        slow.read("k")
        assert clock.now() == 60.0
        assert slow.delays_injected == 2
        assert slow.total_delay == 60.0

    def test_windows_gate_the_slowdown(self):
        clock = VirtualClock()
        slow = SlowStorage(InMemoryStorage(), delay=30.0,
                           windows=[(100.0, 200.0)], clock=clock)
        slow.write("k", b"v")  # outside: free
        assert clock.now() == 0.0
        clock.advance(150.0)
        slow.read("k")
        assert clock.now() == 180.0

    def test_empty_window_tuple_means_never_slow(self):
        clock = VirtualClock()
        slow = SlowStorage(InMemoryStorage(), delay=30.0, windows=(),
                           clock=clock)
        slow.write("k", b"v")
        assert clock.now() == 0.0

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SlowStorage(InMemoryStorage(), delay=-1.0)


class TestCorruptingStorage:
    def test_write_succeeds_but_checksum_breaks(self):
        clock = VirtualClock(start=150.0)
        corrupting = CorruptingStorage(InMemoryStorage(),
                                       windows=[(100.0, 200.0)],
                                       clock=clock)
        blob = _serialize(7, {"x": np.zeros(8)})
        corrupting.write("ckpt-000000000007", blob)  # silent
        assert corrupting.corrupted_writes == 1
        assert "ckpt-000000000007" in corrupting.corrupted_keys
        with pytest.raises(CheckpointError):
            _deserialize(corrupting.read("ckpt-000000000007"))

    def test_clean_outside_window(self):
        clock = VirtualClock()
        corrupting = CorruptingStorage(InMemoryStorage(),
                                       windows=[(100.0, 200.0)],
                                       clock=clock)
        blob = _serialize(7, {"x": np.zeros(8)})
        corrupting.write("k", blob)
        assert corrupting.corrupted_writes == 0
        step, _ = _deserialize(corrupting.read("k"))
        assert step == 7

    def test_clean_overwrite_clears_corrupt_mark(self):
        clock = VirtualClock(start=150.0)
        corrupting = CorruptingStorage(InMemoryStorage(),
                                       windows=[(100.0, 200.0)],
                                       clock=clock)
        corrupting.write("k", b"abcdef")
        clock.advance(100.0)  # window closed
        corrupting.write("k", b"abcdef")
        assert "k" not in corrupting.corrupted_keys

    def test_seeded_corrupt_rate_is_deterministic(self):
        def corrupted(seed):
            store = CorruptingStorage(InMemoryStorage(),
                                      corrupt_rate=0.5, seed=seed)
            for i in range(32):
                store.write(f"k{i}", b"abcdef")
            return sorted(store.corrupted_keys)

        assert corrupted(3) == corrupted(3)
        assert corrupted(3) != corrupted(4)


class TestComposition:
    def test_stacked_decorators_compose(self):
        """The chaos harness stack: flaky(slow(corrupting(memory)))."""
        clock = VirtualClock()
        stack = FlakyStorage(
            SlowStorage(
                CorruptingStorage(InMemoryStorage(),
                                  windows=[(0.0, 10.0)], clock=clock),
                delay=5.0, windows=[(20.0, 30.0)], clock=clock),
            windows=[(40.0, 50.0)], clock=clock)
        stack.write("a", b"abcdef")          # t=0: corrupted
        clock.advance(25.0)
        stack.write("b", b"abcdef")          # t=25: slow (+5s)
        assert clock.now() == 30.0
        clock.advance(15.0)                  # t=45: outage
        with pytest.raises(StorageError):
            stack.read("a")
        clock.advance(10.0)                  # t=55: all clear
        assert stack.read("a") != b"abcdef"  # corruption persisted
        assert stack.read("b") == b"abcdef"
