"""Tests for the streaming simulation service (``repro.service``).

Pins the two equivalence properties the service's determinism story
rests on, over a chaos-storm scenario and under both engine paths:

(a) N incremental ``advance`` horizons are byte-identical to one batch
    run to the same horizon, streams included;
(b) snapshot -> restore -> advance is byte-identical to the
    uninterrupted run.

Plus the persist-pipeline integration: retries on flaky storage,
quarantine + generation fallback on corruption, and hard failures
surfacing as the checkpoint pipeline's own exceptions.
"""

import pytest

from repro.chaos import BUNDLED_SCENARIOS
from repro.cluster.storage import FlakyStorage, StorageError
from repro.core.checkpoint import (CheckpointError, InMemoryStorage,
                                   RetryPolicy)
from repro.scheduler.job import Job, JobType
from repro.service import ClusterService, ServiceStateError
from repro.service.state import scenario_from_dict, scenario_to_dict
from repro.sim.fastpath import use_fast_path
from repro.workload.streams import (EvalBurstConfig, EvalBurstStream,
                                    PoissonJobStream,
                                    PoissonStreamConfig)

STORM = "storage-storm"


def make_streams():
    return [
        PoissonJobStream(PoissonStreamConfig(
            name="sft", seed=11, rate_per_hour=40.0,
            gpu_choices=(1, 2, 4))),
        EvalBurstStream(EvalBurstConfig(
            name="evals", seed=22, bursts_per_hour=3.0, batch_size=4)),
    ]


def make_service(scenario_name=STORM, storage=None, retry=None):
    return ClusterService(BUNDLED_SCENARIOS[scenario_name],
                          streams=make_streams(), storage=storage,
                          retry=retry)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast", "reference"])
    def test_horizons_equal_batch_with_streams(self, fast):
        duration = BUNDLED_SCENARIOS[STORM].duration
        with use_fast_path(fast):
            batch = make_service()
            batch_gauges = batch.advance(duration)
            split = make_service()
            for part in range(1, 6):
                split_gauges = split.advance(
                    duration if part == 5 else duration * part / 5)
        assert split_gauges == batch_gauges
        assert split.event_log_text() == batch.event_log_text()
        assert (split.finish().summary.to_json()
                == batch.finish().summary.to_json())

    def test_gauges_track_live_state(self):
        service = make_service("smoke")
        duration = service.scenario.duration
        gauges = service.advance(duration / 3)
        assert gauges.now == duration / 3
        assert gauges.jobs_submitted > 0
        assert gauges.pending_events > 0
        assert gauges.gpus_busy >= 0
        assert gauges.jobs_finished <= gauges.jobs_submitted
        assert gauges.pretrain_iteration > 0
        later = service.advance(duration)
        assert later.jobs_submitted > gauges.jobs_submitted
        assert later.fault_backlog <= gauges.fault_backlog


class TestSnapshotRestore:
    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast", "reference"])
    def test_restore_then_advance_equals_uninterrupted(self, fast):
        duration = BUNDLED_SCENARIOS[STORM].duration
        with use_fast_path(fast):
            service = make_service()
            service.advance(duration / 2)
            service.checkpoint()
            restored = ClusterService.restore(service._storage)
            assert restored.gauges() == service.gauges()
            ahead = service.advance(duration)
            behind = restored.advance(duration)
        assert ahead == behind
        assert service.event_log_text() == restored.event_log_text()

    def test_external_submissions_survive_restore(self):
        service = make_service("smoke")
        duration = service.scenario.duration
        service.advance(duration / 4)
        service.submit(Job(job_id="manual-0", cluster="service",
                           job_type=JobType.DEBUG,
                           submit_time=service.engine.now,
                           duration=120.0, gpu_demand=2))
        service.advance(duration / 2)
        service.checkpoint()
        restored = ClusterService.restore(service._storage)
        assert restored.jobs_submitted == service.jobs_submitted
        assert (restored.advance(duration)
                == service.advance(duration))

    def test_generation_numbering_continues_after_restore(self):
        service = make_service("smoke")
        service.advance(1000.0)
        assert service.checkpoint() == 0
        service.advance(2000.0)
        assert service.checkpoint() == 1
        restored = ClusterService.restore(service._storage)
        restored.advance(3000.0)
        assert restored.checkpoint() == 2

    def test_restore_from_empty_storage_raises(self):
        with pytest.raises(ServiceStateError):
            ClusterService.restore(InMemoryStorage())

    def test_tampered_snapshot_fails_digest_verification(self):
        import json

        import numpy as np

        from repro.core.checkpoint import _deserialize, _serialize
        from repro.service.state import STATE_KEY
        from repro.sim.engine import SimulationError
        service = make_service("smoke")
        service.advance(2000.0)
        service.checkpoint()
        # rewrite the snapshot with a journal missing its last op:
        # the replay is self-consistent but diverges from the digests
        key = sorted(service._storage._blobs)[0]
        step, state = _deserialize(service._storage._blobs[key])
        payload = json.loads(bytes(state[STATE_KEY]).decode())
        payload["journal"] = payload["journal"][:-1]
        blob = json.dumps(payload, sort_keys=True).encode()
        tampered = {STATE_KEY: np.frombuffer(blob, dtype=np.uint8)}
        service._storage._blobs[key] = _serialize(step, tampered)
        with pytest.raises((ServiceStateError, SimulationError)):
            ClusterService.restore(service._storage)


class TestPersistPipelineIntegration:
    def test_flaky_storage_retries_and_stalls_virtually(self):
        inner = InMemoryStorage()
        flaky = FlakyStorage(inner, fail_rate=0.5, seed=7)
        service = make_service("smoke", storage=flaky,
                               retry=RetryPolicy(max_attempts=8,
                                                 deadline=600.0,
                                                 jitter=0.0))
        service.advance(1500.0)
        before = service.engine.now
        service.checkpoint()
        # retries burned virtual time, never the engine clock
        assert service.engine.now == before
        assert service._checkpointer.retries_total >= 0
        restored = ClusterService.restore(
            flaky, retry=RetryPolicy(max_attempts=8, deadline=600.0,
                                     jitter=0.0))
        assert restored.gauges() == service.gauges()

    def test_dead_storage_raises_checkpoint_error(self):
        inner = InMemoryStorage()
        dead = FlakyStorage(inner, fail_rate=1.0, seed=7)
        service = make_service("smoke", storage=dead,
                               retry=RetryPolicy(max_attempts=2,
                                                 deadline=30.0,
                                                 jitter=0.0))
        service.advance(1500.0)
        with pytest.raises(CheckpointError):
            service.checkpoint()
        # the service itself is unharmed and keeps advancing
        gauges = service.advance(3000.0)
        assert gauges.now == 3000.0
        with pytest.raises(StorageError):
            ClusterService.restore(
                dead, retry=RetryPolicy(max_attempts=2, deadline=30.0,
                                        jitter=0.0))

    def test_corrupt_generation_falls_back_to_older(self):
        storage = InMemoryStorage()
        service = make_service("smoke", storage=storage)
        service.advance(1500.0)
        service.checkpoint()          # generation 0
        mid_gauges = service.gauges()
        service.advance(3000.0)
        service.checkpoint()          # generation 1
        newest = sorted(storage._blobs)[-1]
        blob = bytearray(storage._blobs[newest])
        blob[-1] ^= 0xFF              # silent bit rot in generation 1
        storage._blobs[newest] = bytes(blob)
        restored = ClusterService.restore(storage)
        # the walk quarantined generation 1 and replayed generation 0
        assert restored.gauges() == mid_gauges


class _SkippingStream:
    """Stub stream whose first emission is empty (regression: the
    service must re-chain from the stream's anchor clock instead of
    crashing on ``max()`` over zero arrivals)."""

    kind = "poisson"  # piggyback for to_config_dict round-trip shape

    def __init__(self):
        self.config = PoissonStreamConfig(
            name="skipper", rate_per_hour=60.0, gpu_choices=(2,))
        self.calls = 0
        self._time = 0.0

    def emit_next(self):
        self.calls += 1
        self._time += 120.0
        if self.calls == 1:
            return []
        job = Job(job_id=f"skip-{self.calls:04d}", cluster="service",
                  job_type=JobType.DEBUG, submit_time=self._time,
                  duration=60.0, gpu_demand=2)
        return [(self._time, job)]

    def max_gpu_demand(self):
        return 2

    def anchor_time(self):
        return self._time

    def to_config_dict(self):
        from dataclasses import asdict

        return {"kind": self.kind, **asdict(self.config)}


class TestStreams:
    def test_streams_are_pure_functions_of_config(self):
        first = make_streams()[0]
        second = make_streams()[0]
        for _ in range(50):
            [(t1, j1)] = first.emit_next()
            [(t2, j2)] = second.emit_next()
            assert t1 == t2
            assert j1.job_id == j2.job_id
            assert j1.duration == j2.duration
            assert j1.gpu_demand == j2.gpu_demand

    def test_burst_stream_emits_batches(self):
        stream = EvalBurstStream(EvalBurstConfig(
            name="e", seed=3, bursts_per_hour=6.0, batch_size=5))
        arrivals = stream.emit_next()
        assert len(arrivals) == 5
        anchor = min(time for time, _ in arrivals)
        assert all(anchor <= time <= anchor + 2.0
                   for time, _ in arrivals)
        assert all(job.job_type is JobType.EVALUATION
                   for _, job in arrivals)

    def test_oversized_stream_demand_rejected(self):
        service = ClusterService(BUNDLED_SCENARIOS["smoke"])
        total = service.scheduler.config.total_gpus
        with pytest.raises(ValueError):
            service.attach_stream(PoissonJobStream(PoissonStreamConfig(
                name="huge", gpu_choices=(total + 1,))))

    def test_empty_emission_rechains_instead_of_crashing(self):
        service = ClusterService(BUNDLED_SCENARIOS["smoke"])
        stream = _SkippingStream()
        service.attach_stream(stream)
        service.advance(600.0)
        # the empty first emission advanced the anchor; the service
        # re-chained from it and later emissions flowed normally
        assert stream.calls >= 3
        assert service.jobs_submitted >= 2

    def test_max_gpu_demand_protocol_sizes_the_check(self):
        # the admission check reads the stream's protocol method, not
        # its config shape: EvalBurstConfig has no gpu_choices at all
        service = ClusterService(BUNDLED_SCENARIOS["smoke"])
        total = service.scheduler.config.total_gpus
        assert EvalBurstStream(EvalBurstConfig(
            name="e", gpu_demand=total)).max_gpu_demand() == total
        with pytest.raises(ValueError):
            service.attach_stream(EvalBurstStream(EvalBurstConfig(
                name="e2", gpu_demand=total + 1)))

    def test_scenario_round_trips_through_snapshot_dict(self):
        scenario = BUNDLED_SCENARIOS[STORM]
        assert scenario_from_dict(
            scenario_to_dict(scenario)) == scenario
