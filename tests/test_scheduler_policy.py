"""Tests for queue and scheduling policies."""

import pytest

from repro.scheduler.job import Job, JobType
from repro.scheduler.policy import (FifoPolicy, PriorityPolicy,
                                    ReservationPolicy)
from repro.scheduler.queue import JobQueue


def job(job_id, job_type=JobType.EVALUATION, demand=1, submit=0.0):
    return Job(job_id=job_id, cluster="seren", job_type=job_type,
               submit_time=submit, duration=60.0, gpu_demand=demand)


class TestQueue:
    def test_fifo_order(self):
        queue = JobQueue()
        for i in range(3):
            queue.push(job(f"j{i}"))
        assert [j.job_id for j in queue.pending()] == ["j0", "j1", "j2"]

    def test_duplicate_push_rejected(self):
        queue = JobQueue()
        j = job("a")
        queue.push(j)
        with pytest.raises(ValueError):
            queue.push(j)

    def test_remove(self):
        queue = JobQueue()
        a, b = job("a"), job("b")
        queue.push(a)
        queue.push(b)
        queue.remove(a)
        assert a not in queue
        assert len(queue) == 1
        assert queue.oldest() is b

    def test_remove_matches_by_job_id_not_instance(self):
        """Regression: ``in`` matched by job_id but ``remove`` compared
        instances, so removing an equal-id clone corrupted ``_ids``."""
        queue = JobQueue()
        queue.push(job("a"))
        twin = job("a")                     # distinct instance, same id
        assert twin in queue
        queue.remove(twin)
        assert twin not in queue
        assert len(queue) == 0
        queue.push(job("a"))                # id bookkeeping stayed sane
        assert len(queue) == 1

    def test_remove_unknown_job_raises(self):
        queue = JobQueue()
        queue.push(job("a"))
        with pytest.raises(ValueError):
            queue.remove(job("ghost"))
        assert len(queue) == 1

    def test_by_type_filter(self):
        queue = JobQueue()
        queue.push(job("a", JobType.PRETRAIN))
        queue.push(job("b", JobType.EVALUATION))
        assert [j.job_id for j in queue.by_type(JobType.PRETRAIN)] == ["a"]

    def test_oldest_on_empty(self):
        assert JobQueue().oldest() is None


class TestFifoPolicy:
    def test_preserves_arrival_order(self):
        queue = JobQueue()
        queue.push(job("a", JobType.EVALUATION))
        queue.push(job("b", JobType.PRETRAIN))
        candidates = FifoPolicy().candidates(queue)
        assert [c.job.job_id for c in candidates] == ["a", "b"]
        assert all(c.pool == "shared" for c in candidates)


class TestPriorityPolicy:
    def test_pretrain_outranks_evaluation(self):
        queue = JobQueue()
        queue.push(job("eval", JobType.EVALUATION))
        queue.push(job("pre", JobType.PRETRAIN))
        candidates = PriorityPolicy().candidates(queue)
        assert candidates[0].job.job_id == "pre"

    def test_fifo_within_priority_class(self):
        queue = JobQueue()
        queue.push(job("e1", JobType.EVALUATION))
        queue.push(job("e2", JobType.EVALUATION))
        candidates = PriorityPolicy().candidates(queue)
        assert [c.job.job_id for c in candidates] == ["e1", "e2"]


class TestReservationPolicy:
    def test_training_types_use_reserved_pool(self):
        queue = JobQueue()
        queue.push(job("pre", JobType.PRETRAIN))
        queue.push(job("sft", JobType.SFT))
        queue.push(job("eval", JobType.EVALUATION))
        pools = {c.job.job_id: c.pool
                 for c in ReservationPolicy().candidates(queue)}
        assert pools["pre"] == "reserved"
        assert pools["sft"] == "reserved"
        assert pools["eval"] == "shared"

    def test_evaluation_is_lowest_priority(self):
        queue = JobQueue()
        queue.push(job("eval", JobType.EVALUATION))
        queue.push(job("debug", JobType.DEBUG))
        queue.push(job("pre", JobType.PRETRAIN))
        order = [c.job.job_id
                 for c in ReservationPolicy().candidates(queue)]
        assert order == ["pre", "debug", "eval"]
