"""Tests for queue and scheduling policies."""

import pytest

from repro.scheduler.job import Job, JobType
from repro.scheduler.policy import (FifoPolicy, PriorityPolicy,
                                    ReservationPolicy)
from repro.scheduler.queue import JobQueue


def job(job_id, job_type=JobType.EVALUATION, demand=1, submit=0.0):
    return Job(job_id=job_id, cluster="seren", job_type=job_type,
               submit_time=submit, duration=60.0, gpu_demand=demand)


class TestQueue:
    def test_fifo_order(self):
        queue = JobQueue()
        for i in range(3):
            queue.push(job(f"j{i}"))
        assert [j.job_id for j in queue.pending()] == ["j0", "j1", "j2"]

    def test_duplicate_push_rejected(self):
        queue = JobQueue()
        j = job("a")
        queue.push(j)
        with pytest.raises(ValueError):
            queue.push(j)

    def test_remove(self):
        queue = JobQueue()
        a, b = job("a"), job("b")
        queue.push(a)
        queue.push(b)
        queue.remove(a)
        assert a not in queue
        assert len(queue) == 1
        assert queue.oldest() is b

    def test_remove_matches_by_job_id_not_instance(self):
        """Regression: ``in`` matched by job_id but ``remove`` compared
        instances, so removing an equal-id clone corrupted ``_ids``."""
        queue = JobQueue()
        queue.push(job("a"))
        twin = job("a")                     # distinct instance, same id
        assert twin in queue
        queue.remove(twin)
        assert twin not in queue
        assert len(queue) == 0
        queue.push(job("a"))                # id bookkeeping stayed sane
        assert len(queue) == 1

    def test_remove_unknown_job_raises(self):
        queue = JobQueue()
        queue.push(job("a"))
        with pytest.raises(ValueError):
            queue.remove(job("ghost"))
        assert len(queue) == 1

    def test_by_type_filter(self):
        queue = JobQueue()
        queue.push(job("a", JobType.PRETRAIN))
        queue.push(job("b", JobType.EVALUATION))
        assert [j.job_id for j in queue.by_type(JobType.PRETRAIN)] == ["a"]

    def test_oldest_on_empty(self):
        assert JobQueue().oldest() is None


class TestFifoPolicy:
    def test_preserves_arrival_order(self):
        queue = JobQueue()
        queue.push(job("a", JobType.EVALUATION))
        queue.push(job("b", JobType.PRETRAIN))
        candidates = FifoPolicy().candidates(queue)
        assert [c.job.job_id for c in candidates] == ["a", "b"]
        assert all(c.pool == "shared" for c in candidates)


class TestPriorityPolicy:
    def test_pretrain_outranks_evaluation(self):
        queue = JobQueue()
        queue.push(job("eval", JobType.EVALUATION))
        queue.push(job("pre", JobType.PRETRAIN))
        candidates = PriorityPolicy().candidates(queue)
        assert candidates[0].job.job_id == "pre"

    def test_fifo_within_priority_class(self):
        queue = JobQueue()
        queue.push(job("e1", JobType.EVALUATION))
        queue.push(job("e2", JobType.EVALUATION))
        candidates = PriorityPolicy().candidates(queue)
        assert [c.job.job_id for c in candidates] == ["e1", "e2"]


class TestReservationPolicy:
    def test_training_types_use_reserved_pool(self):
        queue = JobQueue()
        queue.push(job("pre", JobType.PRETRAIN))
        queue.push(job("sft", JobType.SFT))
        queue.push(job("eval", JobType.EVALUATION))
        pools = {c.job.job_id: c.pool
                 for c in ReservationPolicy().candidates(queue)}
        assert pools["pre"] == "reserved"
        assert pools["sft"] == "reserved"
        assert pools["eval"] == "shared"

    def test_evaluation_is_lowest_priority(self):
        queue = JobQueue()
        queue.push(job("eval", JobType.EVALUATION))
        queue.push(job("debug", JobType.DEBUG))
        queue.push(job("pre", JobType.PRETRAIN))
        order = [c.job.job_id
                 for c in ReservationPolicy().candidates(queue)]
        assert order == ["pre", "debug", "eval"]


class TestPriorityIndexFastPath:
    """The bucket index must reproduce the reference stable sort."""

    def _random_queue(self, seed, n):
        import random

        rng = random.Random(seed)
        queue = JobQueue()
        types = list(JobType)
        for index in range(n):
            queue.push(job(f"j{index}", job_type=rng.choice(types)))
        # churn: remove a third, re-add some under new ids
        for index in rng.sample(range(n), n // 3):
            target = next(j for j in queue
                          if j.job_id == f"j{index}")
            queue.remove(target)
        for index in range(n, n + n // 4):
            queue.push(job(f"j{index}", job_type=rng.choice(types)))
        return queue

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("policy_class",
                             [PriorityPolicy, ReservationPolicy])
    def test_bucket_head_equals_stable_sort(self, policy_class, seed):
        from repro.sim.fastpath import use_fast_path

        policy = policy_class()
        for limit in (1, 3, 10, 1000):
            queue = self._random_queue(seed, 60)
            with use_fast_path(True):
                fast = policy.candidates(queue, limit=limit)
            with use_fast_path(False):
                reference = policy.candidates(queue, limit=limit)
            assert [(c.job.job_id, c.pool) for c in fast] == \
                [(c.job.job_id, c.pool) for c in reference]

    def test_unlimited_candidates_match_full_sort(self):
        from repro.sim.fastpath import use_fast_path

        policy = PriorityPolicy()
        queue = self._random_queue(7, 40)
        with use_fast_path(True):
            fast = policy.candidates(queue)  # limit=None: full order
        with use_fast_path(False):
            reference = policy.candidates(queue)
        assert [c.job.job_id for c in fast] == \
            [c.job.job_id for c in reference]

    def test_index_rebuilds_on_policy_switch(self):
        queue = JobQueue()
        queue.push(job("a", job_type=JobType.EVALUATION))
        queue.push(job("b", job_type=JobType.PRETRAIN))
        first = PriorityPolicy()
        queue.ensure_priority_index(first.priority_of)
        assert [j.job_id for j in queue.head_by_priority(2)] == \
            ["b", "a"]
        inverted = PriorityPolicy(priorities={
            JobType.EVALUATION: 0, JobType.PRETRAIN: 9})
        queue.ensure_priority_index(inverted.priority_of)
        assert [j.job_id for j in queue.head_by_priority(2)] == \
            ["a", "b"]

    def test_index_requires_build(self):
        with pytest.raises(RuntimeError, match="priority index"):
            JobQueue().head_by_priority(1)

    def test_same_bound_method_does_not_rebuild(self):
        queue = JobQueue()
        policy = PriorityPolicy()
        queue.ensure_priority_index(policy.priority_of)
        buckets = queue._buckets
        queue.ensure_priority_index(policy.priority_of)
        assert queue._buckets is buckets  # idempotent, no rebuild
