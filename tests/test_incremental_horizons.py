"""Incremental-horizon equivalence for the chaos harness.

The streaming service (``repro.service``) drives one long-lived engine
in many small ``advance(until=...)`` horizons.  That only works if
partitioning a run into horizons is *invisible*: the engine's ``until``
stop never consumes a sequence number or perturbs the heap, so any
sequence of cumulative ``advance`` calls must be event-for-event
byte-identical to one batch run to the same final horizon — for every
bundled scenario, under both the fast and reference paths.
"""

import pytest

from repro.chaos import BUNDLED_SCENARIOS
from repro.chaos.harness import ChaosHarness
from repro.sim.fastpath import use_fast_path

SCENARIOS = sorted(BUNDLED_SCENARIOS)
FAST_PATH = [True, False]


def batch_run(name, fast):
    with use_fast_path(fast):
        return ChaosHarness(BUNDLED_SCENARIOS[name]).run()


def incremental_run(name, fast, parts):
    with use_fast_path(fast):
        harness = ChaosHarness(BUNDLED_SCENARIOS[name])
        duration = harness.scenario.duration
        harness.start()
        for part in range(1, parts + 1):
            # exact final horizon; interior cuts at awkward fractions
            until = (duration if part == parts
                     else duration * part / parts)
            harness.advance(until)
        return harness.finish()


@pytest.mark.parametrize("fast", FAST_PATH, ids=["fast", "reference"])
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_incremental_horizons_equal_batch_run(scenario, fast):
    batch = batch_run(scenario, fast)
    split = incremental_run(scenario, fast, parts=7)
    assert split.event_log_text() == batch.event_log_text()
    assert split.summary.to_json() == batch.summary.to_json()


def test_lifecycle_misuse_raises():
    from repro.sim.engine import SimulationError
    harness = ChaosHarness(BUNDLED_SCENARIOS["smoke"])
    with pytest.raises(SimulationError):
        harness.advance(1.0)  # before start()
    with pytest.raises(SimulationError):
        harness.finish()      # before start()
    harness.start()
    with pytest.raises(SimulationError):
        harness.start()       # twice
    harness.advance(10.0)
    with pytest.raises(SimulationError):
        harness.advance(5.0)  # backwards
    harness.finish()
    with pytest.raises(SimulationError):
        harness.finish()      # twice
    with pytest.raises(SimulationError):
        harness.advance(20.0)  # after finish()
