"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.failures.logs import generate_job_log
from repro.workload.trace import Trace


class TestGenerateAndAnalyze:
    def test_generate_csv(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        code = main(["generate-trace", "--cluster", "kalos",
                     "--jobs", "300", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert len(Trace.from_csv(out)) == 300

    def test_generate_jsonl(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["generate-trace", "--jobs", "100",
                     "--out", str(out)]) == 0
        assert len(Trace.from_jsonl(out)) == 100

    def test_generate_with_cpu_jobs(self, tmp_path):
        out = tmp_path / "trace.csv"
        main(["generate-trace", "--cluster", "kalos", "--jobs", "100",
              "--cpu-jobs", "--out", str(out)])
        trace = Trace.from_csv(out)
        assert len(trace.cpu_jobs()) > 0

    def test_analyze_prints_mix(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate-trace", "--jobs", "400", "--out", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        output = capsys.readouterr().out
        assert "workload mix" in output
        assert "evaluation" in output
        assert "median duration" in output


class TestDiagnose:
    def test_diagnose_known_failure(self, tmp_path, capsys):
        log = tmp_path / "job.log"
        log.write_text(generate_job_log("NVLinkError", seed=2).text)
        assert main(["diagnose", str(log)]) == 0
        output = capsys.readouterr().out
        assert "NVLinkError" in output
        assert "infrastructure" in output

    def test_diagnose_script_error_not_recoverable(self, tmp_path,
                                                   capsys):
        log = tmp_path / "job.log"
        log.write_text(generate_job_log("TypeError", seed=3).text)
        main(["diagnose", str(log)])
        output = capsys.readouterr().out
        assert "script" in output
        assert "False" in output

    def test_diagnose_unintelligible_log_exits_nonzero(self, tmp_path):
        log = tmp_path / "noise.log"
        log.write_text("hello\nworld\n")
        assert main(["diagnose", str(log)]) == 1


class TestModelCommands:
    def test_checkpoint_cost(self, capsys):
        assert main(["checkpoint", "--model", "123b",
                     "--gpus", "2048"]) == 0
        output = capsys.readouterr().out
        assert "blocking reduction" in output

    def test_evalsched(self, capsys):
        assert main(["evalsched", "--nodes", "1"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrace:
    def test_trace_writes_chrome_json_and_summary(self, tmp_path,
                                                  capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "smoke", "--seed", "0",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        spans = [event for event in payload["traceEvents"]
                 if event["ph"] == "X"]
        assert spans
        output = capsys.readouterr().out
        assert "spans" in output
        assert "wrote Chrome-trace JSON" in output

    def test_trace_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["trace", "no-such-scenario"])


class TestValidateAndExport:
    def test_validate_passes_on_generated_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate-trace", "--cluster", "kalos", "--jobs", "1500",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["validate", str(out)]) == 0
        output = capsys.readouterr().out
        assert "PASS" in output

    def test_validate_fails_on_corrupted_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        main(["generate-trace", "--jobs", "500", "--out", str(out)])
        trace = Trace.from_csv(out)
        for job in trace.gpu_jobs():
            job.gpu_utilization = 0.1
        trace.to_csv(out)
        assert main(["validate", str(out)]) == 1

    def test_export_figures(self, tmp_path, capsys):
        outdir = tmp_path / "figs"
        assert main(["export-figures", "--outdir", str(outdir),
                     "--jobs", "1200"]) == 0
        svgs = list(outdir.glob("*.svg"))
        assert len(svgs) >= 10
