"""Tests for thermal-failure coupling (§5.2) and the dataloader leak
(Appendix B)."""

import numpy as np
import pytest

from repro.failures.thermal import (PAPER_SCENARIOS, ThermalHazardModel,
                                    THERMALLY_SENSITIVE,
                                    scenario_failure_rates)
from repro.training.dataloader import (DataloaderConfig, DataloaderModel,
                                       paper_leak_example)

GIB = 1024 ** 3


class TestThermalHazard:
    def test_reference_temperature_is_neutral(self):
        model = ThermalHazardModel()
        assert model.acceleration(model.reference_celsius) == \
            pytest.approx(1.0)

    def test_ten_degrees_roughly_doubles(self):
        model = ThermalHazardModel()
        ratio = (model.acceleration(65.0) / model.acceleration(55.0))
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_fleet_acceleration_monotone_in_temperature(self):
        model = ThermalHazardModel()
        cool = model.fleet_acceleration(np.full(100, 50.0))
        hot = model.fleet_acceleration(np.full(100, 70.0))
        assert hot > cool

    def test_effective_mtbf_shrinks_when_hot(self):
        model = ThermalHazardModel()
        mtbf = model.effective_mtbf(400.0, np.full(100, 70.0))
        assert mtbf < 400.0

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            ThermalHazardModel().fleet_acceleration(np.array([]))

    def test_sensitive_reasons_are_the_papers(self):
        assert set(THERMALLY_SENSITIVE) == {"NVLinkError", "ECCError"}


class TestScenarios:
    def test_july_heat_event_doubles_failures(self):
        """§5.2: the July 2023 regime concentrates NVLink/ECC errors."""
        rows = {row["scenario"]: row for row in scenario_failure_rates()}
        normal = rows["normal"]
        july = rows["july-2023-heat"]
        assert july["hazard_multiplier"] > 1.5 * normal[
            "hazard_multiplier"]
        assert july["effective_mtbf_hours"] < normal[
            "effective_mtbf_hours"]

    def test_cooling_upgrade_restores_baseline(self):
        """§5.2: the cooling upgrade significantly reduced failures,
        even with the hot workload still running."""
        rows = {row["scenario"]: row for row in scenario_failure_rates()}
        assert rows["after-cooling-upgrade"]["hazard_multiplier"] < \
            0.7 * rows["july-2023-heat"]["hazard_multiplier"]

    def test_july_fleet_runs_above_65c(self):
        rows = {row["scenario"]: row for row in scenario_failure_rates()}
        assert rows["july-2023-heat"]["over_65c_fraction"] > 0.3
        assert rows["normal"]["over_65c_fraction"] < 0.1

    def test_three_paper_scenarios(self):
        assert [s.name for s in PAPER_SCENARIOS] == [
            "normal", "july-2023-heat", "after-cooling-upgrade"]


class TestDataloaderLeak:
    def test_paper_example_dies_near_27_hours(self):
        """Appendix B: the error occurs ~27 hours into the run."""
        result = paper_leak_example()
        assert result["leaky_hours_until_killed"] == pytest.approx(
            27.0, abs=3.0)

    def test_fix_runs_forever(self):
        result = paper_leak_example()
        assert result["fixed_hours_until_killed"] == float("inf")

    def test_footprint_grows_with_workers(self):
        few = DataloaderModel(DataloaderConfig(num_workers=1))
        many = DataloaderModel(DataloaderConfig(num_workers=8))
        assert many.footprint_bytes(10.0) > few.footprint_bytes(10.0)

    def test_zero_workers_footprint_is_flat(self):
        model = DataloaderModel(DataloaderConfig(num_workers=0))
        assert model.footprint_bytes(0.0) == model.footprint_bytes(100.0)

    def test_megatron_style_metadata_costs_memory_up_front(self):
        """Appendix A.2: full-metadata loading vs on-the-fly."""
        on_the_fly = DataloaderModel(DataloaderConfig(
            num_workers=0, on_the_fly=True))
        full = DataloaderModel(DataloaderConfig(
            num_workers=0, on_the_fly=False))
        assert (full.footprint_bytes(0.0)
                > on_the_fly.footprint_bytes(0.0) + 10 * GIB)

    def test_leak_saturates_before_oom_on_big_budget(self):
        model = DataloaderModel(DataloaderConfig(num_workers=2),
                                host_memory_bytes=2048 * GIB)
        assert model.hours_until_killed() == float("inf")

    def test_tiny_budget_dies_immediately(self):
        model = DataloaderModel(DataloaderConfig(num_workers=4),
                                host_memory_bytes=124 * GIB)
        assert model.hours_until_killed() < 2.0

    def test_fixed_configuration_detector(self):
        good = DataloaderModel(DataloaderConfig(num_workers=0,
                                                on_the_fly=True))
        bad = DataloaderModel(DataloaderConfig(num_workers=4))
        assert good.is_fixed_configuration()
        assert not bad.is_fixed_configuration()

    def test_negative_hours_rejected(self):
        with pytest.raises(ValueError):
            DataloaderModel(DataloaderConfig()).footprint_bytes(-1.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DataloaderConfig(num_workers=-1)
