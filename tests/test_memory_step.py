"""Tests for the memory and step-time models (Figs. 10-12)."""

import pytest

from repro.training.memory import MemoryModel
from repro.training.model import MODEL_123B, MODEL_7B
from repro.training.parallelism import internevo_v1, internevo_v2
from repro.training.step import StepTimeModel

GIB = 1024 ** 3


class TestMemoryModel:
    def test_both_strategies_fit_in_80gb(self):
        for plan in (internevo_v1(2048), internevo_v2(2048)):
            assert MemoryModel(MODEL_123B, plan).fits()

    def test_v1_activations_substantially_higher_than_v2(self):
        # Fig. 11's headline observation.
        v1 = MemoryModel(MODEL_123B, internevo_v1(2048))
        v2 = MemoryModel(MODEL_123B, internevo_v2(2048))
        assert (v1.peak_activation_bytes(0)
                > 1.5 * v2.peak_activation_bytes(0))

    def test_hierarchical_zero_static_is_16psi_over_group(self):
        plan = internevo_v2(2048, shard_group=64)
        model = MemoryModel(MODEL_123B, plan)
        assert model.static_bytes() == pytest.approx(
            16 * MODEL_123B.param_count / 64)

    def test_fig12_rank_memory_decreases(self):
        model = MemoryModel(MODEL_123B, internevo_v1(2048))
        peaks = model.per_rank_peaks()
        assert peaks == sorted(peaks, reverse=True)
        assert peaks[0] > peaks[-1]

    def test_rank_imbalance_matches_in_flight_ratio(self):
        model = MemoryModel(MODEL_123B, internevo_v1(2048))
        act0 = model.peak_activation_bytes(0)
        act3 = model.peak_activation_bytes(3)
        assert act0 / act3 == pytest.approx(4.0)

    def test_snapshot_timeline_sawtooth(self):
        model = MemoryModel(MODEL_123B, internevo_v1(2048))
        times, static, acts = model.timeline_arrays(steps=2,
                                                    points_per_step=100)
        assert (static == static[0]).all()       # static part flat
        assert acts.max() == pytest.approx(
            model.peak_activation_bytes(0))
        assert acts.min() < 0.2 * acts.max()      # drains between steps

    def test_larger_shard_group_uses_less_static_memory(self):
        small = MemoryModel(MODEL_123B, internevo_v2(2048, shard_group=32))
        large = MemoryModel(MODEL_123B,
                            internevo_v2(2048, shard_group=128))
        assert large.static_bytes() < small.static_bytes()


class TestStepTimeModel:
    def test_v2_approximately_16pct_faster(self):
        """The Fig. 10 headline: hierarchical ZeRO ~16% faster."""
        v1 = StepTimeModel(MODEL_123B, internevo_v1(2048))
        v2 = StepTimeModel(MODEL_123B, internevo_v2(2048))
        tokens = internevo_v1(2048).global_batch_size * MODEL_123B.seq_len
        per_token_v1 = v1.step_time() / tokens
        per_token_v2 = v2.step_time() / tokens
        speedup = per_token_v1 / per_token_v2
        assert 1.05 < speedup < 1.35

    def test_v1_has_bubbles_and_tp_comm(self):
        breakdown = StepTimeModel(MODEL_123B, internevo_v1(2048)
                                  ).breakdown()
        assert breakdown.pipeline_bubble > 0
        assert breakdown.tensor_parallel_comm > 0

    def test_v2_has_neither(self):
        breakdown = StepTimeModel(MODEL_123B, internevo_v2(2048)
                                  ).breakdown()
        assert breakdown.pipeline_bubble == 0
        assert breakdown.tensor_parallel_comm == 0

    def test_v2_busy_fraction_higher(self):
        v1 = StepTimeModel(MODEL_123B, internevo_v1(2048)).breakdown()
        v2 = StepTimeModel(MODEL_123B, internevo_v2(2048)).breakdown()
        assert v2.busy_fraction > v1.busy_fraction

    def test_same_pattern_at_1024_gpus(self):
        """Appendix A.4: the comparison generalizes across scales."""
        v1 = StepTimeModel(MODEL_123B, internevo_v1(1024))
        v2 = StepTimeModel(MODEL_123B, internevo_v2(1024))
        tokens = internevo_v1(1024).global_batch_size * MODEL_123B.seq_len
        assert (v1.step_time() / tokens) > (v2.step_time() / tokens)

    def test_mfu_within_physical_bounds(self):
        for plan in (internevo_v1(2048), internevo_v2(2048)):
            mfu = StepTimeModel(MODEL_123B, plan).model_flops_utilization()
            assert 0.1 < mfu < 0.7

    def test_breakdown_total_is_sum(self):
        breakdown = StepTimeModel(MODEL_123B, internevo_v1(2048)
                                  ).breakdown()
        assert breakdown.total == pytest.approx(
            sum(breakdown.as_dict().values()))

    def test_small_model_much_faster(self):
        big = StepTimeModel(MODEL_123B, internevo_v2(2048)).step_time()
        small = StepTimeModel(MODEL_7B, internevo_v2(2048)).step_time()
        assert small < big / 5

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            StepTimeModel(MODEL_7B, internevo_v2(64),
                          compute_efficiency=1.5)

    def test_overlap_bounds_enforced(self):
        with pytest.raises(ValueError):
            StepTimeModel(MODEL_7B, internevo_v2(64), overlap=-0.1)


class TestFabricIntegration:
    def test_fabric_overrides_tier_constants(self):
        from repro.cluster.fattree import FatTree, FatTreeConfig

        fabric = FatTree(FatTreeConfig(nodes=256,
                                       leaf_oversubscription=1.0,
                                       pod_oversubscription=1.0))
        plan = internevo_v2(2048, shard_group=2048)
        derated = StepTimeModel(MODEL_123B, plan)
        nonblocking = StepTimeModel(MODEL_123B, plan, fabric=fabric)
        # A non-blocking fabric removes the cross-pod penalty the tier
        # constants would apply to global ZeRO.
        assert nonblocking.step_time() < derated.step_time()

    def test_fabric_agrees_within_one_leaf(self):
        from repro.cluster.fattree import FatTree, FatTreeConfig

        fabric = FatTree(FatTreeConfig(nodes=256))
        plan = internevo_v2(2048, shard_group=64)  # 8 nodes = one leaf
        plain = StepTimeModel(MODEL_123B, plan)
        with_fabric = StepTimeModel(MODEL_123B, plan, fabric=fabric)
        assert with_fabric.step_time() == pytest.approx(
            plain.step_time())
