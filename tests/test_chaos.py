"""Tests for the live fault-injection (chaos) harness."""

import json

import pytest

from repro.analysis.tables import chaos_recovery_table
from repro.chaos import (BUNDLED_SCENARIOS, ChaosHarness, ChaosScenario,
                         GPUS_PER_NODE, InvariantChecker,
                         InvariantViolation, PRETRAIN_JOB_ID,
                         run_scenario)
from repro.cli import main
from repro.cluster.machine import Node, NodeHealth, seren_node_spec
from repro.core.recovery.controller import HotSparePool, RecoveryPlan
from repro.failures.taxonomy import FailureCategory
from repro.scheduler.job import Job, JobType
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator
from repro.sim.engine import Engine
from repro.training.pretrain import PretrainProcess


@pytest.fixture(scope="module")
def smoke_result():
    return run_scenario(BUNDLED_SCENARIOS["smoke"])


class TestScenario:
    def test_build_faults_is_deterministic(self):
        scenario = BUNDLED_SCENARIOS["mixed"]
        assert scenario.build_faults() == scenario.build_faults()

    def test_background_jobs_are_deterministic(self):
        scenario = BUNDLED_SCENARIOS["mixed"]
        first = scenario.build_background_jobs()
        second = scenario.build_background_jobs()
        assert [(j.job_id, j.submit_time, j.gpu_demand) for j in first] \
            == [(j.job_id, j.submit_time, j.gpu_demand) for j in second]

    def test_fault_times_sorted_and_inside_horizon(self):
        for scenario in BUNDLED_SCENARIOS.values():
            times = [f.time for f in scenario.build_faults()]
            assert times == sorted(times)
            assert all(0.0 < t < scenario.duration for t in times)

    def test_script_faults_never_target_the_gang(self):
        for seed in range(6):
            scenario = BUNDLED_SCENARIOS["mixed"].with_seed(seed)
            for fault in scenario.build_faults():
                if fault.category is FailureCategory.SCRIPT:
                    assert fault.target == "scheduler"

    def test_category_filter_restricts_taxonomy(self):
        for fault in BUNDLED_SCENARIOS["infra-storm"].build_faults():
            if fault.kind == "failure":
                assert fault.category is FailureCategory.INFRASTRUCTURE

    def test_pin_node_pins_every_fault(self):
        faults = BUNDLED_SCENARIOS["flaky-node"].build_faults()
        assert faults
        assert all(f.node_index == 1 for f in faults)

    def test_with_seed_changes_the_schedule(self):
        scenario = BUNDLED_SCENARIOS["mixed"]
        assert scenario.build_faults() \
            != scenario.with_seed(99).build_faults()

    def test_gpu_counts_must_be_node_multiples(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="bad", pretrain_gpus=30)

    def test_fleet_must_leave_a_spare(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="bad", n_nodes=12, pretrain_gpus=32,
                          scheduler_gpus=64)


class TestStreamRegistry:
    def test_stream_seed_matches_registered_offset(self):
        from repro.chaos.streams import STREAM_OFFSETS, stream_seed
        for subsystem, offset in STREAM_OFFSETS.items():
            assert stream_seed(1234, subsystem) == 1234 + offset

    def test_stream_rng_is_byte_identical_to_manual_derivation(self):
        import numpy as np
        from repro.chaos.streams import STREAM_OFFSETS, stream_rng
        for subsystem, offset in STREAM_OFFSETS.items():
            registered = stream_rng(7, subsystem)
            manual = np.random.default_rng(7 + offset)
            assert registered.random(8).tolist() \
                == manual.random(8).tolist()

    def test_offsets_are_collision_free(self):
        from repro.chaos.streams import STREAM_OFFSETS
        offsets = list(STREAM_OFFSETS.values())
        assert len(offsets) == len(set(offsets))

    def test_unregistered_subsystem_is_an_error(self):
        from repro.chaos.streams import stream_seed
        with pytest.raises(KeyError, match="STREAM_OFFSETS"):
            stream_seed(7, "cosmic_rays")


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(BUNDLED_SCENARIOS))
    def test_seeded_run_is_byte_identical(self, name):
        """Same scenario, two fresh harnesses: identical log + summary."""
        scenario = BUNDLED_SCENARIOS[name]
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.event_log_text() == second.event_log_text()
        assert first.summary.to_json() == second.summary.to_json()
        assert first.checker.checks_run > 0

    def test_different_seeds_diverge(self):
        scenario = BUNDLED_SCENARIOS["smoke"]
        first = run_scenario(scenario)
        second = run_scenario(scenario.with_seed(17))
        assert first.event_log_text() != second.event_log_text()


class _LeakyScheduler(SchedulerSimulator):
    """Deliberately broken: finishing a job conjures a phantom GPU."""

    def _on_finish(self, job):
        super()._on_finish(job)
        self.free_shared += 1


class TestInvariants:
    def make_checker(self, total_gpus=8):
        scheduler = SchedulerSimulator(
            SchedulerConfig(total_gpus=total_gpus, reserved_fraction=0.5))
        nodes = {f"n{i}": Node(name=f"n{i}", spec=seren_node_spec())
                 for i in range(2)}
        placements = {"n0": PRETRAIN_JOB_ID}
        return InvariantChecker(scheduler=scheduler, nodes=nodes,
                                placements=placements), nodes

    def test_clean_state_passes(self):
        checker, _ = self.make_checker()
        checker.check(0.0)
        assert checker.checks_run == 1

    def test_negative_counter_detected(self):
        checker, _ = self.make_checker()
        checker.scheduler.free_shared = -1
        with pytest.raises(InvariantViolation):
            checker.check(1.0)

    def test_phantom_capacity_detected(self):
        checker, _ = self.make_checker()
        checker.scheduler.free_shared += 1
        with pytest.raises(InvariantViolation):
            checker.check(1.0)

    def test_cordoned_node_hosting_gang_detected(self):
        checker, nodes = self.make_checker()
        nodes["n0"].cordon()
        with pytest.raises(InvariantViolation):
            checker.check(2.0)

    def test_forward_rollback_detected(self):
        checker, _ = self.make_checker()
        checker.record_restart(5.0, step_at_failure=100, restored_step=90)
        checker.check(5.0)  # backward rollback is fine
        checker.record_restart(6.0, step_at_failure=100, restored_step=110)
        with pytest.raises(InvariantViolation):
            checker.check(6.0)

    def test_final_check_requires_a_plan(self):
        checker, _ = self.make_checker()
        checker.record_infra_plan(0, None)
        with pytest.raises(InvariantViolation):
            checker.final_check()

    def test_final_check_requires_restart_or_cordon(self):
        checker, _ = self.make_checker()
        checker.record_infra_plan(0, RecoveryPlan(
            diagnosis=None, restart=False, restart_checkpoint_step=None))
        with pytest.raises(InvariantViolation):
            checker.final_check()

    def test_bundled_scenarios_satisfy_all_invariants(self, smoke_result):
        # run_scenario raises InvariantViolation on the first bad state,
        # so a returned result means every per-event check passed
        assert smoke_result.summary.invariant_checks > 0

    def test_broken_scheduler_trips_the_checker(self):
        harness = ChaosHarness(BUNDLED_SCENARIOS["smoke"])
        harness.scheduler.__class__ = _LeakyScheduler
        with pytest.raises(InvariantViolation):
            harness.run()


class TestHarness:
    def test_log_starts_and_ends_with_scenario_markers(self, smoke_result):
        assert smoke_result.event_log[0][1] == "scenario_start"
        assert smoke_result.event_log[-1][1] == "scenario_end"

    def test_every_fault_is_logged(self, smoke_result):
        injected = [entry for entry in smoke_result.event_log
                    if entry[1] == "fault_injected"]
        assert len(injected) == smoke_result.summary.faults_injected

    def test_log_timestamps_monotonic(self, smoke_result):
        times = [entry[0] for entry in smoke_result.event_log]
        assert times == sorted(times)

    def test_summary_headline_numbers(self, smoke_result):
        summary = smoke_result.summary
        assert summary.scenario == "smoke"
        assert summary.faults_injected == 4
        assert summary.mttf_hours > 0
        assert 0.0 <= summary.recovery_success_rate <= 1.0
        assert 0.0 < summary.pretrain_goodput <= 1.0
        assert summary.pretrain_iterations > 0

    def test_summary_render_and_json(self, smoke_result):
        text = smoke_result.summary.render()
        assert "recovery (compare §6.1.2)" in text
        parsed = json.loads(smoke_result.summary.to_json())
        assert parsed["scenario"] == "smoke"

    def test_flaky_node_escalates_to_faulty(self):
        harness = ChaosHarness(BUNDLED_SCENARIOS["flaky-node"])
        result = harness.run()
        assert result.summary.nodes_escalated >= 1
        kinds = {entry[1] for entry in result.event_log}
        assert "recovery_escalate" in kinds
        assert "node_repaired" in kinds
        faulty = [node for node in harness.nodes
                  if node.health is NodeHealth.FAULTY]
        assert faulty
        for node in faulty:
            with pytest.raises(RuntimeError):
                node.uncordon()

    def test_script_failures_are_not_resubmitted(self):
        # seeds until a script fault lands on a running job, then check
        # the harness refused to restart it
        for seed in range(30):
            scenario = BUNDLED_SCENARIOS["mixed"].with_seed(seed)
            if not any(f.category is FailureCategory.SCRIPT
                       for f in scenario.build_faults()):
                continue
            result = run_scenario(scenario)
            kinds = {entry[1] for entry in result.event_log}
            if "job_not_restarted" in kinds:
                return
        pytest.fail("no seed produced a script fault on a running job")

    def test_chaos_recovery_table_rows(self, smoke_result):
        rows = chaos_recovery_table([smoke_result.summary])
        assert len(rows) == 1
        assert rows[0]["scenario"] == "smoke"
        assert rows[0]["faults"] == 4


class TestPretrainProcess:
    def make_process(self, **overrides):
        engine = Engine()
        checkpoints = []
        kwargs = dict(engine=engine, name="job", step_time=10.0,
                      total_iterations=100, steps_per_checkpoint=5,
                      on_checkpoint=checkpoints.append)
        kwargs.update(overrides)
        return PretrainProcess(**kwargs), engine, checkpoints

    def test_steps_and_checkpoints_are_deterministic(self):
        process, engine, checkpoints = self.make_process()
        process.start()
        engine.run(until=100.0)
        assert process.iteration == 10
        assert checkpoints == [5, 10]

    def test_finishes_and_reports_done(self):
        done = []
        process, engine, _ = self.make_process(total_iterations=8,
                                               on_done=done.append)
        process.start()
        engine.run()
        assert done == [8]
        assert process.done_at == 80.0
        assert not process.running

    def test_interrupt_stops_stepping(self):
        process, engine, _ = self.make_process()
        process.start()
        engine.run(until=35.0)
        step = process.interrupt("NVLinkError")
        assert step == 3
        engine.run(until=100.0)
        assert process.iteration == 3  # no ticks after the interrupt

    def test_restart_accounts_lost_iterations(self):
        process, engine, _ = self.make_process()
        process.start()
        engine.run(until=73.0)
        step = process.interrupt("fault")
        assert step == 7
        process.restart_from(5, delay=20.0)
        assert process.lost_iterations == 2
        assert process.restarts == 1
        engine.run(until=113.0)  # resumes at t=93, steps at 103, 113
        assert process.iteration == 7

    def test_restart_cannot_move_forward(self):
        process, engine, _ = self.make_process()
        process.start()
        engine.run(until=30.0)
        process.interrupt("fault")
        with pytest.raises(ValueError):
            process.restart_from(5)
        with pytest.raises(ValueError):
            process.restart_from(-1)

    def test_lifecycle_guards(self):
        process, engine, _ = self.make_process()
        with pytest.raises(RuntimeError):
            process.interrupt("not running")
        process.start()
        with pytest.raises(RuntimeError):
            process.start()
        with pytest.raises(RuntimeError):
            process.restart_from(0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            self.make_process(step_time=0.0)
        with pytest.raises(ValueError):
            self.make_process(total_iterations=0)
        with pytest.raises(ValueError):
            self.make_process(steps_per_checkpoint=0)


class TestChaosCli:
    def test_smoke_scenario_runs(self, capsys):
        assert main(["chaos", "--scenario", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "chaos run" in out
        assert "recovery (compare §6.1.2)" in out

    def test_overrides_and_log(self, capsys):
        assert main(["chaos", "--scenario", "smoke", "--seed", "3",
                     "--faults", "2", "--log"]) == 0
        out = capsys.readouterr().out
        assert "scenario_start" in out
        assert "faults injected" in out

    def test_json_out_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--scenario", "smoke",
                     "--json-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["scenario"] == "smoke"
        assert payload["event_log"]

    def test_network_faults_flag_selects_scenario(self, capsys):
        assert main(["chaos", "--network-faults", "network-storm"]) == 0
        out = capsys.readouterr().out
        assert "network-storm" in out
        assert "network fabric" in out

    def test_network_faults_flag_overrides_count(self, capsys):
        assert main(["chaos", "--scenario", "smoke",
                     "--network-faults", "0"]) == 0
        out = capsys.readouterr().out
        assert "network faults: 0" in out

    def test_failure_domain_flags_override(self, capsys):
        assert main(["chaos", "--scenario", "smoke",
                     "--straggler-faults", "1", "--power-faults", "1",
                     "--hot-spares", "1"]) == 0
        out = capsys.readouterr().out
        assert "stragglers injected: 1" in out
        assert "power caps: 1" in out

    def test_negative_hot_spares_rejected(self, capsys):
        assert main(["chaos", "--scenario", "smoke",
                     "--hot-spares", "-1"]) == 2

    def test_network_faults_flag_rejects_garbage(self, capsys):
        assert main(["chaos", "--network-faults", "not-a-thing"]) == 2
        out = capsys.readouterr().out
        assert "--network-faults expects" in out


class TestFailureDomainInvariants:
    """Invariants 12-14: straggler accounting, spare-pool coherence,
    and partial-partition conviction discipline."""

    def make_checker(self):
        scheduler = SchedulerSimulator(
            SchedulerConfig(total_gpus=8, reserved_fraction=0.5))
        nodes = {f"n{i}": Node(name=f"n{i}", spec=seren_node_spec())
                 for i in range(2)}
        placements = {"n0": PRETRAIN_JOB_ID}
        return InvariantChecker(scheduler=scheduler, nodes=nodes,
                                placements=placements)

    # -- invariant 12: stragglers detected or flagged --

    def test_loud_straggler_detected_in_bound_passes(self):
        checker = self.make_checker()
        checker.horizon = 10_000.0
        checker.set_straggler_context(3_000.0)
        checker.record_straggler(0, 100.0, "straggler", "n0")
        checker.record_straggler_detected(0, 2_000.0)
        checker.final_check()

    def test_detection_past_bound_is_a_violation(self):
        checker = self.make_checker()
        checker.set_straggler_context(3_000.0)
        checker.record_straggler(0, 100.0, "straggler", "n0")
        with pytest.raises(InvariantViolation):
            checker.record_straggler_detected(0, 5_000.0)

    def test_undetected_loud_straggler_inside_horizon_is_a_violation(
            self):
        checker = self.make_checker()
        checker.horizon = 10_000.0
        checker.set_straggler_context(3_000.0)
        checker.record_straggler(0, 100.0, "straggler", "n0")
        with pytest.raises(InvariantViolation):
            checker.final_check()

    def test_silent_degrader_must_be_flagged_as_waste(self):
        checker = self.make_checker()
        checker.horizon = 10_000.0
        checker.set_straggler_context(3_000.0)
        checker.record_straggler(0, 100.0, "silent_degrader", "n1")
        with pytest.raises(InvariantViolation):
            checker.final_check()
        checker.record_silent_waste(0, 1.5)
        checker.final_check()

    def test_bound_landing_past_horizon_tolerates_no_detection(self):
        checker = self.make_checker()
        checker.horizon = 2_000.0  # bound does not fit
        checker.set_straggler_context(3_000.0)
        checker.record_straggler(0, 100.0, "straggler", "n0")
        checker.record_silent_waste(0, 0.2)
        checker.final_check()

    # -- invariant 13: spare-pool coherence --

    def test_clean_pool_passes_per_event_check(self):
        checker = self.make_checker()
        checker.set_spare_context(HotSparePool(["s0", "s1"]))
        checker.check(1.0)

    def test_spare_both_available_and_allocated_detected(self):
        checker = self.make_checker()
        pool = HotSparePool(["s0"])
        checker.set_spare_context(pool)
        pool.allocated["s0"] = "victim"  # corrupt: never removed
        with pytest.raises(InvariantViolation):
            checker.check(1.0)

    def test_reserved_spare_hosting_the_gang_detected(self):
        checker = self.make_checker()
        checker.set_spare_context(HotSparePool(["n0"]))  # n0 is placed
        with pytest.raises(InvariantViolation):
            checker.check(1.0)

    def test_swap_record_must_match_pool_allocation(self):
        checker = self.make_checker()
        pool = HotSparePool(["s0"])
        checker.set_spare_context(pool)
        with pytest.raises(InvariantViolation):
            checker.record_spare_swap(1.0, "victim", "s0")  # not acquired
        pool.acquire("victim")
        checker.record_spare_swap(2.0, "victim", "s0")

    def test_spare_covering_itself_detected(self):
        checker = self.make_checker()
        with pytest.raises(InvariantViolation):
            checker.record_spare_swap(1.0, "s0", "s0")

    # -- invariant 14: convictions need a degraded path --

    def test_conviction_with_degraded_path_passes(self):
        checker = self.make_checker()
        checker.record_node_conviction(1.0, "n0", 0.2)
        assert checker.node_conviction_records == [(1.0, "n0", 0.2)]

    def test_conviction_of_healthy_path_is_a_violation(self):
        checker = self.make_checker()
        with pytest.raises(InvariantViolation):
            checker.record_node_conviction(1.0, "n0", 1.0)

    def test_conviction_at_threshold_is_a_violation(self):
        checker = self.make_checker()
        with pytest.raises(InvariantViolation):
            checker.record_node_conviction(1.0, "n0",
                                           checker.network_min_factor)
