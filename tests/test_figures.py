"""End-to-end figure tests: each figure reproduces its paper-reported shape.

These are the headline assertions of the reproduction (see DESIGN.md §5);
they run on reduced sample sizes, so the tolerances are generous but the
*orderings* — who wins, what dominates — are asserted strictly.
"""

import numpy as np
import pytest

from repro.analysis import figures

N = 8000  # shared sample size for trace-driven figures


@pytest.fixture(scope="module", autouse=True)
def warm_caches():
    figures.acme_traces(N, 0)
    figures.baseline_traces(N, 0)


class TestFig2:
    def test_acme_median_duration_shortest(self):
        medians = figures.fig2(N)["median_duration_s"]
        for acme in ("seren", "kalos"):
            for other in ("philly", "helios", "pai"):
                assert medians[acme] < medians[other]

    def test_philly_longest(self):
        medians = figures.fig2(N)["median_duration_s"]
        assert medians["philly"] == max(medians.values())

    def test_utilization_polarized_in_acme(self):
        result = figures.fig2(N)
        assert result["median_utilization"]["kalos"] > 0.95
        assert result["median_utilization"]["pai"] < 0.15
        assert 0.3 < result["median_utilization"]["philly"] < 0.7


class TestFig3:
    def test_kalos_large_jobs_dominate_gpu_time(self):
        """Jobs >= 256 GPUs take > 96% of Kalos GPU time."""
        assert figures.fig3(N)["kalos_share_ge_256"] > 0.88

    def test_single_gpu_shares(self):
        shares = figures.fig3(N)["single_gpu_time_share"]
        assert shares["seren"] < 0.05   # paper: < 2%
        assert shares["kalos"] < 0.02
        assert shares["pai"] > 0.60     # paper: > 68%


class TestFig4:
    def test_kalos_mix(self):
        kalos = figures.fig4(N)["kalos"]
        assert kalos["count_share"]["evaluation"] > 0.9
        assert kalos["gpu_time_share"]["pretrain"] > 0.9
        assert kalos["gpu_time_share"]["evaluation"] < 0.02

    def test_seren_pretrain_share(self):
        seren = figures.fig4(N)["seren"]
        assert 0.55 < seren["gpu_time_share"]["pretrain"] < 0.85
        assert seren["count_share"]["pretrain"] < 0.02


class TestFig5:
    def test_demand_ordering(self):
        boxes = figures.fig5(N)["kalos"]
        assert boxes["pretrain"].median > 100
        assert boxes["evaluation"].median <= 4

    def test_debug_has_wide_range(self):
        boxes = figures.fig5(N)["seren"]
        assert boxes["debug"].whisker_high >= 4 * boxes["debug"].median


class TestFig6:
    def test_evaluation_longest_queueing_delay(self):
        """The paper's §3.2 headline inversion."""
        result = figures.fig6(n_jobs=3000)
        for cluster in ("seren", "kalos"):
            delays = result[cluster]["median_queueing_delay_s"]
            assert delays["evaluation"] == max(delays.values())
            assert delays["pretrain"] <= 1.0

    def test_pretrain_duration_longest(self):
        result = figures.fig6(n_jobs=3000)
        durations = result["kalos"]["duration_cdf"]
        median_of = {name: float(np.median(series[0]))
                     for name, series in durations.items()}
        assert median_of["pretrain"] == max(median_of.values())


class TestFig7:
    def test_sm_activity_median_near_40(self):
        result = figures.fig7(N, samples=2500)
        for cluster in ("seren", "kalos"):
            assert 0.28 < result[cluster]["median_sm_activity"] < 0.50

    def test_kalos_memory_pressure(self):
        result = figures.fig7(N, samples=2500)
        assert result["kalos"]["gpu_memory_over_75pct"] > 0.35

    def test_nic_idle_over_60pct(self):
        result = figures.fig7(N, samples=2500)
        assert result["seren"]["nic_idle_fraction"] > 0.55


class TestFig8And9:
    def test_power_distribution_anchors(self):
        result = figures.fig8(N, samples=2500)
        assert 0.2 < result["seren"]["idle_fraction"] < 0.4
        assert 0.05 < result["seren"]["over_tdp_fraction"] < 0.40
        assert result["seren_server"]["gpu_to_cpu_server_ratio"] > 3.0

    def test_gpus_take_two_thirds_of_server_power(self):
        shares = figures.fig9(N)["shares"]
        assert 0.55 < shares["gpu"] < 0.75
        assert shares["psu_loss"] == pytest.approx(0.096, abs=0.01)


class TestFig10To12:
    def test_v2_faster_with_higher_sm(self):
        result = figures.fig10()
        assert 1.05 < result["v2_speedup"] < 1.35
        assert (result["v2_hierarchical_zero"]["mean_sm"]
                > result["v1_3d"]["mean_sm"])

    def test_fig11_activation_gap(self):
        result = figures.fig11()
        assert result["v1_activations_higher"]

    def test_fig12_rank_imbalance(self):
        result = figures.fig12()
        peaks = result["per_rank_total_gib"]
        assert peaks == sorted(peaks, reverse=True)
        assert result["in_flight_microbatches"] == [4, 3, 2, 1]


class TestFig13:
    def test_stage_fractions(self):
        result = figures.fig13()
        assert result["load_preprocess_fraction"] == pytest.approx(
            0.295, abs=0.03)
        assert result["metric_fraction"] == pytest.approx(0.19, abs=0.02)
        assert 0.4 < result["gpu_busy_fraction"] < 0.6


class TestFig14:
    def test_123b_campaign_more_stable(self):
        result = figures.fig14()
        assert (result["123B"]["useful_fraction"]
                > result["104B"]["useful_fraction"])
        assert result["104B"]["lost_iterations"] > 0


class TestFig16:
    def test_loading_collapse(self):
        result = figures.fig16()
        assert result["speed_collapse_1_to_8"] == pytest.approx(8.0,
                                                                rel=0.05)

    def test_makespan_reductions(self):
        result = figures.fig16()["makespan"]
        assert 1.15 < result["1_node"]["speedup"] < 2.2
        assert result["4_node"]["speedup"] > result["1_node"]["speedup"]


class TestAppendix:
    def test_fig17_statuses(self):
        result = figures.fig17(N)
        for cluster in ("seren", "kalos"):
            counts = result[cluster]["count_share"]
            times = result[cluster]["gpu_time_share"]
            assert 0.30 < counts["failed"] < 0.50
            assert times["canceled"] > 0.5
            # Paper: 20-30%; a few giant canceled pretraining jobs make
            # this share noisy at test sample sizes.
            assert 0.04 < times["completed"] < 0.45

    def test_fig18_host_memory(self):
        result = figures.fig18()
        assert result["total_used_gb"] == pytest.approx(123.0, rel=0.02)
        assert result["checkpoint_buffers_7b"] >= 2

    def test_fig19_generalizes_fig10(self):
        result = figures.fig19()
        assert result["v2_speedup"] > 1.0

    def test_fig21_temperature(self):
        result = figures.fig21(N, samples=2000)
        assert result["memory_hotter"]
        assert result["over_65c_fraction"] > 0.0

    def test_fig22_moe_utilization_collapse(self):
        result = figures.fig22()
        assert result["moe_lower"]
        assert result["moe_mean_sm"] < 0.5

    def test_carbon_a3(self):
        result = figures.carbon_a3()
        assert result["emissions_tco2e"] == pytest.approx(321.7, abs=0.5)


class TestQueueingContrast:
    def test_prior_dl_clusters_large_jobs_wait_longer(self):
        """§3.2: previous reports — larger-scale jobs wait longer."""
        result = figures.queueing_contrast(2000)
        assert result["philly_large_jobs_wait_longer"]
        assert (result["philly_mean_delay_large_jobs_s"]
                > 2 * result["philly_mean_delay_small_jobs_s"])

    def test_acme_inverts_the_relationship(self):
        """§3.2: in Acme, the smallest jobs (evaluation) wait longest."""
        result = figures.queueing_contrast(2000)
        assert result["acme_smallest_jobs_wait_longest"]
        assert (result["acme_eval_median_delay_s"]
                > result["acme_pretrain_median_delay_s"])
