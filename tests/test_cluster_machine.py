"""Tests for node/GPU hardware models."""

import pytest

from repro.cluster.machine import (A100_SXM_80GB, Gpu, Node, NodeHealth,
                                   kalos_node_spec, seren_node_spec)


class TestSpecs:
    def test_a100_has_80gb(self):
        assert A100_SXM_80GB.memory_bytes == 80 * 1024 ** 3

    def test_a100_tdp_is_400w(self):
        assert A100_SXM_80GB.tdp_watts == 400.0

    def test_seren_node_matches_table1(self):
        spec = seren_node_spec()
        assert spec.cpus == 128
        assert spec.gpus_per_node == 8
        assert spec.host_memory_bytes == 1024 * 1024 ** 3
        assert spec.compute_nics == 1

    def test_kalos_node_matches_table1(self):
        spec = kalos_node_spec()
        assert spec.host_memory_bytes == 2048 * 1024 ** 3
        assert spec.compute_nics == 4

    def test_kalos_has_more_network_bandwidth(self):
        assert (kalos_node_spec().total_network_bandwidth
                > seren_node_spec().total_network_bandwidth)

    def test_seren_storage_nic_is_25gbps(self):
        # §6.2: the storage NIC bandwidth limitation is 25 Gb/s.
        assert seren_node_spec().storage_bandwidth == pytest.approx(
            25e9 / 8.0)


class TestGpu:
    def test_assign_and_free(self):
        gpu = Gpu(index=0, spec=A100_SXM_80GB)
        gpu.assign("job-1")
        assert gpu.busy
        gpu.free()
        assert not gpu.busy
        assert gpu.sm_activity == 0.0

    def test_double_assign_raises(self):
        gpu = Gpu(index=0, spec=A100_SXM_80GB)
        gpu.assign("job-1")
        with pytest.raises(RuntimeError):
            gpu.assign("job-2")

    def test_memory_fraction(self):
        gpu = Gpu(index=0, spec=A100_SXM_80GB)
        gpu.memory_used = A100_SXM_80GB.memory_bytes // 2
        assert gpu.memory_fraction() == pytest.approx(0.5)


class TestNode:
    def make_node(self):
        return Node(name="n0", spec=seren_node_spec())

    def test_node_creates_eight_gpus(self):
        assert self.make_node().gpu_count == 8

    def test_allocate_and_release(self):
        node = self.make_node()
        gpus = node.allocate_gpus(3, "job-a")
        assert len(gpus) == 3
        assert node.free_gpu_count == 5
        assert node.release_job("job-a") == 3
        assert node.free_gpu_count == 8

    def test_allocate_beyond_free_raises(self):
        node = self.make_node()
        node.allocate_gpus(8, "job-a")
        with pytest.raises(RuntimeError):
            node.allocate_gpus(1, "job-b")

    def test_release_unknown_job_is_noop(self):
        node = self.make_node()
        assert node.release_job("ghost") == 0

    def test_host_memory_accounting(self):
        node = self.make_node()
        node.allocate_host_memory(10 * 1024 ** 3)
        assert node.host_memory_free == (1024 - 10) * 1024 ** 3
        node.release_host_memory(10 * 1024 ** 3)
        assert node.host_memory_used == 0

    def test_host_memory_overflow_raises(self):
        node = self.make_node()
        with pytest.raises(RuntimeError):
            node.allocate_host_memory(2 * 1024 ** 4)

    def test_host_memory_over_release_raises(self):
        node = self.make_node()
        with pytest.raises(RuntimeError):
            node.release_host_memory(1)

    def test_cordon_makes_unschedulable(self):
        node = self.make_node()
        node.cordon()
        assert not node.schedulable
        assert node.health is NodeHealth.CORDONED
        node.uncordon()
        assert node.schedulable
