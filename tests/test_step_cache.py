"""StepTimeCache: memoized analytic step times stay exact."""

import pytest

from repro.obs import Tracer
from repro.training.model import MODEL_7B, MODEL_123B
from repro.training.parallelism import internevo_v1, internevo_v2
from repro.training.step import StepTimeModel
from repro.training.step_cache import DEFAULT_STEP_CACHE, StepTimeCache


class TestMemoization:
    def test_hit_returns_identical_breakdown(self):
        cache = StepTimeCache()
        plan = internevo_v1(2048)
        direct = StepTimeModel(MODEL_123B, plan).breakdown()
        first = cache.breakdown(MODEL_123B, plan)
        second = cache.breakdown(MODEL_123B, plan)
        assert first == direct
        assert second is first  # a hit serves the cached object
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_distinct_configs_do_not_collide(self):
        cache = StepTimeCache()
        plan = internevo_v2(2048)
        big = cache.step_time(MODEL_123B, plan)
        small = cache.step_time(MODEL_7B, plan)
        assert small < big
        assert cache.misses == 2
        assert len(cache) == 2

    def test_clear_drops_entries_keeps_counters(self):
        cache = StepTimeCache()
        cache.step_time(MODEL_7B, internevo_v2(64))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        cache.step_time(MODEL_7B, internevo_v2(64))
        assert cache.misses == 2  # recomputed after clear


class TestHealthFactor:
    def test_health_factor_scales_inter_node_bandwidth(self):
        cache = StepTimeCache()
        plan = internevo_v2(2048, shard_group=2048)
        degraded = cache.breakdown(MODEL_123B, plan, health_factor=0.5)
        direct = StepTimeModel(
            MODEL_123B, plan,
            inter_node_bandwidth=0.5 * StepTimeModel(
                MODEL_123B, plan).inter_node_bandwidth).breakdown()
        assert degraded == direct

    def test_degraded_fabric_is_slower(self):
        cache = StepTimeCache()
        plan = internevo_v2(2048, shard_group=2048)
        nominal = cache.step_time(MODEL_123B, plan)
        degraded = cache.step_time(MODEL_123B, plan, health_factor=0.25)
        assert degraded > nominal

    def test_health_factors_cached_separately(self):
        cache = StepTimeCache()
        plan = internevo_v1(2048)
        cache.step_time(MODEL_123B, plan, health_factor=1.0)
        cache.step_time(MODEL_123B, plan, health_factor=0.5)
        cache.step_time(MODEL_123B, plan, health_factor=0.5)
        assert cache.misses == 2
        assert cache.hits == 1

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_health_factor_rejected(self, bad):
        with pytest.raises(ValueError, match="health_factor"):
            StepTimeCache().step_time(MODEL_7B, internevo_v2(64),
                                      health_factor=bad)


class TestFabricBypass:
    def test_fabric_configs_never_cached(self):
        from repro.cluster.fattree import FatTree, FatTreeConfig

        fabric = FatTree(FatTreeConfig(nodes=256))
        cache = StepTimeCache()
        plan = internevo_v2(2048, shard_group=64)
        first = cache.breakdown(MODEL_123B, plan, fabric=fabric)
        second = cache.breakdown(MODEL_123B, plan, fabric=fabric)
        assert first == second
        assert len(cache) == 0
        assert cache.hits == cache.misses == 0

    def test_fabric_result_matches_direct_model(self):
        from repro.cluster.fattree import FatTree, FatTreeConfig

        fabric = FatTree(FatTreeConfig(nodes=256))
        plan = internevo_v2(2048, shard_group=64)
        cached = StepTimeCache().breakdown(MODEL_123B, plan,
                                           fabric=fabric)
        direct = StepTimeModel(MODEL_123B, plan,
                               fabric=fabric).breakdown()
        assert cached == direct


class TestTracerSeam:
    def test_counters_flow_to_tracer(self):
        tracer = Tracer()
        cache = StepTimeCache(tracer=tracer)
        plan = internevo_v1(2048)
        cache.step_time(MODEL_123B, plan)
        cache.step_time(MODEL_123B, plan)
        cache.step_time(MODEL_123B, plan)
        assert tracer.counters["step_cache.misses"].last == 1.0
        assert tracer.counters["step_cache.hits"].last == 2.0

    def test_default_cache_uses_null_tracer(self):
        DEFAULT_STEP_CACHE.clear()
        value = DEFAULT_STEP_CACHE.step_time(MODEL_7B, internevo_v2(64))
        assert value > 0.0
