"""Executes every Python block in docs/TUTORIAL.md.

Documentation that the test suite runs cannot rot: if an API changes,
the tutorial fails here before a user ever sees it broken.  Blocks share
one namespace and run in document order (later snippets build on
earlier ones, as a reader would type them).
"""

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def python_blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for index, source in enumerate(python_blocks()):
        try:
            exec(compile(source, f"TUTORIAL.md block {index}", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"tutorial block {index} failed: {exc}\n{source}"
            ) from exc


def test_tutorial_has_enough_coverage():
    assert len(python_blocks()) >= 8
