"""Tests for the leaf-spine fabric model."""

import pytest

from repro.cluster.fattree import FatTree, FatTreeConfig, factor_table


def tree(nodes=256, **overrides):
    return FatTree(FatTreeConfig(nodes=nodes, **overrides))


class TestStructure:
    def test_leaf_and_pod_mapping(self):
        fabric = tree()
        assert fabric.leaf_of(0) == 0
        assert fabric.leaf_of(7) == 0
        assert fabric.leaf_of(8) == 1
        assert fabric.pod_of(63) == 0
        assert fabric.pod_of(64) == 1

    def test_counts(self):
        config = FatTreeConfig(nodes=256)
        assert config.leaf_count == 32
        assert config.pod_count == 4
        assert config.nodes_per_pod == 64

    def test_ceil_division_for_partial_leaves(self):
        assert FatTreeConfig(nodes=9).leaf_count == 2

    def test_node_out_of_range(self):
        with pytest.raises(IndexError):
            tree(16).leaf_of(16)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FatTreeConfig(nodes=0)
        with pytest.raises(ValueError):
            FatTreeConfig(nodes=8, leaf_oversubscription=0.5)


class TestLocality:
    def test_tiers_crossed(self):
        fabric = tree()
        assert fabric.tiers_crossed([0, 1, 7]) == 0       # one leaf
        assert fabric.tiers_crossed([0, 8]) == 1          # one pod
        assert fabric.tiers_crossed([0, 64]) == 2         # cross-pod

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            tree().tiers_crossed([])

    def test_bandwidth_factor_degrades_with_tiers(self):
        fabric = tree()
        leaf = fabric.group_bandwidth_factor([0, 1])
        pod = fabric.group_bandwidth_factor([0, 8])
        fabric_wide = fabric.group_bandwidth_factor([0, 64])
        assert leaf == 1.0
        assert fabric_wide < pod < leaf

    def test_intra_leaf_full_nic(self):
        fabric = tree()
        assert fabric.group_bandwidth([0, 1]) == pytest.approx(
            fabric.config.nic_bandwidth)

    def test_nonblocking_fabric_has_no_penalty(self):
        fabric = tree(leaf_oversubscription=1.0,
                      pod_oversubscription=1.0)
        assert fabric.group_bandwidth_factor([0, 200]) == 1.0


class TestFactorTable:
    def test_eight_node_group_is_largest_at_full_bandwidth(self):
        """The paper's 64-GPU (8-node) ZeRO subgroup = one leaf."""
        rows = factor_table(FatTreeConfig(nodes=256))
        by_nodes = {row["nodes"]: row for row in rows}
        assert by_nodes[8]["bandwidth_factor"] == 1.0
        assert by_nodes[16]["bandwidth_factor"] < 1.0

    def test_table_truncates_at_fabric_size(self):
        rows = factor_table(FatTreeConfig(nodes=16))
        assert rows[-1]["nodes"] <= 16

    def test_gpu_column(self):
        rows = factor_table(FatTreeConfig(nodes=64))
        assert all(row["gpus"] == row["nodes"] * 8 for row in rows)


class TestBisection:
    def test_oversubscription_reduces_bisection(self):
        fat = tree(leaf_oversubscription=1.0, pod_oversubscription=1.0)
        thin = tree(leaf_oversubscription=2.0, pod_oversubscription=2.0)
        assert thin.bisection_bandwidth() < fat.bisection_bandwidth()

    def test_single_pod_skips_pod_penalty(self):
        small = tree(nodes=64, pod_oversubscription=4.0)
        # 64 nodes = exactly one pod: pod oversubscription never applies.
        expected = (32 * small.config.nic_bandwidth
                    / small.config.leaf_oversubscription)
        assert small.bisection_bandwidth() == pytest.approx(expected)


class TestHealthOverlay:
    def make_tree(self):
        from repro.cluster.linkhealth import LinkHealth

        health = LinkHealth()
        config = FatTreeConfig(nodes=16, nodes_per_leaf=4)
        return FatTree(config, health=health), health

    def test_group_links_single_node_has_none(self):
        fabric, _ = self.make_tree()
        assert fabric.group_links([3]) == []

    def test_group_links_intra_leaf_is_nics_only(self):
        fabric, _ = self.make_tree()
        assert fabric.group_links([0, 1]) == ["nic:0", "nic:1"]

    def test_group_links_cross_leaf_adds_uplinks(self):
        fabric, _ = self.make_tree()
        links = fabric.group_links([0, 4])
        assert links == ["leaf:0", "leaf:1", "nic:0", "nic:4"]

    def test_group_links_rejects_empty_group(self):
        fabric, _ = self.make_tree()
        with pytest.raises(ValueError):
            fabric.group_links([])

    def test_group_health_factor_tracks_worst_crossed_link(self):
        fabric, health = self.make_tree()
        health.link_degraded("leaf:1", start=0.0, end=100.0, factor=0.4)
        assert fabric.group_health_factor([0, 4], 50.0) \
            == pytest.approx(0.4)
        # intra-leaf groups never cross the degraded uplink
        assert fabric.group_health_factor([4, 5], 50.0) == 1.0
        # and the window is over at its end
        assert fabric.group_health_factor([0, 4], 100.0) == 1.0

    def test_down_links_crossed(self):
        fabric, health = self.make_tree()
        health.link_down("nic:4", start=0.0, end=10.0)
        assert fabric.down_links_crossed([0, 4], 5.0) == ["nic:4"]
        assert fabric.down_links_crossed([0, 4], 10.0) == []

    def test_group_bandwidth_factor_combines_static_and_live(self):
        fabric, health = self.make_tree()
        static = fabric.group_bandwidth_factor([0, 4])
        health.link_degraded("leaf:0", start=0.0, end=10.0, factor=0.5)
        live = fabric.group_bandwidth_factor([0, 4], at=5.0)
        assert live == pytest.approx(static * 0.5)

    def test_without_health_overlay_behaves_statically(self):
        plain = tree(nodes=16, nodes_per_leaf=4)
        assert plain.group_health_factor([0, 4], 0.0) == 1.0
        assert plain.down_links_crossed([0, 4], 0.0) == []
