"""Tests for the leaf-spine fabric model."""

import pytest

from repro.cluster.fattree import FatTree, FatTreeConfig, factor_table


def tree(nodes=256, **overrides):
    return FatTree(FatTreeConfig(nodes=nodes, **overrides))


class TestStructure:
    def test_leaf_and_pod_mapping(self):
        fabric = tree()
        assert fabric.leaf_of(0) == 0
        assert fabric.leaf_of(7) == 0
        assert fabric.leaf_of(8) == 1
        assert fabric.pod_of(63) == 0
        assert fabric.pod_of(64) == 1

    def test_counts(self):
        config = FatTreeConfig(nodes=256)
        assert config.leaf_count == 32
        assert config.pod_count == 4
        assert config.nodes_per_pod == 64

    def test_ceil_division_for_partial_leaves(self):
        assert FatTreeConfig(nodes=9).leaf_count == 2

    def test_node_out_of_range(self):
        with pytest.raises(IndexError):
            tree(16).leaf_of(16)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FatTreeConfig(nodes=0)
        with pytest.raises(ValueError):
            FatTreeConfig(nodes=8, leaf_oversubscription=0.5)


class TestLocality:
    def test_tiers_crossed(self):
        fabric = tree()
        assert fabric.tiers_crossed([0, 1, 7]) == 0       # one leaf
        assert fabric.tiers_crossed([0, 8]) == 1          # one pod
        assert fabric.tiers_crossed([0, 64]) == 2         # cross-pod

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            tree().tiers_crossed([])

    def test_bandwidth_factor_degrades_with_tiers(self):
        fabric = tree()
        leaf = fabric.group_bandwidth_factor([0, 1])
        pod = fabric.group_bandwidth_factor([0, 8])
        fabric_wide = fabric.group_bandwidth_factor([0, 64])
        assert leaf == 1.0
        assert fabric_wide < pod < leaf

    def test_intra_leaf_full_nic(self):
        fabric = tree()
        assert fabric.group_bandwidth([0, 1]) == pytest.approx(
            fabric.config.nic_bandwidth)

    def test_nonblocking_fabric_has_no_penalty(self):
        fabric = tree(leaf_oversubscription=1.0,
                      pod_oversubscription=1.0)
        assert fabric.group_bandwidth_factor([0, 200]) == 1.0


class TestFactorTable:
    def test_eight_node_group_is_largest_at_full_bandwidth(self):
        """The paper's 64-GPU (8-node) ZeRO subgroup = one leaf."""
        rows = factor_table(FatTreeConfig(nodes=256))
        by_nodes = {row["nodes"]: row for row in rows}
        assert by_nodes[8]["bandwidth_factor"] == 1.0
        assert by_nodes[16]["bandwidth_factor"] < 1.0

    def test_table_truncates_at_fabric_size(self):
        rows = factor_table(FatTreeConfig(nodes=16))
        assert rows[-1]["nodes"] <= 16

    def test_gpu_column(self):
        rows = factor_table(FatTreeConfig(nodes=64))
        assert all(row["gpus"] == row["nodes"] * 8 for row in rows)


class TestBisection:
    def test_oversubscription_reduces_bisection(self):
        fat = tree(leaf_oversubscription=1.0, pod_oversubscription=1.0)
        thin = tree(leaf_oversubscription=2.0, pod_oversubscription=2.0)
        assert thin.bisection_bandwidth() < fat.bisection_bandwidth()

    def test_single_pod_skips_pod_penalty(self):
        small = tree(nodes=64, pod_oversubscription=4.0)
        # 64 nodes = exactly one pod: pod oversubscription never applies.
        expected = (32 * small.config.nic_bandwidth
                    / small.config.leaf_oversubscription)
        assert small.bisection_bandwidth() == pytest.approx(expected)
