"""Meta-tests: the repository delivers what DESIGN.md promises.

Parses DESIGN.md's per-experiment index and verifies every referenced
bench target exists, and that every paper figure/table has both a
generator and a benchmark.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DESIGN = (REPO / "DESIGN.md").read_text()
BENCH_DIR = REPO / "benchmarks"


def referenced_bench_files() -> set[str]:
    return set(re.findall(r"`benchmarks/(bench_\w+\.py)", DESIGN)) | set(
        re.findall(r"\| `(bench_\w+\.py)", DESIGN))


class TestDesignPromises:
    def test_every_referenced_bench_exists(self):
        missing = [name for name in referenced_bench_files()
                   if not (BENCH_DIR / name).exists()]
        assert not missing, missing

    def test_every_paper_figure_has_a_generator(self):
        from repro.analysis import figures

        for number in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 16,
                       17, 18, 19, 20, 21, 22):
            assert hasattr(figures, f"fig{number}"), f"fig{number}"

    def test_every_paper_table_has_a_generator(self):
        from repro.analysis import tables

        for name in ("table1", "table2", "table3"):
            assert hasattr(tables, name)

    def test_design_lists_every_subpackage(self):
        import repro

        src = REPO / "src" / "repro"
        subpackages = {path.name for path in src.iterdir()
                       if path.is_dir() and (path / "__init__.py").exists()}
        for subpackage in subpackages:
            assert f"repro/{subpackage}" in DESIGN or \
                f"repro.{subpackage}" in DESIGN, subpackage

    def test_experiments_md_covers_all_figures(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for label in ("Fig. 2a", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
                      "Fig. 7a", "Fig. 8a", "Fig. 9", "Fig. 10",
                      "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14",
                      "Table 1", "Table 2", "Table 3", "Fig. 16",
                      "Fig. 17", "Fig. 18", "Fig. 21", "Fig. 22",
                      "A.3"):
            assert label in experiments, label


class TestBenchmarkHygiene:
    @pytest.mark.parametrize("bench", sorted(
        BENCH_DIR.glob("bench_*.py"), key=lambda p: p.name),
        ids=lambda p: p.name)
    def test_every_bench_asserts_something(self, bench):
        """Benches must check shapes, not just print them."""
        assert "assert " in bench.read_text(), bench.name

    def test_all_reports_named_after_experiments(self):
        text = "\n".join(path.read_text()
                         for path in BENCH_DIR.glob("bench_*.py"))
        emitted = set(re.findall(r'emit\("([\w_]+)"', text))
        assert len(emitted) >= 25  # one artifact per experiment family


class TestStyleGates:
    """Cheap, dependency-free style enforcement (PEP 8 basics)."""

    PYTHON_ROOTS = ("src", "tests", "benchmarks", "examples")

    def iter_files(self):
        for root in self.PYTHON_ROOTS:
            yield from (REPO / root).rglob("*.py")

    def test_no_lines_over_79_columns(self):
        offenders = []
        for path in self.iter_files():
            for lineno, line in enumerate(
                    path.read_text().splitlines(), 1):
                if len(line) > 79:
                    offenders.append(f"{path}:{lineno}")
        assert not offenders, offenders[:10]

    def test_no_tabs(self):
        offenders = [str(path) for path in self.iter_files()
                     if "\t" in path.read_text()]
        assert not offenders, offenders

    def test_every_module_has_a_docstring(self):
        import ast

        missing = []
        for path in (REPO / "src").rglob("*.py"):
            if path.name == "__main__.py":
                continue
            if ast.get_docstring(ast.parse(path.read_text())) is None:
                missing.append(str(path))
        assert not missing, missing


class TestExamplesCompile:
    """Every example must at least import-compile (full runs are the
    user's quickstart, not the test suite's job)."""

    def test_examples_compile(self):
        import py_compile

        for path in sorted((REPO / "examples").glob("*.py")):
            py_compile.compile(str(path), doraise=True)

    def test_examples_have_docstrings_and_main(self):
        import ast

        for path in sorted((REPO / "examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), path.name
            assert "__main__" in path.read_text(), path.name
