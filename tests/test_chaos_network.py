"""Tests for network fault injection, localization, and recovery."""

from dataclasses import replace

import pytest

from repro.chaos import (BUNDLED_SCENARIOS, ChaosHarness, ChaosScenario,
                         InvariantViolation, run_scenario)
from repro.chaos.invariants import InvariantChecker
from repro.cluster.linkhealth import LinkHealth
from repro.failures.taxonomy import (NETWORK_CHAOS_REASONS,
                                     NETWORK_FAULT_KINDS)


def storm(**overrides):
    return replace(BUNDLED_SCENARIOS["network-storm"], **overrides)


class TestScenarioGeneration:
    def test_network_faults_are_deterministic(self):
        scenario = storm()
        assert (scenario.build_network_faults()
                == scenario.build_network_faults())

    def test_kinds_reasons_and_targets_are_valid(self):
        for fault in storm().build_network_faults():
            assert fault.kind in NETWORK_FAULT_KINDS
            assert fault.reason == NETWORK_CHAOS_REASONS[fault.kind]
            assert fault.target == "network"
            assert fault.link is not None
            tier, _, index = fault.link.partition(":")
            assert tier in ("nic", "leaf")
            assert index.isdigit()

    def test_windows_close_before_the_horizon(self):
        scenario = storm()
        longest = max(scenario.link_down_duration,
                      scenario.link_degraded_duration,
                      scenario.switch_down_duration)
        for fault in scenario.build_network_faults():
            assert 0.0 < fault.time <= 0.8 * scenario.duration
            assert fault.time + longest < scenario.duration

    def test_stream_isolation_from_other_faults(self):
        """Adding network faults must not perturb the node-fault or
        storage schedules (they draw from different seeded streams)."""
        with_network = storm()
        without = replace(with_network, n_network_faults=0)
        keep = [f for f in with_network.build_faults()
                if f.target != "network"]
        assert keep == without.build_faults()

    def test_switch_down_always_targets_a_leaf(self):
        faults = storm(n_network_faults=40,
                       network_fault_mix=(0.0, 0.0, 1.0),
                       ).build_network_faults()
        assert faults
        assert all(f.link.startswith("leaf:") for f in faults)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            storm(network_fault_mix=(1.0, 0.0))
        with pytest.raises(ValueError):
            storm(network_fault_mix=(-1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            storm(link_degraded_factor=1.5)
        with pytest.raises(ValueError):
            storm(n_network_faults=-1)


class TestHarnessWiring:
    def test_faults_arm_the_link_health_overlay(self):
        harness = ChaosHarness(storm())
        network = [f for f in harness.faults if f.target == "network"]
        assert network
        assert not harness.link_health.empty
        for fault in network:
            # every fault window is live on its link at its midpoint
            if fault.kind == "link_degraded":
                mid = fault.time + 1.0
                assert harness.link_health.factor(
                    fault.link, mid) < 1.0
            else:
                assert harness.link_health.is_down(
                    fault.link, fault.time + 1.0)

    def test_switch_down_expands_to_member_nics(self):
        scenario = storm(n_network_faults=40,
                         network_fault_mix=(0.0, 0.0, 1.0))
        harness = ChaosHarness(scenario)
        fault = next(f for f in harness.faults if f.target == "network")
        leaf = int(fault.link.split(":", 1)[1])
        first = leaf * scenario.nodes_per_leaf
        assert harness.link_health.is_down(f"nic:{first}",
                                           fault.time + 1.0)

    def test_disabled_network_faults_leave_no_overlay(self):
        harness = ChaosHarness(storm(n_network_faults=0))
        assert harness.link_health.empty
        assert not harness._network_aware

    def test_summary_counts_zero_when_disabled(self):
        result = run_scenario(storm(n_network_faults=0))
        summary = result.summary
        assert summary.network_faults == 0
        assert summary.segment_convictions == 0
        assert summary.gang_migrations == 0
        assert summary.network_slowdown_hours == 0.0

    def test_run_is_byte_identical(self):
        first = run_scenario(storm())
        second = run_scenario(storm())
        assert first.event_log_text() == second.event_log_text()
        assert first.summary.to_json() == second.summary.to_json()


class TestStormOutcome:
    @pytest.fixture(scope="class")
    def harness(self):
        harness = ChaosHarness(BUNDLED_SCENARIOS["network-storm"])
        harness.run()
        return harness

    @pytest.fixture(scope="class")
    def result(self, harness):
        from repro.chaos.report import summarize
        return summarize(harness)

    def test_conviction_followed_by_migration(self, harness):
        kinds = [kind for _, kind, _ in harness.event_log]
        assert "recovery_cordon_segment" in kinds
        conviction = kinds.index("recovery_cordon_segment")
        assert "gang_migrated" in kinds[conviction:]

    def test_fabric_heals_by_the_horizon(self, harness, result):
        assert result.segments_cordoned_end == 0
        assert harness.pretrain.step_factor == 1.0
        assert not harness.cordoned_segments

    def test_degraded_window_accrues_slowdown(self, harness, result):
        assert result.network_slowdown_hours > 0.0
        assert any(kind == "gang_step_factor"
                   for _, kind, _ in harness.event_log)

    def test_slowdown_counts_as_waste(self, harness, result):
        scenario = BUNDLED_SCENARIOS["network-storm"]
        floor = (harness.pretrain.slowdown_seconds
                 * scenario.pretrain_gpus / 3600.0)
        assert result.wasted_gpu_hours >= floor

    def test_many_seeds_hold_every_invariant(self):
        for seed in range(20, 26):
            run_scenario(storm(seed=seed))  # raises on violation


class TestNetworkInvariants:
    def make_checker(self):
        checker = InvariantChecker.__new__(InvariantChecker)
        # minimal fields for the network checks only
        checker.network_health = None
        checker.network_min_factor = 0.5
        checker.cordoned_segments = set()
        checker.segment_conviction_records = []
        checker.gang_placement_records = []
        return checker

    def test_placement_across_downed_link_raises(self):
        checker = self.make_checker()
        with pytest.raises(InvariantViolation, match="downed link"):
            checker.record_gang_placement(10.0, ("leaf:1",))

    def test_clean_placement_is_recorded(self):
        checker = self.make_checker()
        checker.record_gang_placement(10.0, ())
        assert checker.gang_placement_records == [(10.0, ())]

    def test_convicting_a_healthy_segment_raises(self):
        checker = self.make_checker()
        checker.network_health = LinkHealth()  # all links healthy
        with pytest.raises(InvariantViolation, match="at or above"):
            checker.record_segment_conviction(10.0, "leaf:0")

    def test_convicting_a_sick_segment_is_recorded(self):
        checker = self.make_checker()
        health = LinkHealth()
        health.link_down("leaf:0", start=0.0, end=100.0)
        checker.network_health = health
        checker.record_segment_conviction(10.0, "leaf:0")
        assert checker.segment_conviction_records == [(10.0, "leaf:0")]


class TestPretrainStepFactor:
    def make_process(self):
        from repro.sim.engine import Engine
        from repro.training.pretrain import PretrainProcess

        engine = Engine()
        process = PretrainProcess(engine, name="pretrain",
                                  step_time=10.0,
                                  total_iterations=100_000,
                                  steps_per_checkpoint=1000)
        return engine, process

    def test_stretch_slows_steps_and_accrues_slowdown(self):
        engine, process = self.make_process()
        process.set_step_factor(2.0)
        process.start(0.0)
        engine.run(until=100.0)
        assert process.iteration == 5  # 20s per step, not 10s
        # slowdown accrues as each step is *scheduled*, so the step in
        # flight at the horizon is counted too: 6 x (20 - 10) seconds
        assert process.slowdown_seconds == pytest.approx(60.0)

    def test_factor_one_is_exact_noop(self):
        engine, process = self.make_process()
        process.start(0.0)
        engine.run(until=100.0)
        assert process.iteration == 10
        assert process.slowdown_seconds == 0.0

    def test_rejects_speedup(self):
        _, process = self.make_process()
        with pytest.raises(ValueError):
            process.set_step_factor(0.5)
