"""Property-based tests (hypothesis) on cross-cutting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.checkpoint import (AsyncCheckpointer, InMemoryStorage,
                                   SyncCheckpointer)
from repro.core.diagnosis.compression import FilterRules, LogCompressor
from repro.core.diagnosis.templates import mask_line, template_to_regex
from repro.core.diagnosis.vector_store import VectorStore, embed_text
from repro.scheduler.job import FinalStatus, Job, JobType
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator
from repro.sim.engine import Engine
from repro.workload.trace import Trace

# -- strategies ------------------------------------------------------------

job_strategy = st.builds(
    Job,
    job_id=st.uuids().map(str),
    cluster=st.just("prop"),
    job_type=st.sampled_from(list(JobType)),
    submit_time=st.floats(0.0, 1e6, allow_nan=False),
    duration=st.floats(1.0, 1e5, allow_nan=False),
    gpu_demand=st.integers(0, 64),
    final_status=st.sampled_from(list(FinalStatus)),
    gpu_utilization=st.floats(0.0, 1.0, allow_nan=False),
)


class TestSchedulerInvariants:
    @given(st.lists(job_strategy, min_size=1, max_size=25),
           st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_completion(self, jobs, reserved):
        """GPUs never oversubscribed; every job eventually finishes."""
        # Deduplicate ids (hypothesis may build clashing UUIDs? no, but
        # defensive) and cap demand to the cluster.
        seen = set()
        unique = []
        for job in jobs:
            if job.job_id not in seen:
                seen.add(job.job_id)
                unique.append(job)
        config = SchedulerConfig(total_gpus=64,
                                 reserved_fraction=reserved)
        simulator = SchedulerSimulator(config)
        simulator.simulate(unique)
        assert all(job.end_time is not None for job in unique)
        for _, in_use in simulator.occupancy:
            assert 0 <= in_use <= 64

    @given(st.lists(job_strategy, min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_no_job_starts_before_submission(self, jobs):
        seen = set()
        unique = [job for job in jobs
                  if job.job_id not in seen and not seen.add(job.job_id)]
        simulator = SchedulerSimulator(SchedulerConfig(total_gpus=64))
        simulator.simulate(unique)
        for job in unique:
            assert job.start_time >= job.submit_time - 1e-9
            assert job.end_time >= job.start_time


class TestTraceRoundTrip:
    @given(st.lists(job_strategy, min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_csv_round_trip_any_jobs(self, jobs):
        import tempfile
        from pathlib import Path

        seen = set()
        unique = [job for job in jobs
                  if job.job_id not in seen and not seen.add(job.job_id)]
        trace = Trace("prop", unique)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            trace.to_csv(path)
            loaded = Trace.from_csv(path)
        assert len(loaded) == len(trace)
        for a, b in zip(loaded, trace):
            assert a.job_id == b.job_id
            assert a.duration == pytest.approx(b.duration)
            assert a.final_status is b.final_status


class TestCheckpointIntegrity:
    @given(arrays(np.float64, st.integers(1, 256),
                  elements=st.floats(-1e6, 1e6, allow_nan=False)))
    @settings(max_examples=25, deadline=None)
    def test_async_round_trip_any_state(self, weights):
        with AsyncCheckpointer(InMemoryStorage()) as ckpt:
            ckpt.save(1, {"w": weights})
            ckpt.flush()
            _, restored = ckpt.load_latest()
        assert np.array_equal(restored["w"], weights)

    @given(arrays(np.float32, st.integers(1, 128),
                  elements=st.floats(-1e3, 1e3, allow_nan=False,
                                     width=32)))
    @settings(max_examples=25, deadline=None)
    def test_sync_round_trip_preserves_dtype(self, weights):
        ckpt = SyncCheckpointer(InMemoryStorage())
        ckpt.save(5, {"w": weights})
        _, restored = ckpt.load_latest()
        assert restored["w"].dtype == weights.dtype
        assert np.array_equal(restored["w"], weights)


class TestCompressionInvariants:
    @given(st.lists(st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=80), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_error_lines_always_survive(self, lines):
        """Whatever the filter rules, error evidence is never dropped."""
        rules = FilterRules([r".*"])
        result = LogCompressor(rules).compress(lines)
        for line in lines:
            if "error" in line.lower() or "Traceback" in line:
                assert line in result.kept_lines

    @given(st.text(alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Zs"),
        whitelist_characters="=/.:-_[]"), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_template_regex_matches_its_source(self, line):
        """mask -> regex -> must match the original line."""
        import re

        masked = mask_line(line)
        pattern = template_to_regex(masked)
        normalized = " ".join(line.split())
        if normalized:
            assert re.search(pattern, normalized) is not None

    @given(st.lists(st.text(min_size=0, max_size=60), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_compression_never_grows_output(self, lines):
        result = LogCompressor(FilterRules([r"\d+"])).compress(lines)
        assert result.output_bytes <= result.input_bytes
        assert 0 <= result.filtered_fraction <= 1


class TestVectorStoreInvariants:
    @given(st.text(min_size=4, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_self_similarity_is_one(self, text):
        vector = embed_text(text)
        assert float(vector @ vector) == pytest.approx(1.0)

    @given(st.lists(st.text(min_size=4, max_size=80), min_size=2,
                    max_size=8, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_exact_document_retrieved_first(self, texts):
        store = VectorStore()
        for index, text in enumerate(texts):
            store.add(f"d{index}", text, {})
        hits = store.query(texts[0], top_k=len(texts))
        assert hits[0].similarity == pytest.approx(1.0)
        assert hits[0].document.text == texts[0] or \
            hits[0].similarity == pytest.approx(hits[1].similarity)


class TestEngineInvariants:
    @given(st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=1,
                    max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_events_observed_in_sorted_order(self, times):
        engine = Engine()
        observed = []
        for time in times:
            engine.call_at(time, lambda t=time: observed.append(t))
        engine.run()
        assert observed == sorted(times)
        assert engine.now == max(times)
