"""Tests for the metric time-series store and utilization recording."""

import numpy as np
import pytest

from repro.monitor.timeseries import (MetricStore, UtilizationSeries,
                                      record_cluster_utilization)
from repro.scheduler.job import Job, JobType
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator


class TestMetricStore:
    def test_append_and_raw(self):
        store = MetricStore()
        store.append("m", 0.0, 1.0)
        store.append("m", 10.0, 2.0)
        times, values = store.raw("m")
        assert list(times) == [0.0, 10.0]
        assert list(values) == [1.0, 2.0]

    def test_out_of_order_rejected(self):
        store = MetricStore()
        store.append("m", 10.0, 1.0)
        with pytest.raises(ValueError):
            store.append("m", 5.0, 2.0)

    def test_unknown_series_rejected(self):
        with pytest.raises(KeyError):
            MetricStore().raw("ghost")

    def test_resample_sample_and_hold(self):
        store = MetricStore()
        store.append("m", 0.0, 1.0)
        store.append("m", 100.0, 5.0)
        grid, values = store.resample("m", interval=50.0)
        assert list(grid) == [0.0, 50.0, 100.0]
        assert list(values) == [1.0, 1.0, 5.0]

    def test_resample_custom_window(self):
        store = MetricStore()
        store.append("m", 0.0, 3.0)
        grid, values = store.resample("m", interval=10.0, start=0.0,
                                      end=30.0)
        assert grid.size == 4
        assert (values == 3.0).all()

    def test_invalid_interval(self):
        store = MetricStore()
        store.append("m", 0.0, 1.0)
        with pytest.raises(ValueError):
            store.resample("m", interval=0.0)

    def test_names_listed(self):
        store = MetricStore()
        store.append("b", 0.0, 1.0)
        store.append("a", 0.0, 1.0)
        assert store.names() == ["a", "b"]


class TestUtilizationRecording:
    def simulate(self, jobs):
        simulator = SchedulerSimulator(SchedulerConfig(
            total_gpus=16, reserved_fraction=0.0))
        simulator.simulate(jobs)
        return simulator

    def test_allocation_fractions_bounded(self):
        jobs = [Job(f"j{i}", "t", JobType.EVALUATION, float(i * 10),
                    100.0, 4) for i in range(10)]
        series = record_cluster_utilization(self.simulate(jobs),
                                            interval=10.0)
        assert series.allocation.min() >= 0.0
        assert series.allocation.max() <= 1.0
        assert series.peak > 0.0

    def test_mean_matches_gpu_seconds(self):
        jobs = [Job("a", "t", JobType.EVALUATION, 0.0, 100.0, 8)]
        simulator = self.simulate(jobs)
        series = record_cluster_utilization(simulator, interval=5.0)
        # One job, 8 of 16 GPUs for the whole window -> allocation 0.5
        # until release at t=100.
        assert series.allocation[0] == pytest.approx(0.5)

    def test_diurnal_profile_shape(self):
        # Two bursts: 02:00 (light) and 14:00 (heavy).
        jobs = []
        for i in range(4):
            jobs.append(Job(f"n{i}", "t", JobType.EVALUATION,
                            2 * 3600.0 + i, 600.0, 1))
        for i in range(4):
            jobs.append(Job(f"d{i}", "t", JobType.EVALUATION,
                            14 * 3600.0 + i, 600.0, 4))
        series = record_cluster_utilization(self.simulate(jobs),
                                            interval=300.0)
        profile = series.diurnal_profile()
        assert profile.size == 24
        assert profile[14] > profile[2] > 0.0
        assert series.busiest_hour() == 14

    def test_empty_simulator(self):
        simulator = SchedulerSimulator(SchedulerConfig(total_gpus=4))
        series = record_cluster_utilization(simulator)
        assert series.times.size == 0
        assert series.mean == 0.0

    def test_trace_driven_series_is_well_formed(self):
        """A full trace replay produces a bounded, non-trivial series."""
        from dataclasses import replace

        from repro.workload.generator import TraceGenerator
        from repro.workload.spec import KALOS_SPEC

        spec = replace(KALOS_SPEC,
                       span=KALOS_SPEC.span * 1500
                       / KALOS_SPEC.real_gpu_jobs)
        trace = TraceGenerator(spec, seed=61).generate(1500)
        simulator = SchedulerSimulator(SchedulerConfig(
            total_gpus=KALOS_SPEC.total_gpus, reserved_fraction=0.98))
        simulator.simulate(list(trace.gpu_jobs()))
        series = record_cluster_utilization(simulator, interval=900.0)
        assert 0.0 < series.mean < 1.0
        assert series.peak <= 1.0
        assert series.diurnal_profile().size == 24

    def test_arrivals_are_diurnal(self):
        """The generator's day/night arrival modulation (the signal the
        allocation series inherits, diluted by long-running jobs)."""
        from repro.workload.generator import TraceGenerator
        from repro.workload.spec import KALOS_SPEC

        trace = TraceGenerator(KALOS_SPEC, seed=62).generate(6000)
        hours = np.array([(job.submit_time % 86400.0) / 3600.0
                          for job in trace.gpu_jobs()]).astype(int)
        counts = np.bincount(hours, minlength=24)
        day = counts[10:18].mean()
        night = counts[0:6].mean()
        assert day > 1.3 * night


class TestFastPathEquivalence:
    """Vectorized recording/profile must equal the reference loops."""

    def simulate(self, n_jobs=800, seed=63):
        from dataclasses import replace

        from repro.workload.generator import TraceGenerator
        from repro.workload.spec import KALOS_SPEC

        spec = replace(KALOS_SPEC,
                       span=KALOS_SPEC.span * n_jobs
                       / KALOS_SPEC.real_gpu_jobs)
        trace = TraceGenerator(spec, seed=seed).generate(n_jobs)
        simulator = SchedulerSimulator(SchedulerConfig(
            total_gpus=KALOS_SPEC.total_gpus, reserved_fraction=0.98))
        simulator.simulate(list(trace.gpu_jobs()))
        return simulator

    def test_recording_identical_to_reference(self):
        from repro.sim.fastpath import use_fast_path

        simulator = self.simulate()
        with use_fast_path(True):
            fast = record_cluster_utilization(simulator, interval=300.0)
        with use_fast_path(False):
            reference = record_cluster_utilization(simulator,
                                                   interval=300.0)
        np.testing.assert_array_equal(fast.times, reference.times)
        np.testing.assert_array_equal(fast.allocation,
                                      reference.allocation)
        assert fast.total_gpus == reference.total_gpus

    def test_recording_replicates_monotonic_skip(self):
        """Out-of-order occupancy points are dropped identically."""
        from repro.sim.fastpath import use_fast_path

        simulator = SchedulerSimulator(SchedulerConfig(total_gpus=8))
        simulator.occupancy.extend([
            (0.0, 2), (10.0, 4), (5.0, 6), (7.0, 8), (12.0, 2),
            (12.0, 4), (11.0, 6), (20.0, 0)])
        with use_fast_path(True):
            fast = record_cluster_utilization(simulator, interval=2.0)
        with use_fast_path(False):
            reference = record_cluster_utilization(simulator,
                                                   interval=2.0)
        np.testing.assert_array_equal(fast.times, reference.times)
        np.testing.assert_array_equal(fast.allocation,
                                      reference.allocation)

    def test_diurnal_profile_matches_reference(self):
        from repro.sim.fastpath import use_fast_path

        series = record_cluster_utilization(self.simulate(),
                                            interval=450.0)
        with use_fast_path(True):
            fast = series.diurnal_profile()
        with use_fast_path(False):
            reference = series.diurnal_profile()
        np.testing.assert_allclose(fast, reference, rtol=1e-12,
                                   atol=1e-15)

    def test_empty_simulator_both_paths(self):
        from repro.sim.fastpath import use_fast_path

        simulator = SchedulerSimulator(SchedulerConfig(total_gpus=4))
        for fast in (True, False):
            with use_fast_path(fast):
                series = record_cluster_utilization(simulator)
            assert series.times.size == 0
