"""Shared fixtures: small synthetic traces and common objects.

Trace generation is the most expensive setup, so the traces are
session-scoped and sized for test speed (the calibration tests use
tolerances appropriate for these sample sizes).
"""

from __future__ import annotations

import pytest

from repro.workload.generator import TraceGenerator
from repro.workload.spec import KALOS_SPEC, SEREN_SPEC


@pytest.fixture(scope="session")
def seren_trace():
    return TraceGenerator(SEREN_SPEC, seed=11).generate(8000)


@pytest.fixture(scope="session")
def kalos_trace():
    return TraceGenerator(KALOS_SPEC, seed=12).generate(8000)


@pytest.fixture(scope="session")
def small_seren_trace():
    return TraceGenerator(SEREN_SPEC, seed=13).generate(600)
