"""Tests for the data-preparation stage model (§2.1)."""

import pytest

from repro.workload.dataprep import (DEFAULT_MIXTURE, CorpusSource,
                                     DataPrepPipeline)


class TestCorpusSource:
    def test_curation_applies_both_yields(self):
        source = CorpusSource("x", raw_bytes=100.0, dedup_yield=0.5,
                              filter_yield=0.5)
        assert source.curated_bytes == pytest.approx(25.0)

    def test_tokens_from_bytes(self):
        source = CorpusSource("x", raw_bytes=400.0, dedup_yield=1.0,
                              filter_yield=1.0, bytes_per_token=4.0)
        assert source.tokens == pytest.approx(100.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CorpusSource("x", raw_bytes=0.0)
        with pytest.raises(ValueError):
            CorpusSource("x", raw_bytes=1.0, dedup_yield=0.0)
        with pytest.raises(ValueError):
            CorpusSource("x", raw_bytes=1.0, bytes_per_token=0.0)


class TestPipeline:
    def test_default_mixture_near_internlm_scale(self):
        """§2.2's models train on ~trillions of tokens; the default
        mixture lands in that regime (the log banner says 1.6T)."""
        pipeline = DataPrepPipeline()
        assert 1e12 < pipeline.total_tokens < 3e12

    def test_curation_discards_most_raw_web(self):
        pipeline = DataPrepPipeline()
        assert pipeline.overall_yield < 0.3

    def test_wiki_survives_mostly_intact(self):
        by_name = {s.name: s for s in DEFAULT_MIXTURE}
        wiki = by_name["wiki"]
        assert wiki.curated_bytes / wiki.raw_bytes > 0.9

    def test_core_hours_positive_and_curation_dominates(self):
        pipeline = DataPrepPipeline()
        assert pipeline.curation_core_hours() > \
            pipeline.tokenization_core_hours() * 0.5
        assert pipeline.total_core_hours() > 0

    def test_wall_days_scale_inverse_with_cores(self):
        pipeline = DataPrepPipeline()
        assert pipeline.wall_days(1000) == pytest.approx(
            10 * pipeline.wall_days(10000))

    def test_pretraining_steps(self):
        pipeline = DataPrepPipeline([CorpusSource(
            "x", raw_bytes=4e12, dedup_yield=1.0, filter_yield=1.0)])
        # 1e12 tokens at 1e9 tokens/step -> 1000 steps.
        assert pipeline.pretraining_steps(1e9) == 1000

    def test_epochs_multiply_steps(self):
        pipeline = DataPrepPipeline()
        single = pipeline.pretraining_steps(1e9, epochs=1.0)
        double = pipeline.pretraining_steps(1e9, epochs=2.0)
        assert double == pytest.approx(2 * single, abs=1)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            DataPrepPipeline(sources=[])

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            DataPrepPipeline().wall_days(0)

    def test_summary_keys(self):
        summary = DataPrepPipeline().summary()
        assert {"raw_tb", "curated_tb", "overall_yield",
                "total_tokens_T"} <= set(summary)
