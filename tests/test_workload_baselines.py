"""Tests for the Philly/Helios/PAI comparison generators (Table 2)."""

import numpy as np
import pytest

from repro.workload.baselines import (HELIOS, PAI, PHILLY,
                                      generate_baseline_trace)


class TestProfiles:
    def test_years_match_table2(self):
        assert PHILLY.year == 2017
        assert HELIOS.year == 2020
        assert PAI.year == 2020

    def test_helios_lacks_utilization_data(self):
        assert HELIOS.utilization is None

    def test_pai_supports_fractional_gpus(self):
        assert min(PAI.gpu_demand.options) < 1


class TestGeneratedShapes:
    def test_philly_durations_longest(self):
        philly = generate_baseline_trace(PHILLY, 5000, seed=1)
        helios = generate_baseline_trace(HELIOS, 5000, seed=2)
        pai = generate_baseline_trace(PAI, 5000, seed=3)
        assert philly.median_duration > helios.median_duration
        assert philly.median_duration > pai.median_duration

    def test_philly_mean_duration_matches_ratio(self):
        # §3.1: Philly's average duration is 2.7-3.8x Helios/PAI.
        philly = generate_baseline_trace(PHILLY, 20000, seed=1)
        helios = generate_baseline_trace(HELIOS, 20000, seed=2)
        ratio = philly.mean_duration / helios.mean_duration
        assert 2.0 < ratio < 5.0

    def test_average_gpus_match_table2(self):
        for profile, expected, tol in ((PHILLY, 1.9, 0.6),
                                       (HELIOS, 3.7, 1.2),
                                       (PAI, 0.7, 0.3)):
            trace = generate_baseline_trace(profile, 20000, seed=7)
            assert trace.mean_gpus == pytest.approx(expected, abs=tol)

    def test_pai_median_utilization_low(self):
        pai = generate_baseline_trace(PAI, 20000, seed=4)
        assert np.median(pai.utilizations) < 0.10  # paper: 4%

    def test_philly_median_utilization_mid(self):
        philly = generate_baseline_trace(PHILLY, 20000, seed=5)
        assert 0.35 < np.median(philly.utilizations) < 0.65  # paper: 48%

    def test_pai_single_gpu_jobs_dominate_gpu_time(self):
        # §3.1: single-GPU jobs take over 68% of GPU time in PAI.
        pai = generate_baseline_trace(PAI, 20000, seed=6)
        mask = pai.gpu_demands <= 1.0
        share = pai.gpu_times[mask].sum() / pai.gpu_times.sum()
        assert share > 0.60

    def test_few_jobs_request_over_8_gpus(self):
        # Fig. 3a: < 7% of jobs request more than 8 GPUs anywhere.
        for profile in (PHILLY, HELIOS, PAI):
            trace = generate_baseline_trace(profile, 20000, seed=8)
            assert (trace.gpu_demands > 8).mean() < 0.07

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            generate_baseline_trace(PHILLY, 0)
