"""Tests for MTBF/goodput analysis and optimal checkpoint intervals."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures.injector import FailureInjector
from repro.failures.reliability import (GoodputModel, interval_sweep,
                                        mtbf_from_events)
from repro.failures.taxonomy import FailureCategory


class TestMtbf:
    def test_job_level_mtbf_is_mean_ttf(self):
        events = FailureInjector(seed=1).generate_events()
        mtbf = mtbf_from_events(events)
        mean_ttf = sum(e.time_to_failure_min for e in events) / len(events)
        assert mtbf == pytest.approx(mean_ttf)

    def test_category_filter(self):
        events = FailureInjector(seed=2).generate_events()
        infra = mtbf_from_events(events,
                                 category=FailureCategory.INFRASTRUCTURE)
        script = mtbf_from_events(events,
                                  category=FailureCategory.SCRIPT)
        # Infrastructure failures hit long-running jobs (§5.2); script
        # errors die at startup.
        assert infra > script

    def test_fleet_normalized(self):
        events = FailureInjector(seed=3).generate_events()
        mtbf = mtbf_from_events(events, fleet_gpu_time_min=1e9)
        assert mtbf == pytest.approx(1e9 / len(events))

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            mtbf_from_events([])


class TestGoodputModel:
    def model(self, **overrides):
        defaults = dict(mtbf=12 * 3600.0, checkpoint_cost=2.5,
                        restart_cost=600.0)
        defaults.update(overrides)
        return GoodputModel(**defaults)

    def test_young_daly_formula(self):
        model = self.model()
        expected = math.sqrt(2 * 2.5 * 12 * 3600.0)
        assert model.young_daly_interval() == pytest.approx(expected)

    def test_optimal_matches_young_daly_when_first_order_holds(self):
        model = self.model()
        optimal = model.optimal_interval()
        assert optimal == pytest.approx(model.young_daly_interval(),
                                        rel=0.05)

    def test_goodput_peaks_at_optimum(self):
        model = self.model()
        optimum = model.optimal_interval()
        best = model.goodput(optimum)
        assert best >= model.goodput(optimum / 4) - 1e-9
        assert best >= model.goodput(optimum * 4) - 1e-9

    def test_async_checkpointing_shifts_optimum_shorter(self):
        """Cheaper checkpoints -> checkpoint more often (the §6.1 logic:
        async made 30-minute intervals affordable)."""
        sync = self.model(checkpoint_cost=60.0)
        asynchronous = self.model(checkpoint_cost=0.5)
        assert (asynchronous.young_daly_interval()
                < sync.young_daly_interval())

    def test_paper_configuration_30min_is_reasonable(self):
        """With async costs (~0.05 s blocking) and the Table 3 failure
        rate for a 2048-GPU job, 30 minutes wastes < 5%."""
        model = GoodputModel(mtbf=0.8 * 86400.0, checkpoint_cost=0.05,
                             restart_cost=600.0)
        assert model.wasted_fraction(1800.0) < 0.05

    def test_zero_cost_checkpointing(self):
        model = self.model(checkpoint_cost=0.0)
        assert model.young_daly_interval() == 0.0
        assert model.optimal_interval(low=1.0) == pytest.approx(1.0,
                                                                abs=2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GoodputModel(mtbf=0.0, checkpoint_cost=1.0, restart_cost=1.0)
        with pytest.raises(ValueError):
            self.model().wasted_fraction(0.0)

    def test_interval_sweep_rows(self):
        rows = interval_sweep(self.model(), [600.0, 1800.0, 7200.0])
        assert len(rows) == 3
        assert all(0.0 <= row["goodput"] <= 1.0 for row in rows)

    @given(mtbf=st.floats(3600.0, 1e6),
           cost=st.floats(0.01, 100.0),
           restart=st.floats(0.0, 3600.0))
    @settings(max_examples=40, deadline=None)
    def test_optimum_never_beaten_by_probes(self, mtbf, cost, restart):
        model = GoodputModel(mtbf=mtbf, checkpoint_cost=cost,
                             restart_cost=restart)
        optimum = model.optimal_interval(low=1.0)
        waste = model.wasted_fraction(optimum)
        for factor in (0.25, 0.5, 2.0, 4.0):
            assert waste <= model.wasted_fraction(optimum * factor) + 1e-6
