"""Tests for node-level gang placement."""

import pytest

from repro.cluster.cluster import make_seren
from repro.scheduler.placement import GangPlacer, PlacementError


class TestGangPlacer:
    def test_place_and_release(self):
        cluster = make_seren(4)
        placer = GangPlacer(cluster)
        placement = placer.place("job-a", 16)
        assert placement.gpu_count == 16
        assert cluster.free_gpus == 16
        assert placer.release("job-a") == 16
        assert cluster.free_gpus == 32

    def test_whole_node_requirement(self):
        cluster = make_seren(4)
        placer = GangPlacer(cluster)
        placement = placer.place("pretrain", 24, require_whole_nodes=True)
        assert placement.is_node_aligned
        assert len(placement.node_names) == 3

    def test_whole_node_demand_must_align(self):
        placer = GangPlacer(make_seren(4))
        with pytest.raises(PlacementError):
            placer.place("bad", 12, require_whole_nodes=True)

    def test_fragmented_cluster_blocks_gang_jobs(self):
        cluster = make_seren(2)
        placer = GangPlacer(cluster)
        # Fragment every node with a 1-GPU job.
        for index, node in enumerate(cluster.nodes):
            node.allocate_gpus(1, f"frag-{index}")
        with pytest.raises(PlacementError):
            placer.place("gang", 8, require_whole_nodes=True)
        # Non-gang placement still fits.
        assert placer.place("loose", 8).gpu_count == 8

    def test_capacity_exhaustion(self):
        placer = GangPlacer(make_seren(1))
        placer.place("a", 8)
        with pytest.raises(PlacementError):
            placer.place("b", 1)

    def test_duplicate_job_rejected(self):
        placer = GangPlacer(make_seren(2))
        placer.place("a", 4)
        with pytest.raises(PlacementError):
            placer.place("a", 4)

    def test_release_unknown_job_rejected(self):
        with pytest.raises(PlacementError):
            GangPlacer(make_seren(1)).release("ghost")

    def test_cordoned_nodes_avoided(self):
        cluster = make_seren(3)
        cluster.nodes[0].cordon()
        placer = GangPlacer(cluster)
        placement = placer.place("a", 16, require_whole_nodes=True)
        assert cluster.nodes[0].name not in placement.node_names

    def test_migrate_off_faulty_nodes(self):
        """The §6.1 restart flow: cordon + re-place on healthy nodes."""
        cluster = make_seren(4)
        placer = GangPlacer(cluster)
        original = placer.place("pretrain", 16,
                                require_whole_nodes=True)
        bad = {original.node_names[0]}
        replacement = placer.migrate_off("pretrain", bad)
        assert replacement.gpu_count == 16
        assert not bad & set(replacement.node_names)
        assert not cluster.nodes[
            [n.name for n in cluster.nodes].index(next(iter(bad)))
        ].schedulable

    def test_migrate_fails_without_healthy_capacity(self):
        cluster = make_seren(2)
        placer = GangPlacer(cluster)
        placement = placer.place("pretrain", 16,
                                 require_whole_nodes=True)
        with pytest.raises(PlacementError):
            placer.migrate_off("pretrain", set(placement.node_names))

    def test_placement_tracking(self):
        placer = GangPlacer(make_seren(2))
        placer.place("a", 4)
        assert placer.placed_jobs == ["a"]
        assert placer.placement_of("a").gpu_count == 4
        assert placer.placement_of("ghost") is None
