"""Tests for transformer model accounting."""

import pytest

from repro.training.model import (MISTRAL_7B_MOE, MODEL_7B, MODEL_104B,
                                  MODEL_123B, TransformerConfig)


class TestParameterCounts:
    def test_7b_is_about_7_billion(self):
        assert 6e9 < MODEL_7B.param_count < 8e9

    def test_104b_is_about_104_billion(self):
        assert 98e9 < MODEL_104B.param_count < 112e9

    def test_123b_is_about_123_billion(self):
        assert 115e9 < MODEL_123B.param_count < 130e9

    def test_params_grow_with_layers(self):
        small = TransformerConfig("s", layers=2, hidden=512, heads=8)
        big = TransformerConfig("b", layers=4, hidden=512, heads=8)
        assert big.param_count > small.param_count

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", layers=2, hidden=100, heads=3)


class TestComputeAndMemory:
    def test_flops_per_token_is_6n(self):
        assert MODEL_7B.flops_per_token() == pytest.approx(
            6 * MODEL_7B.param_count)

    def test_recompute_raises_to_8n(self):
        assert MODEL_7B.flops_per_token(recompute=True) == pytest.approx(
            8 * MODEL_7B.param_count)

    def test_model_state_is_16_psi(self):
        # §4.1: params 2, grads 2, optimizer states 12 bytes per param.
        assert MODEL_123B.model_state_bytes == 16 * MODEL_123B.param_count

    def test_flash_attention_removes_quadratic_term(self):
        with_flash = MODEL_123B.activation_bytes_per_layer(
            1, flash_attention=True)
        without = MODEL_123B.activation_bytes_per_layer(
            1, flash_attention=False)
        assert without > with_flash

    def test_recompute_keeps_only_boundaries(self):
        boundary = MODEL_123B.activation_bytes_per_layer(1, recompute=True)
        full = MODEL_123B.activation_bytes_per_layer(1)
        assert boundary == pytest.approx(
            2 * MODEL_123B.seq_len * MODEL_123B.hidden)
        assert full / boundary == pytest.approx(17.0)

    def test_activation_scales_with_micro_batch(self):
        one = MODEL_7B.activation_bytes_per_layer(1)
        four = MODEL_7B.activation_bytes_per_layer(4)
        assert four == pytest.approx(4 * one)

    def test_describe_mentions_size(self):
        assert "121.9B" in MODEL_123B.describe() or "B params" in \
            MODEL_123B.describe()


class TestMoE:
    def test_total_params_exceed_active(self):
        assert (MISTRAL_7B_MOE.param_count
                > MISTRAL_7B_MOE.active_param_count)

    def test_top2_of_8_experts(self):
        assert MISTRAL_7B_MOE.num_experts == 8
        assert MISTRAL_7B_MOE.experts_per_token == 2

    def test_mixtral_scale_total_params(self):
        # 8x7B-style MoE: total well above the dense base.
        assert MISTRAL_7B_MOE.param_count > 3 * \
            MISTRAL_7B_MOE.base.param_count

    def test_alltoall_bytes_positive(self):
        assert MISTRAL_7B_MOE.alltoall_bytes_per_layer(1) > 0
