"""Fast-vs-reference equivalence harness.

The backbone guarantee of the fast path: for everything a run's
artifacts observe — the event log, the summary, the full observability
export — an optimized run is **byte-identical** to a reference run.
``run_both`` executes one scenario under each path and returns both
artifact bundles; every test is a straight ``==`` on strings.

These tests catch what the golden fixtures alone cannot: a fast-path
bug that changes behaviour *symmetrically* with a regenerated golden
would slip through ``test_chaos_golden``, but never through a direct
fast-vs-reference diff of the same build.
"""

import json

import pytest

from repro.chaos import BUNDLED_SCENARIOS
from repro.chaos.harness import ChaosHarness
from repro.cluster.network import clear_rate_cache
from repro.obs import Tracer, chrome_trace_json
from repro.sim.fastpath import fast_path_enabled, set_fast_path, use_fast_path

SCENARIOS = sorted(BUNDLED_SCENARIOS)


def run_traced(scenario_name, fast):
    """One traced run under the given path; returns its artifacts."""
    clear_rate_cache()
    with use_fast_path(fast):
        tracer = Tracer()
        harness = ChaosHarness(BUNDLED_SCENARIOS[scenario_name],
                               tracer=tracer)
        result = harness.run()
    return {
        "event_log": result.event_log_text(),
        "summary": result.summary.to_json(),
        "chrome_trace": chrome_trace_json(
            tracer, end_time=result.scenario.duration),
        "events_processed": harness.engine.events_processed,
    }


@pytest.fixture(params=SCENARIOS)
def both_paths(request):
    """(fast artifacts, reference artifacts) for one scenario."""
    return (run_traced(request.param, fast=True),
            run_traced(request.param, fast=False))


def test_event_logs_byte_identical(both_paths):
    fast, reference = both_paths
    assert fast["event_log"] == reference["event_log"]


def test_summaries_byte_identical(both_paths):
    fast, reference = both_paths
    assert fast["summary"] == reference["summary"]


def test_obs_exports_byte_identical(both_paths):
    """The full Chrome-trace export (spans, counters, gauges) matches."""
    fast, reference = both_paths
    assert fast["chrome_trace"] == reference["chrome_trace"]


def test_same_event_count(both_paths):
    """Both paths execute the exact same number of engine events."""
    fast, reference = both_paths
    assert fast["events_processed"] == reference["events_processed"]


def test_switch_scoping_restores_previous_state():
    assert fast_path_enabled()  # on by default
    with use_fast_path(False):
        assert not fast_path_enabled()
        with use_fast_path(True):
            assert fast_path_enabled()
        assert not fast_path_enabled()
    assert fast_path_enabled()
    previous = set_fast_path(False)
    assert previous is True
    assert set_fast_path(previous) is False
    assert fast_path_enabled()


def test_chrome_trace_is_valid_json(both_paths):
    fast, _ = both_paths
    payload = json.loads(fast["chrome_trace"])
    assert payload["traceEvents"]
