"""Tests for parallelism plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training.parallelism import (ParallelismPlan, internevo_v1,
                                        internevo_v2)


class TestValidation:
    def test_world_must_divide_model_parallel(self):
        with pytest.raises(ValueError):
            ParallelismPlan("bad", world_size=100, tensor_parallel=8,
                            pipeline_parallel=4)

    def test_shard_group_must_divide_dp(self):
        with pytest.raises(ValueError):
            ParallelismPlan("bad", world_size=128, zero_shard_group=48)

    def test_zero_micro_batches_rejected(self):
        with pytest.raises(ValueError):
            ParallelismPlan("bad", world_size=8, micro_batches=0)


class TestDerived:
    def test_v1_data_parallel_is_64(self):
        assert internevo_v1(2048).data_parallel == 64

    def test_v2_is_pure_data_parallel(self):
        plan = internevo_v2(2048)
        assert plan.data_parallel == 2048
        assert plan.tensor_parallel == 1
        assert plan.recompute

    def test_both_strategies_share_global_batch(self):
        # §4.1: "Both versions maintain the same global batch size."
        assert (internevo_v1(2048).global_batch_size
                == internevo_v2(2048).global_batch_size)

    def test_bubble_fraction_formula(self):
        plan = ParallelismPlan("p", world_size=32, pipeline_parallel=4,
                               micro_batches=8)
        assert plan.pipeline_bubble_fraction == pytest.approx(3 / 11)

    def test_no_pipeline_no_bubble(self):
        assert internevo_v2(64).pipeline_bubble_fraction == 0.0

    def test_layers_per_stage(self):
        assert internevo_v1(2048).layers_per_stage(96) == 24

    def test_layers_must_divide_stages(self):
        with pytest.raises(ValueError):
            internevo_v1(2048).layers_per_stage(97)


class TestOneFOneB:
    def test_rank0_holds_most_microbatches(self):
        plan = internevo_v1(2048)
        in_flight = [plan.in_flight_microbatches(r) for r in range(4)]
        assert in_flight == [4, 3, 2, 1]

    def test_in_flight_capped_by_micro_batches(self):
        plan = ParallelismPlan("p", world_size=8, pipeline_parallel=4,
                               micro_batches=2)
        assert plan.in_flight_microbatches(0) == 2

    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            internevo_v1(2048).in_flight_microbatches(4)

    @given(pp=st.integers(1, 16), m=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_in_flight_monotonically_decreasing(self, pp, m):
        world = pp * 8
        plan = ParallelismPlan("p", world_size=world,
                               pipeline_parallel=pp, micro_batches=m)
        counts = [plan.in_flight_microbatches(r) for r in range(pp)]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] >= 1
