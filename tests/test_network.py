"""Tests for the bandwidth-sharing network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.linkhealth import LinkHealth
from repro.cluster.network import (FairShareLink, Flow, Link, NetworkFabric,
                                   allreduce_time, alltoall_time,
                                   max_min_fair_rates)


class TestFairShareLink:
    def test_single_flow_gets_full_bandwidth(self):
        link = FairShareLink(100.0)
        assert link.rate_for(1) == 100.0

    def test_equal_split(self):
        assert FairShareLink(100.0).rate_for(4) == 25.0

    def test_per_flow_cap_binds(self):
        assert FairShareLink(100.0).rate_for(2, per_flow_cap=10.0) == 10.0

    def test_transfer_time(self):
        assert FairShareLink(10.0).transfer_time(100.0, concurrent=2) == 20.0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            FairShareLink(0.0)

    def test_rejects_zero_concurrency(self):
        with pytest.raises(ValueError):
            FairShareLink(10.0).rate_for(0)

    def test_zero_size_transfer_is_instant(self):
        assert FairShareLink(10.0).transfer_time(0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FairShareLink(10.0).transfer_time(-1.0)

    def test_cap_below_fair_share_is_honored(self):
        # Fair share would be 50; the 5.0 cap must win.
        assert FairShareLink(100.0).rate_for(2, per_flow_cap=5.0) == 5.0


class TestMaxMinFairness:
    def test_single_bottleneck_equal_share(self):
        links = {"l": 90.0}
        flows = [Flow("a", ("l",)), Flow("b", ("l",)), Flow("c", ("l",))]
        rates = max_min_fair_rates(links, flows)
        assert all(rate == pytest.approx(30.0) for rate in rates.values())

    def test_uncontended_flow_gets_its_link(self):
        links = {"x": 10.0, "y": 100.0}
        flows = [Flow("a", ("x",)), Flow("b", ("y",))]
        rates = max_min_fair_rates(links, flows)
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(100.0)

    def test_multi_hop_takes_worst_link(self):
        links = {"fast": 100.0, "slow": 10.0}
        flows = [Flow("a", ("fast", "slow"))]
        rates = max_min_fair_rates(links, flows)
        assert rates["a"] == pytest.approx(10.0)

    def test_rate_cap_frees_bandwidth_for_others(self):
        links = {"l": 100.0}
        flows = [Flow("capped", ("l",), rate_cap=10.0),
                 Flow("greedy", ("l",))]
        rates = max_min_fair_rates(links, flows)
        assert rates["capped"] == pytest.approx(10.0)
        assert rates["greedy"] == pytest.approx(90.0)

    def test_unknown_link_raises_value_error(self):
        # A clear ValueError naming flow and link, not a bare KeyError.
        with pytest.raises(ValueError, match="flow a .* 'ghost'"):
            max_min_fair_rates({"l": 1.0}, [Flow("a", ("ghost",))])

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=8),
           st.floats(10.0, 1000.0))
    @settings(max_examples=40, deadline=None)
    def test_no_link_oversubscribed(self, paths, bandwidth):
        """Property: total allocated rate on any link <= its capacity."""
        links = {f"l{i}": bandwidth for i in range(5)}
        flows = [Flow(f"f{j}", tuple(f"l{i % 5}"
                                     for i in range(path)))
                 for j, path in enumerate(paths)]
        rates = max_min_fair_rates(links, flows)
        usage: dict[str, float] = {}
        for flow in flows:
            for link in flow.links:
                usage[link] = usage.get(link, 0.0) + rates[flow.flow_id]
        for link, used in usage.items():
            assert used <= links[link] * (1 + 1e-9)

    @given(st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_equal_flows_get_equal_rates(self, n_flows):
        links = {"l": 100.0}
        flows = [Flow(f"f{i}", ("l",)) for i in range(n_flows)]
        rates = max_min_fair_rates(links, flows)
        values = list(rates.values())
        assert max(values) - min(values) < 1e-9

    @given(st.lists(st.floats(0.5, 50.0), min_size=1, max_size=6),
           st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_caps_respected_and_order_invariant(self, caps, rng):
        """Properties: no flow exceeds its rate_cap, and the allocation
        does not depend on the order flows are presented in."""
        links = {"l": 40.0, "m": 60.0}
        flows = [Flow(f"f{i}", ("l", "m") if i % 2 else ("l",),
                      rate_cap=cap)
                 for i, cap in enumerate(caps)]
        rates = max_min_fair_rates(links, flows)
        for flow in flows:
            assert rates[flow.flow_id] <= flow.rate_cap + 1e-9
        shuffled = list(flows)
        rng.shuffle(shuffled)
        again = max_min_fair_rates(links, shuffled)
        for flow_id, rate in rates.items():
            assert again[flow_id] == pytest.approx(rate)


class TestFabric:
    def test_duplicate_link_rejected(self):
        fabric = NetworkFabric()
        fabric.add_link(Link("a", 1.0))
        with pytest.raises(ValueError):
            fabric.add_link(Link("a", 2.0))

    def test_transfer_times(self):
        fabric = NetworkFabric()
        fabric.add_link(Link("nic", 10.0))
        flows = [Flow("a", ("nic",)), Flow("b", ("nic",))]
        times = fabric.transfer_times(flows, {"a": 10.0, "b": 5.0})
        assert times["a"] == pytest.approx(2.0)
        assert times["b"] == pytest.approx(1.0)

    def test_link_lookup(self):
        fabric = NetworkFabric()
        fabric.add_link(Link("nic", 10.0))
        assert fabric.has_link("nic")
        assert fabric.link("nic").bandwidth == 10.0


class TestFabricWithHealth:
    def make_fabric(self, health):
        fabric = NetworkFabric(health=health)
        fabric.add_link(Link("nic", 10.0))
        return fabric

    def test_degraded_link_scales_rates(self):
        health = LinkHealth()
        health.link_degraded("nic", start=0.0, end=100.0, factor=0.5)
        fabric = self.make_fabric(health)
        rates = fabric.rates([Flow("a", ("nic",))], at=50.0)
        assert rates["a"] == pytest.approx(5.0)

    def test_window_over_restores_full_rate(self):
        health = LinkHealth()
        health.link_degraded("nic", start=0.0, end=100.0, factor=0.5)
        fabric = self.make_fabric(health)
        rates = fabric.rates([Flow("a", ("nic",))], at=100.0)
        assert rates["a"] == pytest.approx(10.0)

    def test_downed_link_means_infinite_transfer(self):
        health = LinkHealth()
        health.link_down("nic", start=0.0, end=100.0)
        fabric = self.make_fabric(health)
        times = fabric.transfer_times([Flow("a", ("nic",))],
                                      {"a": 10.0}, at=10.0)
        assert times["a"] == float("inf")

    def test_empty_overlay_is_a_no_op(self):
        healthy = NetworkFabric()
        healthy.add_link(Link("nic", 10.0))
        overlaid = self.make_fabric(LinkHealth())
        flows = [Flow("a", ("nic",)), Flow("b", ("nic",))]
        assert overlaid.rates(flows, at=5.0) == healthy.rates(flows)


class TestCollectiveModels:
    def test_allreduce_zero_for_single_worker(self):
        assert allreduce_time(1e9, 1, 1e9) == 0.0

    def test_allreduce_volume_scales_with_world(self):
        # 2*(w-1)/w converges to 2x the buffer over the link.
        small = allreduce_time(1e9, 2, 1e9, latency=0.0)
        large = allreduce_time(1e9, 64, 1e9, latency=0.0)
        assert small == pytest.approx(1.0)
        assert large == pytest.approx(2 * 63 / 64)

    def test_alltoall_zero_for_single_worker(self):
        assert alltoall_time(1e9, 1, 1e9) == 0.0

    def test_alltoall_grows_with_world(self):
        assert (alltoall_time(1e9, 16, 1e9)
                > alltoall_time(1e9, 2, 1e9))
