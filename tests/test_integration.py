"""Cross-subsystem integration tests.

Each test wires several packages together the way the deployed systems
do — trace -> scheduler -> analysis; failure -> log -> diagnosis ->
recovery -> checkpoint; spikes -> detector -> rollback; datasets ->
coordinator.
"""

import numpy as np
import pytest

from repro.cluster.machine import Node, NodeHealth, kalos_node_spec
from repro.core.checkpoint import AsyncCheckpointer, InMemoryStorage
from repro.core.diagnosis import DiagnosisSystem
from repro.core.recovery import (CheckpointCatalog, CollectiveTester,
                                 LossSpikeDetector, RecoveryController)
from repro.failures.injector import FailureInjector
from repro.failures.logs import LogGenerator
from repro.failures.taxonomy import FailureCategory, taxonomy_by_reason
from repro.scheduler.job import FinalStatus, JobType
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator
from repro.training.loss import train_with_spike_recovery
from repro.workload.generator import TraceGenerator
from repro.workload.spec import KALOS_SPEC


class TestTraceThroughScheduler:
    """The Fig. 6 pipeline: generator -> scheduler -> delay statistics."""

    @pytest.fixture(scope="class")
    def scheduled_trace(self):
        from dataclasses import replace

        spec = replace(KALOS_SPEC,
                       span=KALOS_SPEC.span * 2000 / KALOS_SPEC.
                       real_gpu_jobs)
        trace = TraceGenerator(spec, seed=31).generate(2000)
        simulator = SchedulerSimulator(SchedulerConfig(
            total_gpus=KALOS_SPEC.total_gpus, reserved_fraction=0.98))
        simulator.simulate(list(trace.gpu_jobs()))
        return trace, simulator

    def test_every_job_ran(self, scheduled_trace):
        trace, simulator = scheduled_trace
        assert all(job.end_time is not None
                   for job in trace.gpu_jobs())

    def test_occupancy_never_exceeds_cluster(self, scheduled_trace):
        _, simulator = scheduled_trace
        peak = max(gpus for _, gpus in simulator.occupancy)
        assert peak <= KALOS_SPEC.total_gpus

    def test_gpu_seconds_match_job_accounting(self, scheduled_trace):
        trace, simulator = scheduled_trace
        expected = sum(job.gpu_time for job in trace.gpu_jobs())
        # Preempted jobs rerun, so the simulator may burn extra
        # GPU-seconds, never fewer.
        assert simulator.gpu_seconds_used() >= expected * 0.999

    def test_delay_inversion_emerges(self, scheduled_trace):
        trace, _ = scheduled_trace
        eval_delay = np.median(trace.queueing_delays(JobType.EVALUATION))
        pretrain_delay = np.median(
            trace.queueing_delays(JobType.PRETRAIN))
        assert eval_delay >= pretrain_delay


class TestFailureToRecoveryLoop:
    """Injected failure -> synthetic log -> diagnosis -> recovery plan."""

    def test_sampled_failures_get_correct_plans(self):
        injector = FailureInjector(seed=41)
        logs = LogGenerator(seed=41)
        nodes = [Node(name=f"n{i}", spec=kalos_node_spec())
                 for i in range(8)]
        controller = RecoveryController(
            DiagnosisSystem(), CheckpointCatalog([100, 200, 300]), nodes)
        taxonomy = taxonomy_by_reason()
        for _ in range(10):
            event = injector.sample_pretraining_failure("kalos")
            log = logs.failed_log(event.reason, n_steps=40)
            plan = controller.handle_failure(
                log.lines, CollectiveTester({"n1"}))
            spec = taxonomy[plan.diagnosis.reason]
            if spec.category is FailureCategory.SCRIPT:
                assert not plan.restart
            else:
                assert plan.restart
                assert plan.restart_checkpoint_step == 300
            for name in plan.cordoned_nodes:
                node = controller.nodes[name]
                if node.health is NodeHealth.FAULTY:
                    # repeat offender escalated: hardware replacement
                    # brings back a fresh node under the same name
                    controller.nodes[name] = Node(name=name,
                                                  spec=kalos_node_spec())
                    controller.conviction_counts.pop(name, None)
                else:
                    node.uncordon()
        assert controller.automation_rate() == 1.0

    def test_trace_level_failure_attribution_round_trip(self,
                                                        kalos_trace):
        """Reasons assigned to a trace are diagnosable from their logs."""
        injector = FailureInjector(seed=42)
        injector.assign_to_trace(kalos_trace)
        logs = LogGenerator(seed=42)
        system = DiagnosisSystem()
        failed = [job for job in kalos_trace.gpu_jobs()
                  if job.final_status is FinalStatus.FAILED][:12]
        for job in failed:
            log = logs.failed_log(job.failure_reason, n_steps=40)
            assert system.diagnose(log.lines).reason == \
                job.failure_reason


class TestCheckpointRecoveryRoundTrip:
    def test_state_survives_failure_and_restart(self):
        """Async checkpoint -> crash -> load-latest -> resume."""
        storage = InMemoryStorage()
        rng = np.random.default_rng(0)
        catalog = CheckpointCatalog()
        with AsyncCheckpointer(storage, buffer_slots=4) as ckpt:
            state = {}
            for step in (100, 200, 300):
                state = {"weights": rng.normal(size=4096),
                         "step": np.array([step])}
                ckpt.save(step, state)
                catalog.add(step)
            ckpt.flush()
        # "Crash" — reopen storage cold.
        with AsyncCheckpointer(storage) as recovered:
            step, restored = recovered.load_latest()
        assert step == catalog.latest() == 300
        assert np.allclose(restored["weights"], state["weights"])

    def test_loss_spike_rollback_targets_existing_checkpoint(self):
        catalog = CheckpointCatalog([100, 200, 300, 400])
        nodes = [Node(name="n0", spec=kalos_node_spec())]
        controller = RecoveryController(DiagnosisSystem(), catalog, nodes)
        detector = LossSpikeDetector(window=20, patience=3,
                                     relative_floor=0.2)
        event = None
        for step in range(430):
            loss = 2.0 if step < 410 else 9.0
            event = detector.observe(step, loss) or event
        assert event is not None
        plan = controller.handle_anomaly(event)
        assert plan.restart_checkpoint_step in (100, 200)
        assert plan.skip_batches


class TestSpikeRecoveryEndToEnd:
    def test_campaign_completes_despite_spikes(self):
        result = train_with_spike_recovery(
            total_steps=2500, spike_steps=[600, 1700],
            checkpoint_interval=250, seed=50)
        assert result.final_step == 2500
        assert result.rollback_count == 2
        # Total work exceeds 2500 steps (rolled-back ranges reran).
        assert len(result.steps) > 2500
