"""Tests for the discrete-event cluster scheduler."""

import pytest

from repro.scheduler.job import Job, JobType
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator


def job(job_id, demand, submit=0.0, duration=100.0,
        job_type=JobType.EVALUATION):
    return Job(job_id=job_id, cluster="test", job_type=job_type,
               submit_time=submit, duration=duration, gpu_demand=demand)


class TestConfig:
    def test_pool_split(self):
        config = SchedulerConfig(total_gpus=100, reserved_fraction=0.75)
        assert config.reserved_gpus == 75
        assert config.shared_gpus == 25

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            SchedulerConfig(total_gpus=10, reserved_fraction=1.5)

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            SchedulerConfig(total_gpus=0)


class TestBasicScheduling:
    def test_job_fitting_starts_immediately(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=8,
                                                 reserved_fraction=0.0))
        jobs = [job("a", 4)]
        sim.simulate(jobs)
        assert jobs[0].queueing_delay == 0.0
        assert jobs[0].end_time == 100.0

    def test_contention_queues_second_job(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=8,
                                                 reserved_fraction=0.0))
        jobs = [job("a", 8), job("b", 8)]
        sim.simulate(jobs)
        assert jobs[0].queueing_delay == 0.0
        assert jobs[1].queueing_delay == pytest.approx(100.0)

    def test_backfill_lets_small_job_pass_blocked_big_one(self):
        # a holds 6; big (8) cannot fit; small (2) backfills around it.
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=8,
                                                 reserved_fraction=0.0))
        jobs = [job("a", 6, submit=0.0),
                job("big", 8, submit=1.0),
                job("small", 2, submit=2.0)]
        sim.simulate(jobs)
        assert jobs[2].start_time == pytest.approx(2.0)
        # big waits for both a (t=100) and the backfilled small (t=102).
        assert jobs[1].start_time == pytest.approx(102.0)

    def test_cpu_jobs_bypass_gpu_queue(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=8))
        cpu = job("cpu", 0, duration=10.0)
        sim.simulate([cpu])
        assert cpu.queueing_delay == 0.0
        assert cpu.end_time == 10.0

    def test_demand_exceeding_cluster_rejected(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=8))
        with pytest.raises(ValueError):
            sim.simulate([job("huge", 9)])


class TestReservation:
    def test_pretrain_uses_reserved_quota(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=10,
                                                 reserved_fraction=0.8))
        pre = job("pre", 8, job_type=JobType.PRETRAIN)
        ev = job("ev", 2, job_type=JobType.EVALUATION)
        sim.simulate([pre, ev])
        assert pre.queueing_delay == 0.0
        assert ev.queueing_delay == 0.0

    def test_evaluation_confined_to_shared_pool(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=10,
                                                 reserved_fraction=0.8))
        evals = [job(f"e{i}", 2, job_type=JobType.EVALUATION)
                 for i in range(3)]
        sim.simulate(evals)
        started = sorted(e.start_time for e in evals)
        # Shared pool holds 2 GPUs: strictly one eval at a time even
        # though 8 reserved GPUs are idle.
        assert started == [0.0, 100.0, 200.0]

    def test_pretrain_spills_into_shared_pool(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=10,
                                                 reserved_fraction=0.8))
        pre = job("pre", 10, job_type=JobType.PRETRAIN)
        sim.simulate([pre])
        assert pre.queueing_delay == 0.0

    def test_oversized_best_effort_borrows_idle_reserved(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=10,
                                                 reserved_fraction=0.8))
        debug = job("dbg", 6, job_type=JobType.DEBUG)
        sim.simulate([debug])
        assert debug.queueing_delay == 0.0

    def test_evaluation_waits_behind_pretrain_priority(self):
        # Both queue behind a blocker; when capacity frees, pretraining
        # is picked first despite arriving after the evaluation job.
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=10,
                                                 reserved_fraction=0.8))
        blocker = job("blk", 10, submit=0.0, duration=10.0,
                      job_type=JobType.PRETRAIN)
        ev = job("ev", 2, submit=1.0, job_type=JobType.EVALUATION)
        pre = job("pre", 10, submit=2.0, job_type=JobType.PRETRAIN)
        sim.simulate([blocker, ev, pre])
        assert pre.start_time == pytest.approx(10.0)
        assert ev.start_time == pytest.approx(110.0)


class TestAccounting:
    def test_gpu_seconds_used(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=8,
                                                 reserved_fraction=0.0))
        sim.simulate([job("a", 4, duration=50.0)])
        assert sim.gpu_seconds_used() == pytest.approx(200.0)

    def test_all_jobs_eventually_finish(self):
        sim = SchedulerSimulator(SchedulerConfig(total_gpus=4,
                                                 reserved_fraction=0.0))
        jobs = [job(f"j{i}", 2, submit=float(i)) for i in range(10)]
        sim.simulate(jobs)
        assert all(j.end_time is not None for j in jobs)
        assert len(sim.finished) == 10


class TestPreemption:
    def test_reserved_job_evicts_borrower(self):
        config = SchedulerConfig(total_gpus=10, reserved_fraction=0.8)
        sim = SchedulerSimulator(config)
        # The oversized best-effort job borrows 4 reserved GPUs.
        debug = job("dbg", 6, submit=0.0, duration=100.0,
                    job_type=JobType.DEBUG)
        pre = job("pre", 8, submit=10.0, duration=50.0,
                  job_type=JobType.PRETRAIN)
        sim.simulate([debug, pre])
        assert pre.start_time == pytest.approx(10.0)
        assert sim.preemptions == 1
        assert debug.metadata["preemptions"] == 1
        # The borrower reruns after the reserved job finishes.
        assert debug.end_time == pytest.approx(60.0 + 100.0)

    def test_preempted_job_keeps_first_start_for_delay(self):
        config = SchedulerConfig(total_gpus=10, reserved_fraction=0.8)
        sim = SchedulerSimulator(config)
        debug = job("dbg", 6, submit=0.0, duration=100.0,
                    job_type=JobType.DEBUG)
        pre = job("pre", 8, submit=10.0, duration=50.0,
                  job_type=JobType.PRETRAIN)
        sim.simulate([debug, pre])
        assert debug.queueing_delay == 0.0

    def test_no_preemption_when_disabled(self):
        config = SchedulerConfig(total_gpus=10, reserved_fraction=0.8,
                                 preempt_borrowers=False)
        sim = SchedulerSimulator(config)
        debug = job("dbg", 6, submit=0.0, duration=100.0,
                    job_type=JobType.DEBUG)
        pre = job("pre", 8, submit=10.0, duration=50.0,
                  job_type=JobType.PRETRAIN)
        sim.simulate([debug, pre])
        assert sim.preemptions == 0
        assert pre.start_time == pytest.approx(100.0)

    def test_pure_shared_jobs_never_preempted(self):
        config = SchedulerConfig(total_gpus=10, reserved_fraction=0.8)
        sim = SchedulerSimulator(config)
        ev = job("ev", 2, submit=0.0, duration=100.0,
                 job_type=JobType.EVALUATION)
        pre = job("pre", 8, submit=10.0, duration=50.0,
                  job_type=JobType.PRETRAIN)
        sim.simulate([ev, pre])
        assert sim.preemptions == 0
        assert ev.end_time == pytest.approx(100.0)

    def test_youngest_borrower_evicted_first(self):
        config = SchedulerConfig(total_gpus=20, reserved_fraction=0.8)
        # shared pool = 4; two borrowers of 6 each (2 reserved apiece
        # would not trigger: make them big borrowers)
        sim = SchedulerSimulator(config)
        old = job("old", 8, submit=0.0, duration=100.0,
                  job_type=JobType.DEBUG)
        young = job("young", 8, submit=1.0, duration=100.0,
                    job_type=JobType.DEBUG)
        pre = job("pre", 8, submit=2.0, duration=50.0,
                  job_type=JobType.PRETRAIN)
        sim.simulate([old, young, pre])
        assert young.metadata.get("preemptions", 0) == 1
        assert "preemptions" not in old.metadata


class TestLiveOps:
    """Live single-job submission, fault injection, and cordons (the
    surface the chaos harness drives)."""

    def make_sim(self, total=8, reserved=0.0):
        return SchedulerSimulator(SchedulerConfig(
            total_gpus=total, reserved_fraction=reserved))

    def test_submit_then_run(self):
        sim = self.make_sim()
        submitted = job("a", 4, submit=5.0)
        sim.submit(submitted)
        sim.engine.run()
        assert submitted.start_time == 5.0
        assert submitted.end_time == 105.0

    def test_submit_rejects_oversized_demand(self):
        sim = self.make_sim(total=8)
        with pytest.raises(ValueError):
            sim.submit(job("huge", 16))

    def test_running_jobs_ordered_by_start(self):
        sim = self.make_sim()
        sim.submit(job("late", 2, submit=10.0, duration=500.0))
        sim.submit(job("early", 2, submit=0.0, duration=500.0))
        sim.engine.run(until=50.0)
        assert [j.job_id for j in sim.running_jobs()] == ["early", "late"]

    def test_fail_job_frees_gpus_and_reschedules(self):
        sim = self.make_sim()
        victim = job("victim", 8, submit=0.0, duration=1000.0)
        waiting = job("waiting", 8, submit=1.0, duration=10.0)
        sim.submit(victim)
        sim.submit(waiting)
        sim.engine.run(until=100.0)
        failed = sim.fail_job("victim", reason="NVLinkError")
        assert failed.failure_reason == "NVLinkError"
        assert failed.end_time == 100.0
        sim.engine.run()
        assert waiting.start_time == 100.0  # backfilled immediately

    def test_fail_unknown_job_raises(self):
        sim = self.make_sim()
        with pytest.raises(KeyError):
            sim.fail_job("ghost")

    def test_fail_job_notifies_hooks(self):
        sim = self.make_sim()
        events = []
        sim.hooks.append(lambda kind, j: events.append((kind, j.job_id)))
        sim.submit(job("a", 4, duration=50.0))
        sim.engine.run(until=10.0)
        sim.fail_job("a")
        assert events == [("start", "a"), ("fail", "a")]

    def test_cordon_takes_free_gpus_immediately(self):
        sim = self.make_sim(total=8)
        sim.cordon_gpus(4)
        assert sim.cordoned_gpus == 4
        assert sim.free_shared == 4

    def test_cordon_of_busy_gpus_is_deferred(self):
        sim = self.make_sim(total=8)
        running = job("busy", 8, submit=0.0, duration=100.0)
        sim.submit(running)
        sim.engine.run(until=10.0)
        sim.cordon_gpus(4)
        # nothing free: the cordon waits for the allocation to drain
        assert sim.cordoned_gpus == 0
        assert sim._pending_cordon == 4
        sim.engine.run()
        assert sim.cordoned_gpus == 4
        assert sim.free_shared == 4

    def test_uncordon_cancels_pending_first(self):
        sim = self.make_sim(total=8)
        sim.submit(job("busy", 8, submit=0.0, duration=100.0))
        sim.engine.run(until=10.0)
        sim.cordon_gpus(4)
        sim.uncordon_gpus(4)
        assert sim._pending_cordon == 0
        sim.engine.run()
        assert sim.cordoned_gpus == 0
        assert sim.free_shared == 8

    def test_uncordon_restores_capacity(self):
        sim = self.make_sim(total=8)
        sim.cordon_gpus(8)
        blocked = job("blocked", 8, submit=0.0, duration=10.0)
        sim.submit(blocked)
        sim.engine.run(until=5.0)
        assert blocked.start_time is None
        sim.uncordon_gpus(8)
        sim.engine.run()
        assert blocked.start_time == 5.0

    def test_uncordon_more_than_cordoned_raises(self):
        sim = self.make_sim(total=8)
        sim.cordon_gpus(2)
        with pytest.raises(ValueError):
            sim.uncordon_gpus(4)

    def test_gpus_allocated_tracks_live_jobs(self):
        sim = self.make_sim(total=8)
        sim.submit(job("a", 3, duration=50.0))
        sim.submit(job("b", 2, duration=50.0))
        sim.engine.run(until=10.0)
        assert sim.gpus_allocated == 5
        sim.engine.run()
        assert sim.gpus_allocated == 0
