"""Tests for the telemetry simulators (Figs. 7/8/9/18/21, A.3)."""

import numpy as np
import pytest

from repro.monitor.carbon import (ACME_CARBON, CarbonModel,
                                  SEREN_MAY_2023_EMISSIONS_TCO2E,
                                  SEREN_MAY_2023_ENERGY_MWH)
from repro.monitor.dcgm import DcgmSampler
from repro.monitor.hostmem import (HostMemoryBreakdown,
                                   pretraining_host_memory)
from repro.monitor.ipmi import IpmiSampler
from repro.monitor.power import (GpuPowerModel, PowerCappingModel,
                                 ServerPowerModel)
from repro.monitor.prometheus import PrometheusSampler
from repro.monitor.temperature import TemperatureModel
from repro.obs import Tracer


class TestDcgm:
    def test_idle_fraction_observed(self, kalos_trace):
        sampler = DcgmSampler(kalos_trace, idle_fraction=0.3, seed=1)
        samples = sampler.sample_many(3000)
        idle = sum(1 for s in samples if s.job_type is None)
        assert idle / len(samples) == pytest.approx(0.3, abs=0.03)

    def test_median_sm_activity_near_40pct(self, kalos_trace):
        """Fig. 7a: median SM activity ~40% (2x PAI's 20%)."""
        arrays = DcgmSampler(kalos_trace, seed=2).metric_arrays(4000)
        assert 0.30 < np.median(arrays["sm_activity"]) < 0.50

    def test_kalos_memory_over_75pct_near_half(self, kalos_trace):
        """Fig. 7b: 50% of Kalos GPUs consume > 75% of memory (60 GB)."""
        arrays = DcgmSampler(kalos_trace, seed=3).metric_arrays(4000)
        over = (arrays["memory_fraction"] > 0.75).mean()
        assert 0.35 < over < 0.60

    def test_tc_activity_below_sm(self, kalos_trace):
        arrays = DcgmSampler(kalos_trace, seed=4).metric_arrays(2000)
        assert arrays["tc_activity"].mean() < arrays["sm_activity"].mean()

    def test_invalid_idle_fraction(self, kalos_trace):
        with pytest.raises(ValueError):
            DcgmSampler(kalos_trace, idle_fraction=1.0)

    def test_zero_samples_rejected(self, kalos_trace):
        with pytest.raises(ValueError):
            DcgmSampler(kalos_trace).sample_many(0)


class TestPower:
    def test_idle_gpus_near_60w(self, kalos_trace):
        """Fig. 8a: ~30% of GPUs idle at ~60 W."""
        draws = GpuPowerModel().sample_cluster(
            DcgmSampler(kalos_trace, seed=5), 4000, seed=5)
        assert 0.20 < (draws < 75.0).mean() < 0.40

    def test_over_tdp_fraction(self, seren_trace):
        """Fig. 8a: a double-digit share of GPUs exceeds the 400 W TDP."""
        draws = GpuPowerModel().sample_cluster(
            DcgmSampler(seren_trace, seed=6), 4000, seed=6)
        assert 0.05 < (draws > 400.0).mean() < 0.40

    def test_never_exceeds_600w(self, seren_trace):
        draws = GpuPowerModel().sample_cluster(
            DcgmSampler(seren_trace, seed=7), 2000, seed=7)
        assert draws.max() <= 600.0

    def test_gpu_server_about_5x_cpu_server(self, seren_trace):
        """Fig. 8b: GPU servers draw ~5x CPU-server power."""
        model = ServerPowerModel()
        servers = model.sample_servers(
            DcgmSampler(seren_trace, seed=8), 100, seed=8)
        ratio = servers.mean() / model.cpu_server_watts()
        assert 3.0 < ratio < 6.5

    def test_breakdown_shares_sum_to_one(self, seren_trace):
        model = ServerPowerModel()
        rng = np.random.default_rng(0)
        draws = np.array([GpuPowerModel().draw(s, rng) for s in
                          DcgmSampler(seren_trace, seed=9).sample_many(8)])
        shares = model.breakdown(draws)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_wrong_gpu_count_rejected(self):
        with pytest.raises(ValueError):
            ServerPowerModel().total(np.ones(3))


class TestIpmi:
    def test_gpus_take_about_two_thirds(self, seren_trace):
        """Fig. 9: GPUs ~2/3 of server power, CPUs ~11%, PSU ~9.6%."""
        sampler = IpmiSampler(DcgmSampler(seren_trace, seed=10), seed=10)
        shares = sampler.average_breakdown(n_servers=80).shares()
        assert 0.55 < shares["gpu"] < 0.75
        assert 0.08 < shares["cpu"] < 0.18
        assert shares["psu_loss"] == pytest.approx(0.096, abs=0.01)

    def test_monthly_energy_positive(self, seren_trace):
        sampler = IpmiSampler(DcgmSampler(seren_trace, seed=11), seed=11)
        energy = sampler.monthly_energy_mwh(n_servers=286, samples=50)
        # Seren consumed ~673 MWh in May 2023 (A.3).
        assert 300 < energy < 1200


class TestPrometheus:
    def test_cpu_utilization_low(self):
        """Fig. 7c: 16 CPUs per GPU leave most threads idle."""
        arrays = PrometheusSampler(seed=1).metric_arrays(4000)
        assert np.median(arrays["cpu_utilization"]) < 0.30

    def test_host_memory_below_half(self):
        """Fig. 7b: host memory utilization stays below 50%."""
        arrays = PrometheusSampler(seed=2).metric_arrays(4000)
        assert np.median(arrays["host_memory_fraction"]) < 0.50

    def test_kalos_memory_fraction_lower(self):
        seren = PrometheusSampler(host_memory_gb=1024, seed=3)
        kalos = PrometheusSampler(host_memory_gb=2048, seed=3)
        m_seren = np.median(seren.metric_arrays(3000)
                            ["host_memory_fraction"])
        m_kalos = np.median(kalos.metric_arrays(3000)
                            ["host_memory_fraction"])
        assert m_kalos < m_seren

    def test_nic_idle_over_60pct(self):
        """Fig. 7d: NICs idle > 60% of the time."""
        arrays = PrometheusSampler(seed=4).metric_arrays(4000)
        assert (arrays["ib_send_fraction"] < 0.01).mean() > 0.55

    def test_bandwidth_rarely_over_25pct(self):
        arrays = PrometheusSampler(seed=5).metric_arrays(4000)
        assert (arrays["ib_send_fraction"] > 0.25).mean() < 0.10

    def test_send_recv_symmetric(self):
        """Fig. 7d: the send/receive curves overlap (symmetric comm)."""
        arrays = PrometheusSampler(seed=6).metric_arrays(4000)
        delta = np.abs(arrays["ib_send_fraction"]
                       - arrays["ib_recv_fraction"])
        assert delta.mean() < 0.01


class TestTemperature:
    def test_memory_hotter_than_core(self):
        model = TemperatureModel()
        core, memory = model.sample_fleet(np.full(500, 350.0), seed=1)
        assert memory.mean() > core.mean()

    def test_loaded_gpus_exceed_65c(self):
        model = TemperatureModel()
        risk = model.overheating_risk_fraction(np.full(500, 550.0))
        assert risk > 0.5

    def test_july_heat_event_raises_risk(self):
        """§5.2: a ~5°C room rise increased NVLink/ECC failures."""
        normal = TemperatureModel()
        july = TemperatureModel(ambient_offset=5.0)
        draws = np.full(2000, 430.0)
        assert (july.overheating_risk_fraction(draws)
                > normal.overheating_risk_fraction(draws))


class TestCarbon:
    def test_paper_worked_example(self):
        emissions = ACME_CARBON.effective_emissions_tco2e(
            SEREN_MAY_2023_ENERGY_MWH)
        assert emissions == pytest.approx(
            SEREN_MAY_2023_EMISSIONS_TCO2E, abs=0.5)

    def test_pue_multiplies_facility_energy(self):
        assert ACME_CARBON.facility_energy_mwh(100.0) == pytest.approx(
            125.0)

    def test_invalid_pue_rejected(self):
        with pytest.raises(ValueError):
            CarbonModel(pue=0.9, carbon_free_fraction=0.3,
                        emission_rate=0.5)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            ACME_CARBON.effective_emissions_tco2e(-1.0)

    def test_grid_accounting_same_order(self):
        grid = ACME_CARBON.grid_emissions_tco2e(673.0)
        effective = ACME_CARBON.effective_emissions_tco2e(673.0)
        assert 0.5 < grid / effective < 2.0


class TestHostMemory:
    def test_fig18_totals(self):
        breakdown = pretraining_host_memory()
        assert breakdown.total_used / 1e9 == pytest.approx(123.0,
                                                           rel=0.01)
        assert breakdown.components["filesystem_client"] / 1e9 == \
            pytest.approx(45.3, rel=0.01)

    def test_used_fraction_small(self):
        assert pretraining_host_memory().used_fraction < 0.15

    def test_checkpoint_buffers_fit_in_idle_memory(self):
        """§6.1: spare host memory holds several checkpoints."""
        breakdown = pretraining_host_memory()
        per_node_7b = int(16 * 7e9 / 8)
        assert breakdown.checkpoint_buffers_that_fit(per_node_7b) >= 2

    def test_overflow_rejected(self):
        breakdown = HostMemoryBreakdown(capacity=100)
        with pytest.raises(ValueError):
            breakdown.add("too-big", 101)

    def test_async_buffer_component(self):
        breakdown = pretraining_host_memory(
            model_state_bytes_per_node=50 * 10 ** 9)
        assert "async_checkpoint_buffer" in breakdown.components


class TestDcgmBatchedSampling:
    """The vectorized metric_arrays must be *statistically* equivalent
    to the sequential reference: it consumes the RNG stream in a
    different order, so values differ — distributions must not."""

    def arrays_both_paths(self, trace, n=6000, seed=21):
        from repro.sim.fastpath import use_fast_path

        with use_fast_path(True):
            fast = DcgmSampler(trace, seed=seed).metric_arrays(n)
        with use_fast_path(False):
            reference = DcgmSampler(trace, seed=seed).metric_arrays(n)
        return fast, reference

    def test_distributions_match_reference(self, kalos_trace):
        fast, reference = self.arrays_both_paths(kalos_trace)
        for key in ("gpu_utilization", "sm_activity", "tc_activity",
                    "memory_fraction"):
            assert fast[key].shape == reference[key].shape
            assert fast[key].mean() == pytest.approx(
                reference[key].mean(), abs=0.05), key
        # medians only where the distribution is not knife-edge
        # bimodal (gpu_utilization is polarized per Fig. 2b, so its
        # overall median flips across the cliff with RNG ordering)
        for key in ("sm_activity", "tc_activity", "memory_fraction"):
            assert np.median(fast[key]) == pytest.approx(
                np.median(reference[key]), abs=0.05), key
        # idle mass instead: both paths show ~the idle_fraction of
        # exactly-zero utilization samples
        assert (fast["sm_activity"] == 0.0).mean() == pytest.approx(
            (reference["sm_activity"] == 0.0).mean(), abs=0.03)

    def test_batch_preserves_calibration_anchors(self, kalos_trace):
        """The paper's Fig. 7 anchors hold on the batched path too."""
        arrays = DcgmSampler(kalos_trace, seed=22).metric_arrays(4000)
        assert 0.30 < np.median(arrays["sm_activity"]) < 0.50
        assert arrays["tc_activity"].mean() < \
            arrays["sm_activity"].mean()
        idle = (arrays["sm_activity"] == 0.0).mean()
        assert idle == pytest.approx(0.30, abs=0.03)

    def test_batch_bounds(self, kalos_trace):
        arrays = DcgmSampler(kalos_trace, seed=23).metric_arrays(3000)
        assert arrays["sm_activity"].max() <= 1.0
        assert arrays["memory_fraction"].max() <= 0.98
        assert arrays["memory_fraction"].min() >= 0.0
        assert arrays["gpu_utilization"].min() >= 0.0

    def test_batch_deterministic_per_seed(self, kalos_trace):
        first = DcgmSampler(kalos_trace, seed=24).metric_arrays(500)
        second = DcgmSampler(kalos_trace, seed=24).metric_arrays(500)
        for key, values in first.items():
            np.testing.assert_array_equal(values, second[key])

    def test_batch_rejects_non_positive_n(self, kalos_trace):
        with pytest.raises(ValueError):
            DcgmSampler(kalos_trace, seed=25).metric_arrays(0)


class TestPowerCapping:
    def test_under_cap_is_unity(self):
        model = PowerCappingModel()
        assert model.step_factor(200.0) == 1.0
        assert model.step_factor(model.cap_watts) == 1.0

    def test_cube_law_above_cap(self):
        model = PowerCappingModel(cap_watts=330.0)
        factor = model.step_factor(400.0)
        assert factor == pytest.approx((330.0 / 400.0) ** (1.0 / 3.0))
        assert 0.0 < factor < 1.0

    def test_thermal_derate_applies_above_threshold(self):
        model = PowerCappingModel()
        cool = model.step_factor(400.0, mean_core_celsius=60.0)
        hot = model.step_factor(400.0, mean_core_celsius=70.0)
        assert hot == pytest.approx(cool * (1.0 - model.thermal_derate))

    def test_threshold_boundary_is_not_derated(self):
        model = PowerCappingModel()
        at_threshold = model.step_factor(
            400.0, mean_core_celsius=model.thermal_threshold_celsius)
        assert at_threshold == model.step_factor(400.0)

    def test_hot_but_under_cap_still_derates(self):
        model = PowerCappingModel()
        assert model.step_factor(200.0, mean_core_celsius=80.0) == (
            pytest.approx(1.0 - model.thermal_derate))

    def test_floor_clamps_extreme_caps(self):
        model = PowerCappingModel(cap_watts=330.0, min_step_factor=0.25)
        assert model.step_factor(330.0 * 1000.0) == 0.25

    def test_rejects_non_positive_draw(self):
        with pytest.raises(ValueError):
            PowerCappingModel().step_factor(0.0)


class TestMonitorTracerSeam:
    """Instrumentation goes through the ``tracer=None → NULL_TRACER``
    seam and never touches the RNG: traced and untraced runs must be
    byte-identical."""

    def test_power_samples_identical_with_and_without_tracer(
            self, kalos_trace):
        model = GpuPowerModel()
        tracer = Tracer()
        untraced = model.sample_cluster(
            DcgmSampler(kalos_trace, seed=7), 200, seed=3)
        traced = model.sample_cluster(
            DcgmSampler(kalos_trace, seed=7), 200, seed=3,
            tracer=tracer)
        np.testing.assert_array_equal(untraced, traced)
        assert tracer.counters["monitor.power.samples"].last == 200.0
        assert "monitor.power.mean_watts" in tracer.gauges

    def test_server_samples_identical_with_and_without_tracer(
            self, kalos_trace):
        model = ServerPowerModel()
        tracer = Tracer()
        untraced = model.sample_servers(
            DcgmSampler(kalos_trace, seed=9), 16, seed=4)
        traced = model.sample_servers(
            DcgmSampler(kalos_trace, seed=9), 16, seed=4,
            tracer=tracer)
        np.testing.assert_array_equal(untraced, traced)
        assert (tracer.counters["monitor.power.server_samples"].last
                == 16.0)

    def test_temperature_samples_identical_with_and_without_tracer(self):
        draws = np.linspace(60.0, 450.0, 64)
        model = TemperatureModel()
        untraced_core, untraced_mem = model.sample_fleet(draws, seed=5)
        tracer = Tracer()
        traced_core, traced_mem = model.sample_fleet(draws, seed=5,
                                                     tracer=tracer)
        np.testing.assert_array_equal(untraced_core, traced_core)
        np.testing.assert_array_equal(untraced_mem, traced_mem)
        assert (tracer.counters["monitor.temperature.samples"].last
                == 64.0)

    def test_dcgm_samples_identical_with_and_without_tracer(
            self, kalos_trace):
        tracer = Tracer()
        untraced = DcgmSampler(kalos_trace, seed=11).metric_arrays(300)
        traced = DcgmSampler(kalos_trace, seed=11,
                             tracer=tracer).metric_arrays(300)
        for key, values in untraced.items():
            np.testing.assert_array_equal(values, traced[key])
        assert "monitor.dcgm.metric_arrays" in tracer.counters
