"""Tests for the failure-diagnosis pipeline (§6.1, design 2)."""

import pytest

from repro.core.diagnosis import (DiagnosisSystem, FilterRules, LogAgent,
                                  LogCompressor, RuleBasedDiagnoser,
                                  TemplateLLM, TemplateMiner, VectorStore,
                                  embed_text, majority_vote)
from repro.core.diagnosis.rules import DiagnosisRule
from repro.core.diagnosis.self_consistency import sample_and_vote
from repro.core.diagnosis.templates import mask_line, template_to_regex
from repro.failures.logs import REASON_SIGNATURES, LogGenerator
from repro.failures.taxonomy import FailureCategory


class TestTemplates:
    def test_mask_replaces_numbers(self):
        masked = mask_line("step=120 loss=2.3456 lr=3.0e-05")
        assert masked == "<*> <*> <*>"

    def test_mask_strips_timestamps(self):
        masked = mask_line("2023-07-12 03:14:25,123 INFO [trainer] ready")
        assert masked.startswith("<ts>")

    def test_mask_preserves_words(self):
        masked = mask_line("loading model from /mnt/ckpt/7b done")
        assert "loading model from <*> done" == masked

    def test_miner_groups_similar_lines(self):
        miner = TemplateMiner()
        for step in range(20):
            miner.add_line(f"step={step} loss={2.0 + step * 0.01:.4f}")
        templates = miner.templates(min_support=10)
        assert len(templates) == 1
        assert templates[0].count == 20

    def test_routine_templates_require_support(self):
        miner = TemplateMiner()
        miner.add_line("one-off weird line alpha beta")
        assert miner.routine_templates(min_support=5) == []

    def test_template_regex_matches_originals(self):
        import re

        line = "step=5 loss=2.5000 tgs=510.1"
        regex = template_to_regex(mask_line(line))
        assert re.search(regex, "step=9999 loss=1.0001 tgs=3.3")


class TestCompression:
    def test_filter_rules_never_drop_error_lines(self):
        rules = FilterRules([r".*"])  # pathological catch-all rule
        compressor = LogCompressor(rules)
        result = compressor.compress([
            "routine metric line",
            "RuntimeError: boom",
        ])
        assert result.kept_lines == ["RuntimeError: boom"]

    def test_compression_ratio_reported(self):
        rules = FilterRules([r"step=\d+"])
        lines = [f"step={i} loss=2.0" for i in range(100)]
        lines.append("ERROR something broke")
        result = LogCompressor(rules).compress(lines)
        assert result.compression_ratio > 50
        assert result.filtered_fraction > 0.98

    def test_duplicate_rule_not_added(self):
        rules = FilterRules()
        assert rules.add(r"abc")
        assert not rules.add(r"abc")
        assert len(rules) == 1

    def test_rules_persistence(self, tmp_path):
        rules = FilterRules([r"step=\d+", r"INFO \[config\]"])
        path = tmp_path / "rules.json"
        rules.save(path)
        loaded = FilterRules.load(path)
        assert loaded.patterns == rules.patterns

    def test_error_lines_extracted(self):
        result = LogCompressor().compress([
            "normal line", "Traceback (most recent call last):",
            "ValueError: bad"])
        assert len(result.error_lines) == 2


class TestLogAgent:
    def test_agent_learns_filter_rules_from_volume(self):
        rules = FilterRules()
        agent = LogAgent(rules, min_support=5)
        log = LogGenerator(seed=1).healthy_log(n_steps=300)
        agent.observe_segment(log.lines)
        assert len(rules) > 0
        assert agent.rules_written == len(rules)

    def test_learned_rules_compress_similar_logs(self):
        """§6.1: rules from one job transfer to similar/resubmitted jobs."""
        rules = FilterRules()
        agent = LogAgent(rules, min_support=5)
        agent.observe_segment(
            LogGenerator(seed=2).healthy_log(n_steps=400).lines)
        fresh = LogGenerator(seed=3).healthy_log(n_steps=400)
        result = LogCompressor(rules).compress(fresh.lines)
        assert result.filtered_fraction > 0.8

    def test_agent_returns_error_lines(self):
        rules = FilterRules()
        agent = LogAgent(rules)
        log = LogGenerator(seed=4).failed_log("ValueError", n_steps=50)
        errors = agent.observe_segment(log.lines)
        assert any("ValueError" in line for line in errors)


class TestLLM:
    def test_classifies_each_reason_from_its_signature(self):
        llm = TemplateLLM()
        for reason, signatures in REASON_SIGNATURES.items():
            verdict = llm.classify_error([signatures[0]])
            assert verdict.reason == reason, reason

    def test_cascade_root_cause_wins(self):
        """§6.1's motivating case: NCCL timeout + CUDA error cascade."""
        llm = TemplateLLM()
        lines = [
            REASON_SIGNATURES["NCCLTimeoutError"][0],
            REASON_SIGNATURES["RuntimeError"][0],
            REASON_SIGNATURES["CUDAError"][0],
        ]
        assert llm.classify_error(lines).reason == "CUDAError"

    def test_no_evidence_returns_unknown(self):
        verdict = TemplateLLM().classify_error(["nothing to see here"])
        assert verdict.reason == "Unknown"
        assert verdict.confidence == 0.0

    def test_temperature_zero_is_deterministic(self):
        llm = TemplateLLM(temperature=0.0)
        lines = [REASON_SIGNATURES["OSError"][0]]
        assert all(llm.classify_error(lines).reason == "OSError"
                   for _ in range(5))

    def test_high_temperature_adds_noise(self):
        llm = TemplateLLM(temperature=50.0, seed=1)
        lines = [REASON_SIGNATURES["NCCLTimeoutError"][0],
                 REASON_SIGNATURES["RuntimeError"][0]]
        answers = {llm.classify_error(lines).reason for _ in range(30)}
        assert len(answers) > 1

    def test_mitigation_matches_category(self):
        verdict = TemplateLLM().classify_error(
            [REASON_SIGNATURES["TypeError"][0]])
        assert verdict.category is FailureCategory.SCRIPT
        assert not verdict.recoverable


class TestVectorStore:
    def test_similar_text_retrieved_first(self):
        store = VectorStore()
        store.add("a", "CUDA error illegal memory access on rank 3", {})
        store.add("b", "FileNotFoundError missing dataset shard", {})
        hits = store.query("CUDA error: illegal memory access rank 99")
        assert hits[0].document.doc_id == "a"
        assert hits[0].similarity > hits[1].similarity

    def test_embedding_normalized(self):
        import numpy as np

        vector = embed_text("some log line with payloads 123")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_store_returns_nothing(self):
        assert VectorStore().query("anything") == []

    def test_top_k_limits_results(self):
        store = VectorStore()
        for i in range(5):
            store.add(f"d{i}", f"document number {i}", {})
        assert len(store.query("document", top_k=2)) == 2

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            VectorStore().query("x", top_k=0)


class TestRules:
    def test_seed_rules_catch_hardware_signatures(self):
        diagnoser = RuleBasedDiagnoser()
        assert diagnoser.diagnose(
            [REASON_SIGNATURES["NVLinkError"][0]]) == "NVLinkError"

    def test_priority_orders_rules(self):
        diagnoser = RuleBasedDiagnoser([])
        diagnoser.add_rule(DiagnosisRule(r"boom", "TypeError",
                                         priority=1))
        diagnoser.add_rule(DiagnosisRule(r"boom", "CUDAError",
                                         priority=9))
        assert diagnoser.diagnose(["boom"]) == "CUDAError"

    def test_later_lines_win_within_rule(self):
        diagnoser = RuleBasedDiagnoser([])
        diagnoser.add_rule(DiagnosisRule(r"error (\w+)", "RuntimeError",
                                         priority=1))
        assert diagnoser.diagnose(["error one", "error two"]) == \
            "RuntimeError"

    def test_miss_returns_none_and_counts(self):
        diagnoser = RuleBasedDiagnoser()
        assert diagnoser.diagnose(["quiet line"]) is None
        assert diagnoser.misses == 1

    def test_duplicate_rule_rejected(self):
        diagnoser = RuleBasedDiagnoser([])
        rule = DiagnosisRule(r"x", "KeyError")
        assert diagnoser.add_rule(rule)
        assert not diagnoser.add_rule(rule)

    def test_malformed_regex_raises(self):
        with pytest.raises(Exception):
            RuleBasedDiagnoser([]).add_rule(
                DiagnosisRule(r"([unclosed", "KeyError"))

    def test_persistence_round_trip(self, tmp_path):
        diagnoser = RuleBasedDiagnoser()
        diagnoser.add_rule(DiagnosisRule(r"custom", "OSError",
                                         priority=5))
        path = tmp_path / "rules.json"
        diagnoser.save(path)
        loaded = RuleBasedDiagnoser.load(path)
        assert loaded.diagnose(["custom failure"]) == "OSError"


class TestSelfConsistency:
    def test_majority_wins(self):
        answer, agreement = majority_vote(["a", "b", "a"])
        assert answer == "a"
        assert agreement == pytest.approx(2 / 3)

    def test_tie_breaks_to_first(self):
        answer, _ = majority_vote(["x", "y"])
        assert answer == "x"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])

    def test_sample_and_vote_runs_query(self):
        calls = []

        def query():
            calls.append(1)
            return "answer"

        answer, agreement = sample_and_vote(query, samples=4)
        assert answer == "answer"
        assert agreement == 1.0
        assert len(calls) == 4


class TestDiagnosisSystem:
    def test_end_to_end_accuracy(self):
        """Every taxonomy reason is correctly diagnosed from its log."""
        generator = LogGenerator(seed=5)
        system = DiagnosisSystem()
        wrong = []
        for reason in REASON_SIGNATURES:
            log = generator.failed_log(reason, n_steps=80)
            diagnosis = system.diagnose(log.lines)
            if diagnosis.reason != reason:
                wrong.append((reason, diagnosis.reason))
        assert not wrong, wrong

    def test_cascades_resolved_to_root_cause(self):
        generator = LogGenerator(seed=6)
        system = DiagnosisSystem()
        for _ in range(6):
            log = generator.failed_log("CUDAError", n_steps=60)
            assert system.diagnose(log.lines).reason == "CUDAError"

    def test_rule_base_grows_and_takes_over(self):
        """Fig. 15's continuous learning: later diagnoses hit rules."""
        generator = LogGenerator(seed=7)
        system = DiagnosisSystem()
        for _ in range(3):
            system.diagnose(generator.failed_log("ImportError",
                                                 n_steps=40).lines)
        assert system.stats.via_rules >= 1

    def test_compression_shrinks_big_logs(self):
        generator = LogGenerator(seed=8)
        system = DiagnosisSystem()
        log = generator.failed_log("KeyError", n_steps=3000)
        diagnosis = system.diagnose(log.lines)
        assert diagnosis.compression.compression_ratio > 50

    def test_automated_fraction_accounts_all(self):
        generator = LogGenerator(seed=9)
        system = DiagnosisSystem()
        for reason in ("CUDAError", "TypeError", "NVLinkError"):
            system.diagnose(generator.failed_log(reason,
                                                 n_steps=30).lines)
        assert system.stats.total == 3
        assert system.stats.automated_fraction == 1.0

    def test_script_errors_marked_unrecoverable(self):
        generator = LogGenerator(seed=10)
        system = DiagnosisSystem()
        log = generator.failed_log("SyntaxError", n_steps=20)
        diagnosis = system.diagnose(log.lines)
        assert diagnosis.category is FailureCategory.SCRIPT
        assert not diagnosis.recoverable

    def test_noisy_llm_still_accurate_with_voting(self):
        """Self-consistency absorbs sampling noise (§6.1)."""
        llm = TemplateLLM(temperature=3.0, seed=11)
        system = DiagnosisSystem(llm=llm, consistency_samples=5)
        generator = LogGenerator(seed=11)
        correct = 0
        reasons = ["ValueError", "OSError", "ImportError", "KeyError"]
        for reason in reasons:
            log = generator.failed_log(reason, n_steps=40)
            correct += (system.diagnose(log.lines).reason == reason)
        assert correct >= 3


class TestReplay:
    def test_replay_diagnoses_trace_failures(self, small_seren_trace):
        from repro.core.diagnosis import replay_trace_failures

        report = replay_trace_failures(small_seren_trace, max_jobs=25,
                                       seed=21)
        assert report.total == 25
        assert report.accuracy > 0.9
        assert report.category_accuracy >= report.accuracy
        assert (report.auto_recovered + report.needs_human
                == report.total)

    def test_replay_assigns_reasons_when_missing(self, kalos_trace):
        from repro.core.diagnosis import replay_trace_failures

        report = replay_trace_failures(kalos_trace, max_jobs=10, seed=22)
        assert report.total == 10
        assert report.by_reason

    def test_manual_rate_matches_script_share(self, small_seren_trace):
        """Only script errors go to a human — the §6.1 '~90% less
        manual intervention' accounting."""
        from repro.core.diagnosis import replay_trace_failures

        report = replay_trace_failures(small_seren_trace, max_jobs=40,
                                       seed=23)
        # Small eval jobs dominate the failure count, and those are
        # script errors by nature; everything else is fully automated.
        assert report.manual_intervention_rate < 1.0
        assert report.auto_recovered > 0
        assert report.mean_compression_ratio > 3.0

    def test_replay_rejects_trace_without_failures(self):
        from repro.core.diagnosis import replay_trace_failures
        from repro.scheduler.job import FinalStatus, Job, JobType
        from repro.workload.trace import Trace

        trace = Trace("x", [Job("a", "x", JobType.EVALUATION, 0.0, 10.0,
                                1, final_status=FinalStatus.COMPLETED)])
        with pytest.raises(ValueError):
            replay_trace_failures(trace)


class TestMessyLogs:
    """Production logs are multiplexed, colorized, and truncated; the
    pipeline must still find the root cause."""

    def test_full_taxonomy_survives_mess(self):
        from repro.failures.logs import make_messy

        generator = LogGenerator(seed=9)
        system = DiagnosisSystem()
        wrong = []
        for reason in REASON_SIGNATURES:
            log = make_messy(generator.failed_log(reason, n_steps=80),
                             seed=abs(hash(reason)) % 1000)
            diagnosis = system.diagnose(log.lines)
            if diagnosis.reason != reason:
                wrong.append((reason, diagnosis.reason))
        assert len(wrong) <= 1, wrong  # tolerate a single flake

    def test_rank_prefixes_do_not_break_compression(self):
        from repro.failures.logs import make_messy

        generator = LogGenerator(seed=10)
        system = DiagnosisSystem()
        log = make_messy(generator.failed_log("KeyError", n_steps=1500),
                         seed=5)
        diagnosis = system.diagnose(log.lines)
        assert diagnosis.compression.compression_ratio > 10

    def test_messy_preserves_ground_truth(self):
        from repro.failures.logs import make_messy

        log = LogGenerator(seed=11).failed_log("OSError", n_steps=20)
        messy = make_messy(log, seed=1)
        assert messy.reason == "OSError"
        assert len(messy.lines) == len(log.lines)

    def test_ansi_codes_present_when_enabled(self):
        from repro.failures.logs import make_messy

        log = LogGenerator(seed=12).healthy_log(n_steps=200)
        messy = make_messy(log, seed=2, ansi=True)
        assert any("\x1b[" in line for line in messy.lines)


class TestDiagnosisTracing:
    def test_stages_emit_spans_and_counters(self):
        from repro.obs import Tracer

        tracer = Tracer(clock=lambda: 0.0)
        system = DiagnosisSystem(tracer=tracer)
        log = LogGenerator(seed=3).failed_log("ECCError", n_steps=50)
        diagnosis = system.diagnose(log.lines)
        assert diagnosis.reason == "ECCError"
        names = {span.name for span in tracer.spans}
        assert "diagnosis:compress" in names
        assert "diagnosis:rules" in names
        # one path counter fired, matching the diagnosis path
        if diagnosis.path == "rules":
            assert tracer.counter("diagnosis.rule_hits").last == 1.0
        else:
            assert "diagnosis:vote" in names
            assert tracer.counter("diagnosis.agent_path").last == 1.0

    def test_agent_path_traces_the_vote(self):
        from repro.obs import Tracer

        tracer = Tracer(clock=lambda: 0.0)
        system = DiagnosisSystem(tracer=tracer)
        # strip the rule base so the LLM/voting path must run
        system.failure_agent.diagnoser = RuleBasedDiagnoser(rules=[])
        log = LogGenerator(seed=4).failed_log("ECCError", n_steps=50)
        diagnosis = system.diagnose(log.lines)
        assert diagnosis.path == "agent"
        assert "diagnosis:vote" in {span.name for span in tracer.spans}
        assert tracer.counter("diagnosis.agent_path").last == 1.0

    def test_untraced_system_pays_nothing(self):
        system = DiagnosisSystem()
        from repro.obs import NULL_TRACER

        assert system.tracer is NULL_TRACER
        assert system.log_agent.tracer is NULL_TRACER
        assert system.failure_agent.tracer is NULL_TRACER
