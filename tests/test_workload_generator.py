"""Calibration tests: the synthetic traces reproduce the paper's numbers.

Tolerances reflect the 8,000-job sample size of the session fixtures.
"""

import numpy as np
import pytest

from repro.scheduler.job import FinalStatus, JobType
from repro.workload.generator import TraceGenerator
from repro.workload.spec import KALOS_SPEC, SEREN_SPEC


class TestStructure:
    def test_job_count(self, seren_trace):
        assert len(seren_trace) == 8000

    def test_job_ids_unique(self, seren_trace):
        ids = [job.job_id for job in seren_trace]
        assert len(set(ids)) == len(ids)

    def test_jobs_sorted_by_submit_time(self, seren_trace):
        times = [job.submit_time for job in seren_trace]
        assert times == sorted(times)

    def test_submissions_within_span(self, seren_trace):
        assert all(0 <= job.submit_time <= SEREN_SPEC.span + 10
                   for job in seren_trace)

    def test_deterministic_given_seed(self):
        a = TraceGenerator(KALOS_SPEC, seed=5).generate(300)
        b = TraceGenerator(KALOS_SPEC, seed=5).generate(300)
        assert [j.duration for j in a] == [j.duration for j in b]

    def test_different_seeds_differ(self):
        a = TraceGenerator(KALOS_SPEC, seed=5).generate(300)
        b = TraceGenerator(KALOS_SPEC, seed=6).generate(300)
        assert [j.duration for j in a] != [j.duration for j in b]

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            TraceGenerator(KALOS_SPEC).generate(0)

    def test_cpu_jobs_optional(self):
        trace = TraceGenerator(KALOS_SPEC, seed=1).generate(
            200, include_cpu_jobs=True)
        assert len(trace.cpu_jobs()) > 0
        assert len(trace.gpu_jobs()) == 200


class TestWorkloadMix:
    """Fig. 4 anchors."""

    def test_kalos_count_shares(self, kalos_trace):
        shares = kalos_trace.count_share_by_type()
        assert shares[JobType.EVALUATION] == pytest.approx(0.929,
                                                           abs=0.01)
        assert shares[JobType.PRETRAIN] == pytest.approx(0.032, abs=0.005)

    def test_kalos_pretrain_dominates_gpu_time(self, kalos_trace):
        shares = kalos_trace.gpu_time_share_by_type()
        assert shares[JobType.PRETRAIN] > 0.90
        assert shares[JobType.EVALUATION] < 0.02

    def test_seren_pretrain_gpu_time_share(self, seren_trace):
        share = seren_trace.gpu_time_share_by_type()[JobType.PRETRAIN]
        assert 0.55 < share < 0.85  # paper: 69.5%

    def test_seren_has_sft_and_mllm(self, seren_trace):
        shares = seren_trace.count_share_by_type()
        assert JobType.SFT in shares
        assert JobType.MLLM in shares

    def test_kalos_lacks_sft(self, kalos_trace):
        assert JobType.SFT not in kalos_trace.count_share_by_type()


class TestDurations:
    """Fig. 2a anchors."""

    def test_median_duration_about_two_minutes(self, seren_trace,
                                               kalos_trace):
        for trace in (seren_trace, kalos_trace):
            assert 80 < np.median(trace.durations()) < 180

    def test_pretrain_longest_median_within_order_of_magnitude(
            self, kalos_trace):
        overall = np.median(kalos_trace.durations())
        pretrain = np.median(kalos_trace.durations(JobType.PRETRAIN))
        assert pretrain > overall
        assert pretrain < 100 * overall

    def test_few_pretrain_jobs_exceed_one_day(self, kalos_trace):
        durations = kalos_trace.durations(JobType.PRETRAIN)
        assert (durations > 86400).mean() < 0.08  # paper: < 5%


class TestDemands:
    """Fig. 5 / Table 2 anchors."""

    def test_evaluation_demand_small(self, kalos_trace):
        demands = kalos_trace.gpu_demands(JobType.EVALUATION)
        assert np.median(demands) <= 4

    def test_pretrain_demand_large(self, kalos_trace):
        demands = kalos_trace.gpu_demands(JobType.PRETRAIN)
        assert np.median(demands) >= 128

    def test_mean_gpus_per_job(self, seren_trace, kalos_trace):
        # Table 2: Seren 5.7, Kalos 26.8 on average.
        assert 3 < seren_trace.mean_gpu_demand() < 12
        assert 15 < kalos_trace.mean_gpu_demand() < 45

    def test_no_demand_exceeds_cluster(self, kalos_trace):
        assert kalos_trace.gpu_demands().max() <= KALOS_SPEC.total_gpus


class TestStatusesAndUtilization:
    """Fig. 17 / Fig. 2b anchors."""

    def test_about_40pct_fail(self, seren_trace):
        counts = seren_trace.status_counts()
        total = sum(counts.values())
        assert 0.30 < counts[FinalStatus.FAILED] / total < 0.50

    def test_canceled_jobs_hold_majority_of_gpu_time(self, kalos_trace):
        times = kalos_trace.status_gpu_time()
        share = times[FinalStatus.CANCELED] / sum(times.values())
        assert share > 0.50  # paper: > 60%

    def test_completed_jobs_hold_minority_of_gpu_time(self, kalos_trace):
        times = kalos_trace.status_gpu_time()
        share = times[FinalStatus.COMPLETED] / sum(times.values())
        assert 0.10 < share < 0.40  # paper: 20-30%

    def test_utilization_polarized(self, kalos_trace):
        utils = kalos_trace.utilizations()
        low = (utils < 0.15).mean()
        high = (utils > 0.90).mean()
        assert low + high > 0.80

    def test_median_utilization_high(self, seren_trace, kalos_trace):
        assert np.median(seren_trace.utilizations()) > 0.90
        assert np.median(kalos_trace.utilizations()) > 0.95
