"""Tests for the time-windowed link health overlay."""

import pytest

from repro.cluster.fattree import FatTreeConfig
from repro.cluster.linkhealth import (LinkFault, LinkHealth, leaf_link,
                                      nic_link, pod_link)


class TestLinkNaming:
    def test_tiers(self):
        assert nic_link(3) == "nic:3"
        assert leaf_link(1) == "leaf:1"
        assert pod_link(0) == "pod:0"


class TestLinkFault:
    def test_window_is_half_open(self):
        fault = LinkFault("nic:0", start=10.0, end=20.0)
        assert not fault.active_at(9.999)
        assert fault.active_at(10.0)
        assert fault.active_at(19.999)
        assert not fault.active_at(20.0)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            LinkFault("nic:0", start=10.0, end=10.0)

    def test_rejects_noop_factor(self):
        with pytest.raises(ValueError):
            LinkFault("nic:0", start=0.0, end=1.0, factor=1.0)

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            LinkFault("nic:0", start=0.0, end=1.0, factor=-0.1)


class TestLinkHealth:
    def test_empty_overlay_is_healthy_everywhere(self):
        health = LinkHealth()
        assert health.empty
        assert health.factor("nic:0", 0.0) == 1.0
        assert not health.is_down("nic:0", 0.0)
        assert health.down_links(0.0) == ()
        assert health.last_end() == 0.0

    def test_down_window(self):
        health = LinkHealth()
        health.link_down("nic:2", start=5.0, end=15.0)
        assert health.is_down("nic:2", 10.0)
        assert health.factor("nic:2", 10.0) == 0.0
        assert health.factor("nic:2", 15.0) == 1.0
        assert health.down_links(10.0) == ("nic:2",)

    def test_degraded_window(self):
        health = LinkHealth()
        health.link_degraded("leaf:0", start=0.0, end=10.0, factor=0.4)
        assert health.factor("leaf:0", 5.0) == pytest.approx(0.4)
        assert not health.is_down("leaf:0", 5.0)

    def test_degraded_rejects_zero_factor(self):
        with pytest.raises(ValueError):
            LinkHealth().link_degraded("leaf:0", 0.0, 1.0, factor=0.0)

    def test_overlapping_windows_take_the_minimum(self):
        health = LinkHealth()
        health.link_degraded("nic:0", start=0.0, end=20.0, factor=0.5)
        health.link_down("nic:0", start=5.0, end=10.0)
        assert health.factor("nic:0", 2.0) == pytest.approx(0.5)
        assert health.factor("nic:0", 7.0) == 0.0
        assert health.factor("nic:0", 15.0) == pytest.approx(0.5)

    def test_group_factor_is_worst_link(self):
        health = LinkHealth()
        health.link_degraded("nic:0", start=0.0, end=10.0, factor=0.7)
        health.link_degraded("leaf:0", start=0.0, end=10.0, factor=0.3)
        factor = health.group_factor(["nic:0", "leaf:0", "nic:1"], 5.0)
        assert factor == pytest.approx(0.3)

    def test_last_end_tracks_latest_window(self):
        health = LinkHealth()
        health.link_down("nic:0", start=0.0, end=10.0)
        health.link_degraded("leaf:1", start=2.0, end=30.0, factor=0.5)
        assert health.last_end() == 30.0


class TestSwitchDown:
    def test_derives_member_nics_and_uplink(self):
        config = FatTreeConfig(nodes=8, nodes_per_leaf=4)
        health = LinkHealth()
        derived = health.switch_down(config, leaf=1, start=0.0, end=10.0)
        assert derived == ("nic:4", "nic:5", "nic:6", "nic:7", "leaf:1")
        assert set(health.down_links(5.0)) == set(derived)
        assert health.down_links(10.0) == ()

    def test_partial_last_leaf(self):
        # 6 nodes in 4-wide leaves: leaf 1 holds only nodes 4 and 5.
        config = FatTreeConfig(nodes=6, nodes_per_leaf=4)
        health = LinkHealth()
        derived = health.switch_down(config, leaf=1, start=0.0, end=1.0)
        assert derived == ("nic:4", "nic:5", "leaf:1")

    def test_rejects_out_of_range_leaf(self):
        config = FatTreeConfig(nodes=8, nodes_per_leaf=4)
        with pytest.raises(ValueError):
            LinkHealth().switch_down(config, leaf=2, start=0.0, end=1.0)


class TestZeroDurationWindows:
    """Zero-duration chaos faults must be strict no-ops (boundary
    regression: a degenerate ``[t, t)`` window must never leak into
    timelines, memo state, or ``last_end``)."""

    def test_link_down_zero_duration_is_noop(self):
        health = LinkHealth()
        health.link_down("nic:0", start=5.0, end=5.0)
        assert health.empty
        assert health.faults == ()
        assert health.factor("nic:0", 5.0) == 1.0
        assert health.last_end() == 0.0

    def test_link_down_inverted_window_is_noop(self):
        health = LinkHealth()
        health.link_down("nic:0", start=5.0, end=4.0)
        assert health.empty

    def test_link_degraded_zero_duration_is_noop(self):
        health = LinkHealth()
        health.link_degraded("leaf:0", start=5.0, end=5.0, factor=0.5)
        assert health.empty
        assert health.factor("leaf:0", 5.0) == 1.0

    def test_link_degraded_still_validates_factor(self):
        # the no-op path must not swallow invalid factors
        with pytest.raises(ValueError):
            LinkHealth().link_degraded("leaf:0", start=5.0, end=5.0,
                                       factor=0.0)

    def test_switch_down_zero_duration_registers_nothing(self):
        config = FatTreeConfig(nodes=8, nodes_per_leaf=4)
        health = LinkHealth()
        assert health.switch_down(config, leaf=1, start=3.0,
                                  end=3.0) == ()
        assert health.empty

    def test_tiny_positive_window_still_registers(self):
        health = LinkHealth()
        health.link_down("pod:0", start=5.0, end=5.0 + 1e-9)
        assert not health.empty
        assert health.is_down("pod:0", 5.0)
        assert not health.is_down("pod:0", 5.0 + 1e-9)
