"""Tests for SM profiling, the pretraining campaign simulator, MoE and GC."""

import numpy as np
import pytest

from repro.training.gc_tuning import GcController, simulate_gc_impact
from repro.training.model import MISTRAL_7B_MOE, MODEL_123B
from repro.training.moe import moe_step_model, moe_utilization_timeline
from repro.training.parallelism import internevo_v1, internevo_v2
from repro.training.pretrain import (PretrainJobConfig, PretrainSimulator,
                                     RecoveryMode, fig14_campaigns)
from repro.training.profiler import SmProfiler, profile_strategies


class TestProfiler:
    def test_timeline_covers_requested_steps(self):
        profiler = SmProfiler(MODEL_123B, internevo_v2(2048))
        one = profiler.profile(steps=1, resolution=0.05)
        three = profiler.profile(steps=3, resolution=0.05)
        assert three.duration == pytest.approx(3 * one.duration, rel=0.02)

    def test_v2_mean_sm_higher_than_v1(self):
        """Fig. 10: V2 presents superior utilization, fewer idle periods."""
        timelines = profile_strategies(
            MODEL_123B, [internevo_v1(2048), internevo_v2(2048)], steps=2)
        v1 = timelines["internevo-v1-3d"]
        v2 = timelines["internevo-v2-hzero"]
        assert v2.mean_sm() > v1.mean_sm()
        assert v2.idle_fraction() < v1.idle_fraction()

    def test_v1_shows_idle_valleys(self):
        timeline = SmProfiler(MODEL_123B, internevo_v1(2048)).profile(2)
        assert timeline.idle_fraction(threshold=0.10) > 0.03

    def test_sm_values_are_fractions(self):
        timeline = SmProfiler(MODEL_123B, internevo_v2(2048)).profile(1)
        assert timeline.sm.min() >= 0.0
        assert timeline.sm.max() <= 1.0

    def test_deterministic_with_seed(self):
        a = SmProfiler(MODEL_123B, internevo_v1(2048), seed=3).profile(1)
        b = SmProfiler(MODEL_123B, internevo_v1(2048), seed=3).profile(1)
        assert np.allclose(a.sm, b.sm)

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            SmProfiler(MODEL_123B, internevo_v2(2048)).profile(0)


class TestMoE:
    def test_alltoall_dominates_on_seren(self):
        """Appendix A.6: single-NIC nodes choke on expert all-to-all."""
        breakdown = moe_step_model(MISTRAL_7B_MOE)
        assert breakdown.alltoall > breakdown.compute

    def test_moe_utilization_low(self):
        timeline = moe_utilization_timeline(MISTRAL_7B_MOE, steps=1)
        assert timeline.mean_sm() < 0.5

    def test_better_network_helps(self):
        seren = moe_step_model(MISTRAL_7B_MOE,
                               per_gpu_bandwidth=200e9 / 64)
        kalos = moe_step_model(MISTRAL_7B_MOE,
                               per_gpu_bandwidth=4 * 200e9 / 64)
        assert kalos.busy_fraction > seren.busy_fraction


class TestPretrainSimulator:
    def config(self, **overrides):
        defaults = dict(name="t", step_time=10.0, total_iterations=5000,
                        checkpoint_interval=600.0, mtbf=20000.0,
                        recovery=RecoveryMode.AUTOMATIC)
        defaults.update(overrides)
        return PretrainJobConfig(**defaults)

    def test_completes_without_failures(self):
        config = self.config(mtbf=1e12)
        run = PretrainSimulator(config, seed=1).run()
        assert run.final_iteration == 5000
        assert run.failures == 0

    def test_failures_cause_rollbacks(self):
        config = self.config(mtbf=5000.0, loss_spike_probability=0.0)
        run = PretrainSimulator(config, seed=2).run()
        assert run.failures > 0
        assert run.lost_iterations > 0
        assert run.final_iteration == 5000

    def test_progress_curve_has_rollback_structure(self):
        config = self.config(mtbf=3000.0)
        run = PretrainSimulator(config, seed=3).run()
        times, iterations = run.progress_curve()
        assert times.size == 2 * len(run.submissions)
        assert (np.diff(times) >= 0).all()

    def test_frequent_checkpoints_lose_less(self):
        sparse = self.config(checkpoint_interval=10000.0, mtbf=4000.0,
                             loss_spike_probability=0.0)
        dense = self.config(checkpoint_interval=100.0, mtbf=4000.0,
                            loss_spike_probability=0.0)
        lost_sparse = PretrainSimulator(sparse, seed=4).run()
        lost_dense = PretrainSimulator(dense, seed=4).run()
        assert lost_dense.lost_iterations < lost_sparse.lost_iterations

    def test_automatic_recovery_faster_than_manual(self):
        manual = self.config(recovery=RecoveryMode.MANUAL, mtbf=4000.0)
        auto = self.config(recovery=RecoveryMode.AUTOMATIC, mtbf=4000.0)
        t_manual = PretrainSimulator(manual, seed=5).run().total_time
        t_auto = PretrainSimulator(auto, seed=5).run().total_time
        assert t_auto < t_manual

    def test_deadline_respected(self):
        config = self.config(mtbf=1e12, total_iterations=10 ** 7)
        run = PretrainSimulator(config, seed=6).run(deadline=5000.0)
        assert run.total_time <= 5000.0 + config.cold_start + 1

    def test_graceful_save_reduces_loss(self):
        plain = self.config(mtbf=4000.0, graceful_save_probability=0.0,
                            loss_spike_probability=0.0)
        graceful = self.config(mtbf=4000.0,
                               graceful_save_probability=1.0,
                               loss_spike_probability=0.0)
        lost_plain = PretrainSimulator(plain, seed=7).run().lost_iterations
        lost_graceful = PretrainSimulator(
            graceful, seed=7).run().lost_iterations
        assert lost_graceful < lost_plain

    def test_fig14_123b_more_stable_than_104b(self):
        runs = fig14_campaigns(seed=9)
        assert (runs["123B"].useful_fraction
                > runs["104B"].useful_fraction)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            self.config(step_time=0.0)


class TestGcTuning:
    def test_controller_collects_on_interval(self):
        controller = GcController(interval_steps=10)
        with controller:
            collected = [controller.on_step(step) for step in range(31)]
        assert sum(collected) == 3
        assert controller.collections == 3

    def test_controller_restores_gc_state(self):
        import gc

        was_enabled = gc.isenabled()
        controller = GcController(interval_steps=5)
        controller.start()
        assert not gc.isenabled()
        controller.stop()
        assert gc.isenabled() == was_enabled

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            GcController(interval_steps=0)

    def test_fixed_interval_beats_random_gc(self):
        """Appendix B: controlled GC removes the 2-3x stalls."""
        summary = simulate_gc_impact(seed=3)
        assert summary.speedup > 1.02
        assert summary.controlled_p99_step < summary.baseline_p99_step
