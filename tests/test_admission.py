"""Tests for overload robustness (``repro.service.admission``).

Covers the four admission policies and the hysteresis overload state
machine as units, then the service-level contract: reserved work is
untouchable (invariant 15), declared queue bounds hold (invariant 16),
deadline and age shedding fire deterministically, snapshot/restore is
byte-identical mid-saturation, and — property-tested — *any*
partitioning of a saturated run into ``advance`` horizons, including a
checkpoint/restore at an arbitrary cut, reproduces the exact event and
admission logs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import BUNDLED_SCENARIOS
from repro.chaos.invariants import InvariantViolation
from repro.scheduler.job import Job, JobType
from repro.service import (POLICY_KINDS, RESERVED_TYPES, AcceptAllPolicy,
                           AdmissionView, ClusterService, OverloadConfig,
                           OverloadState, QueueDepthCapPolicy,
                           TokenBucketPolicy, WeightedQuotaPolicy,
                           capacity_jobs_per_hour, policy_from_config,
                           run_loadtest)
from repro.service.state import text_digest
from repro.workload.streams import (EvalBurstConfig, EvalBurstStream,
                                    PoissonJobStream,
                                    PoissonStreamConfig)

HEALTHY = OverloadState.HEALTHY
PRESSURED = OverloadState.PRESSURED
SATURATED = OverloadState.SATURATED
SHEDDING = OverloadState.SHEDDING

#: tight watermarks so a 2h smoke run visits the whole ladder
TIGHT = OverloadConfig(
    healthy_depth=4, pressured_depth=8, saturated_depth=12,
    shedding_depth=18, defer_seconds=120.0, shed_max_age_s=900.0,
    sweep_interval_s=300.0, escalate_after_s=600.0)


def overload_streams(rate_per_hour=100.0):
    return [
        PoissonJobStream(PoissonStreamConfig(
            name="debug", seed=5, rate_per_hour=rate_per_hour,
            job_type="debug", gpu_choices=(1, 2, 4),
            duration_median_s=900.0)),
        EvalBurstStream(EvalBurstConfig(
            name="evals", seed=7, bursts_per_hour=4.0, batch_size=4)),
    ]


def saturated_service(policy=None, overload=TIGHT, storage=None):
    return ClusterService(
        BUNDLED_SCENARIOS["smoke"], streams=overload_streams(),
        storage=storage, admission=policy or AcceptAllPolicy(),
        overload=overload)


def view(now=0.0, queue_depth=0, best_effort_depth=0,
         source_depths=None, overload=HEALTHY):
    return AdmissionView(now=now, queue_depth=queue_depth,
                         best_effort_depth=best_effort_depth,
                         source_depths=source_depths or {},
                         overload=overload)


def debug_job(job_id="d0", gpus=1, job_type=JobType.DEBUG,
              submit_time=0.0, **kwargs):
    return Job(job_id=job_id, cluster="service", job_type=job_type,
               submit_time=submit_time, duration=600.0,
               gpu_demand=gpus, **kwargs)


class TestOverloadStateMachine:
    def test_rises_instantly_through_watermarks(self):
        assert TIGHT.resolve(HEALTHY, 8) is PRESSURED
        assert TIGHT.resolve(HEALTHY, 12) is SATURATED
        assert TIGHT.resolve(HEALTHY, 99) is SHEDDING

    def test_falls_one_rung_gated_by_lower_watermark(self):
        # depth 10 is below the SHEDDING exit (12) but not below the
        # SATURATED exit (8): one rung down, not two
        assert TIGHT.resolve(SHEDDING, 10) is SATURATED
        assert TIGHT.resolve(SHEDDING, 5) is PRESSURED
        assert TIGHT.resolve(SHEDDING, 3) is HEALTHY

    def test_hysteresis_band_holds_state(self):
        # between healthy_depth and pressured_depth the previous state
        # wins — no flapping around one threshold
        assert TIGHT.resolve(PRESSURED, 6) is PRESSURED
        assert TIGHT.resolve(HEALTHY, 6) is HEALTHY

    def test_watermark_ordering_validated(self):
        with pytest.raises(ValueError):
            OverloadConfig(healthy_depth=9, pressured_depth=8)
        with pytest.raises(ValueError):
            OverloadConfig(sweep_interval_s=0.0)
        with pytest.raises(ValueError):
            OverloadConfig(escalate_after_s=-1.0)

    def test_config_round_trips(self):
        assert OverloadConfig.from_config_dict(
            TIGHT.to_config_dict()) == TIGHT


class TestPolicies:
    def test_queue_depth_cap(self):
        policy = QueueDepthCapPolicy(max_depth=3)
        job = debug_job()
        assert policy.decide(job, "s", view(best_effort_depth=2)).admitted
        assert not policy.decide(job, "s",
                                 view(best_effort_depth=3)).admitted
        assert policy.depth_bound() == 3

    def test_token_bucket_exhausts_and_refills(self):
        policy = TokenBucketPolicy(rate_per_hour=3600.0, burst=2.0,
                                   red_fraction=0.0, seed=0)
        job = debug_job()
        assert policy.decide(job, "s", view(now=0.0)).admitted
        assert policy.decide(job, "s", view(now=0.0)).admitted
        assert not policy.decide(job, "s", view(now=0.0)).admitted
        # one token refills after one second at 3600/h
        assert policy.decide(job, "s", view(now=1.5)).admitted

    def test_token_bucket_is_seed_deterministic(self):
        def decisions(seed):
            policy = TokenBucketPolicy(rate_per_hour=60.0, burst=8.0,
                                       red_fraction=1.0, seed=seed)
            return [policy.decide(debug_job(), "s",
                                  view(now=i * 30.0)).admitted
                    for i in range(64)]

        assert decisions(3) == decisions(3)
        assert decisions(3) != decisions(4)

    def test_weighted_quota_shares(self):
        policy = WeightedQuotaPolicy(slots=12,
                                     weights={"big": 2.0, "small": 1.0})
        job = debug_job()
        # big gets 8 of 12 slots, small 4; an unlisted source counts
        # default_weight against the listed total
        big = policy.decide(job, "big",
                            view(best_effort_depth=8,
                                 source_depths={"big": 8}))
        assert not big.admitted
        small = policy.decide(job, "small",
                              view(best_effort_depth=8,
                                   source_depths={"big": 8}))
        assert small.admitted
        full = policy.decide(job, "small", view(best_effort_depth=12))
        assert not full.admitted
        assert policy.depth_bound() == 12

    @pytest.mark.parametrize("policy", [
        AcceptAllPolicy(),
        QueueDepthCapPolicy(max_depth=5),
        TokenBucketPolicy(rate_per_hour=10.0, burst=4.0, seed=9),
        WeightedQuotaPolicy(slots=6, weights={"a": 2.0}),
    ], ids=POLICY_KINDS)
    def test_config_round_trips(self, policy):
        rebuilt = policy_from_config(policy.to_config_dict())
        assert rebuilt.to_config_dict() == policy.to_config_dict()

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(ValueError):
            policy_from_config({"kind": "fifo"})


class TestServiceOverload:
    def test_ladder_is_climbed_and_shedding_fires(self):
        service = saturated_service()
        service.advance(2.0 * 3600.0)
        states = {detail.split("->")[1].split(" ")[0]
                  for _, kind, detail in service.admission_log
                  if kind == "state"}
        assert "saturated" in states
        assert "shedding" in states
        assert service.jobs_shed > 0
        assert service.chains_deferred > 0
        # shed victims are all best-effort (invariant 15 held live, so
        # this re-checks the recorded evidence)
        for _, job_id, job_type in service.harness.checker.shed_records:
            assert JobType(job_type) not in RESERVED_TYPES

    def test_bounded_queue_under_cap_policy(self):
        service = saturated_service(QueueDepthCapPolicy(max_depth=10))
        service.advance(2.0 * 3600.0)
        assert service.jobs_rejected > 0
        # the live invariant-16 check would have raised already; the
        # tracker must also end within bounds
        assert len(service._queued) <= 10

    def test_reserved_bypass_never_consults_policy(self):
        class Refuser(QueueDepthCapPolicy):
            def decide(self, job, source, v):
                raise AssertionError("policy consulted for reserved job")

        service = ClusterService(
            BUNDLED_SCENARIOS["smoke"], admission=Refuser(max_depth=1),
            overload=TIGHT)
        service.advance(600.0)
        service.submit(Job(job_id="pt-x", cluster="service",
                           job_type=JobType.PRETRAIN,
                           submit_time=service.engine.now,
                           duration=1200.0, gpu_demand=8))
        assert service.jobs_rejected == 0
        assert any("reserved bypass" in detail
                   for _, kind, detail in service.admission_log
                   if kind == "admit")

    def test_deadline_shed_fires_in_any_state(self):
        service = ClusterService(
            BUNDLED_SCENARIOS["smoke"], admission=AcceptAllPolicy(),
            overload=TIGHT)
        service.advance(600.0)
        now = service.engine.now
        # a whole-cluster hog starts immediately; the second whole-
        # cluster job must queue behind it past its deadline
        service.submit(Job(job_id="hog", cluster="service",
                           job_type=JobType.DEBUG, submit_time=now,
                           duration=3.0 * 3600.0, gpu_demand=32))
        service.submit(debug_job(
            job_id="late", gpus=32, submit_time=now,
            metadata={"deadline": now + 60.0}))
        service.advance(3600.0)
        assert service.jobs_shed == 1
        assert any("late deadline" in detail
                   for _, kind, detail in service.admission_log
                   if kind == "shed")

    def test_shedding_reserved_job_violates_invariant_15(self):
        checker = ClusterService(BUNDLED_SCENARIOS["smoke"],
                                 admission=AcceptAllPolicy(),
                                 overload=TIGHT).harness.checker
        with pytest.raises(InvariantViolation):
            checker.record_shed(
                10.0, debug_job(job_type=JobType.PRETRAIN))
        with pytest.raises(InvariantViolation):
            checker.record_admission(
                10.0, debug_job(job_type=JobType.MLLM), False)

    def test_disarmed_service_has_inert_gauges(self):
        service = ClusterService(BUNDLED_SCENARIOS["smoke"])
        gauges = service.advance(3600.0)
        assert gauges.overload_state == "healthy"
        assert gauges.jobs_rejected == 0
        assert gauges.jobs_shed == 0
        assert gauges.chains_deferred == 0
        assert gauges.admission_digest == text_digest("")

    @pytest.mark.parametrize("scenario", sorted(BUNDLED_SCENARIOS))
    def test_invariant_15_green_across_bundled_scenarios(self, scenario):
        """Every bundled scenario, saturated, sheds only best-effort."""
        service = ClusterService(
            BUNDLED_SCENARIOS[scenario], streams=overload_streams(),
            admission=WeightedQuotaPolicy(slots=10), overload=TIGHT)
        service.advance(min(2.0 * 3600.0,
                            service.scenario.duration))
        for _, job_id, job_type in service.harness.checker.shed_records:
            assert JobType(job_type) not in RESERVED_TYPES
        for record in service.harness.checker.admission_records:
            _, _, job_type, admitted = record
            if JobType(job_type) in RESERVED_TYPES:
                assert admitted


class TestSnapshotMidSaturation:
    def test_restore_mid_shedding_is_byte_identical(self):
        duration = 3.0 * 3600.0
        service = saturated_service(
            TokenBucketPolicy(rate_per_hour=60.0, burst=16.0, seed=1))
        service.advance(duration / 2)
        # the snapshot is taken with the overload machinery hot
        assert service.overload_state >= PRESSURED
        service.checkpoint()
        restored = ClusterService.restore(service.storage)
        assert restored.gauges() == service.gauges()
        assert (restored.admission_log_text()
                == service.admission_log_text())
        ahead = service.advance(duration)
        behind = restored.advance(duration)
        assert ahead == behind
        assert service.event_log_text() == restored.event_log_text()
        assert (service.admission_log_text()
                == restored.admission_log_text())


class TestLoadTest:
    def test_sweep_produces_pushback_past_capacity(self):
        report = run_loadtest(multipliers=(3.0,),
                              horizon_s=2.0 * 3600.0)
        assert report.capacity_per_hour > 0
        assert len(report.cells) == len(POLICY_KINDS)
        for cell in report.cells:
            assert cell.offered > 0
            assert cell.completed > 0
            turned_away = (cell.rejected + cell.shed
                           + cell.chains_deferred)
            assert turned_away > 0, cell.policy
            # bounded queue: never past the shedding watermark + one
            # burst of slack
            assert cell.queue_depth_peak <= (
                report.slots + report.slots // 2 + 8)

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(ValueError):
            run_loadtest(policy_kinds=("lifo",), multipliers=(1.0,),
                         horizon_s=600.0)

    def test_capacity_analytic_scales_linearly(self):
        config = PoissonStreamConfig(name="c", gpu_choices=(2,),
                                     duration_median_s=3600.0,
                                     duration_sigma=0.0)
        # 2-GPU hour-long jobs: 8 GPUs complete 4 per hour
        assert capacity_jobs_per_hour(config, 8) == pytest.approx(4.0)
        assert capacity_jobs_per_hour(config, 16) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            capacity_jobs_per_hour(config, 0)


class TestPartitionInvariance:
    @given(cuts=st.lists(st.floats(0.05, 0.95), min_size=1,
                         max_size=4),
           checkpoint_at=st.integers(0, 4))
    @settings(max_examples=8, deadline=None)
    def test_any_horizon_partition_replays_byte_identically(
            self, cuts, checkpoint_at):
        """Property: cutting a saturated run into arbitrary advance()
        horizons — with a checkpoint/restore at one of the cuts — is
        byte-identical to the batch run, event and admission logs
        included."""
        duration = 2.0 * 3600.0

        batch = saturated_service(QueueDepthCapPolicy(max_depth=10))
        batch_gauges = batch.advance(duration)

        split = saturated_service(QueueDepthCapPolicy(max_depth=10))
        horizons = sorted({round(cut * duration, 3) for cut in cuts})
        for index, until in enumerate(horizons):
            split_gauges = split.advance(until)
            if index == min(checkpoint_at, len(horizons) - 1):
                split.checkpoint()
                split = ClusterService.restore(split.storage)
        split_gauges = split.advance(duration)

        assert split_gauges == batch_gauges
        assert split.event_log_text() == batch.event_log_text()
        assert (split.admission_log_text()
                == batch.admission_log_text())
