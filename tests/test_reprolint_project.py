"""reprolint phase 2: ProjectIndex, cross-module rules, SARIF, --fix.

Fixtures here are miniature on-disk ``repro`` package trees (module
names and sim-ownership are derived from the path layout), linted with
``run_lint`` so both phases execute.  Each cross-module rule gets a
positive and a negative fixture; the index itself gets structural
tests (import graph, re-export canonicalization, content-hash cache).
"""

from __future__ import annotations

import argparse
import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import Baseline, LintConfig, run_lint
from repro.devtools.lint.baseline import BaselineEntry
from repro.devtools.lint.findings import RULES
from repro.devtools.lint.fixes import apply_fixes
from repro.devtools.lint.project import (ProjectIndex, module_name_for,
                                         module_name_from_path_text)
from repro.devtools.lint.runner import add_arguments, main
from repro.devtools.lint.sarif import to_sarif


def write_tree(root: Path, files: dict[str, str]) -> list[Path]:
    """Materialize ``relative path -> source`` as a package tree.

    Every directory on the way gets an ``__init__.py`` so module names
    resolve by package ascent, exactly as in the real repo layout.
    """
    paths = []
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        package = target.parent
        while package != root:
            init = package / "__init__.py"
            if not init.exists():
                init.write_text("")
            package = package.parent
        target.write_text(textwrap.dedent(source))
        paths.append(target)
    return sorted(root.rglob("*.py"))


def project_lint(root: Path, files: dict[str, str], code: str):
    """Write the tree, lint both phases, return findings for ``code``."""
    paths = write_tree(root, files)
    result = run_lint(paths, LintConfig(select=frozenset({code})))
    assert not result.parse_errors
    return [f for f in result.findings if f.code == code]


REGISTRY = """\
    STREAM_OFFSETS: dict[str, int] = {
        "node_faults": 0,
        "storage": 2,
    }
    """


# -- SEED001: RNG-stream registry ------------------------------------------


def test_seed_flags_unregistered_offset(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/streams.py": REGISTRY,
        "repro/chaos/scenario.py": """\
            import numpy as np

            class Scenario:
                def __init__(self, seed):
                    self.seed = seed

                def build(self):
                    return np.random.default_rng(self.seed + 9)
            """,
    }, "SEED001")
    assert [f.code for f in findings] == ["SEED001"]
    assert "seed + 9 is not a registered RNG stream" in findings[0].message
    assert "stream_rng()" in findings[0].message


def test_seed_allows_registered_offsets_and_plain_seeds(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/streams.py": REGISTRY,
        "repro/chaos/scenario.py": """\
            import numpy as np

            class Scenario:
                def __init__(self, seed):
                    self.seed = seed

                def build(self):
                    base = np.random.default_rng(self.seed)
                    return base, np.random.default_rng(self.seed + 2)
            """,
    }, "SEED001")
    assert findings == []


def test_seed_reports_registry_collision_on_the_registry(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/streams.py": """\
            STREAM_OFFSETS: dict[str, int] = {
                "node_faults": 0,
                "storage": 0,
            }
            """,
    }, "SEED001")
    assert len(findings) == 1
    assert findings[0].path.endswith("streams.py")
    assert "collision" in findings[0].message
    assert "'storage' and 'node_faults'" in findings[0].message


# -- TRC001: tracer seam ---------------------------------------------------


#: the evalsched replay as committed before instrumentation — the
#: untraced surface this rule was built to catch (trimmed, faithful)
PRE_FIX_EVALSCHED = """\
    from repro.sim.engine import Engine

    class EventDrivenEvalRound:
        def __init__(self, config, deserialize_rate=1.5e9):
            self.config = config
            self.deserialize_rate = deserialize_rate

        def run_baseline(self, datasets):
            engine = Engine()
            for dataset in datasets:
                engine.process(iter([dataset]), name=dataset.name)
            return engine.run()
    """


def test_trc_fires_on_pre_instrumentation_evalsched(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/sim/engine.py": "class Engine:\n    pass\n",
        "repro/core/evalsched/simulation.py": PRE_FIX_EVALSCHED,
    }, "TRC001")
    assert len(findings) == 1
    assert findings[0].path.endswith("simulation.py")
    assert "EventDrivenEvalRound" in findings[0].message
    assert "untraced surface" in findings[0].message


def test_trc_seam_shape_requires_default_and_normalization(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/core/runner.py": """\
            class Runner:
                def __init__(self, tracer):
                    self.tracer = tracer
            """,
    }, "TRC001")
    messages = sorted(f.message for f in findings)
    assert len(messages) == 2
    assert "never normalizes" in messages[0]
    assert "default to None" in messages[1]


def test_trc_resolves_null_tracer_through_reexports(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/obs/tracer.py": "NULL_TRACER = None\n",
        "repro/obs/__init__.py":
            "from repro.obs.tracer import NULL_TRACER\n",
        "repro/core/runner.py": """\
            from repro.obs import NULL_TRACER

            class Runner:
                def __init__(self, tracer=None):
                    self.tracer = tracer or NULL_TRACER
            """,
    }, "TRC001")
    assert findings == []


def test_trc_ignores_dataclasses_and_private_helpers(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/sim/engine.py": "class Engine:\n    pass\n",
        "repro/core/shapes.py": """\
            from dataclasses import dataclass

            from repro.sim.engine import Engine

            @dataclass
            class Plan:
                steps: int = 0

            class _Clock:
                def now(self):
                    return Engine()
            """,
    }, "TRC001")
    assert findings == []


# -- LSN002: exit-safe paired release --------------------------------------


def test_lsn2_flags_class_that_never_releases(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/hooks.py": """\
            class Harness:
                def start(self, engine, hook):
                    engine.add_listener(hook)
            """,
    }, "LSN002")
    assert len(findings) == 1
    assert "ever calls remove_listener()" in findings[0].message


def test_lsn2_flags_conditional_only_release(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/hooks.py": """\
            class Harness:
                def start(self, engine, hook):
                    self.engine = engine
                    engine.add_listener(hook)

                def maybe_stop(self, hook, flag):
                    if flag:
                        self.engine.remove_listener(hook)
            """,
    }, "LSN002")
    assert len(findings) == 1
    assert "conditional paths" in findings[0].message


@pytest.mark.parametrize("release", [
    # finally block inside the acquiring method
    """\
        def run(self, engine, hook):
            engine.add_listener(hook)
            try:
                pass
            finally:
                engine.remove_listener(hook)
    """,
    # teardown method, even behind a conditional receiver
    """\
        def start(self, engine, hook):
            self.engine, self.hook = engine, hook
            engine.add_listener(hook)

        def close(self):
            self.engine.remove_listener(self.hook)
    """,
])
def test_lsn2_accepts_exit_safe_release(tmp_path, release):
    source = "class Harness:\n" + textwrap.indent(
        textwrap.dedent(release), "    ")
    findings = project_lint(
        tmp_path, {"repro/chaos/hooks.py": source}, "LSN002")
    assert findings == []


def test_lsn2_exempts_the_resource_api_owner(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/sim/bus.py": """\
            class Bus:
                def add_listener(self, hook):
                    self.hooks.append(hook)

                def subscribe(self, hook):
                    self.add_listener(hook)
            """,
    }, "LSN002")
    assert findings == []


# -- SPAN001: span begin/end pairing ---------------------------------------


def test_span_flags_begin_without_any_end(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/probe.py": """\
            class Probe:
                def fire(self):
                    self.span = self.tracer.begin("fire", "chaos")
            """,
    }, "SPAN001")
    assert len(findings) == 1
    assert "ever calls .end()" in findings[0].message


def test_span_accepts_end_in_another_method(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/probe.py": """\
            class Probe:
                def fire(self):
                    self.span = self.tracer.begin("fire", "chaos")

                def settle(self):
                    self.tracer.end(self.span)
            """,
    }, "SPAN001")
    assert findings == []


# -- IMP001: transitive import taint ---------------------------------------


def test_imp_flags_direct_taint_root_import(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/worker.py": "import threading\n",
    }, "IMP001")
    assert len(findings) == 1
    assert "imports threading directly" in findings[0].message
    assert "blessed" in findings[0].message


def test_imp_reports_transitive_taint_with_witness_chain(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/chaos/clockio.py": "import time\n",
        "repro/chaos/faults.py":
            "from repro.chaos.clockio import time\n",
        "repro/chaos/scenario.py":
            "from repro.chaos.faults import time\n",
    }, "IMP001")
    by_path = {Path(f.path).name: f for f in findings}
    # clockio is directly tainted; faults and scenario transitively
    assert set(by_path) == {"clockio.py", "faults.py", "scenario.py"}
    assert ("repro.chaos.scenario -> repro.chaos.faults -> "
            "repro.chaos.clockio -> time"
            in by_path["scenario.py"].message)


def test_imp_blessed_seams_absorb_taint(tmp_path):
    findings = project_lint(tmp_path, {
        # repro.cluster.storage is a blessed seam: it may touch the
        # host, and importing it is not tainting
        "repro/cluster/storage.py": "import time\n",
        "repro/chaos/scenario.py":
            "from repro.cluster.storage import time\n",
    }, "IMP001")
    assert findings == []


def test_imp_ignores_non_sim_modules(tmp_path):
    findings = project_lint(tmp_path, {
        "repro/analysis/plots.py": "import threading\n",
    }, "IMP001")
    assert findings == []


# -- ProjectIndex structure ------------------------------------------------


class TestProjectIndex:
    def test_module_names_by_package_ascent(self, tmp_path):
        paths = write_tree(tmp_path, {
            "repro/chaos/faults.py": "x = 1\n",
        })
        names = {module_name_for(p) for p in paths}
        assert names == {"repro", "repro.chaos", "repro.chaos.faults"}
        assert (module_name_from_path_text("src/repro/chaos/faults.py")
                == "repro.chaos.faults")
        assert module_name_from_path_text("elsewhere/util.py") is None

    def test_import_graph_resolves_relative_imports(self, tmp_path):
        paths = write_tree(tmp_path, {
            "repro/chaos/faults.py": "x = 1\n",
            "repro/chaos/scenario.py": "from .faults import x\n",
            "repro/chaos/deep/nested.py": "from ..faults import x\n",
        })
        index = ProjectIndex.build(paths)
        assert ("repro.chaos.faults" in
                index.modules["repro.chaos.scenario"].module_imports)
        assert ("repro.chaos.faults" in
                index.modules["repro.chaos.deep.nested"].module_imports)

    def test_reexport_chains_canonicalize(self, tmp_path):
        paths = write_tree(tmp_path, {
            "repro/obs/tracer.py": "NULL_TRACER = None\n",
            "repro/obs/__init__.py":
                "from repro.obs.tracer import NULL_TRACER\n",
            "repro/core/__init__.py":
                "from repro.obs import NULL_TRACER\n",
        })
        index = ProjectIndex.build(paths)
        assert (index.canonical("repro.core", "NULL_TRACER")
                == "repro.obs.tracer.NULL_TRACER")
        assert (index.canonical_use("repro.core.NULL_TRACER")
                == "repro.obs.tracer.NULL_TRACER")
        # an unknown symbol stays where it was named
        assert (index.canonical("repro.core", "missing")
                == "repro.core.missing")

    def test_cache_reuses_unchanged_modules(self, tmp_path):
        paths = write_tree(tmp_path, {
            "repro/chaos/faults.py": "x = 1\n",
            "repro/chaos/scenario.py": "y = 2\n",
        })
        first = ProjectIndex.build(paths)
        assert first.parsed == set(first.modules)

        (tmp_path / "repro/chaos/scenario.py").write_text("y = 3\n")
        second = ProjectIndex.build(paths, previous=first)
        assert second.parsed == {"repro.chaos.scenario"}
        assert (second.modules["repro.chaos.faults"]
                is first.modules["repro.chaos.faults"])
        assert (second.modules["repro.chaos.scenario"]
                is not first.modules["repro.chaos.scenario"])


# -- baseline determinism (duplicate fingerprints) -------------------------


def _entry(fingerprint, justification, line=1, count=1):
    return BaselineEntry(fingerprint=fingerprint, code="RNG001",
                         path="src/repro/sim/mod.py", line=line,
                         snippet="x", justification=justification,
                         count=count)


def test_baseline_merges_duplicate_fingerprints_deterministically():
    baseline = Baseline(entries=[
        _entry("aa", "first wins", line=4),
        _entry("aa", "ignored duplicate", line=9),
        _entry("bb", "other", line=2),
    ])
    merged = {e.fingerprint: e for e in baseline.merged_entries()}
    assert merged["aa"].count == 2
    assert merged["aa"].justification == "first wins"
    assert merged["aa"].line == 4
    # merging copies; the stored entries are untouched
    assert [e.count for e in baseline.entries] == [1, 1, 1]

    fresh, baselined, stale = baseline.apply([])
    assert fresh == [] and baselined == []
    # stale order follows (path, code, line, fingerprint)
    assert [(e.fingerprint, e.count) for e in stale] == [
        ("bb", 1), ("aa", 2)]


def test_baseline_save_round_trip_is_byte_stable(tmp_path):
    baseline = Baseline(entries=[
        _entry("bb", "b", line=7),
        _entry("aa", "dup", line=9),
        _entry("aa", "dup", line=4),
    ])
    first = tmp_path / "one.json"
    baseline.save(first)
    second = tmp_path / "two.json"
    Baseline.load(first).save(second)
    assert first.read_bytes() == second.read_bytes()
    order = [e["line"] for e in
             json.loads(first.read_text())["entries"]]
    assert order == [4, 7, 9]


# -- SARIF reporter --------------------------------------------------------


def test_sarif_log_shape_and_fingerprints(tmp_path):
    target = tmp_path / "repro" / "sim" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("import random\n\n"
                      "def draw():\n"
                      "    return random.random()\n")
    result = run_lint([target])
    assert [f.code for f in result.findings] == ["RNG001"]

    log = to_sarif(result)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert ({rule["id"] for rule in run["tool"]["driver"]["rules"]}
            == set(RULES))
    entry = run["results"][0]
    assert entry["ruleId"] == "RNG001"
    assert entry["level"] == "error"
    assert (entry["partialFingerprints"]["reprolint/v1"]
            == result.findings[0].fingerprint())
    region = entry["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 4
    assert region["snippet"]["text"] == "return random.random()"
    assert "baselineState" not in entry


def test_sarif_marks_baselined_findings_unchanged(tmp_path):
    target = tmp_path / "repro" / "sim" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("import random\nVALUE = random.random()\n")
    raw = run_lint([target])
    baseline = Baseline.from_findings(raw.findings)
    result = run_lint([target], baseline=baseline)
    assert result.findings == [] and len(result.baselined) == 1

    entries = to_sarif(result)["runs"][0]["results"]
    assert [e.get("baselineState") for e in entries] == ["unchanged"]


# -- autofixes (--fix / --check-idempotent) --------------------------------


def cli(*argv: str) -> tuple[int, str]:
    parser = argparse.ArgumentParser()
    add_arguments(parser)
    stream = io.StringIO()
    code = main(parser.parse_args(list(argv)), stream=stream)
    return code, stream.getvalue()


def test_fix_wraps_set_iteration_in_sorted(tmp_path):
    target = tmp_path / "repro" / "sim" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("def drain(jobs):\n"
                      "    for job in {j.lower() for j in jobs}:\n"
                      "        print(job)\n")
    code, out = cli(str(target), "--fix", "--no-baseline",
                    "--no-project")
    assert code == 0
    assert "applied 1 fixes in 1 files" in out
    assert ("for job in sorted({j.lower() for j in jobs}):"
            in target.read_text())


def test_fix_repairs_tracer_seam_and_is_idempotent(tmp_path):
    write_tree(tmp_path, {
        "repro/core/runner.py": """\
            class Runner:
                def __init__(self, tracer):
                    self.tracer = tracer
            """,
    })
    target = tmp_path / "repro" / "core" / "runner.py"
    code, out = cli(str(tmp_path), "--fix", "--check-idempotent",
                    "--no-baseline")
    assert code == 0, out
    assert "applied 2 fixes in 1 files" in out
    fixed = target.read_text()
    assert "from repro.obs.tracer import NULL_TRACER" in fixed
    assert "def __init__(self, tracer=None):" in fixed
    assert "self.tracer = tracer or NULL_TRACER" in fixed


def test_fix_second_pass_applies_nothing(tmp_path):
    write_tree(tmp_path, {
        "repro/core/runner.py": """\
            class Runner:
                def __init__(self, tracer):
                    self.tracer = tracer
            """,
    })
    code, out = cli(str(tmp_path), "--fix", "--no-baseline")
    assert code == 0
    code, out = cli(str(tmp_path), "--fix", "--no-baseline")
    assert code == 0
    assert "applied 0 fixes in 0 files" in out


def test_check_idempotent_requires_fix(tmp_path):
    code, out = cli(str(tmp_path), "--check-idempotent")
    assert code == 2
    assert "--check-idempotent requires --fix" in out


def test_apply_fixes_skips_unfixable_findings():
    source = "x = 1\n"
    fixed, applied = apply_fixes(source, [])
    assert fixed == source and applied == 0


# -- phase toggling --------------------------------------------------------


def test_no_project_skips_cross_module_phase(tmp_path):
    paths = write_tree(tmp_path, {
        "repro/chaos/worker.py": "import threading\n",
    })
    with_phase = run_lint(paths)
    without = run_lint(paths, LintConfig(project=False))
    assert any(f.code == "IMP001" for f in with_phase.findings)
    assert without.index is None
    assert all(f.code != "IMP001" for f in without.findings)


def test_project_findings_respect_suppressions(tmp_path):
    paths = write_tree(tmp_path, {
        "repro/chaos/worker.py":
            "import threading  # reprolint: disable=IMP001\n",
    })
    result = run_lint(paths)
    assert all(f.code != "IMP001" for f in result.findings)
