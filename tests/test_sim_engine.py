"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.call_at(5.0, lambda: order.append("b"))
        engine.call_at(1.0, lambda: order.append("a"))
        engine.call_at(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for label in "abc":
            engine.call_at(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.call_at(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]

    def test_call_after_is_relative(self):
        engine = Engine()
        seen = []
        engine.call_at(2.0, lambda: engine.call_after(
            3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_the_past(self):
        engine = Engine()
        engine.call_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        engine = Engine()
        fired = []
        item = engine.call_at(1.0, lambda: fired.append(1))
        engine.cancel(item)
        engine.run()
        assert not fired

    def test_run_until_stops_clock_at_deadline(self):
        engine = Engine()
        fired = []
        engine.call_at(10.0, lambda: fired.append(1))
        end = engine.run(until=4.0)
        assert end == 4.0
        assert not fired
        engine.run()
        assert fired

    def test_run_until_with_empty_heap_advances_clock(self):
        engine = Engine()
        assert engine.run(until=7.0) == 7.0

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.call_after(1.0, reschedule)

        engine.call_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=50)

    def test_pending_counts_uncancelled(self):
        engine = Engine()
        item = engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.cancel(item)
        assert engine.pending == 1


class TestEvents:
    def test_event_value_delivered(self):
        engine = Engine()
        event = engine.event()
        got = []
        event.subscribe(lambda ev: got.append(ev.value))
        engine.call_at(1.0, lambda: event.succeed("payload"))
        engine.run()
        assert got == ["payload"]

    def test_subscribe_after_trigger_still_fires(self):
        engine = Engine()
        event = engine.event()
        event.succeed(42)
        got = []
        event.subscribe(lambda ev: got.append(ev.value))
        engine.run()
        assert got == [42]

    def test_double_succeed_raises(self):
        engine = Engine()
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_timeout_fires_after_delay(self):
        engine = Engine()
        got = []
        engine.timeout(2.5, "done").subscribe(
            lambda ev: got.append((engine.now, ev.value)))
        engine.run()
        assert got == [(2.5, "done")]

    def test_all_of_collects_values_in_order(self):
        engine = Engine()
        events = [engine.timeout(3.0, "late"), engine.timeout(1.0, "soon")]
        got = []
        engine.all_of(events).subscribe(lambda ev: got.append(
            (engine.now, ev.value)))
        engine.run()
        assert got == [(3.0, ["late", "soon"])]

    def test_all_of_empty_fires_immediately(self):
        engine = Engine()
        got = []
        engine.all_of([]).subscribe(lambda ev: got.append(ev.value))
        engine.run()
        assert got == [[]]

    def test_any_of_fires_on_first(self):
        engine = Engine()
        events = [engine.timeout(3.0, "late"), engine.timeout(1.0, "soon")]
        got = []
        engine.any_of(events).subscribe(lambda ev: got.append(
            (engine.now, ev.value)))
        engine.run()
        assert got == [(1.0, "soon")]

    def test_any_of_empty_raises_instead_of_hanging(self):
        """Regression: any_of([]) used to return an event that could
        never fire, silently stalling any process waiting on it."""
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.any_of([])

    def test_any_of_consumes_generators_safely(self):
        engine = Engine()
        got = []
        engine.any_of(engine.timeout(t, t) for t in (2.0, 1.0)
                      ).subscribe(lambda ev: got.append(ev.value))
        engine.run()
        assert got == [1.0]


class TestProcess:
    def test_process_sleeps_on_numeric_yield(self):
        engine = Engine()
        trace = []

        def worker():
            trace.append(engine.now)
            yield 2.0
            trace.append(engine.now)
            yield 3.0
            trace.append(engine.now)

        engine.process(worker())
        engine.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_process_waits_on_event_and_receives_value(self):
        engine = Engine()
        event = engine.event()
        got = []

        def worker():
            value = yield event
            got.append(value)

        engine.process(worker())
        engine.call_at(4.0, lambda: event.succeed("hello"))
        engine.run()
        assert got == ["hello"]

    def test_process_done_event_carries_return_value(self):
        engine = Engine()

        def worker():
            yield 1.0
            return "result"

        process = engine.process(worker())
        got = []
        process.done.subscribe(lambda ev: got.append(ev.value))
        engine.run()
        assert got == ["result"]

    def test_negative_delay_raises(self):
        engine = Engine()

        def worker():
            yield -1.0

        engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()

    def test_bad_yield_type_raises(self):
        engine = Engine()

        def worker():
            yield "nonsense"

        engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()


class TestResource:
    def test_acquire_within_capacity_is_immediate(self):
        engine = Engine()
        resource = engine.resource(4)
        got = []
        resource.acquire(3).subscribe(lambda ev: got.append(engine.now))
        engine.run()
        assert got == [0.0]
        assert resource.in_use == 3

    def test_acquire_blocks_until_release(self):
        engine = Engine()
        resource = engine.resource(2)
        got = []
        resource.acquire(2)
        resource.acquire(1).subscribe(lambda ev: got.append(engine.now))
        engine.call_at(5.0, lambda: resource.release(2))
        engine.run()
        assert got == [5.0]

    def test_fifo_head_of_line_blocking(self):
        engine = Engine()
        resource = engine.resource(3)
        order = []
        resource.acquire(3)
        resource.acquire(2).subscribe(lambda ev: order.append("big"))
        resource.acquire(1).subscribe(lambda ev: order.append("small"))
        engine.call_at(1.0, lambda: resource.release(1))
        engine.call_at(2.0, lambda: resource.release(1))
        engine.call_at(3.0, lambda: resource.release(1))
        engine.run()
        # The small request fits at t=1 but waits behind the big one.
        assert order == ["big", "small"]

    def test_over_release_raises(self):
        engine = Engine()
        resource = engine.resource(2)
        with pytest.raises(SimulationError):
            resource.release(1)

    def test_request_exceeding_capacity_raises(self):
        engine = Engine()
        resource = engine.resource(2)
        with pytest.raises(SimulationError):
            resource.acquire(3)

    def test_queue_length_reflects_waiters(self):
        engine = Engine()
        resource = engine.resource(1)
        resource.acquire(1)
        resource.acquire(1)
        resource.acquire(1)
        engine.run()
        assert resource.queue_length == 2

    def test_deep_waiter_queue_drains_in_fifo_order(self):
        """Regression for the O(n^2) drain: a deep waiter queue (the
        chaos-storm shape) must grant strictly in arrival order and
        leave the queue empty."""
        engine = Engine()
        resource = engine.resource(1)
        order = []
        resource.acquire(1)

        def granted(index):
            order.append(index)
            engine.call_after(0.0, lambda: resource.release(1))

        for index in range(500):
            resource.acquire(1).subscribe(
                lambda ev, i=index: granted(i))
        assert resource.queue_length == 500
        engine.call_at(1.0, lambda: resource.release(1))
        engine.run()
        assert order == list(range(500))
        assert resource.queue_length == 0
        assert resource.in_use == 0


class TestListeners:
    def test_listener_runs_after_every_event(self):
        engine = Engine()
        seen = []
        engine.add_listener(seen.append)
        for time in (1.0, 2.0, 5.0):
            engine.call_at(time, lambda: None)
        engine.run()
        assert seen == [1.0, 2.0, 5.0]

    def test_listener_observes_callback_effects(self):
        engine = Engine()
        state = []
        engine.add_listener(lambda now: state.append(len(state)))
        engine.call_at(1.0, lambda: None)
        engine.run()
        assert state == [0]

    def test_removed_listener_stops_firing(self):
        engine = Engine()
        seen = []
        engine.add_listener(seen.append)
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: engine.remove_listener(seen.append))
        engine.call_at(3.0, lambda: None)
        engine.run()
        assert seen == [1.0]  # t=2 removes it before its own check

    def test_cancelled_events_do_not_trigger_listener(self):
        engine = Engine()
        seen = []
        engine.add_listener(seen.append)
        item = engine.call_at(1.0, lambda: None)
        engine.cancel(item)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert seen == [2.0]


_times = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=40)


class TestEngineProperties:
    @given(times=_times)
    @settings(max_examples=80, deadline=None)
    def test_execution_order_total_and_deterministic(self, times):
        """Any schedule runs in (time, insertion) order, every time."""

        def run_once():
            engine = Engine()
            fired = []
            for index, time in enumerate(times):
                engine.call_at(time,
                               lambda t=time, i=index: fired.append((t, i)))
            engine.run()
            return fired

        first = run_once()
        assert first == run_once()          # deterministic replay
        assert first == sorted(first)       # total order, stable ties
        assert len(first) == len(times)     # nothing dropped

    @given(times=_times, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_cancelled_events_never_fire(self, times, data):
        engine = Engine()
        fired = []
        items = [engine.call_at(time, lambda i=index: fired.append(i))
                 for index, time in enumerate(times)]
        cancelled = {index for index in range(len(items))
                     if data.draw(st.booleans(), label=f"cancel[{index}]")}
        for index in cancelled:
            engine.cancel(items[index])
        engine.run()
        assert set(fired) == set(range(len(items))) - cancelled

    @given(capacity=st.integers(1, 8),
           requests=st.lists(
               st.tuples(st.integers(1, 8),
                         st.floats(min_value=0.1, max_value=10.0,
                                   allow_nan=False)),
               min_size=0, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_resource_never_over_grants(self, capacity, requests):
        """in_use stays within capacity after every event, and every
        grant is eventually returned."""
        engine = Engine()
        resource = engine.resource(capacity)
        engine.add_listener(
            lambda now: self._assert_within(resource, capacity))

        def worker(amount, hold):
            yield resource.acquire(amount)
            yield hold
            resource.release(amount)

        for amount, hold in requests:
            engine.process(worker(min(amount, capacity), hold))
        engine.run()
        assert resource.in_use == 0
        assert resource.available == capacity

    @staticmethod
    def _assert_within(resource, capacity):
        assert 0 <= resource.in_use <= capacity
        assert resource.in_use + resource.available == capacity


class TestLazyDeletionCompaction:
    """Cancelled-event pileup: the heap must stay proportional to the
    *live* event count, and compaction must never change pop order."""

    def test_cancel_heavy_storm_pins_heap_size(self):
        """Regression: a cancel-heavy run used to grow the heap without
        bound; lazy-deletion compaction keeps it near the live count."""
        from repro.sim.engine import _COMPACT_MIN_CANCELLED

        engine = Engine()
        live = [engine.call_at(1e9 + i, lambda: None)
                for i in range(100)]
        for wave in range(50):
            items = [engine.call_at(1e6 + wave, lambda: None)
                     for _ in range(400)]
            for item in items:
                engine.cancel(item)
        # 20,000 cancellations later the physical heap must be bounded
        # by the live count plus one un-compacted garbage allowance
        assert engine.pending == len(live)
        assert engine.heap_size <= 2 * (len(live)
                                        + _COMPACT_MIN_CANCELLED)

    def test_cancelled_counter_tracks_popped_garbage(self):
        engine = Engine()
        keep = []
        item = engine.call_at(1.0, lambda: keep.append(engine.now))
        stale = engine.call_at(2.0, lambda: keep.append(-1.0))
        engine.cancel(stale)
        engine.cancel(stale)  # double-cancel is a no-op
        engine.run()
        assert keep == [1.0]
        assert engine.pending == 0
        assert engine.heap_size == 0
        assert item.cancelled is False

    def test_compaction_preserves_pop_order(self):
        """Interleave schedule/cancel so compaction fires mid-run, then
        assert callbacks still execute in exact (time, seq) order."""
        engine = Engine()
        order = []

        def record(tag):
            return lambda: order.append((engine.now, tag))

        expected = []
        for i in range(600):
            time = float(i % 7) + 10.0
            item = engine.call_at(time, record(i))
            if i % 3 == 0:
                engine.cancel(item)
            else:
                expected.append((time, i))
        expected.sort(key=lambda pair: (pair[0],))
        engine.run()
        # stable by seq within equal times: sort expectation the same way
        assert [tag for _, tag in order] == sorted(
            (tag for _, tag in expected),
            key=lambda tag: (float(tag % 7), tag))

    def test_cancel_inside_callback_during_run(self):
        """A callback cancelling enough items to trigger compaction must
        not derail the running loop (the loop re-reads the heap)."""
        engine = Engine()
        victims = [engine.call_at(100.0 + i, lambda: None)
                   for i in range(1000)]
        fired = []

        def purge():
            for victim in victims:
                engine.cancel(victim)
            fired.append("purge")

        engine.call_at(1.0, purge)
        engine.call_at(2.0, lambda: fired.append("after"))
        engine.run()
        assert fired == ["purge", "after"]
        assert engine.pending == 0

    def test_pending_is_live_count(self):
        engine = Engine()
        items = [engine.call_at(float(i), lambda: None)
                 for i in range(10)]
        assert engine.pending == 10
        for item in items[:4]:
            engine.cancel(item)
        assert engine.pending == 6
        assert engine.heap_size == 10  # garbage not yet collected


class TestListenerMutationDuringRun:
    """Listeners attached/detached from inside callbacks or other
    listeners: the run loop iterates a per-event snapshot of the
    copy-on-write list, so mid-run mutation is always safe."""

    def test_attach_inside_callback_fires_from_next_event(self):
        engine = Engine()
        seen = []
        engine.call_at(1.0, lambda: engine.add_listener(seen.append))
        engine.call_at(2.0, lambda: None)
        engine.call_at(3.0, lambda: None)
        engine.run()
        # not for the attaching event itself, every event after it
        assert seen == [2.0, 3.0]

    def test_detach_inside_callback_skips_current_event(self):
        engine = Engine()
        first, second = [], []
        engine.add_listener(first.append)
        engine.add_listener(second.append)
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: engine.remove_listener(second.append))
        engine.call_at(3.0, lambda: None)
        engine.run()
        assert first == [1.0, 2.0, 3.0]
        assert second == [1.0]  # detached before its t=2 firing

    def test_detach_of_currently_firing_listener(self):
        engine = Engine()
        seen = []

        def detach_b(now):
            seen.append(("a", now))
            if now == 1.0:
                engine.remove_listener(listener_b)

        def listener_b(now):
            seen.append(("b", now))

        engine.add_listener(detach_b)
        engine.add_listener(listener_b)
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.run()
        # listener A detaches B while firing at t=1: B never fires,
        # and A keeps firing alone afterwards
        assert seen == [("a", 1.0), ("a", 2.0)]

    def test_listener_removing_itself_stops_immediately(self):
        engine = Engine()
        seen = []

        def one_shot(now):
            seen.append(now)
            engine.remove_listener(one_shot)

        engine.add_listener(one_shot)
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert seen == [1.0]

    def test_attach_inside_listener_fires_from_next_event(self):
        engine = Engine()
        seen = []

        def attach_once(now):
            if not seen:
                engine.add_listener(seen.append)

        engine.add_listener(attach_once)
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert seen == [2.0]

    def test_remove_unknown_listener_raises(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.remove_listener(lambda now: None)


class TestCancelAccounting:
    """Cancelling an item whose time was already reached (popped for
    dispatch, or already dispatched) must not count as buried heap
    garbage — ``pending`` and ``_cancelled`` never go negative."""

    def test_cancel_after_dispatch_keeps_pending_nonnegative(self):
        engine = Engine()
        item = engine.call_at(1.0, lambda: None)
        engine.run()
        engine.cancel(item)  # time reached, callback already ran
        assert engine.pending == 0
        assert engine.heap_size == 0

    def test_cancel_of_currently_firing_item(self):
        engine = Engine()
        box = {}

        def self_cancel():
            engine.cancel(box["item"])

        box["item"] = engine.call_at(1.0, self_cancel)
        engine.call_at(1.0, lambda: None)  # same-timestamp follower
        engine.run()
        assert engine.pending == 0

    def test_post_dispatch_cancel_survives_compaction(self):
        """A phantom garbage count used to linger across _compact()
        (which zeroes the counter) and drive ``pending`` negative once
        real garbage was popped."""
        from repro.sim.engine import _COMPACT_MIN_CANCELLED
        engine = Engine()
        victims = [engine.call_at(100.0 + i, lambda: None)
                   for i in range(2 * _COMPACT_MIN_CANCELLED + 10)]
        box = {}

        def purge():
            engine.cancel(box["item"])  # currently firing: not garbage
            for victim in victims:
                engine.cancel(victim)   # forces _compact() mid-callback

        box["item"] = engine.call_at(1.0, purge)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert engine.pending == 0
        assert engine.heap_size == 0

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_pending_equals_live_items_across_interleavings(self, data):
        """pending == live (uncancelled, still-queued) items after any
        interleaving of schedule / cancel / re-cancel / run / storm."""
        from repro.sim.engine import _COMPACT_MIN_CANCELLED
        engine = Engine()
        handles = []
        ops = data.draw(st.lists(
            st.sampled_from(["schedule", "cancel", "run", "storm"]),
            min_size=1, max_size=25), label="ops")
        for op in ops:
            if op == "schedule":
                delay = data.draw(st.floats(0.0, 10.0, allow_nan=False))
                handles.append(
                    engine.call_at(engine.now + delay, lambda: None))
            elif op == "cancel" and handles:
                index = data.draw(
                    st.integers(0, len(handles) - 1), label="victim")
                engine.cancel(handles[index])  # may be fired/cancelled
            elif op == "run":
                delay = data.draw(st.floats(0.0, 10.0, allow_nan=False))
                engine.run(until=engine.now + delay)
            elif op == "storm":
                storm = [engine.call_at(engine.now + 100.0 + i,
                                        lambda: None)
                         for i in range(_COMPACT_MIN_CANCELLED + 1)]
                for item in storm:
                    engine.cancel(item)  # crosses compaction threshold
            live = sum(1 for item in engine._heap if not item.cancelled)
            assert engine.pending == live
            assert engine._cancelled >= 0
        engine.run()
        assert engine.pending == 0


class TestEngineSnapshot:
    def _build(self):
        engine = Engine()
        engine.call_at(1.0, lambda: None)
        engine.call_at(5.0, lambda: None)
        doomed = engine.call_at(3.0, lambda: None)
        engine.cancel(doomed)
        engine.call_at(4.0, lambda: None)
        engine.run(until=2.0)
        return engine

    def test_snapshot_captures_clock_seq_and_heap(self):
        engine = self._build()
        snap = engine.snapshot()
        assert snap.now == 2.0
        assert snap.next_seq == 4
        assert snap.events_processed == 1
        # the cancelled t=3 item was popped as garbage when it reached
        # the heap head during run(until=2.0)
        assert snap.heap == ((4.0, 3, False), (5.0, 1, False))

    def test_restore_after_identical_replay(self):
        snap = self._build().snapshot()
        rebuilt = self._build()
        rebuilt.restore(snap)
        assert rebuilt.snapshot() == snap
        assert rebuilt.snapshot().digest() == snap.digest()

    def test_restore_rejects_divergent_heap(self):
        snap = self._build().snapshot()
        diverged = self._build()
        diverged.call_at(9.0, lambda: None)
        with pytest.raises(SimulationError):
            diverged.restore(snap)

    def test_snapshot_is_picklable_and_digest_stable(self):
        import pickle
        snap = self._build().snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.digest() == snap.digest()

    def test_restored_engine_resumes_identically(self):
        fired_a, fired_b = [], []

        def run_to_end(engine, fired):
            for item in list(engine._heap):
                if not item.cancelled:
                    item.callback = (
                        lambda t=item.time: fired.append(t))
            engine.run()
            return fired

        original = self._build()
        snap = original.snapshot()
        rebuilt = self._build()
        rebuilt.restore(snap)
        assert run_to_end(original, fired_a) == run_to_end(
            rebuilt, fired_b)
