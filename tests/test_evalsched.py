"""Tests for decoupled evaluation scheduling (§6.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.storage import SharedStorage
from repro.core.evalsched import (CoordinatorConfig, ModelStager,
                                  TrialCoordinator, elastic_decompose,
                                  loading_stress_test, lpt_pack,
                                  pack_makespan)
from repro.evaluation.datasets import (EvalDataset, dataset_by_name,
                                       standard_catalog)


def storage():
    return SharedStorage(backend_bandwidth=400e9,
                         node_nic_bandwidth=25e9 / 8.0)


class TestLoading:
    def test_stress_test_collapse_then_flat(self):
        """Fig. 16 left."""
        results = dict(loading_stress_test(storage(), 14e9))
        assert results[1] / results[8] == pytest.approx(8.0, rel=0.02)
        assert results[8] == pytest.approx(results[256], rel=0.05)

    def test_staged_load_beats_contended_remote(self):
        stager = ModelStager(storage(), model_bytes=14e9)
        baseline = stager.trial_load_seconds_baseline(trials_per_node=8)
        staged = stager.trial_load_seconds_staged()
        assert staged < baseline / 2

    def test_precursor_runs_at_full_nic(self):
        stager = ModelStager(storage(), model_bytes=14e9)
        assert stager.precursor_seconds(1) == pytest.approx(
            14e9 / (25e9 / 8.0))

    def test_stage_marks_and_clear_releases(self):
        stager = ModelStager(storage(), model_bytes=14e9)
        stager.stage(["n0", "n1"])
        assert stager.staged_nodes == {"n0", "n1"}
        stager.clear()
        assert stager.staged_nodes == set()

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ModelStager(storage(), 14e9).precursor_seconds(0)


class TestPacking:
    def datasets(self):
        return [EvalDataset(f"d{i}", 100, float(t), 1.0, 0.0)
                for i, t in enumerate([100, 90, 40, 40, 30, 20, 10])]

    def test_lpt_balances_two_gpus(self):
        assignments = lpt_pack(self.datasets(), gpus=2)
        loads = [a.gpu_seconds() for a in assignments]
        assert max(loads) / min(loads) < 1.25

    def test_makespan_never_below_ideal(self):
        datasets = self.datasets()
        total = sum(d.inference_seconds + d.preprocess_seconds
                    for d in datasets)
        makespan = pack_makespan(lpt_pack(datasets, 3))
        assert makespan >= total / 3 - 1e-9

    def test_heavy_metric_datasets_run_first(self):
        datasets = [
            EvalDataset("light", 10, 50.0, 1.0, 0.0),
            EvalDataset("heavy-metric", 10, 50.0, 1.0, 1000.0),
        ]
        assignments = lpt_pack(datasets, gpus=1,
                               prioritize_cpu_metrics=True)
        assert assignments[0].datasets[0].name == "heavy-metric"

    def test_elastic_decompose_splits_stragglers(self):
        datasets = [EvalDataset("huge", 10, 1000.0, 1.0, 0.0),
                    EvalDataset("tiny", 10, 10.0, 1.0, 0.0)]
        shards = elastic_decompose(datasets, gpus=4)
        assert len(shards) > 2
        assert pack_makespan(lpt_pack(shards, 4)) < 1000.0

    def test_decompose_respects_unsplittable(self):
        datasets = [EvalDataset("big", 10, 1000.0, 1.0, 0.0,
                                splittable=False)]
        assert elastic_decompose(datasets, gpus=4) == datasets

    def test_empty_inputs(self):
        assert elastic_decompose([], 4) == []
        assert pack_makespan([]) == 0.0

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ValueError):
            lpt_pack(self.datasets(), gpus=0)

    @given(st.lists(st.floats(1.0, 500.0), min_size=1, max_size=30),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_lpt_within_greedy_guarantee(self, times, gpus):
        """List-scheduling guarantee: makespan <= sum/m + max job."""
        datasets = [EvalDataset(f"d{i}", 1, t, 0.0, 0.0)
                    for i, t in enumerate(times)]
        makespan = pack_makespan(lpt_pack(datasets, gpus))
        assert makespan <= sum(times) / gpus + max(times) + 1e-6
        assert makespan >= max(sum(times) / gpus, max(times)) - 1e-6


class TestCoordinator:
    def test_decoupled_beats_baseline_one_node(self):
        """§6.2: makespan reduced 1.3x on a single node."""
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=1))
        outcome = coordinator.compare(standard_catalog())
        assert 1.15 < outcome["speedup"] < 2.2

    def test_decoupled_beats_baseline_four_nodes(self):
        """§6.2: makespan reduced 1.8x on four nodes."""
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=4))
        outcome = coordinator.compare(standard_catalog())
        assert 1.4 < outcome["speedup"] < 3.2

    def test_more_resources_bigger_relative_win(self):
        one = TrialCoordinator(CoordinatorConfig(n_nodes=1)).compare(
            standard_catalog())["speedup"]
        four = TrialCoordinator(CoordinatorConfig(n_nodes=4)).compare(
            standard_catalog())["speedup"]
        assert four > one

    def test_decoupled_gpu_efficiency_higher(self):
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=1))
        outcome = coordinator.compare(standard_catalog())
        assert (outcome["decoupled"].gpu_efficiency
                > outcome["baseline"].gpu_efficiency)

    def test_all_datasets_executed_in_both_strategies(self):
        catalog = standard_catalog()
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=2))
        outcome = coordinator.compare(catalog)
        baseline_names = {name for name, _, _ in
                          outcome["baseline"].events}
        decoupled_names = {name.split("#")[0] for name, _, _ in
                           outcome["decoupled"].events}
        expected = {d.name for d in catalog}
        assert baseline_names == expected
        assert decoupled_names == expected

    def test_metric_tail_can_bind_decoupled_makespan(self):
        heavy = [EvalDataset("slow-metric", 10, 10.0, 1.0, 50000.0,
                             splittable=False)]
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=1))
        result = coordinator.run_decoupled(heavy)
        assert result.makespan > 50000.0 / 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CoordinatorConfig(n_nodes=0)

    def test_single_dataset_round(self):
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=1))
        outcome = coordinator.compare([dataset_by_name("wic")])
        assert outcome["baseline"].makespan > 0
        assert outcome["decoupled"].makespan > 0


class TestEventDrivenSimulation:
    """Cross-validation of the analytic coordinator against an
    event-driven replay with explicit contention."""

    def _pair(self, nodes):
        from repro.core.evalsched import EventDrivenEvalRound

        catalog = standard_catalog()
        config = CoordinatorConfig(n_nodes=nodes)
        analytic = TrialCoordinator(config).compare(catalog)
        event = EventDrivenEvalRound(config).compare(catalog)
        return analytic, event

    def test_event_driven_matches_analytic_one_node(self):
        analytic, event = self._pair(1)
        assert event["baseline"].makespan == pytest.approx(
            analytic["baseline"].makespan, rel=0.25)
        assert event["decoupled"].makespan == pytest.approx(
            analytic["decoupled"].makespan, rel=0.25)

    def test_event_driven_matches_analytic_four_nodes(self):
        analytic, event = self._pair(4)
        assert event["speedup"] == pytest.approx(analytic["speedup"],
                                                 rel=0.25)

    def test_event_driven_preserves_ordering(self):
        from repro.core.evalsched import EventDrivenEvalRound

        catalog = standard_catalog()
        one = EventDrivenEvalRound(
            CoordinatorConfig(n_nodes=1)).compare(catalog)["speedup"]
        four = EventDrivenEvalRound(
            CoordinatorConfig(n_nodes=4)).compare(catalog)["speedup"]
        assert four > one > 1.1

    def test_all_trials_complete(self):
        from repro.core.evalsched import EventDrivenEvalRound

        catalog = standard_catalog()
        outcome = EventDrivenEvalRound(
            CoordinatorConfig(n_nodes=2)).compare(catalog)
        base_names = {name for name, _ in
                      outcome["baseline"].trial_completions}
        assert base_names == {d.name for d in catalog}

    def test_precursor_staging_before_any_inference(self):
        from repro.core.evalsched import EventDrivenEvalRound

        config = CoordinatorConfig(n_nodes=1)
        round_ = EventDrivenEvalRound(config)
        result = round_.run_decoupled(standard_catalog()[:4])
        stage_time = (config.model_bytes
                      / round_.node_nic_bandwidth)
        assert all(t > stage_time
                   for _, t in result.trial_completions)


class TestTracedReplay:
    """The tracer seam must observe the replay without perturbing it."""

    def test_untraced_run_is_byte_identical_to_traced(self):
        from repro.core.evalsched import EventDrivenEvalRound
        from repro.obs.tracer import Tracer

        catalog = standard_catalog()
        config = CoordinatorConfig(n_nodes=2)
        plain = EventDrivenEvalRound(config).compare(catalog)
        traced = EventDrivenEvalRound(
            config, tracer=Tracer()).compare(catalog)
        for key in ("baseline", "decoupled"):
            assert traced[key] == plain[key]
        assert traced["speedup"] == plain["speedup"]

    def test_spans_cover_round_and_trials(self):
        from repro.core.evalsched import EventDrivenEvalRound
        from repro.obs.tracer import Tracer

        catalog = standard_catalog()
        tracer = Tracer()
        round_ = EventDrivenEvalRound(CoordinatorConfig(n_nodes=2),
                                      tracer=tracer)
        baseline = round_.run_baseline(catalog)
        names = {span.name for span in tracer.spans}
        assert "round:baseline" in names
        assert {f"trial:{d.name}" for d in catalog} <= names
        assert tracer.open_spans == []
        round_span = next(s for s in tracer.spans
                          if s.name == "round:baseline")
        assert round_span.end == baseline.makespan

    def test_decoupled_spans_include_staging_and_slots(self):
        from repro.core.evalsched import EventDrivenEvalRound
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        round_ = EventDrivenEvalRound(CoordinatorConfig(n_nodes=2),
                                      tracer=tracer)
        round_.run_decoupled(standard_catalog()[:6])
        names = {span.name for span in tracer.spans}
        assert "round:decoupled" in names
        assert any(name.startswith("stage:") for name in names)
        assert any(name.startswith("slot:") for name in names)
        assert tracer.open_spans == []
