"""Storage-fault chaos tests: the storage-storm scenario end to end,
the storage-fault schedule builder, and the teeth of invariants 6–8."""

from dataclasses import replace

import pytest

from repro.chaos import (BUNDLED_SCENARIOS, STORAGE_FAULT_KINDS,
                         ChaosScenario, InvariantViolation, run_scenario)
from repro.chaos.invariants import InvariantChecker
from repro.failures.taxonomy import STORAGE_CHAOS_REASON


@pytest.fixture(scope="module")
def storm():
    return run_scenario(BUNDLED_SCENARIOS["storage-storm"])


class TestStorageStorm:
    def test_demonstrates_a_fallback_restore(self, storm):
        """The headline requirement: a corrupt generation is quarantined
        and recovery falls back to an older checkpoint."""
        summary = storm.summary
        assert summary.restore_fallbacks >= 1
        assert summary.ckpt_quarantined >= 1
        assert summary.fallback_lost_iterations > 0
        assert any(kind == "restore_fallback"
                   for _, kind, _ in storm.event_log)

    def test_exercises_outage_and_slowdown_paths(self, storm):
        summary = storm.summary
        assert summary.storage_faults == 5
        assert summary.restores_deferred >= 1   # outage parked a restore
        assert summary.checkpoints_failed >= 1  # persist deadline blown
        assert summary.checkpoints_degraded >= 1  # retries or slowdown

    def test_every_deferred_restore_resolves(self, storm):
        assert storm.checker.deferred_unresolved == 0

    def test_fallback_loss_identity(self, storm):
        """Invariant 8 holds on the real run, not just in unit tests."""
        assert (storm.summary.fallback_lost_iterations
                == storm.checker.fallback_lost)

    def test_run_is_deterministic(self, storm):
        again = run_scenario(BUNDLED_SCENARIOS["storage-storm"])
        assert again.event_log == storm.event_log
        assert again.summary.to_json() == storm.summary.to_json()

    def test_disabling_storage_faults_silences_the_storage_path(self):
        quiet = replace(BUNDLED_SCENARIOS["storage-storm"],
                        n_storage_faults=0)
        result = run_scenario(quiet)
        assert result.summary.storage_faults == 0
        assert result.summary.restore_fallbacks == 0
        assert result.summary.checkpoints_failed == 0
        assert not any(kind.startswith("storage_fault")
                       for _, kind, _ in result.event_log)


class TestStorageFaultSchedule:
    def test_schedule_is_deterministic_and_sorted(self):
        scenario = BUNDLED_SCENARIOS["storage-storm"]
        first = scenario.build_storage_faults()
        second = scenario.build_storage_faults()
        assert first == second
        assert [f.time for f in first] == sorted(f.time for f in first)
        assert len(first) == scenario.n_storage_faults

    def test_faults_carry_storage_metadata(self):
        scenario = BUNDLED_SCENARIOS["storage-storm"]
        durations = {
            "storage_outage": scenario.storage_outage_duration,
            "storage_slowdown": scenario.storage_slowdown_duration,
            "ckpt_corruption": scenario.ckpt_corruption_duration,
        }
        for fault in scenario.build_storage_faults():
            assert fault.kind in STORAGE_FAULT_KINDS
            assert fault.target == "storage"
            assert fault.reason == STORAGE_CHAOS_REASON
            assert fault.duration == durations[fault.kind]

    def test_storage_faults_do_not_perturb_node_faults(self):
        """Storage sampling uses its own rng stream (seed + 2), so the
        node-fault schedule is byte-identical with or without it."""
        storm = BUNDLED_SCENARIOS["storage-storm"]
        quiet = replace(storm, n_storage_faults=0)
        node_faults = [f for f in storm.build_faults()
                       if f.target != "storage"]
        assert node_faults == quiet.build_faults()

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", n_storage_faults=-1)
        with pytest.raises(ValueError):
            ChaosScenario(name="x", storage_fault_mix=(1.0, 1.0))
        with pytest.raises(ValueError):
            ChaosScenario(name="x", storage_fault_mix=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            ChaosScenario(name="x", storage_outage_duration=0.0)
        with pytest.raises(ValueError):
            ChaosScenario(name="x", storage_retry_delay=-5.0)


def make_checker():
    # record_restore / final_check never touch the scheduler state, so a
    # bare checker is enough to test the storage invariants' teeth.
    return InvariantChecker(scheduler=None, nodes={}, placements={})


class TestInvariantTeeth:
    def test_restore_ahead_of_plan_rejected(self):
        checker = make_checker()
        checker.record_persist(10.0, 500, ok=True)
        with pytest.raises(InvariantViolation, match="moved forward"):
            checker.record_restore(20.0, planned=400, actual=500)

    def test_restore_of_corrupt_generation_rejected(self):
        checker = make_checker()
        checker.record_persist(10.0, 300, ok=True)
        checker.record_corrupt_write(300)
        with pytest.raises(InvariantViolation,
                           match="corrupt/quarantined"):
            checker.record_restore(20.0, planned=300, actual=300)

    def test_restore_of_quarantined_generation_rejected(self):
        checker = make_checker()
        checker.record_persist(10.0, 300, ok=True)
        checker.record_quarantine(300)
        with pytest.raises(InvariantViolation,
                           match="corrupt/quarantined"):
            checker.record_restore(20.0, planned=300, actual=300)

    def test_restore_of_unpersisted_step_rejected(self):
        checker = make_checker()
        with pytest.raises(InvariantViolation,
                           match="never durably persisted"):
            checker.record_restore(20.0, planned=300, actual=120)

    def test_scratch_restore_is_always_allowed(self):
        checker = make_checker()
        checker.record_restore(20.0, planned=300, actual=0)
        assert checker.fallback_lost == 300

    def test_fallback_loss_accumulates(self):
        checker = make_checker()
        for step in (100, 200, 300):
            checker.record_persist(float(step), step, ok=True)
        checker.record_restore(400.0, planned=300, actual=200)
        checker.record_restore(500.0, planned=200, actual=100)
        assert checker.fallback_lost == 200

    def test_unresolved_deferral_without_outage_is_a_violation(self):
        checker = make_checker()
        checker.record_restore_deferred()
        with pytest.raises(InvariantViolation,
                           match="no storage outage"):
            checker.final_check()

    def test_deferral_past_outage_plus_slack_is_wedged(self):
        checker = make_checker()
        checker.set_storage_context([(100.0, 200.0)], horizon=10_000.0,
                                    wedge_slack=300.0)
        checker.record_restore_deferred()
        with pytest.raises(InvariantViolation, match="wedged"):
            checker.final_check()

    def test_deferral_inside_the_last_outage_window_is_tolerated(self):
        """An outage still in flight at the horizon may legitimately
        leave a restore parked — that is not a wedge."""
        checker = make_checker()
        checker.set_storage_context([(9_500.0, 9_900.0)],
                                    horizon=10_000.0, wedge_slack=300.0)
        checker.record_restore_deferred()
        checker.final_check()  # no raise

    def test_resolved_deferral_passes(self):
        checker = make_checker()
        checker.record_restore_deferred()
        checker.record_restore_resolved()
        checker.final_check()

    def test_fallback_loss_mismatch_is_a_violation(self):
        checker = make_checker()
        checker.record_persist(10.0, 200, ok=True)
        checker.record_restore(20.0, planned=300, actual=200)
        with pytest.raises(InvariantViolation, match="loss mismatch"):
            checker.final_check(fallback_lost_iterations=0)
        checker.final_check(fallback_lost_iterations=100)  # identity holds
