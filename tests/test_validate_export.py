"""Tests for trace validation, SVG plotting, and figure export."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.plotting import (SvgFigure, plot_bars, plot_cdfs,
                                     plot_timeline, _nice_ticks)
from repro.training.profiler import UtilizationTimeline
from repro.workload.validate import (PAPER_ANCHORS, calibration_report,
                                     validate_trace)


class TestValidation:
    def test_synthetic_traces_pass_calibration(self, seren_trace,
                                               kalos_trace):
        """The generator satisfies every published anchor."""
        for trace in (seren_trace, kalos_trace):
            report, passed = calibration_report(trace)
            assert passed, report

    def test_cluster_specific_anchors_filtered(self, seren_trace):
        results = validate_trace(seren_trace)
        names = {result.anchor.name for result in results}
        assert "seren pretraining GPU-time share" in names
        assert "kalos evaluation count share" not in names

    def test_bad_trace_fails(self, seren_trace):
        import copy

        from repro.workload.trace import Trace

        # Corrupt the utilization signal on a deep copy (filter() shares
        # Job objects with the session fixture): anchors must catch it.
        broken = Trace(seren_trace.cluster,
                       [copy.deepcopy(job) for job in seren_trace])
        for job in broken.gpu_jobs():
            job.gpu_utilization = 0.2
        results = validate_trace(broken)
        assert any(not result.passed for result in results)

    def test_empty_trace_rejected(self):
        from repro.workload.trace import Trace

        with pytest.raises(ValueError):
            validate_trace(Trace("x", []))

    def test_anchor_rows_render(self, small_seren_trace):
        results = validate_trace(small_seren_trace)
        row = results[0].as_row()
        assert set(row) == {"anchor", "paper", "measured", "band",
                            "status"}

    def test_all_anchors_have_sane_bands(self):
        for anchor in PAPER_ANCHORS:
            assert anchor.low <= anchor.paper_value <= anchor.high


class TestSvgPlotting:
    def test_line_plot_is_valid_xml(self, tmp_path):
        figure = SvgFigure("test", "x", "y")
        figure.add_series("a", np.arange(10.0), np.arange(10.0) ** 2)
        path = figure.save(tmp_path / "plot.svg")
        root = ET.parse(path).getroot()
        assert root.tag.endswith("svg")

    def test_polyline_per_series(self, tmp_path):
        figure = SvgFigure("t", "x", "y")
        figure.add_series("a", [0, 1], [0, 1])
        figure.add_series("b", [0, 1], [1, 0])
        content = figure.render()
        assert content.count("<polyline") == 2

    def test_log_x_rejects_nonpositive(self):
        figure = SvgFigure("t", "x", "y", log_x=True)
        with pytest.raises(ValueError):
            figure.add_series("a", [0.0, 1.0], [0.0, 1.0])

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError):
            SvgFigure("t", "x", "y").render()

    def test_constant_series_renders(self, tmp_path):
        figure = SvgFigure("t", "x", "y")
        figure.add_series("flat", [0.0, 1.0], [5.0, 5.0])
        assert "<polyline" in figure.render()

    def test_plot_cdfs_writes_file(self, tmp_path):
        values = np.sort(np.random.default_rng(0).exponential(60, 200))
        probability = np.linspace(0, 1, 200)
        path = plot_cdfs({"jobs": (values, probability)}, "CDF",
                         "duration", tmp_path / "cdf.svg", log_x=True)
        assert path.exists()
        ET.parse(path)

    def test_plot_timeline(self, tmp_path):
        timeline = UtilizationTimeline(
            times=np.linspace(0, 10, 50),
            sm=np.random.default_rng(1).uniform(0, 1, 50),
            tc=np.random.default_rng(2).uniform(0, 1, 50))
        path = plot_timeline(timeline, "SM", tmp_path / "timeline.svg")
        ET.parse(path)

    def test_plot_bars(self, tmp_path):
        path = plot_bars({"gpu": 0.63, "cpu": 0.13}, "power", "share",
                         tmp_path / "bars.svg")
        content = path.read_text()
        assert content.count("<rect") >= 3  # background + 2 bars
        ET.parse(path)

    def test_bars_reject_empty(self, tmp_path):
        with pytest.raises(ValueError):
            plot_bars({}, "t", "y", tmp_path / "empty.svg")

    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 97.0)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 97.0 + 1e-9
        assert len(ticks) >= 2

    def test_nice_ticks_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0)


class TestExport:
    def test_export_all_writes_svg_and_csv(self, tmp_path):
        from repro.analysis.export import export_all

        written = export_all(tmp_path, n_jobs=1500, seed=3)
        svgs = [p for p in written if p.suffix == ".svg"]
        csvs = [p for p in written if p.suffix == ".csv"]
        assert len(svgs) >= 10
        assert len(csvs) >= 5
        for path in svgs:
            ET.parse(path)

    def test_exported_csv_parses(self, tmp_path):
        import csv as csv_module

        from repro.analysis.export import export_fig2

        written = export_fig2(tmp_path, 1200, 4)
        csv_paths = [p for p in written if p.suffix == ".csv"]
        with csv_paths[0].open() as handle:
            rows = list(csv_module.reader(handle))
        assert rows[0] == ["duration_s", "cdf"]
        assert len(rows) > 100
