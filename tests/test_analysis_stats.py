"""Tests for statistical helpers and report rendering."""

import numpy as np
import pytest

from repro.analysis.report import (render_cdf_summary, render_key_values,
                                   render_table)
from repro.analysis.stats import (boxplot_stats, cdf, cdf_at, median,
                                  percentile, weighted_share)


class TestCdf:
    def test_cdf_monotone(self):
        values, probability = cdf([3, 1, 2])
        assert list(values) == [1, 2, 3]
        assert list(probability) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        values, probability = cdf([])
        assert values.size == 0

    def test_cdf_at_points(self):
        result = cdf_at([1, 2, 3, 4], [0, 2.5, 10])
        assert list(result) == pytest.approx([0.0, 0.5, 1.0])

    def test_percentile_and_median(self):
        data = list(range(1, 101))
        assert median(data) == pytest.approx(50.5)
        assert percentile(data, 90) == pytest.approx(90.1)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestBoxplot:
    def test_five_number_summary(self):
        stats = boxplot_stats(list(range(1, 101)))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.whisker_low == 1
        assert stats.whisker_high == 100

    def test_whiskers_exclude_outliers(self):
        data = [10] * 50 + [11] * 50 + [1000]
        stats = boxplot_stats(data)
        assert stats.whisker_high < 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats([])


class TestWeightedShare:
    def test_shares_normalize(self):
        shares = weighted_share(["a", "b", "a"], [1.0, 1.0, 2.0])
        assert shares["a"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_zero_weights(self):
        shares = weighted_share(["a"], [0.0])
        assert shares["a"] == 0.0


class TestReport:
    def test_render_table_aligns_columns(self):
        text = render_table([{"name": "a", "value": 1.5},
                             {"name": "bbbb", "value": 22222.0}])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert len(lines) == 4

    def test_render_table_empty(self):
        assert render_table([]) == "(empty table)"

    def test_render_cdf_summary_quantiles(self):
        series = {"x": (np.arange(100.0), np.linspace(0, 1, 100))}
        text = render_cdf_summary(series, quantiles=(50,), unit="s")
        assert "p50" in text
        assert "(values in s)" in text

    def test_render_key_values(self):
        text = render_key_values({"speedup": 1.8}, title="Result")
        assert "Result" in text
        assert "speedup" in text
