"""Tests for the failure taxonomy, injector, and log generator."""

import numpy as np
import pytest

from repro.failures.injector import FailureInjector, events_to_jobs
from repro.failures.logs import (CASCADE_DISTRACTORS, REASON_SIGNATURES,
                                 LogGenerator, generate_job_log)
from repro.failures.taxonomy import (TAXONOMY, FailureCategory,
                                     category_counts,
                                     category_gpu_time_shares,
                                     taxonomy_by_category,
                                     taxonomy_by_reason,
                                     total_failure_count)
from repro.scheduler.job import FinalStatus
from repro.workload.generator import TraceGenerator
from repro.workload.spec import SEREN_SPEC


class TestTaxonomy:
    def test_28_plus_reasons(self):
        assert len(TAXONOMY) >= 28

    def test_every_reason_has_signatures(self):
        for spec in TAXONOMY:
            assert spec.reason in REASON_SIGNATURES

    def test_infrastructure_holds_over_82pct_gpu_time(self):
        """§5.2: infrastructure failures take > 82% of failure GPU time."""
        shares = category_gpu_time_shares()
        assert shares[FailureCategory.INFRASTRUCTURE] > 82.0

    def test_infrastructure_is_minority_by_count(self):
        """§5.2: ... with only ~11% of the failure count."""
        counts = category_counts()
        share = (counts[FailureCategory.INFRASTRUCTURE]
                 / total_failure_count())
        assert 0.05 < share < 0.15

    def test_script_errors_most_numerous(self):
        counts = category_counts()
        assert counts[FailureCategory.SCRIPT] > counts[
            FailureCategory.INFRASTRUCTURE]

    def test_nvlink_error_tops_gpu_time(self):
        assert TAXONOMY[0].reason == "NVLinkError"
        assert TAXONOMY[0].gpu_time_pct == pytest.approx(30.25)

    def test_script_errors_not_restart_recoverable(self):
        by_reason = taxonomy_by_reason()
        assert not by_reason["TypeError"].recoverable_by_restart
        assert by_reason["NVLinkError"].recoverable_by_restart

    def test_grouping_covers_everything(self):
        grouped = taxonomy_by_category()
        assert sum(len(v) for v in grouped.values()) == len(TAXONOMY)


class TestInjector:
    def test_counts_scale(self):
        events = FailureInjector(seed=1).generate_events(scale=0.5)
        by_reason = {}
        for event in events:
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        assert by_reason["TypeError"] == round(620 * 0.5)

    def test_infrastructure_dominates_sampled_gpu_time(self):
        events = FailureInjector(seed=2).generate_events()
        infra = sum(e.gpu_time_min for e in events
                    if e.category is FailureCategory.INFRASTRUCTURE)
        total = sum(e.gpu_time_min for e in events)
        assert infra / total > 0.60

    def test_sampled_demand_tracks_taxonomy(self):
        injector = FailureInjector(seed=3)
        events = [e for e in injector.generate_events(scale=3.0)
                  if e.reason == "NVLinkError"]
        medians = np.median([e.gpu_demand for e in events])
        assert 300 < medians < 2000  # paper median 896

    def test_clusters_respected(self):
        events = FailureInjector(seed=4).generate_events()
        kalos_only = [e for e in events if e.reason == "NCCLTimeoutError"]
        assert all(e.cluster == "kalos" for e in kalos_only)

    def test_assign_to_trace_tags_all_failed_jobs(self, small_seren_trace):
        FailureInjector(seed=5).assign_to_trace(small_seren_trace)
        failed = [j for j in small_seren_trace.gpu_jobs()
                  if j.final_status is FinalStatus.FAILED]
        assert failed
        assert all(j.failure_reason for j in failed)

    def test_assignment_demand_affinity(self, seren_trace):
        """Large gang jobs get infrastructure-style reasons more often."""
        FailureInjector(seed=6).assign_to_trace(seren_trace)
        by_reason = taxonomy_by_reason()
        big, small = [], []
        for job in seren_trace.gpu_jobs():
            if job.final_status is not FinalStatus.FAILED:
                continue
            infra = (by_reason[job.failure_reason].category
                     is FailureCategory.INFRASTRUCTURE)
            (big if job.gpu_demand >= 256 else small).append(infra)
        assert np.mean(big) > np.mean(small)

    def test_pretraining_failure_is_heavyweight(self):
        injector = FailureInjector(seed=7)
        event = injector.sample_pretraining_failure("kalos")
        spec = taxonomy_by_reason()[event.reason]
        assert spec.demand_median >= 128

    def test_events_to_jobs(self):
        events = FailureInjector(seed=8).generate_events(scale=0.05)
        jobs = events_to_jobs(events)
        assert len(jobs) == len(events)
        assert all(j.final_status is FinalStatus.FAILED for j in jobs)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            FailureInjector().generate_events(scale=0.0)


class TestInjectorDeterminism:
    """``assign_to_trace`` must be seed-stable across calls — the tags
    may not depend on how much of the injector's stream was consumed
    before the call."""

    @staticmethod
    def fresh_trace():
        return TraceGenerator(SEREN_SPEC, seed=20).generate(300)

    @staticmethod
    def failure_tags(trace):
        return [(job.job_id, job.failure_reason)
                for job in trace.gpu_jobs()
                if job.final_status is FinalStatus.FAILED]

    def test_tags_unaffected_by_prior_rng_consumption(self):
        plain, warmed = self.fresh_trace(), self.fresh_trace()
        FailureInjector(seed=9).assign_to_trace(plain)
        warmed_injector = FailureInjector(seed=9)
        warmed_injector.generate_events(scale=0.1)  # burn shared stream
        warmed_injector.assign_to_trace(warmed)
        assert self.failure_tags(plain) == self.failure_tags(warmed)

    def test_same_injector_tags_identically_twice(self):
        first, second = self.fresh_trace(), self.fresh_trace()
        injector = FailureInjector(seed=9)
        injector.assign_to_trace(first)
        injector.assign_to_trace(second)
        assert self.failure_tags(first) == self.failure_tags(second)

    def test_explicit_rng_overrides_the_seed(self):
        default, explicit = self.fresh_trace(), self.fresh_trace()
        FailureInjector(seed=9).assign_to_trace(default)
        FailureInjector(seed=9).assign_to_trace(
            explicit, rng=np.random.default_rng(4242))
        assert self.failure_tags(default) != self.failure_tags(explicit)


class TestLogGenerator:
    def test_healthy_log_has_no_reason(self):
        log = LogGenerator(seed=1).healthy_log(n_steps=50)
        assert log.reason is None
        assert len(log.lines) > 50

    def test_failed_log_ends_with_signature(self):
        log = LogGenerator(seed=2).failed_log("OutOfMemoryError",
                                              n_steps=30)
        tail = "\n".join(log.lines[-10:])
        assert "CUDA out of memory" in tail

    def test_cascade_distractors_precede_root_cause(self):
        generator = LogGenerator(seed=3)
        for _ in range(10):
            log = generator.failed_log("NVLinkError", n_steps=20)
            if log.distractors:
                text = log.text
                root = text.rfind("NVLink")
                distractor_sig = REASON_SIGNATURES[log.distractors[0]][0]
                assert text.find(distractor_sig[:30]) < root
                return
        pytest.fail("no cascade generated in 10 attempts")

    def test_no_cascade_option(self):
        log = LogGenerator(seed=4).failed_log("CUDAError", n_steps=10,
                                              with_cascade=False)
        assert log.distractors == []

    def test_unknown_reason_rejected(self):
        with pytest.raises(KeyError):
            LogGenerator().failed_log("MadeUpError")

    def test_log_volume_dominated_by_metric_lines(self):
        log = LogGenerator(seed=5).failed_log("TypeError", n_steps=500)
        metric_lines = sum(1 for line in log.lines if "step=" in line)
        assert metric_lines / len(log.lines) > 0.9

    def test_every_cascade_distractor_is_known(self):
        for root, distractors in CASCADE_DISTRACTORS.items():
            assert root in REASON_SIGNATURES
            for reason in distractors:
                assert reason in REASON_SIGNATURES

    def test_generate_job_log_convenience(self):
        healthy = generate_job_log(None, seed=6)
        failed = generate_job_log("KeyError", seed=6)
        assert healthy.reason is None
        assert failed.reason == "KeyError"
        assert failed.category is FailureCategory.SCRIPT
