"""Tests for the observability layer (repro.obs).

Covers the recording API (spans, instants, counters, gauges), the
null-tracer fast path, the Chrome-trace exporter, the flame summary,
and the two properties the layer exists to uphold: a seeded scenario
traced twice yields byte-identical artifacts, and attaching a tracer
never perturbs the simulation it observes.
"""

import json
from pathlib import Path

from repro.chaos import BUNDLED_SCENARIOS, run_scenario
from repro.obs import (NULL_TRACER, Counter, Gauge, NullTracer, Span,
                       Tracer, chrome_trace, chrome_trace_json,
                       flame_summary)
from repro.obs.tracer import _NULL_SPAN
from repro.sim.engine import Engine

DATA_DIR = Path(__file__).parent / "data"


class ManualClock:
    """A settable time source for unit tests."""

    def __init__(self, time=0.0):
        self.time = time

    def __call__(self):
        return self.time


def manual_tracer(start=0.0):
    clock = ManualClock(start)
    return Tracer(clock=clock), clock


class TestSpan:
    def test_duration_of_finished_span(self):
        span = Span(span_id=1, name="s", category="c",
                    start=2.0, end=5.5)
        assert span.finished
        assert span.duration() == 3.5

    def test_open_span_clips_to_horizon(self):
        span = Span(span_id=1, name="s", category="c", start=2.0)
        assert not span.finished
        assert span.duration() == 0.0
        assert span.duration(clip_end=10.0) == 8.0

    def test_duration_never_negative(self):
        span = Span(span_id=1, name="s", category="c", start=5.0)
        assert span.duration(clip_end=1.0) == 0.0


class TestTimelines:
    def test_counter_accumulates(self):
        counter = Counter("events")
        counter.add(1.0, at=1.0)
        counter.add(2.0, at=3.0)
        assert counter.samples == [(1.0, 1.0), (3.0, 3.0)]
        assert counter.last == 3.0

    def test_gauge_records_levels(self):
        gauge = Gauge("queue")
        gauge.set(4.0, at=1.0)
        gauge.set(2.0, at=2.0)
        assert gauge.samples == [(1.0, 4.0), (2.0, 2.0)]

    def test_same_timestamp_samples_coalesce(self):
        counter = Counter("events")
        for _ in range(5):
            counter.add(1.0, at=7.0)
        assert counter.samples == [(7.0, 5.0)]
        assert len(counter) == 1

    def test_last_is_zero_before_first_sample(self):
        assert Counter("x").last == 0.0


class TestTracer:
    def test_begin_end_stamps_clock_times(self):
        tracer, clock = manual_tracer()
        clock.time = 1.5
        span = tracer.begin("work", "cat", detail=7)
        clock.time = 4.0
        tracer.end(span, outcome="done")
        assert (span.start, span.end) == (1.5, 4.0)
        assert span.args == {"detail": 7, "outcome": "done"}
        assert tracer.spans == [span]

    def test_end_is_idempotent_on_end_time(self):
        tracer, clock = manual_tracer()
        span = tracer.begin("work")
        clock.time = 2.0
        tracer.end(span)
        clock.time = 9.0
        tracer.end(span, note="late")        # must not move the end
        assert span.end == 2.0
        assert span.args["note"] == "late"

    def test_explicit_at_overrides_clock(self):
        tracer, clock = manual_tracer()
        clock.time = 50.0
        span = tracer.begin("work", at=1.0)
        tracer.end(span, at=2.0)
        assert (span.start, span.end) == (1.0, 2.0)

    def test_scoped_spans_nest(self):
        tracer, _ = manual_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert all(span.finished for span in tracer.spans)

    def test_complete_records_analytic_interval(self):
        tracer, _ = manual_tracer()
        span = tracer.complete("trial", 3.0, 8.0, "eval", workers=2)
        assert (span.start, span.end) == (3.0, 8.0)
        assert span.args == {"workers": 2}

    def test_instant_is_zero_length_and_separate(self):
        tracer, clock = manual_tracer()
        clock.time = 6.0
        mark = tracer.instant("fault", "chaos")
        assert (mark.start, mark.end) == (6.0, 6.0)
        assert tracer.instants == [mark]
        assert tracer.spans == []

    def test_counter_and_gauge_are_lazy_singletons(self):
        tracer, _ = manual_tracer()
        assert tracer.counter("c") is tracer.counter("c")
        tracer.count("c", 2.0, at=1.0)
        tracer.set_gauge("g", 9.0, at=1.0)
        assert tracer.counters["c"].last == 2.0
        assert tracer.gauges["g"].last == 9.0

    def test_open_spans_and_end_time(self):
        tracer, clock = manual_tracer()
        first = tracer.begin("a")
        clock.time = 4.0
        second = tracer.begin("b")
        tracer.end(first)
        assert tracer.open_spans == [second]
        tracer.instant("late", at=11.0)
        assert tracer.end_time() == 11.0

    def test_attach_counts_engine_events_and_detach_stops(self):
        engine = Engine()
        tracer = Tracer()
        tracer.attach(engine)
        for time in (1.0, 2.0):
            engine.call_at(time, lambda: None)
        engine.run()
        assert tracer.now == 2.0             # clock bound to engine
        assert tracer.counters["engine.events"].last == 2.0
        tracer.detach(engine)
        engine.call_at(3.0, lambda: None)
        engine.run()
        assert tracer.counters["engine.events"].last == 2.0


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        span = tracer.begin("work", detail=1)
        tracer.end(span, outcome="done")
        tracer.complete("x", 0.0, 1.0)
        tracer.instant("mark")
        tracer.count("c")
        tracer.set_gauge("g", 5.0)
        tracer.counter("c").add(1.0, at=0.0)
        tracer.gauge("g").set(1.0, at=0.0)
        with tracer.span("scope") as scoped:
            pass
        assert span is _NULL_SPAN
        assert scoped is _NULL_SPAN
        assert tracer.counter("c").samples == []

    def test_null_span_is_never_mutated(self):
        NULL_TRACER.end(NULL_TRACER.begin("x"), note="ignored")
        assert _NULL_SPAN.args == {}
        assert (_NULL_SPAN.start, _NULL_SPAN.end) == (0.0, 0.0)

    def test_attach_is_a_no_op(self):
        engine = Engine()
        NULL_TRACER.attach(engine)
        engine.call_at(1.0, lambda: None)
        engine.run()
        NULL_TRACER.detach(engine)


class TestChromeTrace:
    def make_tracer(self):
        tracer, clock = manual_tracer()
        span = tracer.begin("run:j1", "sched", gpus=8)
        clock.time = 2.0
        tracer.end(span)
        tracer.begin("run:j2", "sched")      # left open
        tracer.instant("fault", "chaos", at=1.0)
        tracer.count("faults", at=1.0)
        tracer.set_gauge("queue", 3.0, at=1.5)
        return tracer

    def test_metadata_names_process_and_category_threads(self):
        payload = chrome_trace(self.make_tracer(), end_time=4.0)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"repro-sim", "chaos", "sched"}

    def test_span_events_use_microseconds(self):
        payload = chrome_trace(self.make_tracer(), end_time=4.0)
        closed = next(e for e in payload["traceEvents"]
                      if e["ph"] == "X" and e["name"] == "run:j1")
        assert closed["ts"] == 0.0
        assert closed["dur"] == 2_000_000.0
        assert closed["args"] == {"gpus": 8}

    def test_open_span_clipped_and_flagged(self):
        payload = chrome_trace(self.make_tracer(), end_time=4.0)
        open_event = next(e for e in payload["traceEvents"]
                          if e["ph"] == "X" and e["name"] == "run:j2")
        assert open_event["args"]["unfinished"] is True
        assert open_event["dur"] == 2_000_000.0   # clipped at 4s

    def test_instants_and_counters_present(self):
        payload = chrome_trace(self.make_tracer(), end_time=4.0)
        kinds = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "i", "C"} <= kinds
        instant = next(e for e in payload["traceEvents"]
                       if e["ph"] == "i")
        assert instant["s"] == "p"
        counters = {e["name"] for e in payload["traceEvents"]
                    if e["ph"] == "C"}
        assert counters == {"faults", "queue"}

    def test_non_scalar_args_are_stringified(self):
        tracer, _ = manual_tracer()
        tracer.complete("x", 0.0, 1.0, items=[1, 2])
        payload = chrome_trace(tracer)
        event = next(e for e in payload["traceEvents"]
                     if e["ph"] == "X")
        assert event["args"]["items"] == "[1, 2]"

    def test_json_text_is_canonical(self):
        text = chrome_trace_json(self.make_tracer(), end_time=4.0)
        assert text.endswith("\n")
        assert json.loads(text)["otherData"]["clock"] == "simulated"
        assert text == chrome_trace_json(self.make_tracer(),
                                         end_time=4.0)


class TestRepeatedExport:
    """Exporting an *unfinished* run must be a pure read.

    The streaming service exports traces between horizons while spans
    are still open; exporting at horizon N and again at N+1 must never
    duplicate clip events, close spans, or write ``unfinished`` flags
    back into the tracer's state.
    """

    def make_tracer(self):
        tracer, clock = manual_tracer()
        done = tracer.begin("run:j1", "sched", gpus=8)
        clock.time = 2.0
        tracer.end(done)
        tracer.begin("run:j2", "sched")      # still open at export
        tracer.instant("fault", "chaos", at=1.0)
        tracer.count("faults", at=1.0)
        return tracer, clock

    def test_same_horizon_export_is_byte_identical(self):
        tracer, _ = self.make_tracer()
        first = chrome_trace_json(tracer, end_time=4.0)
        second = chrome_trace_json(tracer, end_time=4.0)
        assert first == second

    def test_export_leaves_open_spans_open(self):
        tracer, _ = self.make_tracer()
        chrome_trace_json(tracer, end_time=4.0)
        open_spans = [span for span in tracer.spans
                      if span.end is None]
        assert [span.name for span in open_spans] == ["run:j2"]
        # the clip flag lives only in the export, never in the span
        assert all("unfinished" not in span.args
                   for span in tracer.spans)

    def test_horizon_n_export_does_not_perturb_horizon_n_plus_1(self):
        witness, witness_clock = self.make_tracer()
        probed, probed_clock = self.make_tracer()
        # horizon N: export the probed tracer mid-run
        early = chrome_trace_json(probed, end_time=4.0)
        assert json.loads(early)  # well-formed
        # both runs continue identically: the open span closes later
        for tracer, clock in ((witness, witness_clock),
                              (probed, probed_clock)):
            clock.time = 6.0
            span = next(span for span in tracer.spans
                        if span.end is None)
            tracer.end(span)
        assert (chrome_trace_json(probed, end_time=8.0)
                == chrome_trace_json(witness, end_time=8.0))

    def test_no_duplicate_clip_events_across_horizons(self):
        tracer, _ = self.make_tracer()
        at_n = chrome_trace(tracer, end_time=4.0)
        at_n1 = chrome_trace(tracer, end_time=5.0)
        spans_n = [e for e in at_n["traceEvents"] if e["ph"] == "X"]
        spans_n1 = [e for e in at_n1["traceEvents"] if e["ph"] == "X"]
        assert len(spans_n) == len(spans_n1) == 2
        clipped = [e for e in spans_n1
                   if e["args"].get("unfinished")]
        assert len(clipped) == 1
        # open span started at t=2: re-clipped to the new horizon,
        # not left at the stale horizon-N duration
        assert clipped[0]["dur"] == 3_000_000.0

    def test_flame_summary_is_also_pure(self):
        tracer, _ = self.make_tracer()
        first = flame_summary(tracer, end_time=4.0)
        assert first == flame_summary(tracer, end_time=4.0)
        assert all("unfinished" not in span.args
                   for span in tracer.spans)


class TestFlameSummary:
    def test_empty_tracer(self):
        tracer, _ = manual_tracer()
        assert "no spans" in flame_summary(tracer)

    def test_span_families_fold(self):
        tracer, _ = manual_tracer()
        tracer.complete("run:job-1", 0.0, 2.0, "sched")
        tracer.complete("run:job-2", 2.0, 3.0, "sched")
        summary = flame_summary(tracer)
        assert "sched/run:*" in summary
        assert "run:job-1" not in summary
        assert "2 spans" in summary

    def test_open_spans_noted(self):
        tracer, _ = manual_tracer()
        tracer.begin("recovery:hang", "chaos")
        summary = flame_summary(tracer, end_time=5.0)
        assert "(1 open)" in summary
        assert "trace end 5.000s" in summary


class TestDeterminism:
    def trace_once(self, name="smoke"):
        scenario = BUNDLED_SCENARIOS[name]
        tracer = Tracer()
        result = run_scenario(scenario, tracer=tracer)
        return result, tracer, chrome_trace_json(
            tracer, end_time=scenario.duration)

    def test_same_seed_yields_byte_identical_trace(self):
        _, _, first = self.trace_once()
        _, _, second = self.trace_once()
        assert first == second

    def test_tracing_does_not_perturb_the_simulation(self):
        """A traced run must replay the untraced run exactly."""
        untraced = run_scenario(BUNDLED_SCENARIOS["smoke"])
        traced, tracer, _ = self.trace_once()
        assert (traced.event_log_lines()
                == untraced.event_log_lines())
        assert tracer.spans                  # and it did record

    def test_traced_run_still_matches_golden_event_log(self):
        """Instrumentation must not drift the pinned chaos goldens."""
        golden = json.loads(
            (DATA_DIR / "chaos_golden.json").read_text())
        traced, _, _ = self.trace_once()
        assert traced.event_log_lines() == golden["event_log"]

    def test_trace_covers_every_layer(self):
        _, tracer, _ = self.trace_once()
        categories = {span.category for span in tracer.spans}
        assert "scheduler.run" in categories
        assert "pretrain" in categories
        assert "checkpoint" in categories
        assert "engine.events" in tracer.counters
