"""Tests for the regenerated Tables 1-3."""

import pytest

from repro.analysis.tables import (table1, table2, table3,
                                   table3_category_summary)


class TestTable1:
    def test_two_clusters(self):
        rows = table1()
        assert [row["cluster"] for row in rows] == ["seren", "kalos"]

    def test_scale_matches_paper(self):
        rows = {row["cluster"]: row for row in table1()}
        assert rows["seren"]["nodes"] == 286
        assert rows["kalos"]["nodes"] == 302
        assert rows["seren"]["total_gpus"] == 2288
        assert rows["kalos"]["total_gpus"] == 2416

    def test_memory_doubles_on_kalos(self):
        rows = {row["cluster"]: row for row in table1()}
        assert rows["kalos"]["memory_gb"] == 2 * rows["seren"]["memory_gb"]


class TestTable2:
    def test_four_datacenters(self):
        rows = table2()
        assert {row["datacenter"] for row in rows} == {
            "philly", "helios", "pai", "acme"}

    def test_acme_row(self):
        acme = [row for row in table2() if row["datacenter"] == "acme"][0]
        assert acme["total_gpus"] == 4704
        assert acme["year"] == 2023
        assert acme["jobs"] == pytest.approx(1_094_000, rel=0.01)

    def test_measured_avg_gpus(self, seren_trace, kalos_trace):
        rows = table2({"seren": seren_trace, "kalos": kalos_trace})
        acme = [row for row in rows if row["datacenter"] == "acme"][0]
        # Paper reports 6.3 on the full trace; synthetic is close.
        assert 3.0 < acme["avg_gpus"] < 25.0


class TestTable3:
    def test_all_reasons_regenerated(self):
        rows = table3(scale=1.0, seed=1)
        assert len(rows) == 29

    def test_counts_match_paper_exactly(self):
        rows = table3(scale=1.0, seed=2)
        by_reason = {row["reason"]: row for row in rows}
        assert by_reason["NVLinkError"]["num"] == 54
        assert by_reason["TypeError"]["num"] == 620

    def test_sampled_statistics_track_paper(self):
        rows = table3(scale=2.0, seed=3)
        from repro.failures.taxonomy import taxonomy_by_reason

        taxonomy = taxonomy_by_reason()
        for row in rows:
            if row["paper_num"] * 2 < 40:
                continue  # tiny samples are noisy
            spec = taxonomy[row["reason"]]
            # The TTF fits are extremely heavy-tailed (mean/median up to
            # ~17x), so sampled medians are pinned within a small factor
            # rather than a tight tolerance.
            ttf_ratio = row["ttf_median_min"] / max(spec.ttf_median_min,
                                                    0.05)
            demand_ratio = row["demand_median"] / max(spec.demand_median,
                                                      1.0)
            assert 1 / 3 < ttf_ratio < 3, row["reason"]
            assert 1 / 3 < demand_ratio < 3, row["reason"]

    def test_nvlink_among_top_gpu_time(self):
        rows = table3(scale=2.0, seed=4)
        top3 = {row["reason"] for row in rows[:3]}
        assert "NVLinkError" in top3

    def test_category_summary_infrastructure_dominates(self):
        """§5.2: infrastructure ~11% of count, > 82% of GPU time."""
        summary = table3_category_summary(table3(scale=2.0, seed=5))
        infra = summary["infrastructure"]
        assert 0.05 < infra["num_share"] < 0.16
        assert infra["gpu_time_pct"] > 60.0

    def test_script_failures_numerous_but_cheap(self):
        summary = table3_category_summary(table3(scale=2.0, seed=6))
        script = summary["script"]
        assert script["num_share"] > 0.5
        assert script["gpu_time_pct"] < 15.0
