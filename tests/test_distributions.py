"""Tests for the seedable distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (Choice, Constant, Empirical,
                                     Exponential, LogNormal, Mixture,
                                     Pareto, Uniform,
                                     lognormal_from_median_mean)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBasics:
    def test_constant_always_returns_value(self):
        dist = Constant(3.5)
        assert dist.sample(rng()) == 3.5
        assert (dist.sample_many(rng(), 5) == 3.5).all()

    def test_uniform_within_bounds(self):
        samples = Uniform(2.0, 5.0).sample_many(rng(), 1000)
        assert samples.min() >= 2.0
        assert samples.max() <= 5.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 2.0)

    def test_exponential_mean(self):
        samples = Exponential(10.0).sample_many(rng(), 20000)
        assert samples.mean() == pytest.approx(10.0, rel=0.05)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_pareto_min_is_xm(self):
        samples = Pareto(xm=3.0, alpha=2.0).sample_many(rng(), 1000)
        assert samples.min() >= 3.0

    def test_empirical_samples_from_pool(self):
        pool = [1.0, 2.0, 3.0]
        samples = Empirical(pool).sample_many(rng(), 200)
        assert set(samples) <= set(pool)

    def test_empirical_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_determinism_under_same_seed(self):
        dist = LogNormal(1.0, 0.5)
        assert np.allclose(dist.sample_many(rng(7), 10),
                           dist.sample_many(rng(7), 10))


class TestLogNormal:
    def test_median_and_mean_properties(self):
        dist = LogNormal(mu=math.log(100.0), sigma=1.0)
        assert dist.median == pytest.approx(100.0)
        assert dist.mean == pytest.approx(100.0 * math.exp(0.5))

    def test_empirical_median_matches(self):
        dist = LogNormal(mu=math.log(50.0), sigma=0.8)
        samples = dist.sample_many(rng(), 40000)
        assert np.median(samples) == pytest.approx(50.0, rel=0.05)

    def test_fit_from_median_mean(self):
        dist = lognormal_from_median_mean(median=10.0, mean=25.0)
        assert dist.median == pytest.approx(10.0)
        assert dist.mean == pytest.approx(25.0)

    def test_fit_degenerate_mean_below_median(self):
        dist = lognormal_from_median_mean(median=10.0, mean=8.0)
        assert dist.median == pytest.approx(10.0)
        assert dist.sigma == pytest.approx(0.05)

    def test_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lognormal_from_median_mean(0.0, 5.0)

    @given(median=st.floats(0.1, 1e4), ratio=st.floats(1.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_fit_roundtrips_any_valid_pair(self, median, ratio):
        dist = lognormal_from_median_mean(median, median * ratio)
        assert dist.median == pytest.approx(median, rel=1e-6)
        assert dist.mean == pytest.approx(median * ratio, rel=1e-6)


class TestMixture:
    def test_component_weights_respected(self):
        mix = Mixture([Constant(0.0), Constant(1.0)], [0.25, 0.75])
        samples = mix.sample_many(rng(), 20000)
        assert samples.mean() == pytest.approx(0.75, abs=0.02)

    def test_sample_many_matches_single_sampling_distribution(self):
        mix = Mixture([Uniform(0, 1), Uniform(10, 11)], [0.5, 0.5])
        many = mix.sample_many(rng(1), 5000)
        singles = np.array([mix.sample(rng(2)) for _ in range(1)])
        assert many.min() >= 0.0
        assert singles.size == 1

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Mixture([Constant(1.0)], [0.5, 0.5])

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            Mixture([Constant(1.0)], [0.0])

    def test_weights_are_normalized(self):
        mix = Mixture([Constant(0.0), Constant(1.0)], [2.0, 6.0])
        assert mix.weights.sum() == pytest.approx(1.0)


class TestChoice:
    def test_options_preserved(self):
        choice = Choice(["a", "b"], [1.0, 3.0])
        samples = choice.sample_many(rng(), 4000)
        assert set(samples) == {"a", "b"}
        assert samples.count("b") / len(samples) == pytest.approx(
            0.75, abs=0.03)

    def test_single_sample_returns_an_option(self):
        assert Choice([7], [1.0]).sample(rng()) == 7

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Choice([], [])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            Choice([1, 2], [1.0])

    def test_non_numeric_options_supported(self):
        choice = Choice([{"x": 1}, {"x": 2}], [1, 1])
        assert choice.sample(rng()) in ({"x": 1}, {"x": 2})
