"""Golden-trace regression tests for the seeded chaos scenarios.

Each checked-in fixture pins the *exact* event log and summary of one
bundled scenario at seed 0.  Any drift — a reordered event, a changed
timestamp, a different summary number — fails here, so behavioural
changes to the sim engine, scheduler, recovery controller, storage
fault stack, or harness must be made deliberately and the fixture
regenerated:

    PYTHONPATH=src python -m repro chaos --scenario smoke \\
        --json-out tests/data/chaos_golden.json
    PYTHONPATH=src python -m repro chaos --scenario storage-storm \\
        --json-out tests/data/chaos_storage_storm_golden.json
    PYTHONPATH=src python -m repro chaos --scenario network-storm \\
        --json-out tests/data/chaos_network_storm_golden.json
    PYTHONPATH=src python -m repro chaos --scenario straggler-storm \\
        --json-out tests/data/chaos_straggler_storm_golden.json
"""

import json
from pathlib import Path

import pytest

from repro.chaos import BUNDLED_SCENARIOS, run_scenario
from repro.sim.fastpath import use_fast_path

DATA_DIR = Path(__file__).parent / "data"
GOLDENS = {
    "smoke": DATA_DIR / "chaos_golden.json",
    "storage-storm": DATA_DIR / "chaos_storage_storm_golden.json",
    "network-storm": DATA_DIR / "chaos_network_storm_golden.json",
    "straggler-storm": DATA_DIR / "chaos_straggler_storm_golden.json",
}
#: every golden must hold bit-for-bit under BOTH implementations —
#: the optimized fast path (the default) and the reference path
FAST_PATH = [True, False]


def regen_hint(scenario):
    return (f"regenerate with: PYTHONPATH=src python -m repro chaos "
            f"--scenario {scenario} --json-out "
            f"tests/data/{GOLDENS[scenario].name}")


def current_payload(scenario, fast=True):
    with use_fast_path(fast):
        result = run_scenario(BUNDLED_SCENARIOS[scenario])
    return {"summary": json.loads(result.summary.to_json()),
            "event_log": result.event_log_lines()}


@pytest.mark.parametrize("fast", FAST_PATH,
                         ids=["fast", "reference"])
@pytest.mark.parametrize("scenario", sorted(GOLDENS))
def test_event_log_matches_golden(scenario, fast):
    golden = json.loads(GOLDENS[scenario].read_text())
    current = current_payload(scenario, fast)
    for line_no, (want, got) in enumerate(
            zip(golden["event_log"], current["event_log"]), start=1):
        assert want == got, (
            f"event log drifted at line {line_no} (fast={fast}):\n"
            f"  golden:  {want}\n  current: {got}\n"
            f"{regen_hint(scenario)}")
    assert len(current["event_log"]) == len(golden["event_log"]), (
        f"event log length changed: golden {len(golden['event_log'])} "
        f"vs current {len(current['event_log'])}\n{regen_hint(scenario)}")


@pytest.mark.parametrize("fast", FAST_PATH,
                         ids=["fast", "reference"])
@pytest.mark.parametrize("scenario", sorted(GOLDENS))
def test_summary_matches_golden(scenario, fast):
    golden = json.loads(GOLDENS[scenario].read_text())["summary"]
    current = current_payload(scenario, fast)["summary"]
    drifted = sorted(key for key in golden.keys() | current.keys()
                     if golden.get(key) != current.get(key))
    assert not drifted, (
        f"summary drifted in {drifted}: "
        + ", ".join(f"{key}: golden={golden.get(key)!r} "
                    f"current={current.get(key)!r}" for key in drifted)
        + f"\n{regen_hint(scenario)}")


def test_network_storm_golden_demonstrates_localization():
    """The pinned storm must keep proving the fabric-recovery path:
    at least one segment conviction, followed (not just accompanied)
    by a gang migration, with every segment healed by the horizon."""
    golden = json.loads(GOLDENS["network-storm"].read_text())
    summary = golden["summary"]
    assert summary["network_faults"] >= 1
    assert summary["segment_convictions"] >= 1
    assert summary["gang_migrations"] >= 1
    assert summary["segments_cordoned_end"] == 0
    log = golden["event_log"]
    first_conviction = next(
        index for index, line in enumerate(log)
        if "recovery_cordon_segment" in line)
    assert any("gang_migrated" in line
               for line in log[first_conviction:])


def test_straggler_storm_golden_demonstrates_failure_domains():
    """The pinned storm must keep proving the failure-domain paths:
    stragglers detected by step-time deviation (not by a failure log
    line), a silent degrader flagged as waste at the horizon, spare
    swaps drawn from the hot pool, a power cap, and a per-kind
    MTTD/MTTL/MTTR decomposition covering the straggler episodes."""
    golden = json.loads(GOLDENS["straggler-storm"].read_text())
    summary = golden["summary"]
    assert summary["straggler_faults"] >= 2
    assert summary["stragglers_detected"] >= 1
    assert summary["stragglers_detected"] < summary["straggler_faults"]
    assert summary["silent_waste_gpu_hours"] > 0
    assert summary["spare_swaps"] >= 1
    assert summary["power_cap_faults"] >= 1
    assert summary["power_capped_hours"] > 0
    stages = summary["recovery_stages"]
    assert "straggler" in stages
    assert stages["straggler"]["mttd_s"] > 0
    assert stages["straggler"]["mttr_s"] > 0
    log = golden["event_log"]
    detection = next(index for index, line in enumerate(log)
                     if "deviation_detected" in line)
    # detection comes from the probe's timeseries, never a fault line
    assert not any("straggler_fault" in line for line in log)
    assert any("spare_swap" in line for line in log[detection:])
    assert any("silent_straggler" in line for line in log)
    assert any("power_cap_begin" in line for line in log)
    assert any("power_cap_end" in line for line in log)


def test_storage_storm_golden_demonstrates_fallback():
    """The pinned storm must keep proving the fallback-restore path."""
    golden = json.loads(GOLDENS["storage-storm"].read_text())
    summary = golden["summary"]
    assert summary["restore_fallbacks"] >= 1
    assert summary["ckpt_quarantined"] >= 1
    assert any("restore_fallback" in line
               for line in golden["event_log"])
    assert any("ckpt_quarantined" in line
               for line in golden["event_log"])
