"""Golden-trace regression test for the seeded smoke chaos scenario.

The checked-in fixture pins the *exact* event log and summary of
``BUNDLED_SCENARIOS["smoke"]`` at seed 0.  Any drift — a reordered
event, a changed timestamp, a different summary number — fails here, so
behavioural changes to the sim engine, scheduler, recovery controller,
or harness must be made deliberately and the fixture regenerated:

    PYTHONPATH=src python -m repro chaos --scenario smoke \\
        --json-out tests/data/chaos_golden.json
"""

import json
from pathlib import Path

from repro.chaos import BUNDLED_SCENARIOS, run_scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "chaos_golden.json"
REGEN_HINT = ("regenerate with: PYTHONPATH=src python -m repro chaos "
              "--scenario smoke --json-out tests/data/chaos_golden.json")


def current_payload():
    result = run_scenario(BUNDLED_SCENARIOS["smoke"])
    return {"summary": json.loads(result.summary.to_json()),
            "event_log": result.event_log_lines()}


def test_smoke_event_log_matches_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = current_payload()
    for line_no, (want, got) in enumerate(
            zip(golden["event_log"], current["event_log"]), start=1):
        assert want == got, (
            f"event log drifted at line {line_no}:\n"
            f"  golden:  {want}\n  current: {got}\n{REGEN_HINT}")
    assert len(current["event_log"]) == len(golden["event_log"]), (
        f"event log length changed: golden {len(golden['event_log'])} "
        f"vs current {len(current['event_log'])}\n{REGEN_HINT}")


def test_smoke_summary_matches_golden():
    golden = json.loads(GOLDEN_PATH.read_text())["summary"]
    current = current_payload()["summary"]
    drifted = sorted(key for key in golden.keys() | current.keys()
                     if golden.get(key) != current.get(key))
    assert not drifted, (
        f"summary drifted in {drifted}: "
        + ", ".join(f"{key}: golden={golden.get(key)!r} "
                    f"current={current.get(key)!r}" for key in drifted)
        + f"\n{REGEN_HINT}")
