"""Tests for async checkpointing (§6.1, design 1)."""

import numpy as np
import pytest

from repro.cluster.storage import SharedStorage
from repro.core.checkpoint import (AsyncCheckpointer, CheckpointCostModel,
                                   DirectoryStorage, InMemoryStorage,
                                   SyncCheckpointer)
from repro.training.model import MODEL_7B, MODEL_123B


def state(seed=0, size=2048):
    rng = np.random.default_rng(seed)
    return {"weights": rng.normal(size=size),
            "optimizer": rng.normal(size=size)}


class TestSyncCheckpointer:
    def test_round_trip(self):
        ckpt = SyncCheckpointer(InMemoryStorage())
        original = state(1)
        ckpt.save(100, original)
        step, restored = ckpt.load_latest()
        assert step == 100
        assert np.allclose(restored["weights"], original["weights"])

    def test_load_latest_of_many(self):
        ckpt = SyncCheckpointer(InMemoryStorage())
        for step in (10, 30, 20):
            ckpt.save(step, state(step))
        step, _ = ckpt.load_latest()
        assert step == 30

    def test_empty_storage_returns_none(self):
        assert SyncCheckpointer(InMemoryStorage()).load_latest() is None

    def test_blocking_time_includes_persist(self):
        slow = InMemoryStorage(bandwidth=2e6)  # ~16 KB payload -> ~8 ms
        fast = InMemoryStorage()
        t_slow = SyncCheckpointer(slow).save(1, state())
        t_fast = SyncCheckpointer(fast).save(1, state())
        assert t_slow > t_fast


class TestAsyncCheckpointer:
    def test_round_trip_after_flush(self):
        with AsyncCheckpointer(InMemoryStorage()) as ckpt:
            original = state(2)
            ckpt.save(7, original)
            ckpt.flush()
            step, restored = ckpt.load_latest()
            assert step == 7
            assert np.allclose(restored["optimizer"],
                               original["optimizer"])

    def test_save_does_not_block_on_slow_storage(self):
        """The headline §6.1 property: blocking time ~ snapshot only."""
        slow = InMemoryStorage(bandwidth=1e6)
        sync_time = SyncCheckpointer(
            InMemoryStorage(bandwidth=1e6)).save(1, state())
        with AsyncCheckpointer(slow) as ckpt:
            async_time = ckpt.save(1, state())
            assert async_time < sync_time / 2
            ckpt.flush()

    def test_snapshot_isolated_from_later_mutation(self):
        """Training may mutate tensors right after save() returns."""
        storage = InMemoryStorage(bandwidth=5e6)
        with AsyncCheckpointer(storage) as ckpt:
            tensors = state(3)
            ckpt.save(1, tensors)
            tensors["weights"] += 999.0  # mutate before persist completes
            ckpt.flush()
            _, restored = ckpt.load_latest()
            assert restored["weights"].max() < 900.0

    def test_buffer_drops_oldest_when_full(self):
        storage = InMemoryStorage(bandwidth=2e5)  # very slow persist
        with AsyncCheckpointer(storage, buffer_slots=1) as ckpt:
            for step in range(5):
                ckpt.save(step, state(step, size=256))
            ckpt.flush()
            assert ckpt.dropped > 0
            step, _ = ckpt.load_latest()
            assert step == 4  # latest always survives

    def test_sequential_saves_all_persisted_when_buffer_ample(self):
        storage = InMemoryStorage()
        with AsyncCheckpointer(storage, buffer_slots=8) as ckpt:
            for step in range(5):
                ckpt.save(step, state(step, size=64))
            ckpt.flush()
        assert storage.write_count == 5

    def test_invalid_buffer_slots(self):
        with pytest.raises(ValueError):
            AsyncCheckpointer(InMemoryStorage(), buffer_slots=0)

    def test_directory_storage_round_trip(self, tmp_path):
        with AsyncCheckpointer(DirectoryStorage(tmp_path)) as ckpt:
            ckpt.save(42, state(4))
            ckpt.flush()
            step, restored = ckpt.load_latest()
        assert step == 42
        assert np.allclose(restored["weights"], state(4)["weights"])

    def test_directory_storage_no_torn_files(self, tmp_path):
        storage = DirectoryStorage(tmp_path)
        storage.write("ckpt-000000000001", b"payload")
        assert not list(tmp_path.glob("*.tmp"))


class TestCostModel:
    def model(self):
        # Kalos-style: 25 GB/s storage HCA per node, 800 GB/s backend.
        storage = SharedStorage(backend_bandwidth=800e9,
                                node_nic_bandwidth=25e9)
        return CheckpointCostModel(storage)

    def test_async_blocking_is_snapshot_only(self):
        cost = self.model().cost(MODEL_7B, world_size=8)
        assert cost.async_blocking == cost.snapshot
        assert cost.sync_blocking > cost.async_blocking

    def test_reduction_grows_with_scale(self):
        """§6.1: 3.6x (7B) to 58.7x (123B) blocking-time reduction."""
        small = self.model().cost(MODEL_7B, world_size=8)
        large = self.model().cost(MODEL_123B, world_size=2048)
        assert large.reduction > small.reduction
        assert 3.0 < small.reduction < 15.0
        assert 30.0 < large.reduction < 120.0

    def test_overhead_fraction_at_30min_interval(self):
        cost = self.model().cost(MODEL_123B, world_size=2048)
        sync = cost.overhead_fraction(1800.0, asynchronous=False)
        asynchronous = cost.overhead_fraction(1800.0, asynchronous=True)
        assert asynchronous < sync
        assert asynchronous < 0.001

    def test_world_size_must_align_to_nodes(self):
        with pytest.raises(ValueError):
            self.model().cost(MODEL_7B, world_size=12)


class TestShardedCheckpointer:
    def shards(self, world, step, seed=0):
        rng = np.random.default_rng(seed + step)
        return [{"weights": rng.normal(size=128),
                 "step": np.array([step])} for _ in range(world)]

    def test_complete_round_trip(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=4) as ckpt:
            ckpt.save(100, self.shards(4, 100))
            ckpt.flush()
            step, shards = ckpt.load_complete()
        assert step == 100
        assert len(shards) == 4

    def test_partial_save_falls_back_to_last_complete(self):
        """The recovery-consistency rule: a crash mid-flush must not
        yield a checkpoint some ranks never wrote."""
        from repro.core.sharded import demo_inconsistent_save

        result = demo_inconsistent_save(world_size=4)
        assert result["latest_complete_step"] == 100
        assert result["loaded_step"] == 100

    def test_no_complete_checkpoint_returns_none(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=2) as ckpt:
            ckpt.save(50, self.shards(2, 50), fail_after_rank=0)
            ckpt.flush()
            assert ckpt.latest_complete_step() is None
            assert ckpt.load_complete() is None

    def test_latest_of_several_complete_steps(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=3) as ckpt:
            for step in (10, 20, 30):
                ckpt.save(step, self.shards(3, step))
            ckpt.flush()
            assert ckpt.latest_complete_step() == 30

    def test_wrong_shard_count_rejected(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=3) as ckpt:
            with pytest.raises(ValueError):
                ckpt.save(1, self.shards(2, 1))

    def test_total_state_accounting(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=2) as ckpt:
            ckpt.save(5, self.shards(2, 5))
            ckpt.flush()
            assert ckpt.total_state_bytes() > 2 * 128 * 8

    def test_invalid_world_size(self):
        from repro.core.sharded import ShardedCheckpointer

        with pytest.raises(ValueError):
            ShardedCheckpointer(world_size=0)
