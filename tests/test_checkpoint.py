"""Tests for async checkpointing (§6.1, design 1)."""

import threading

import numpy as np
import pytest

from repro.cluster.storage import (FlakyStorage, SharedStorage,
                                   StorageError, VirtualClock)
from repro.core.checkpoint import (AsyncCheckpointer, CheckpointCostModel,
                                   CheckpointError, DirectoryStorage,
                                   InMemoryStorage, PersistHealth,
                                   RetryPolicy, SyncCheckpointer)
from repro.training.model import MODEL_7B, MODEL_123B


def state(seed=0, size=2048):
    rng = np.random.default_rng(seed)
    return {"weights": rng.normal(size=size),
            "optimizer": rng.normal(size=size)}


def corrupt_in_place(storage, key, offset=40):
    """Flip one payload byte of a stored blob (breaks the checksum)."""
    blob = storage.read(key)
    storage.write(key, blob[:offset] + bytes([blob[offset] ^ 0xFF])
                  + blob[offset + 1:])


class DeadStorage:
    """A backend that is down for every operation."""

    def write(self, key, blob):
        raise StorageError("backend down")

    def read(self, key):
        raise StorageError("backend down")

    def keys(self):
        raise StorageError("backend down")

    def delete(self, key):
        raise StorageError("backend down")


#: retry policy that never really sleeps — for wall-clock tests
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                         deadline=60.0, jitter=0.0)


class TestSyncCheckpointer:
    def test_round_trip(self):
        ckpt = SyncCheckpointer(InMemoryStorage())
        original = state(1)
        ckpt.save(100, original)
        step, restored = ckpt.load_latest()
        assert step == 100
        assert np.allclose(restored["weights"], original["weights"])

    def test_load_latest_of_many(self):
        ckpt = SyncCheckpointer(InMemoryStorage())
        for step in (10, 30, 20):
            ckpt.save(step, state(step))
        step, _ = ckpt.load_latest()
        assert step == 30

    def test_empty_storage_returns_none(self):
        assert SyncCheckpointer(InMemoryStorage()).load_latest() is None

    def test_blocking_time_includes_persist(self):
        slow = InMemoryStorage(bandwidth=2e6)  # ~16 KB payload -> ~8 ms
        fast = InMemoryStorage()
        t_slow = SyncCheckpointer(slow).save(1, state())
        t_fast = SyncCheckpointer(fast).save(1, state())
        assert t_slow > t_fast


class TestAsyncCheckpointer:
    def test_round_trip_after_flush(self):
        with AsyncCheckpointer(InMemoryStorage()) as ckpt:
            original = state(2)
            ckpt.save(7, original)
            ckpt.flush()
            step, restored = ckpt.load_latest()
            assert step == 7
            assert np.allclose(restored["optimizer"],
                               original["optimizer"])

    def test_save_does_not_block_on_slow_storage(self):
        """The headline §6.1 property: blocking time ~ snapshot only."""
        slow = InMemoryStorage(bandwidth=1e6)
        sync_time = SyncCheckpointer(
            InMemoryStorage(bandwidth=1e6)).save(1, state())
        with AsyncCheckpointer(slow) as ckpt:
            async_time = ckpt.save(1, state())
            assert async_time < sync_time / 2
            ckpt.flush()

    def test_snapshot_isolated_from_later_mutation(self):
        """Training may mutate tensors right after save() returns."""
        storage = InMemoryStorage(bandwidth=5e6)
        with AsyncCheckpointer(storage) as ckpt:
            tensors = state(3)
            ckpt.save(1, tensors)
            tensors["weights"] += 999.0  # mutate before persist completes
            ckpt.flush()
            _, restored = ckpt.load_latest()
            assert restored["weights"].max() < 900.0

    def test_buffer_drops_oldest_when_full(self):
        storage = InMemoryStorage(bandwidth=2e5)  # very slow persist
        with AsyncCheckpointer(storage, buffer_slots=1) as ckpt:
            for step in range(5):
                ckpt.save(step, state(step, size=256))
            ckpt.flush()
            assert ckpt.dropped > 0
            step, _ = ckpt.load_latest()
            assert step == 4  # latest always survives

    def test_sequential_saves_all_persisted_when_buffer_ample(self):
        storage = InMemoryStorage()
        with AsyncCheckpointer(storage, buffer_slots=8) as ckpt:
            for step in range(5):
                ckpt.save(step, state(step, size=64))
            ckpt.flush()
        assert storage.write_count == 5

    def test_invalid_buffer_slots(self):
        with pytest.raises(ValueError):
            AsyncCheckpointer(InMemoryStorage(), buffer_slots=0)

    def test_directory_storage_round_trip(self, tmp_path):
        with AsyncCheckpointer(DirectoryStorage(tmp_path)) as ckpt:
            ckpt.save(42, state(4))
            ckpt.flush()
            step, restored = ckpt.load_latest()
        assert step == 42
        assert np.allclose(restored["weights"], state(4)["weights"])

    def test_directory_storage_no_torn_files(self, tmp_path):
        storage = DirectoryStorage(tmp_path)
        storage.write("ckpt-000000000001", b"payload")
        assert not list(tmp_path.glob("*.tmp"))

    def test_directory_storage_sweeps_stale_tmp_files(self, tmp_path):
        """A crashed writer's leftovers must not accumulate or collide."""
        (tmp_path / "ckpt-000000000007.tmp").write_bytes(b"torn")
        (tmp_path / "ckpt-000000000008.tmp").write_bytes(b"torn")
        storage = DirectoryStorage(tmp_path)
        assert storage.stale_tmp_swept == 2
        assert not list(tmp_path.glob("*.tmp"))
        storage.write("ckpt-000000000007", b"fresh")
        assert storage.read("ckpt-000000000007") == b"fresh"


class TestRetryPipeline:
    def retry(self, **overrides):
        base = dict(max_attempts=5, base_delay=6.0, backoff=2.0,
                    max_delay=60.0, deadline=100.0, jitter=0.0)
        base.update(overrides)
        return RetryPolicy(**base)

    def test_transient_outage_is_retried_through(self):
        clock = VirtualClock()
        flaky = FlakyStorage(InMemoryStorage(), windows=[(0.0, 10.0)],
                             clock=clock)
        ckpt = SyncCheckpointer(flaky, retry=self.retry(), clock=clock)
        ckpt.save(1, state())  # fails at t=0 and t=6, lands at t=18
        assert ckpt.last_result.attempts == 3
        assert ckpt.retries_total == 2
        assert ckpt.health is PersistHealth.DEGRADED
        step, _ = ckpt.load_latest()
        assert step == 1

    def test_deadline_exhaustion_fails_the_save(self):
        clock = VirtualClock()
        flaky = FlakyStorage(InMemoryStorage(), windows=[(0.0, 1000.0)],
                             clock=clock)
        ckpt = SyncCheckpointer(
            flaky, retry=self.retry(base_delay=30.0, deadline=50.0),
            clock=clock)
        with pytest.raises(CheckpointError):
            ckpt.save(1, state())
        assert ckpt.health is PersistHealth.FAILED
        assert ckpt.failed_saves == 1
        assert clock.now() < 100.0  # gave up at the deadline, not after

    def test_health_recovers_on_next_clean_save(self):
        clock = VirtualClock()
        flaky = FlakyStorage(InMemoryStorage(), windows=[(0.0, 10.0)],
                             clock=clock)
        ckpt = SyncCheckpointer(flaky, retry=self.retry(), clock=clock)
        ckpt.save(1, state())
        assert ckpt.health is PersistHealth.DEGRADED
        clock.advance(100.0)
        ckpt.save(2, state())
        assert ckpt.health is PersistHealth.HEALTHY

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=10.0, backoff=1.0,
                             max_delay=10.0, jitter=0.25)
        rng = np.random.default_rng(0)
        delays = [policy.delay(0, rng) for _ in range(64)]
        assert all(7.5 <= d <= 12.5 for d in delays)
        assert max(delays) > min(delays)  # actually jittered


class TestReplication:
    def test_secondary_receives_replica(self):
        primary, secondary = InMemoryStorage(), InMemoryStorage()
        ckpt = SyncCheckpointer(primary, secondary=secondary)
        ckpt.save(5, state())
        assert secondary.keys() == ["ckpt-000000000005"]
        assert ckpt.last_result.replicated is True

    def test_corrupt_primary_rescued_by_replica(self):
        primary, secondary = InMemoryStorage(), InMemoryStorage()
        ckpt = SyncCheckpointer(primary, secondary=secondary)
        ckpt.save(5, state(5))
        corrupt_in_place(primary, "ckpt-000000000005")
        step, restored = ckpt.load_latest()
        assert step == 5
        assert np.allclose(restored["weights"], state(5)["weights"])
        assert ckpt.quarantined == []  # a good copy existed

    def test_replica_write_failure_degrades_not_fails(self):
        ckpt = SyncCheckpointer(InMemoryStorage(),
                                secondary=DeadStorage(),
                                retry=FAST_RETRY)
        ckpt.save(5, state())  # no raise: the primary copy is durable
        assert ckpt.health is PersistHealth.DEGRADED
        assert ckpt.replication_failures == 1
        assert ckpt.last_result.replicated is False


class TestMultiGenerationRestore:
    def test_corrupt_latest_falls_back_and_quarantines(self):
        storage = InMemoryStorage()
        ckpt = SyncCheckpointer(storage)
        for step in (10, 20, 30):
            ckpt.save(step, state(step))
        corrupt_in_place(storage, "ckpt-000000000030")
        step, restored = ckpt.load_latest()
        assert step == 20
        assert np.allclose(restored["weights"], state(20)["weights"])
        assert ckpt.quarantined == [(30, "checksum mismatch")]
        assert ckpt.restore_fallbacks == 1
        # the evidence moved aside, out of the restore path
        assert "quarantine-ckpt-000000000030" in storage.keys()
        assert "ckpt-000000000030" not in storage.keys()

    def test_every_generation_corrupt_returns_none(self):
        storage = InMemoryStorage()
        ckpt = SyncCheckpointer(storage)
        for step in (10, 20):
            ckpt.save(step, state(step))
            corrupt_in_place(storage, f"ckpt-{step:012d}")
        assert ckpt.load_latest() is None
        assert [step for step, _ in ckpt.quarantined] == [20, 10]

    def test_load_at_or_before_filters_newer(self):
        ckpt = SyncCheckpointer(InMemoryStorage())
        for step in (10, 20, 30):
            ckpt.save(step, state(step))
        step, _ = ckpt.load_at_or_before(25)
        assert step == 20

    def test_foreign_keys_are_ignored(self):
        storage = InMemoryStorage()
        ckpt = SyncCheckpointer(storage)
        ckpt.save(10, state())
        storage.write("quarantine-ckpt-000000000099", b"junk")
        storage.write("manifest", b"junk")
        step, _ = ckpt.load_latest()
        assert step == 10

    def test_unreachable_backend_raises_not_none(self):
        """An outage is 'retry later', never 'no checkpoints exist'."""
        ckpt = SyncCheckpointer(DeadStorage(), retry=FAST_RETRY)
        with pytest.raises(StorageError):
            ckpt.load_latest()


class TestAsyncResilience:
    def test_worker_survives_persist_failure(self):
        """A dead backend must not silently kill the drain thread."""
        failures = []
        ckpt = AsyncCheckpointer(
            DeadStorage(), buffer_slots=4, retry=FAST_RETRY,
            on_persist_failure=lambda step, err: failures.append(step))
        ckpt.save(1, state(size=64))
        with pytest.raises(CheckpointError):
            ckpt.flush()
        assert ckpt._worker.is_alive()
        ckpt.save(2, state(size=64))  # save still works after a failure
        with pytest.raises(CheckpointError):
            ckpt.flush()
        assert ckpt.failed_steps == [1, 2]
        assert failures == [1, 2]
        assert ckpt.health is PersistHealth.FAILED
        ckpt.close()  # already-reported failures don't block shutdown

    def test_flush_without_raise_on_failed(self):
        ckpt = AsyncCheckpointer(DeadStorage(), retry=FAST_RETRY)
        ckpt.save(1, state(size=64))
        ckpt.flush(raise_on_failed=False)
        assert ckpt.failed_steps == [1]
        with pytest.raises(CheckpointError):
            ckpt.close()  # the unreported loss still surfaces here
        assert not ckpt._worker.is_alive()  # ... but shutdown completed

    def test_sick_callback_does_not_kill_worker(self):
        def bad_callback(step, err):
            raise RuntimeError("callback bug")

        ckpt = AsyncCheckpointer(DeadStorage(), retry=FAST_RETRY,
                                 on_persist_failure=bad_callback)
        ckpt.save(1, state(size=64))
        with pytest.raises(CheckpointError):
            ckpt.flush()
        assert ckpt._worker.is_alive()
        ckpt.close()

    def test_overflow_error_policy_raises_when_full(self):
        release = threading.Event()
        inner = InMemoryStorage()

        class Gated:
            def write(self, key, blob):
                release.wait(timeout=10.0)
                inner.write(key, blob)

            read, keys, delete = inner.read, inner.keys, inner.delete

        ckpt = AsyncCheckpointer(Gated(), buffer_slots=1,
                                 overflow="error")
        ckpt.save(1, state(size=64))  # parks in the single slot
        with pytest.raises(CheckpointError):
            ckpt.save(2, state(size=64))
        release.set()
        ckpt.close()

    def test_overflow_block_policy_never_drops(self):
        storage = InMemoryStorage(bandwidth=2e5)  # slow persists
        with AsyncCheckpointer(storage, buffer_slots=1,
                               overflow="block") as ckpt:
            for step in range(4):
                ckpt.save(step, state(step, size=256))
            ckpt.flush()
        assert ckpt.dropped == 0
        assert storage.write_count == 4

    def test_invalid_overflow_policy(self):
        with pytest.raises(ValueError):
            AsyncCheckpointer(InMemoryStorage(), overflow="panic")

    def test_close_raises_on_leaked_worker(self):
        """close() must not return cleanly while the thread lives on."""
        release = threading.Event()
        inner = InMemoryStorage()

        class Stuck:
            def write(self, key, blob):
                release.wait(timeout=30.0)
                inner.write(key, blob)

            read, keys, delete = inner.read, inner.keys, inner.delete

        ckpt = AsyncCheckpointer(Stuck(), buffer_slots=2)
        ckpt.save(1, state(size=64))
        ckpt.flush = lambda *args, **kwargs: None  # shortcut to close
        with pytest.raises(CheckpointError, match="did not terminate"):
            ckpt.close(join_timeout=0.2)
        release.set()  # unstick so the thread exits during teardown
        ckpt._worker.join(timeout=10.0)


class TestCostModel:
    def model(self):
        # Kalos-style: 25 GB/s storage HCA per node, 800 GB/s backend.
        storage = SharedStorage(backend_bandwidth=800e9,
                                node_nic_bandwidth=25e9)
        return CheckpointCostModel(storage)

    def test_async_blocking_is_snapshot_only(self):
        cost = self.model().cost(MODEL_7B, world_size=8)
        assert cost.async_blocking == cost.snapshot
        assert cost.sync_blocking > cost.async_blocking

    def test_reduction_grows_with_scale(self):
        """§6.1: 3.6x (7B) to 58.7x (123B) blocking-time reduction."""
        small = self.model().cost(MODEL_7B, world_size=8)
        large = self.model().cost(MODEL_123B, world_size=2048)
        assert large.reduction > small.reduction
        assert 3.0 < small.reduction < 15.0
        assert 30.0 < large.reduction < 120.0

    def test_overhead_fraction_at_30min_interval(self):
        cost = self.model().cost(MODEL_123B, world_size=2048)
        sync = cost.overhead_fraction(1800.0, asynchronous=False)
        asynchronous = cost.overhead_fraction(1800.0, asynchronous=True)
        assert asynchronous < sync
        assert asynchronous < 0.001

    def test_world_size_must_align_to_nodes(self):
        with pytest.raises(ValueError):
            self.model().cost(MODEL_7B, world_size=12)


class TestShardedCheckpointer:
    def shards(self, world, step, seed=0):
        rng = np.random.default_rng(seed + step)
        return [{"weights": rng.normal(size=128),
                 "step": np.array([step])} for _ in range(world)]

    def test_complete_round_trip(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=4) as ckpt:
            ckpt.save(100, self.shards(4, 100))
            ckpt.flush()
            step, shards = ckpt.load_complete()
        assert step == 100
        assert len(shards) == 4

    def test_partial_save_falls_back_to_last_complete(self):
        """The recovery-consistency rule: a crash mid-flush must not
        yield a checkpoint some ranks never wrote."""
        from repro.core.sharded import demo_inconsistent_save

        result = demo_inconsistent_save(world_size=4)
        assert result["latest_complete_step"] == 100
        assert result["loaded_step"] == 100

    def test_no_complete_checkpoint_returns_none(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=2) as ckpt:
            ckpt.save(50, self.shards(2, 50), fail_after_rank=0)
            ckpt.flush()
            assert ckpt.latest_complete_step() is None
            assert ckpt.load_complete() is None

    def test_latest_of_several_complete_steps(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=3) as ckpt:
            for step in (10, 20, 30):
                ckpt.save(step, self.shards(3, step))
            ckpt.flush()
            assert ckpt.latest_complete_step() == 30

    def test_wrong_shard_count_rejected(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=3) as ckpt:
            with pytest.raises(ValueError):
                ckpt.save(1, self.shards(2, 1))

    def test_total_state_accounting(self):
        from repro.core.sharded import ShardedCheckpointer

        with ShardedCheckpointer(world_size=2) as ckpt:
            ckpt.save(5, self.shards(2, 5))
            ckpt.flush()
            assert ckpt.total_state_bytes() > 2 * 128 * 8

    def test_invalid_world_size(self):
        from repro.core.sharded import ShardedCheckpointer

        with pytest.raises(ValueError):
            ShardedCheckpointer(world_size=0)
