"""Tests for the §7 future-work modes: long sequences and RLHF."""

import pytest

from repro.training.extensions import (LongSequencePlan, RlhfConfig,
                                       RlhfStageModel)
from repro.training.model import MODEL_7B, MODEL_123B

GIB = 1024 ** 3


class TestLongSequence:
    def plan(self, seq_len, cp=1, **kwargs):
        return LongSequencePlan(base_model=MODEL_7B, seq_len=seq_len,
                                context_parallel=cp, **kwargs)

    def test_activation_memory_linear_in_sequence(self):
        short = self.plan(4096).activation_bytes_per_gpu()
        long = self.plan(32768).activation_bytes_per_gpu()
        assert long == pytest.approx(8 * short)

    def test_context_parallel_shards_activations(self):
        solo = self.plan(32768)
        sharded = self.plan(32768, cp=8)
        assert sharded.activation_bytes_per_gpu() == pytest.approx(
            solo.activation_bytes_per_gpu() / 8)

    def test_attention_fraction_grows_with_sequence(self):
        assert (self.plan(131072).attention_flops_fraction()
                > self.plan(4096).attention_flops_fraction())

    def test_very_long_context_needs_sharding(self):
        """The §7 motivation: 256k tokens cannot fit one GPU."""
        plan = LongSequencePlan(base_model=MODEL_123B, seq_len=262144,
                                recompute=False)
        assert not plan.fits()
        degree = plan.min_context_parallel()
        assert degree > 1
        import dataclasses

        assert dataclasses.replace(plan,
                                   context_parallel=degree).fits()

    def test_recompute_lets_longer_contexts_fit(self):
        dense = LongSequencePlan(base_model=MODEL_7B, seq_len=131072,
                                 recompute=False)
        recomputed = LongSequencePlan(base_model=MODEL_7B,
                                      seq_len=131072, recompute=True)
        assert (recomputed.activation_bytes_per_gpu()
                < dense.activation_bytes_per_gpu())

    def test_seq_must_divide_group(self):
        with pytest.raises(ValueError):
            self.plan(4097, cp=8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self.plan(0)


class TestRlhf:
    def model(self, **overrides):
        defaults = dict(actor=MODEL_7B, world_size=256)
        defaults.update(overrides)
        return RlhfStageModel(RlhfConfig(**defaults))

    def test_four_models_resident(self):
        """Actor+critic train (16 psi each), reward+reference infer."""
        model = self.model(critic_scale=1.0)
        assert model.memory_multiple_of_pretraining() == pytest.approx(
            (16 + 16 + 4) / 16)

    def test_smaller_critic_reduces_memory(self):
        big = self.model(critic_scale=1.0)
        small = self.model(critic_scale=0.25)
        assert (small.resident_model_bytes()
                < big.resident_model_bytes())

    def test_generation_dominates_iteration(self):
        """The §7 efficiency problem: rollout decoding (low SM) takes
        most of each PPO iteration."""
        model = self.model()
        assert model.generation_fraction() > 0.5

    def test_timeline_shows_low_plateau_high_burst(self):
        timeline = self.model().utilization_timeline(iterations=1)
        assert timeline.mean_sm() < 0.5       # decode plateau dominates
        assert timeline.peak_sm() > 0.8       # PPO update burst

    def test_faster_decoding_shrinks_generation_share(self):
        slow = self.model(decode_tokens_per_second=800.0)
        fast = self.model(decode_tokens_per_second=5000.0)
        assert fast.generation_fraction() < slow.generation_fraction()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RlhfConfig(actor=MODEL_7B, world_size=0)
        with pytest.raises(ValueError):
            RlhfConfig(actor=MODEL_7B, critic_scale=0.0)
