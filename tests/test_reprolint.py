"""reprolint: per-rule fixtures, suppressions, baseline, CLI contract.

Every rule gets at least one positive fixture (the violation fires,
with the expected span) and one negative fixture (the idiomatic
deterministic replacement stays silent).  The meta-test at the bottom
pins the acceptance criterion of the lint gate itself: the committed
tree lints clean.
"""

from __future__ import annotations

import argparse
import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    Baseline,
    LintConfig,
    RULES,
    lint_source,
    run_lint,
)
from repro.devtools.lint.context import is_sim_owned
from repro.devtools.lint.runner import add_arguments, main

REPO_ROOT = Path(__file__).resolve().parents[1]

SIM_PATH = "src/repro/sim/fixture.py"
NON_SIM_PATH = "src/repro/analysis/fixture.py"


def lint(source: str, path: str = SIM_PATH, **config):
    findings = lint_source(textwrap.dedent(source), path,
                           LintConfig(**config) if config else None)
    return findings


def codes(findings) -> list[str]:
    return [f.code for f in findings]


# -- RNG001: unseeded randomness -------------------------------------------


def test_rng_flags_global_random_module():
    findings = lint("""\
        import random

        def draw():
            return random.random()
        """)
    assert codes(findings) == ["RNG001"]
    assert findings[0].line == 4
    assert findings[0].snippet == "return random.random()"


def test_rng_flags_legacy_numpy_and_builtin_hash():
    findings = lint("""\
        import numpy as np

        def draw(token):
            return np.random.rand() + hash(token)
        """)
    assert codes(findings) == ["RNG001", "RNG001"]
    messages = " ".join(f.message for f in findings)
    assert "numpy.random.rand" in messages
    assert "hash" in messages


def test_rng_allows_seeded_generators():
    findings = lint("""\
        import random

        import numpy as np

        def draw(seed):
            rng = random.Random(seed)
            gen = np.random.default_rng(seed)
            return rng.random() + gen.random()
        """)
    assert findings == []


# -- CLK001: wall-clock reads ----------------------------------------------


def test_clk_flags_wall_clock_in_sim_code():
    source = """\
        import time

        def stamp():
            return time.time()
        """
    assert codes(lint(source, SIM_PATH)) == ["CLK001"]
    # the same read is fine outside sim-owned packages
    assert lint(source, NON_SIM_PATH) == []


def test_clk_flags_argless_datetime_now_only():
    findings = lint("""\
        import datetime

        def stamp(tz):
            naive = datetime.datetime.now()
            aware = datetime.datetime.now(tz)
            return naive, aware
        """)
    assert codes(findings) == ["CLK001"]
    assert findings[0].line == 4


# -- ORD001: hash-order iteration ------------------------------------------


def test_ord_flags_iteration_over_set():
    findings = lint("""\
        def walk(jobs):
            for job in {j.name for j in jobs}:
                yield job
        """)
    assert codes(findings) == ["ORD001"]
    assert findings[0].line == 2


def test_ord_flags_id_sort_key_and_allows_sorted_sets():
    source = """\
        def stable(jobs):
            pending = set(jobs)
            for job in sorted(pending):
                yield job

        def unstable(jobs):
            return sorted(jobs, key=id)
        """
    findings = lint(source)
    assert codes(findings) == ["ORD001"]
    assert findings[0].line == 7


# -- EXC001: silent broad except -------------------------------------------


def test_exc_flags_silent_broad_except():
    findings = lint("""\
        def persist(store):
            try:
                store.flush()
            except Exception:
                pass
        """)
    assert codes(findings) == ["EXC001"]
    assert findings[0].line == 4


def test_exc_allows_narrow_or_loud_handlers():
    findings = lint("""\
        def persist(store, log):
            try:
                store.flush()
            except OSError:
                pass
            try:
                store.sync()
            except Exception:
                log.warning("sync failed")
                raise
        """)
    assert findings == []


# -- LSN001: listener leak -------------------------------------------------


def test_lsn_flags_add_listener_without_remove():
    findings = lint("""\
        def attach(engine, check):
            engine.add_listener(check)
        """)
    assert codes(findings) == ["LSN001"]


def test_lsn_allows_paired_removal():
    findings = lint("""\
        def attach(engine, check):
            engine.add_listener(check)
            try:
                engine.run()
            finally:
                engine.remove_listener(check)
        """)
    assert findings == []


# -- FLT001: float loop accumulation ---------------------------------------


def test_flt_flags_float_accumulator_in_loop():
    findings = lint("""\
        def total(samples):
            acc = 0.0
            for sample in samples:
                acc += sample
            return acc
        """)
    assert codes(findings) == ["FLT001"]
    assert findings[0].line == 4


def test_flt_allows_fsum_and_integer_ticks():
    findings = lint("""\
        import math

        def total(samples):
            ticks = 0
            for sample in samples:
                ticks += 1
            return math.fsum(samples), ticks
        """)
    assert findings == []


# -- MUT001: mutable default arguments -------------------------------------


def test_mut_flags_mutable_defaults_everywhere():
    source = """\
        def enqueue(job, queue=[], *, meta={}):
            queue.append(job)
            return queue, meta
        """
    # fires regardless of sim ownership
    for path in (SIM_PATH, NON_SIM_PATH):
        findings = lint(source, path)
        assert codes(findings) == ["MUT001", "MUT001"]


def test_mut_allows_none_sentinel():
    findings = lint("""\
        def enqueue(job, queue=None):
            queue = queue if queue is not None else []
            queue.append(job)
            return queue
        """)
    assert findings == []


# -- rule metadata / selection ---------------------------------------------


def test_every_rule_has_a_positive_fixture():
    file_local = {"RNG001", "CLK001", "ORD001", "EXC001", "LSN001",
                  "FLT001", "MUT001"}
    # cross-module rules: fixtures live in test_reprolint_project.py
    cross_module = {"SEED001", "TRC001", "LSN002", "SPAN001", "IMP001"}
    assert file_local | cross_module == set(RULES) - {"PAR000"}


def test_select_and_ignore_narrow_the_run():
    source = """\
        import random

        def f(xs=[]):
            return random.random()
        """
    assert codes(lint(source, select=frozenset({"MUT001"}))) == ["MUT001"]
    assert codes(lint(source, ignore=frozenset({"MUT001"}))) == ["RNG001"]


def test_sim_ownership_is_path_based():
    assert is_sim_owned("src/repro/scheduler/queue.py")
    assert is_sim_owned("src/repro/core/checkpoint.py")
    assert not is_sim_owned("src/repro/analysis/figures.py")
    # the *file* being named like a package does not count
    assert not is_sim_owned("src/repro/analysis/core.py")


# -- suppressions ----------------------------------------------------------


def test_trailing_comment_suppresses_own_line():
    findings = lint("""\
        import random

        def draw():
            return random.random()  # reprolint: disable=RNG001
        """)
    assert findings == []


def test_comment_line_suppresses_next_line_only():
    findings = lint("""\
        import random

        def draw():
            # reprolint: disable=RNG001
            first = random.random()
            second = random.random()
            return first + second
        """)
    assert [f.line for f in findings] == [6]


def test_bare_disable_suppresses_all_codes_on_line():
    findings = lint("""\
        import random

        def draw(xs=[]):  # reprolint: disable
            return random.random()
        """)
    assert codes(findings) == ["RNG001"]


def test_disable_file_silences_whole_module():
    findings = lint("""\
        # reprolint: disable-file=RNG001
        import random

        def draw():
            return random.random() + random.random()
        """)
    assert findings == []


def test_suppressing_wrong_code_does_not_hide_finding():
    findings = lint("""\
        import random

        def draw():
            return random.random()  # reprolint: disable=CLK001
        """)
    assert codes(findings) == ["RNG001"]


# -- baseline round-trip ---------------------------------------------------


VIOLATING = textwrap.dedent("""\
    import random

    def draw():
        return random.random()
    """)


def test_baseline_round_trip_absorbs_then_goes_stale(tmp_path):
    target = tmp_path / "pkg" / "sim" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(VIOLATING)
    baseline_path = tmp_path / "baseline.json"

    first = run_lint([target])
    assert codes(first.findings) == ["RNG001"]

    baseline = Baseline.from_findings(first.findings)
    baseline.entries[0].justification = "fixture: grandfathered"
    baseline.save(baseline_path)

    # reload from disk and the finding is absorbed, not fresh
    second = run_lint([target], baseline=Baseline.load(baseline_path))
    assert second.findings == []
    assert codes(second.baselined) == ["RNG001"]
    assert second.baselined[0].justification == "fixture: grandfathered"
    assert second.stale_entries == []
    assert second.exit_code == 0

    # fixing the violation turns the entry stale but stays exit 0
    target.write_text("def draw():\n    return 4\n")
    third = run_lint([target], baseline=Baseline.load(baseline_path))
    assert third.findings == []
    assert [e.fingerprint for e in third.stale_entries] == [
        baseline.entries[0].fingerprint]
    assert third.exit_code == 0


def test_fingerprint_survives_unrelated_edits(tmp_path):
    target = tmp_path / "sim" / "mod.py"
    target.parent.mkdir()
    target.write_text(VIOLATING)
    before = run_lint([target]).findings[0].fingerprint()
    target.write_text("import os\n\n\n" + VIOLATING)
    after = run_lint([target]).findings[0].fingerprint()
    assert before == after


def test_regeneration_carries_justifications_forward():
    finding = lint(VIOLATING)[0]
    old = Baseline.from_findings([finding])
    old.entries[0].justification = "seeded later, see #42"
    new = Baseline.from_findings([finding], previous=old)
    assert new.entries[0].justification == "seeded later, see #42"


# -- CLI surface -----------------------------------------------------------


def cli(argv, tmp_path=None):
    parser = argparse.ArgumentParser()
    add_arguments(parser)
    stream = io.StringIO()
    status = main(parser.parse_args(argv), stream=stream)
    return status, stream.getvalue()


def test_cli_text_output_and_exit_one(tmp_path):
    target = tmp_path / "sim" / "mod.py"
    target.parent.mkdir()
    target.write_text(VIOLATING)
    status, out = cli([str(target), "--no-baseline"])
    assert status == 1
    assert f"{target}:4:12: RNG001" in out
    assert "1 files, 1 findings" in out


def test_cli_json_output_includes_spans(tmp_path):
    target = tmp_path / "sim" / "mod.py"
    target.parent.mkdir()
    target.write_text(VIOLATING)
    status, out = cli([str(target), "--no-baseline", "--format",
                       "json"])
    payload = json.loads(out)
    assert status == payload["exit_code"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "RNG001"
    assert finding["line"] == 4
    assert finding["snippet"] == "return random.random()"
    assert len(finding["fingerprint"]) == 16


def test_cli_parse_error_exits_two(tmp_path):
    target = tmp_path / "sim" / "broken.py"
    target.parent.mkdir()
    target.write_text("def draw(:\n")
    status, out = cli([str(target), "--no-baseline"])
    assert status == 2
    assert "PAR000" in out


def test_cli_rejects_unknown_rule_code(tmp_path):
    status, out = cli(["--select", "NOPE42"])
    assert status == 2
    assert "NOPE42" in out


def test_cli_update_baseline_then_clean(tmp_path):
    target = tmp_path / "sim" / "mod.py"
    target.parent.mkdir()
    target.write_text(VIOLATING)
    baseline_path = tmp_path / "baseline.json"
    status, out = cli([str(target), "--baseline", str(baseline_path),
                       "--update-baseline"])
    assert status == 0
    assert baseline_path.exists()
    status, out = cli([str(target), "--baseline", str(baseline_path)])
    assert status == 0
    assert "1 baselined" in out


def test_cli_list_rules():
    status, out = cli(["--list-rules"])
    assert status == 0
    for code in RULES:
        assert code in out


# -- the gate itself -------------------------------------------------------


@pytest.mark.skipif(not (REPO_ROOT / "src" / "repro").is_dir(),
                    reason="requires the repository layout")
def test_committed_tree_lints_clean():
    """`python -m repro lint src` must exit 0 on the committed tree."""
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout
