"""Sustained-throughput benchmark for the streaming service.

Measures ``repro.service.ClusterService`` operating a chaos-storm
cluster under open-ended streaming load — the long-lived counterpart
of ``bench_engine.py``'s batch scenarios — and compares against the
committed baseline in ``BENCH_service.json`` at the repo root:

* **streaming-horizons** — Poisson jobs + eval bursts feeding the
  live scheduler, advanced in many incremental horizons; reports
  events/sec and arrivals/sec end to end.
* **checkpoint-cadence** — the same run with a snapshot persisted at
  every horizon plus one full restore at the end; reports snapshot
  save throughput and the restore's replay cost.
* **overload-saturation** — arrivals at 3× the analytic best-effort
  capacity with admission control, backpressure, and the shed sweep
  all armed; measures how fast the service runs while actively
  rejecting, deferring, and shedding.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py --quick --check
    PYTHONPATH=src python benchmarks/bench_service.py --update

``--check`` exits non-zero when any scenario's throughput falls more
than ``--tolerance`` (default 20%) below the committed baseline — the
CI bench-smoke job runs exactly that.  ``--update`` re-measures and
rewrites the baseline for the chosen profile, preserving the other
profile's numbers.

Also importable: each ``run_*`` function returns its metrics dict and
``run_profile`` drives all three scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_service.json"

SCHEMA_VERSION = 2

#: pinned sizes per profile
PROFILES: dict[str, dict[str, float]] = {
    "quick": {
        "jobs_per_hour": 240.0,
        "eval_bursts_per_hour": 12.0,
        "horizons": 16,
        "duration_scale": 1.0,
        "overload_multiplier": 3.0,
        "overload_horizon_s": 2.0 * 3600.0,
    },
    "full": {
        "jobs_per_hour": 720.0,
        "eval_bursts_per_hour": 30.0,
        "horizons": 64,
        "duration_scale": 4.0,
        "overload_multiplier": 3.0,
        "overload_horizon_s": 6.0 * 3600.0,
    },
}


def _build_service(sizes: dict[str, float], storage=None):
    from dataclasses import replace

    from repro.chaos import BUNDLED_SCENARIOS
    from repro.service import ClusterService
    from repro.workload.streams import (EvalBurstConfig, EvalBurstStream,
                                        PoissonJobStream,
                                        PoissonStreamConfig)

    scenario = BUNDLED_SCENARIOS["storage-storm"]
    scenario = replace(scenario,
                       duration=scenario.duration
                       * sizes["duration_scale"])
    streams = [
        PoissonJobStream(PoissonStreamConfig(
            name="sft", seed=scenario.seed,
            rate_per_hour=sizes["jobs_per_hour"],
            gpu_choices=(1, 2, 4))),
        EvalBurstStream(EvalBurstConfig(
            name="evals", seed=scenario.seed,
            bursts_per_hour=sizes["eval_bursts_per_hour"],
            batch_size=8)),
    ]
    return ClusterService(scenario, streams=streams, storage=storage)


def run_streaming_horizons(sizes: dict[str, float]) -> dict:
    """Streaming load advanced in many incremental horizons."""
    _build_service(sizes).advance(60.0)  # warm imports out of the timing
    service = _build_service(sizes)
    duration = service.scenario.duration
    horizons = int(sizes["horizons"])
    start = time.perf_counter()
    for step in range(1, horizons + 1):
        gauges = service.advance(duration * step / horizons)
    elapsed = time.perf_counter() - start
    assert gauges.now == duration, "service stopped short of horizon"
    assert gauges.jobs_submitted > 0, "streams produced no arrivals"
    return {"events": gauges.events_processed, "seconds": elapsed,
            "events_per_sec": gauges.events_processed / elapsed,
            "arrivals": gauges.jobs_submitted,
            "arrivals_per_sec": gauges.jobs_submitted / elapsed,
            "horizons": horizons}


def run_checkpoint_cadence(sizes: dict[str, float]) -> dict:
    """Snapshot every horizon, then restore once from storage."""
    from repro.core.checkpoint import InMemoryStorage
    from repro.service import ClusterService

    storage = InMemoryStorage()
    service = _build_service(sizes, storage=storage)
    duration = service.scenario.duration
    horizons = int(sizes["horizons"])
    save_seconds = 0.0
    for step in range(1, horizons + 1):
        service.advance(duration * step / horizons)
        start = time.perf_counter()
        service.checkpoint()
        save_seconds += time.perf_counter() - start
    snapshot_bytes = sum(len(blob)
                         for blob in storage._blobs.values())
    start = time.perf_counter()
    restored = ClusterService.restore(storage)
    restore_seconds = time.perf_counter() - start
    assert restored.gauges() == service.gauges(), \
        "restore diverged from the live service"
    return {"events": horizons, "seconds": save_seconds,
            "events_per_sec": horizons / save_seconds,
            "snapshot_bytes": snapshot_bytes,
            "restore_seconds": restore_seconds,
            "replayed_events": restored.engine.events_processed}


def run_overload_saturation(sizes: dict[str, float]) -> dict:
    """One saturated load-test cell with the overload machinery hot."""
    from repro.service import run_loadtest

    multiplier = sizes["overload_multiplier"]
    run_loadtest(multipliers=(multiplier,),
                 policy_kinds=("queue-depth",),
                 horizon_s=600.0)  # warm imports out of the timing
    start = time.perf_counter()
    report = run_loadtest(multipliers=(multiplier,),
                          horizon_s=sizes["overload_horizon_s"])
    elapsed = time.perf_counter() - start
    offered = sum(cell.offered for cell in report.cells)
    pushback = sum(cell.rejected + cell.shed + cell.chains_deferred
                   for cell in report.cells)
    assert pushback > 0, "saturated sweep produced no pushback"
    return {"events": offered, "seconds": elapsed,
            "events_per_sec": offered / elapsed,
            "cells": len(report.cells),
            "cells_per_sec": len(report.cells) / elapsed,
            "pushback_decisions": pushback}


def run_profile(profile: str) -> dict[str, dict]:
    """All three scenarios at the given profile's sizes."""
    sizes = PROFILES[profile]
    return {
        "streaming-horizons": run_streaming_horizons(sizes),
        "checkpoint-cadence": run_checkpoint_cadence(sizes),
        "overload-saturation": run_overload_saturation(sizes),
    }


def load_baseline(path: Path) -> dict:
    """The committed baseline, or an empty shell when absent."""
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "profiles": {}}
    return json.loads(path.read_text())


def check_regression(current: dict[str, dict], baseline: dict,
                     profile: str, tolerance: float) -> list[str]:
    """Throughput regressions beyond ``tolerance``, as messages."""
    committed = baseline.get("profiles", {}).get(profile, {})
    problems = []
    for name, metrics in current.items():
        pinned = committed.get(name)
        if pinned is None:
            problems.append(f"{name}: no committed baseline for "
                            f"profile {profile!r}")
            continue
        for key in ("events_per_sec", "arrivals_per_sec"):
            if key not in pinned:
                continue
            floor = pinned[key] * (1.0 - tolerance)
            if metrics.get(key, 0.0) < floor:
                problems.append(
                    f"{name}: {key} {metrics.get(key, 0.0):,.0f} < "
                    f"floor {floor:,.0f} "
                    f"(baseline {pinned[key]:,.0f}, "
                    f"tolerance {tolerance:.0%})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming-service throughput benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes (the CI profile)")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline for this profile")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional slowdown for --check")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="baseline JSON path")
    parser.add_argument("--out", default=None,
                        help="also write this run's numbers as JSON")
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "full"
    results = run_profile(profile)

    for name, metrics in results.items():
        line = (f"{name:<20} {metrics['events_per_sec']:>12,.0f} /s"
                f"  ({metrics['events']:,} ops in "
                f"{metrics['seconds']:.2f}s)")
        if "arrivals_per_sec" in metrics:
            line += f"  [{metrics['arrivals_per_sec']:,.0f} arrivals/s]"
        if "restore_seconds" in metrics:
            line += (f"  [restore {metrics['restore_seconds']:.2f}s, "
                     f"{metrics['snapshot_bytes']:,} snapshot bytes]")
        if "pushback_decisions" in metrics:
            line += (f"  [{metrics['pushback_decisions']:,} "
                     f"reject/shed/defer]")
        print(line)

    baseline_path = Path(args.baseline)
    if args.out:
        payload = {"schema": SCHEMA_VERSION, "profile": profile,
                   "results": results}
        Path(args.out).write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    status = 0
    if args.check:
        problems = check_regression(results, load_baseline(baseline_path),
                                    profile, args.tolerance)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            status = 1
        else:
            print(f"ok: all scenarios within {args.tolerance:.0%} of "
                  f"the committed baseline")

    if args.update:
        baseline = load_baseline(baseline_path)
        baseline["schema"] = SCHEMA_VERSION
        baseline.setdefault("profiles", {})[profile] = results
        baseline_path.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"updated {baseline_path} [{profile}]")

    return status


if __name__ == "__main__":
    sys.exit(main())
