"""Tables 1 and 2."""

from conftest import run_once

from repro.analysis import tables
from repro.analysis.report import render_table


def test_table1_cluster_specs(benchmark, emit):
    rows = run_once(benchmark, tables.table1)
    emit("table1", render_table(
        rows, title="Table 1: per-node specification and cluster scale"))
    assert sum(row["total_gpus"] for row in rows) == 4704


def test_table2_datacenter_comparison(benchmark, emit):
    rows = run_once(benchmark, tables.table2)
    emit("table2", render_table(
        rows, columns=["datacenter", "year", "jobs", "avg_gpus",
                       "gpu_model", "total_gpus"],
        title="Table 2: Acme vs Philly/Helios/PAI"))
    acme = [row for row in rows if row["datacenter"] == "acme"][0]
    assert acme["total_gpus"] == 4704
