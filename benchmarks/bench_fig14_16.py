"""Figure 14 (recovery timeline) and Figure 16 (+ §6.2 makespan)."""

from conftest import run_once

from repro.analysis import figures
from repro.analysis.report import render_key_values, render_table


def test_fig14_training_progress(benchmark, emit):
    result = run_once(benchmark, figures.fig14)
    rows = []
    for name in ("104B", "123B"):
        data = result[name]
        rows.append({"model": name,
                     "failures": data["failures"],
                     "lost_iterations": data["lost_iterations"],
                     "final_iteration": data["final_iteration"],
                     "useful_fraction": data["useful_fraction"]})
    emit("fig14", render_table(
        rows, title="Fig 14: two-week campaigns [paper: the 123B run "
        "(30-min ckpts + graceful termination) is far more stable]"))
    assert (result["123B"]["useful_fraction"]
            > result["104B"]["useful_fraction"])


def test_fig16_loading_and_makespan(benchmark, emit):
    result = run_once(benchmark, figures.fig16)
    load_rows = [{"concurrent_trials": trials,
                  "per_trial_rate_gbps": rate * 8 / 1e9}
                 for trials, rate in result["loading_speed_by_trials"]]
    makespan_rows = [
        {"setup": setup,
         "baseline_min": data["baseline_makespan_s"] / 60.0,
         "decoupled_min": data["decoupled_makespan_s"] / 60.0,
         "speedup": data["speedup"]}
        for setup, data in result["makespan"].items()]
    text = "\n\n".join([
        render_table(load_rows,
                     title="Fig 16 left: model-loading stress test "
                           "[paper: collapse 1->8 trials, flat to 256]"),
        render_table(makespan_rows,
                     title="Fig 16 right / §6.2: 63-dataset round, 7B "
                           "[paper: 1.3x (1 node) and 1.8x (4 nodes)]"),
        render_key_values(
            {"collapse_1_to_8": result["speed_collapse_1_to_8"]}),
    ])
    emit("fig16", text)
    assert result["makespan"]["4_node"]["speedup"] > \
        result["makespan"]["1_node"]["speedup"] > 1.1
