"""Persistent engine-throughput benchmark (events/sec, jobs/sec).

Measures the simulator's raw speed on four pinned scenarios and
compares it against the committed baseline in ``BENCH_engine.json`` at
the repo root:

* **idle-engine** — bare event loop: self-rescheduling timer chains,
  no simulation logic.  The ceiling every other number sits under.
* **chaos-storm** — the bundled ``storage-storm`` scenario end-to-end
  (scheduler + recovery + invariant checker on every event).
* **fabric-contention** — max-min fair water-filling over a saturated
  fabric, repeated; measures rate *solves* per second.
* **scheduler-replay** — a full synthetic-trace scheduler replay;
  reports jobs/sec alongside events/sec.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick
    PYTHONPATH=src python benchmarks/bench_engine.py --quick --check
    PYTHONPATH=src python benchmarks/bench_engine.py --update

``--check`` exits non-zero when any scenario's throughput falls more
than ``--tolerance`` (default 20%) below the committed baseline —
the CI bench-smoke job runs exactly that.  ``--update`` re-measures
and rewrites the baseline for the chosen profile, preserving the
other profile's numbers.

Also importable: each ``run_*`` function returns its metrics dict, and
``run_profile`` drives all four (pytest wraps them in
``tests/test_bench_engine_smoke.py``-style smoke checks via --quick).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_engine.json"
SCHEMA_VERSION = 1

#: pinned scenario sizes per profile
PROFILES: dict[str, dict[str, int]] = {
    "quick": {
        "idle_events": 200_000,
        "storm_repeats": 5,
        "contention_flows": 192,
        "contention_rounds": 400,
        "replay_jobs": 20_000,
    },
    "full": {
        "idle_events": 2_000_000,
        "storm_repeats": 10,
        "contention_flows": 384,
        "contention_rounds": 1_000,
        "replay_jobs": 100_000,
    },
}


def run_idle_engine(n_events: int) -> dict:
    """Bare event-loop throughput: timer chains, empty callbacks."""
    from repro.sim.engine import Engine

    engine = Engine()
    chains = 8
    per_chain = n_events // chains

    def make_chain(offset: float) -> None:
        remaining = [per_chain]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.call_after(1.0, tick)

        engine.call_at(offset, tick)

    for chain in range(chains):
        make_chain(offset=chain * 0.1)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    events = engine.events_processed
    assert events == per_chain * chains, "timer chains lost events"
    return {"events": events, "seconds": elapsed,
            "events_per_sec": events / elapsed}


def run_chaos_storm(repeats: int) -> dict:
    """The bundled storage-storm scenario, end to end."""
    from repro.chaos import BUNDLED_SCENARIOS, run_scenario
    from repro.chaos.harness import ChaosHarness

    scenario = BUNDLED_SCENARIOS["storage-storm"]
    run_scenario(scenario)  # warm imports and caches out of the timing
    events = 0
    start = time.perf_counter()
    for _ in range(repeats):
        harness = ChaosHarness(scenario)
        harness.run()
        events += harness.engine.events_processed
    elapsed = time.perf_counter() - start
    return {"events": events, "seconds": elapsed,
            "events_per_sec": events / elapsed}


def run_fabric_contention(n_flows: int, rounds: int) -> dict:
    """Max-min fair solves over a saturated multi-tier fabric."""
    from repro.cluster.network import (Flow, clear_rate_cache,
                                       max_min_fair_rates)

    nodes = max(8, n_flows // 8)
    links = {f"nic:{node}": 25e9 for node in range(nodes)}
    links.update({f"leaf:{leaf}": 100e9
                  for leaf in range(max(1, nodes // 8))})
    leaves = max(1, nodes // 8)
    flows = [Flow(f"f{i}",
                  (f"nic:{i % nodes}", f"leaf:{i % leaves}",
                   f"nic:{(i * 7 + 3) % nodes}"),
                  rate_cap=12.5e9 if i % 3 else float("inf"))
             for i in range(n_flows)]
    clear_rate_cache()
    warmup = max_min_fair_rates(links, flows)
    assert len(warmup) == n_flows, "solver dropped flows"
    start = time.perf_counter()
    for _ in range(rounds):
        max_min_fair_rates(links, flows)
    elapsed = time.perf_counter() - start
    return {"events": rounds, "seconds": elapsed,
            "events_per_sec": rounds / elapsed,
            "flows": n_flows}


def run_scheduler_replay(n_jobs: int) -> dict:
    """Full synthetic-trace scheduler replay (the Fig. 6 machinery)."""
    from dataclasses import replace

    from repro.scheduler.simulator import (SchedulerConfig,
                                           SchedulerSimulator)
    from repro.workload.generator import TraceGenerator
    from repro.workload.spec import KALOS_SPEC

    spec = replace(KALOS_SPEC,
                   span=KALOS_SPEC.span * n_jobs / KALOS_SPEC.real_gpu_jobs)
    trace = TraceGenerator(spec, seed=0).generate(n_jobs)
    jobs = list(trace.gpu_jobs())
    simulator = SchedulerSimulator(SchedulerConfig(
        total_gpus=spec.total_gpus, reserved_fraction=0.98))
    start = time.perf_counter()
    simulator.simulate(jobs)
    elapsed = time.perf_counter() - start
    events = simulator.engine.events_processed
    assert events >= len(jobs), "replay ended before admitting all jobs"
    return {"events": events, "seconds": elapsed,
            "events_per_sec": events / elapsed,
            "jobs": len(jobs), "jobs_per_sec": len(jobs) / elapsed}


def run_profile(profile: str) -> dict[str, dict]:
    """All four pinned scenarios at the given profile's sizes."""
    sizes = PROFILES[profile]
    return {
        "idle-engine": run_idle_engine(sizes["idle_events"]),
        "chaos-storm": run_chaos_storm(sizes["storm_repeats"]),
        "fabric-contention": run_fabric_contention(
            sizes["contention_flows"], sizes["contention_rounds"]),
        "scheduler-replay": run_scheduler_replay(sizes["replay_jobs"]),
    }


def load_baseline(path: Path) -> dict:
    """The committed baseline, or an empty shell when absent."""
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "profiles": {}}
    return json.loads(path.read_text())


def check_regression(current: dict[str, dict], baseline: dict,
                     profile: str, tolerance: float) -> list[str]:
    """Throughput regressions beyond ``tolerance``, as messages."""
    committed = baseline.get("profiles", {}).get(profile, {})
    problems = []
    for name, metrics in current.items():
        pinned = committed.get(name)
        if pinned is None:
            problems.append(f"{name}: no committed baseline for "
                            f"profile {profile!r}")
            continue
        for key in ("events_per_sec", "jobs_per_sec"):
            if key not in pinned:
                continue
            floor = pinned[key] * (1.0 - tolerance)
            if metrics.get(key, 0.0) < floor:
                problems.append(
                    f"{name}: {key} {metrics.get(key, 0.0):,.0f} < "
                    f"floor {floor:,.0f} "
                    f"(baseline {pinned[key]:,.0f}, "
                    f"tolerance {tolerance:.0%})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="engine events/sec benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes (the CI profile)")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline for this profile")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional slowdown for --check")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="baseline JSON path")
    parser.add_argument("--out", default=None,
                        help="also write this run's numbers as JSON")
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "full"
    results = run_profile(profile)

    for name, metrics in results.items():
        line = (f"{name:<20} {metrics['events_per_sec']:>12,.0f} /s"
                f"  ({metrics['events']:,} ops in "
                f"{metrics['seconds']:.2f}s)")
        if "jobs_per_sec" in metrics:
            line += f"  [{metrics['jobs_per_sec']:,.0f} jobs/s]"
        print(line)

    baseline_path = Path(args.baseline)
    payload = {"schema": SCHEMA_VERSION, "profile": profile,
               "results": results}
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    status = 0
    if args.check:
        problems = check_regression(results, load_baseline(baseline_path),
                                    profile, args.tolerance)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            status = 1
        else:
            print(f"ok: all scenarios within {args.tolerance:.0%} of "
                  f"the committed baseline")

    if args.update:
        baseline = load_baseline(baseline_path)
        baseline["schema"] = SCHEMA_VERSION
        baseline.setdefault("profiles", {})[profile] = results
        baseline_path.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"updated {baseline_path} [{profile}]")

    return status


if __name__ == "__main__":
    sys.exit(main())
