"""The 'delayed feedback on model performance' challenge (§1, §6.2).

Connects the evaluation coordinator's makespan reduction to what it
actually buys: with faster evaluation rounds, a quality regression is
noticed sooner and fewer pretraining steps are wasted before rollback.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.core.evalsched import CoordinatorConfig, TrialCoordinator
from repro.evaluation import (QualityModel, feedback_delay_cost,
                              standard_catalog)

# The paper's 30-minute checkpoint cadence at 14 s/step (123B, 2048 GPUs).
CHECKPOINT_INTERVAL_STEPS = 128
STEP_TIME_S = 14.0


def _feedback_rows():
    catalog = standard_catalog()
    coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=2))
    outcome = coordinator.compare(catalog)
    checkpoint_wall_s = CHECKPOINT_INTERVAL_STEPS * STEP_TIME_S
    rows = []
    for label, makespan in (
            ("baseline", outcome["baseline"].makespan),
            ("decoupled", outcome["decoupled"].makespan)):
        # Evaluation rounds queue behind each other if a round takes
        # longer than the checkpoint cadence produces work.
        delay_rounds = max(0, int(makespan // checkpoint_wall_s))
        model = QualityModel(catalog[:16], seed=13)
        cost = feedback_delay_cost(
            model,
            checkpoint_steps=list(range(0, 10_000,
                                        CHECKPOINT_INTERVAL_STEPS)),
            regression_step=4_200,
            eval_delay_checkpoints=delay_rounds,
            checkpoint_interval_steps=CHECKPOINT_INTERVAL_STEPS)
        rows.append({
            "strategy": label,
            "round_makespan_min": makespan / 60.0,
            "rounds_of_lag": delay_rounds,
            "regression_detected_at_step": cost["detected_at_step"],
            "wasted_steps": cost["wasted_steps"],
            "wasted_gpu_hours": cost["wasted_steps"] * STEP_TIME_S
            * 2048 / 3600.0,
        })
    return rows


def test_feedback_delay_cost(benchmark, emit):
    rows = run_once(benchmark, _feedback_rows)
    emit("feedback_delay", render_table(
        rows, title="§1/§6.2: delayed model-quality feedback — wasted "
        "pretraining when a regression is noticed late "
        "(2048-GPU campaign, 30-min checkpoints, regression at "
        "step 4200)"))
    by_label = {row["strategy"]: row for row in rows}
    assert (by_label["decoupled"]["wasted_steps"]
            < by_label["baseline"]["wasted_steps"])
