"""§7 future-work modes: long-sequence pretraining, RLHF, fat-tree.

The paper's closing section names the workloads InternEvo is being
extended toward; these benches quantify why each one stresses the
systems the paper built.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.cluster.fattree import FatTreeConfig, factor_table
from repro.training.extensions import (LongSequencePlan, RlhfConfig,
                                       RlhfStageModel)
from repro.training.model import MODEL_7B, MODEL_123B


def _long_sequence_rows():
    rows = []
    for seq_len in (4096, 32768, 131072, 262144):
        plan = LongSequencePlan(base_model=MODEL_7B, seq_len=seq_len,
                                recompute=False)
        rows.append({
            "seq_len": seq_len,
            "activation_gib_unsharded":
                plan.activation_bytes_per_gpu() / 2 ** 30,
            "attention_flops_fraction":
                plan.attention_flops_fraction(),
            "min_context_parallel": plan.min_context_parallel(),
        })
    return rows


def test_long_sequence_pretraining(benchmark, emit):
    rows = run_once(benchmark, _long_sequence_rows)
    emit("ext_long_sequence", render_table(
        rows, title="§7: long-sequence pretraining (7B) — activation "
        "memory forces context parallelism as sequences grow"))
    assert rows[-1]["min_context_parallel"] > rows[0][
        "min_context_parallel"]


def _rlhf_rows():
    rows = []
    for actor, world in ((MODEL_7B, 256), (MODEL_123B, 2048)):
        model = RlhfStageModel(RlhfConfig(actor=actor,
                                          world_size=world))
        timeline = model.utilization_timeline(iterations=1)
        rows.append({
            "actor": actor.name,
            "gpus": world,
            "memory_vs_pretraining":
                model.memory_multiple_of_pretraining(),
            "generation_fraction": model.generation_fraction(),
            "mean_sm": timeline.mean_sm(),
        })
    return rows


def test_rlhf_efficiency_problem(benchmark, emit):
    rows = run_once(benchmark, _rlhf_rows)
    emit("ext_rlhf", render_table(
        rows, title="§7: RLHF — four resident models and a decode-bound "
        "rollout phase keep mean SM activity low"))
    assert all(row["generation_fraction"] > 0.5 for row in rows)
    assert all(row["memory_vs_pretraining"] > 2.0 for row in rows)


def test_fattree_factor_table(benchmark, emit):
    rows = run_once(benchmark, factor_table, FatTreeConfig(nodes=256))
    emit("ext_fattree", render_table(
        rows, title="Leaf-spine bandwidth factors — why hierarchical "
        "ZeRO caps shard groups at one 8-node leaf (64 GPUs)"))
    by_nodes = {row["nodes"]: row for row in rows}
    assert by_nodes[8]["bandwidth_factor"] == 1.0
    assert by_nodes[128]["bandwidth_factor"] < 1.0
