"""Figures 2 and 3: Acme vs prior DL datacenters.

Paper rows reproduced: median job duration per datacenter (Fig. 2a),
median GPU utilization (Fig. 2b), GPU-time share of single-GPU and
>= 256-GPU jobs (Fig. 3b).
"""

from conftest import run_once

from repro.analysis import figures
from repro.analysis.report import (render_cdf_summary, render_key_values)

N = 6000


def test_fig2_duration_and_utilization(benchmark, emit):
    result = run_once(benchmark, figures.fig2, N)
    text = "\n\n".join([
        render_cdf_summary(result["duration_cdf"],
                           title="Fig 2a: GPU job duration CDF",
                           unit="seconds"),
        render_key_values(result["median_duration_s"],
                          title="median duration (s) "
                                "[paper: Acme=120, others 1.7-7.2x]"),
        render_key_values(result["median_utilization"],
                          title="median GPU utilization "
                                "[paper: seren .97 kalos .99 "
                                "philly .48 pai .04]"),
    ])
    emit("fig02", text)
    assert result["median_duration_s"]["seren"] < \
        result["median_duration_s"]["philly"]


def test_fig3_demand_distribution(benchmark, emit):
    result = run_once(benchmark, figures.fig3, N)
    text = "\n\n".join([
        render_cdf_summary(result["count_cdf"],
                           title="Fig 3a: requested-GPU CDF by job count",
                           unit="GPUs"),
        render_key_values(
            {"kalos_gpu_time_share_>=256": result["kalos_share_ge_256"],
             **{f"single_gpu_share_{k}": v
                for k, v in result["single_gpu_time_share"].items()}},
            title="Fig 3b anchors [paper: kalos>=256 > 96%, "
                  "acme single-GPU < 2%, pai > 68%]"),
    ])
    emit("fig03", text)
    assert result["kalos_share_ge_256"] > 0.85
