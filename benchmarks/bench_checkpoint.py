"""§6.1 system performance: asynchronous checkpointing.

Reproduces the paper's claim that async checkpointing reduces blocking
checkpoint time by 3.6-58.7x between 7B and 123B configurations, both
analytically (datacenter-scale cost model) and executably (threaded
checkpointers over throttled storage).
"""

import numpy as np
from conftest import run_once

from repro.analysis.report import render_key_values, render_table
from repro.cluster.storage import SharedStorage
from repro.core.checkpoint import (AsyncCheckpointer, CheckpointCostModel,
                                   InMemoryStorage, SyncCheckpointer)
from repro.training.model import MODEL_7B, MODEL_30B, MODEL_123B


def _cost_rows():
    storage = SharedStorage(backend_bandwidth=800e9,
                            node_nic_bandwidth=25e9)
    model_cost = CheckpointCostModel(storage)
    rows = []
    for model, world in ((MODEL_7B, 8), (MODEL_30B, 256),
                         (MODEL_123B, 2048)):
        cost = model_cost.cost(model, world)
        rows.append({
            "model": model.name,
            "gpus": world,
            "sync_blocking_s": cost.sync_blocking,
            "async_blocking_s": cost.async_blocking,
            "reduction": cost.reduction,
            "sync_overhead_30min": cost.overhead_fraction(1800.0, False),
            "async_overhead_30min": cost.overhead_fraction(1800.0, True),
        })
    return rows


def test_checkpoint_blocking_time_model(benchmark, emit):
    rows = run_once(benchmark, _cost_rows)
    emit("checkpoint_model", render_table(
        rows, title="§6.1: checkpoint blocking time, interval=30 min "
        "[paper: 3.6-58.7x reduction from 7B to 123B]"))
    assert rows[-1]["reduction"] > rows[0]["reduction"] > 3.0


def _executable_comparison():
    state = {"weights": np.random.default_rng(0).normal(size=200_000)}
    sync_time = SyncCheckpointer(
        InMemoryStorage(bandwidth=20e6)).save(1, state)
    with AsyncCheckpointer(InMemoryStorage(bandwidth=20e6)) as ckpt:
        async_time = ckpt.save(1, state)
        ckpt.flush()
    return {"sync_blocking_s": sync_time,
            "async_blocking_s": async_time,
            "measured_reduction": sync_time / max(async_time, 1e-9)}


def test_checkpoint_executable(benchmark, emit):
    result = run_once(benchmark, _executable_comparison)
    emit("checkpoint_executable", render_key_values(
        result, title="§6.1: real threaded checkpointers over throttled "
        "storage (1.6 MB state, 20 MB/s persist path)"))
    assert result["measured_reduction"] > 2.0
