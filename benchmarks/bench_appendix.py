"""Appendix experiments: Figs. 17-22 and the A.3 carbon accounting."""

from conftest import run_once

from repro.analysis import figures
from repro.analysis.report import render_cdf_summary, render_key_values

N = 6000


def test_fig17_final_statuses(benchmark, emit):
    result = run_once(benchmark, figures.fig17, N)
    sections = []
    for cluster, data in result.items():
        sections.append(render_key_values(
            data["count_share"], title=f"{cluster} status by count "
            "[paper: ~40% failed, ~7% canceled]"))
        sections.append(render_key_values(
            data["gpu_time_share"], title=f"{cluster} status by GPU time "
            "[paper: canceled > 60%, completed 20-30%, failed ~10%]"))
    emit("fig17", "\n\n".join(sections))
    assert result["kalos"]["gpu_time_share"]["canceled"] > 0.5


def test_fig18_host_memory(benchmark, emit):
    result = run_once(benchmark, figures.fig18)
    emit("fig18", render_key_values(
        {**result["components_gb"],
         "total_used_gb": result["total_used_gb"],
         "idle_gb": result["idle_gb"],
         "checkpoint_buffers_7b": result["checkpoint_buffers_7b"]},
        title="Fig 18: host-memory breakdown (GB) [paper: 123 GB of "
              "1 TB; fs client 45.3, tensorboard 6.5]"))
    assert abs(result["total_used_gb"] - 123.0) < 2.0


def test_fig19_20_profiling_at_1024_gpus(benchmark, emit):
    result = run_once(benchmark, figures.fig19)
    memory = figures.fig20()
    emit("fig19_20", render_key_values(
        {"v2_speedup_1024": result["v2_speedup"],
         "v1_mean_sm": result["v1_3d"]["mean_sm"],
         "v2_mean_sm": result["v2_hierarchical_zero"]["mean_sm"],
         "v1_peak_act_gib": memory["v1_3d"]["peak_activation_gib"],
         "v2_peak_act_gib":
             memory["v2_hierarchical_zero"]["peak_activation_gib"]},
        title="Figs 19/20: 1024-GPU profile [paper: same patterns as "
              "2048 — generalizable]"))
    assert result["v2_speedup"] > 1.0


def test_fig21_gpu_temperature(benchmark, emit):
    result = run_once(benchmark, figures.fig21, N)
    emit("fig21", "\n\n".join([
        render_cdf_summary({"core": result["core_cdf"],
                            "memory": result["memory_cdf"]},
                           title="Fig 21: GPU temperature CDFs",
                           unit="celsius"),
        render_key_values(
            {"memory_hotter": result["memory_hotter"],
             "over_65c_fraction": result["over_65c_fraction"]},
            title="[paper: memory hotter than core; loaded GPUs above "
                  "65C]"),
    ]))
    assert result["memory_hotter"]


def test_fig22_moe_utilization(benchmark, emit):
    result = run_once(benchmark, figures.fig22)
    emit("fig22", render_key_values(
        {"moe_mean_sm": result["moe_mean_sm"],
         "dense_mean_sm": result["dense_mean_sm"]},
        title="Fig 22: Mistral-7B MoE on Seren [paper: much lower SM "
              "utilization than dense — all-to-all over 1 NIC]"))
    assert result["moe_lower"]


def test_a3_carbon_emissions(benchmark, emit):
    result = run_once(benchmark, figures.carbon_a3)
    emit("a3_carbon", render_key_values(
        result, title="A.3: Seren May 2023 [paper: 673 MWh -> "
        "321.7 tCO2e, PUE 1.25, 30.61% carbon-free]"))
    assert abs(result["emissions_tco2e"] - 321.7) < 0.5
