"""Figures 7-9: infrastructure utilization and power."""

from conftest import run_once

from repro.analysis import figures
from repro.analysis.report import render_cdf_summary, render_key_values

N = 6000
SAMPLES = 4000


def test_fig7_infrastructure_utilization(benchmark, emit):
    result = run_once(benchmark, figures.fig7, N, 0, SAMPLES)
    sections = []
    for cluster, data in result.items():
        sections.append(render_cdf_summary(
            {"sm_activity": data["sm_activity_cdf"],
             "tc_activity": data["tc_activity_cdf"],
             "gpu_memory": data["gpu_memory_cdf"],
             "host_memory": data["host_memory_cdf"],
             "cpu_util": data["cpu_utilization_cdf"],
             "ib_send": data["ib_send_cdf"]},
            title=f"Fig 7 ({cluster}) [paper: SM median ~40%, kalos "
                  "50% GPUs > 60GB, NIC idle > 60%]"))
        sections.append(render_key_values(
            {"median_sm_activity": data["median_sm_activity"],
             "gpu_memory_over_75pct": data["gpu_memory_over_75pct"],
             "nic_idle_fraction": data["nic_idle_fraction"]},
            title=f"{cluster} anchors"))
    emit("fig07", "\n\n".join(sections))
    assert result["kalos"]["gpu_memory_over_75pct"] > 0.35


def test_fig8_power_distributions(benchmark, emit):
    result = run_once(benchmark, figures.fig8, N, 0, SAMPLES)
    sections = [render_cdf_summary(
        {cluster: result[cluster]["gpu_power_cdf"]
         for cluster in ("seren", "kalos")},
        title="Fig 8a: GPU power CDF [paper: ~30% idle at 60W, "
              "22.1%/12.5% above 400W TDP]", unit="watts")]
    for cluster in ("seren", "kalos"):
        sections.append(render_key_values(
            {"idle_fraction": result[cluster]["idle_fraction"],
             "over_tdp_fraction": result[cluster]["over_tdp_fraction"]},
            title=f"{cluster} anchors"))
    sections.append(render_key_values(
        {"mean_gpu_server_w":
             result["seren_server"]["mean_gpu_server_w"],
         "cpu_server_w": result["seren_server"]["cpu_server_w"],
         "ratio": result["seren_server"]["gpu_to_cpu_server_ratio"]},
        title="Fig 8b: server power [paper: GPU servers ~5x CPU servers]"))
    emit("fig08", "\n\n".join(sections))
    assert result["seren_server"]["gpu_to_cpu_server_ratio"] > 3.0


def test_fig9_power_breakdown(benchmark, emit):
    result = run_once(benchmark, figures.fig9, N)
    text = "\n\n".join([
        render_key_values(result["watts"],
                          title="Fig 9: average module power (W)"),
        render_key_values(result["shares"],
                          title="shares [paper: GPU ~2/3, CPU 11.2%, "
                                "PSU 9.6%]"),
    ])
    emit("fig09", text)
    assert 0.55 < result["shares"]["gpu"] < 0.75
