"""§6.2 system performance: decoupled evaluation scheduling.

The headline experiment: the 63-dataset round on a 7B model, one node vs
four nodes (paper: 1.3x and 1.8x makespan reduction), plus the scaling
sweep across node counts.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.core.evalsched import CoordinatorConfig, TrialCoordinator
from repro.evaluation.datasets import standard_catalog


def _makespan_sweep(node_counts=(1, 2, 4, 8)):
    catalog = standard_catalog()
    rows = []
    for nodes in node_counts:
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=nodes))
        outcome = coordinator.compare(catalog)
        rows.append({
            "nodes": nodes,
            "gpus": nodes * 8,
            "baseline_makespan_min":
                outcome["baseline"].makespan / 60.0,
            "decoupled_makespan_min":
                outcome["decoupled"].makespan / 60.0,
            "speedup": outcome["speedup"],
            "baseline_gpu_efficiency":
                outcome["baseline"].gpu_efficiency,
            "decoupled_gpu_efficiency":
                outcome["decoupled"].gpu_efficiency,
        })
    return rows


def test_evaluation_makespan(benchmark, emit):
    rows = run_once(benchmark, _makespan_sweep)
    emit("evalsched", render_table(
        rows, title="§6.2: 63-dataset evaluation round, 7B model "
        "[paper: 1.3x on 1 node, 1.8x on 4 nodes]"))
    by_nodes = {row["nodes"]: row for row in rows}
    assert by_nodes[1]["speedup"] > 1.1
    assert by_nodes[4]["speedup"] > by_nodes[1]["speedup"]
