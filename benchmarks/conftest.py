"""Benchmark-harness helpers.

Every benchmark regenerates one paper table/figure, times it via
pytest-benchmark, prints the same rows/series the paper reports, and
persists the rendering under ``benchmarks/reports/`` so the numbers can
be diffed against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def emit(report_dir, capsys):
    """Print a rendered report and persist it as an artifact."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a figure generator with a single timed round.

    Figure generation is seconds-scale; one round keeps the whole
    harness fast while still recording wall time.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
