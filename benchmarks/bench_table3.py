"""Table 3: the failure-statistics table, regenerated end to end.

The failure injector samples every failure reason with its published
frequency; the rows below recompute each column and carry the paper's
values alongside (``paper_*``) for comparison.
"""

from conftest import run_once

from repro.analysis import tables
from repro.analysis.report import render_key_values, render_table


def test_table3_failure_statistics(benchmark, emit):
    rows = run_once(benchmark, tables.table3, 2.0, 1)
    summary = tables.table3_category_summary(rows)
    text = "\n\n".join([
        render_table(
            rows,
            columns=["category", "reason", "num", "demand_avg",
                     "demand_median", "ttf_avg_min", "ttf_median_min",
                     "gpu_time_pct", "restart_avg_min",
                     "paper_demand_avg", "paper_ttf_avg_min",
                     "paper_gpu_time_pct"],
            title="Table 3: failure statistics (sampled at 2x counts)"),
        render_key_values(
            {"infrastructure_count_share":
                 summary["infrastructure"]["num_share"],
             "infrastructure_gpu_time_pct":
                 summary["infrastructure"]["gpu_time_pct"],
             "paper_infrastructure_gpu_time_pct":
                 summary["paper_infrastructure_gpu_time_pct"]},
            title="§5.2 headline [paper: ~11% of failures hold >82% of "
                  "failure GPU time]"),
    ])
    emit("table3", text)
    assert summary["infrastructure"]["gpu_time_pct"] > 60.0
