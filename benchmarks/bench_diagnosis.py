"""§6.1 system performance: failure diagnosis.

Measures end-to-end root-cause accuracy over the full taxonomy, the log
compression ratio, and the share of incidents resolved without a human —
the basis of the paper's "~90% less manual intervention".
"""

from conftest import run_once

from repro.analysis.report import render_key_values, render_table
from repro.core.diagnosis import DiagnosisSystem
from repro.failures.logs import REASON_SIGNATURES, LogGenerator
from repro.failures.taxonomy import FailureCategory, taxonomy_by_reason


def _run_diagnosis_campaign(trials_per_reason: int = 2,
                            n_steps: int = 200):
    generator = LogGenerator(seed=42)
    system = DiagnosisSystem()
    taxonomy = taxonomy_by_reason()
    correct = 0
    total = 0
    compression_ratios = []
    category_correct = 0
    auto_recoverable_handled = 0
    for _ in range(trials_per_reason):
        for reason in REASON_SIGNATURES:
            log = generator.failed_log(reason, n_steps=n_steps)
            diagnosis = system.diagnose(log.lines)
            total += 1
            correct += diagnosis.reason == reason
            category_correct += (diagnosis.category
                                 is taxonomy[reason].category)
            compression_ratios.append(
                diagnosis.compression.compression_ratio)
            if (taxonomy[reason].category
                    is not FailureCategory.SCRIPT
                    and diagnosis.recoverable):
                auto_recoverable_handled += 1
    infra_framework = sum(
        trials_per_reason for reason in REASON_SIGNATURES
        if taxonomy[reason].category is not FailureCategory.SCRIPT)
    return {
        "reason_accuracy": correct / total,
        "category_accuracy": category_correct / total,
        "mean_compression_ratio": (sum(compression_ratios)
                                   / len(compression_ratios)),
        "auto_recovery_coverage":
            auto_recoverable_handled / infra_framework,
        "rule_path_fraction": system.stats.via_rules / total,
        "agent_path_fraction": system.stats.via_agent / total,
        "learned_rules": len(system.failure_agent.diagnoser.rules),
    }


def test_diagnosis_accuracy_and_automation(benchmark, emit):
    result = run_once(benchmark, _run_diagnosis_campaign)
    emit("diagnosis", render_key_values(
        result, title="§6.1: failure diagnosis over the full Table 3 "
        "taxonomy [paper: ~90% less manual intervention]"))
    assert result["reason_accuracy"] > 0.9
    assert result["auto_recovery_coverage"] > 0.9


def _compression_scaling():
    generator = LogGenerator(seed=7)
    system = DiagnosisSystem()
    rows = []
    for steps in (500, 2000, 8000):
        log = generator.failed_log("CUDAError", n_steps=steps)
        diagnosis = system.diagnose(log.lines)
        rows.append({"log_lines": len(log.lines),
                     "log_bytes": log.size_bytes,
                     "compression_ratio":
                         diagnosis.compression.compression_ratio,
                     "diagnosed": diagnosis.reason})
    return rows


def test_log_compression_scaling(benchmark, emit):
    rows = run_once(benchmark, _compression_scaling)
    emit("diagnosis_compression", render_table(
        rows, title="§6.1: real-time log compression "
        "[paper: hundreds of MB shrink to the error lines]"))
    assert rows[-1]["compression_ratio"] > 100
