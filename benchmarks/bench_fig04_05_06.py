"""Figures 4-6: workload categories, demand boxplots, queueing delays.

Populations are full-trace scale (100K jobs — the paper's Kalos trace
spans ~248K jobs over six months); the engine/scheduler fast path keeps
the whole file minutes-scale.  See docs/PERF.md.
"""

from conftest import run_once

from repro.analysis import figures
from repro.analysis.report import (render_cdf_summary, render_key_values,
                                   render_table)

N = 100_000


def test_fig4_workload_mix(benchmark, emit):
    result = run_once(benchmark, figures.fig4, N)
    sections = []
    for cluster, data in result.items():
        sections.append(render_key_values(
            data["count_share"], title=f"{cluster} job-count share "
            "[paper kalos: eval 92.9%, pretrain 3.2%]"))
        sections.append(render_key_values(
            data["gpu_time_share"], title=f"{cluster} GPU-time share "
            "[paper: pretrain 69.5% (seren) / 94.0% (kalos)]"))
    emit("fig04", "\n\n".join(sections))
    assert result["kalos"]["gpu_time_share"]["pretrain"] > 0.9


def test_fig5_demand_boxplots(benchmark, emit):
    result = run_once(benchmark, figures.fig5, N)
    rows = []
    for cluster, boxes in result.items():
        for job_type, stats in boxes.items():
            rows.append({"cluster": cluster, "type": job_type,
                         "q1": stats.q1, "median": stats.median,
                         "q3": stats.q3,
                         "whisker_low": stats.whisker_low,
                         "whisker_high": stats.whisker_high})
    emit("fig05", render_table(
        rows, title="Fig 5: GPU-demand boxplots "
        "[paper: eval < 4 GPUs, pretrain > 100]"))
    kalos = result["kalos"]
    assert kalos["pretrain"].median > kalos["evaluation"].median


def test_fig6_queueing_delays(benchmark, emit):
    result = run_once(benchmark, figures.fig6, N)
    sections = []
    for cluster, data in result.items():
        sections.append(render_key_values(
            data["median_queueing_delay_s"],
            title=f"{cluster} median queueing delay (s) "
            "[paper: evaluation longest, pretraining ~0]"))
        sections.append(render_cdf_summary(
            data["queueing_cdf"],
            title=f"{cluster} queueing-delay CDF", unit="seconds"))
    emit("fig06", "\n\n".join(sections))
    for cluster in result.values():
        delays = cluster["median_queueing_delay_s"]
        assert delays["evaluation"] == max(delays.values())


def test_queueing_contrast_with_prior_clusters(benchmark, emit):
    result = run_once(benchmark, figures.queueing_contrast, 2500)
    emit("queueing_contrast", render_key_values(
        result, title="§3.2 contrast: prior DL clusters (FIFO: big jobs "
        "wait) vs Acme (reservation: tiny eval jobs wait longest)"))
    assert result["philly_large_jobs_wait_longer"]
    assert result["acme_smallest_jobs_wait_longest"]
