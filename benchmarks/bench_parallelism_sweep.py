"""Parallelization-strategy sweep for the 123B model.

The paper's §1 motivation — "intricate parallelization strategies" — in
numbers: step time, memory fit, and MFU across tensor/pipeline/ZeRO
configurations at 2048 GPUs.  The paper's two production strategies
(3D pp=4/tp=8 and hierarchical ZeRO-64) should rank among the viable
configurations, with V2 the fastest that fits.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.training.memory import MemoryModel
from repro.training.model import MODEL_123B
from repro.training.parallelism import ParallelismPlan
from repro.training.step import StepTimeModel

WORLD = 2048


def _plan(tp: int, pp: int, shard: int, micro_batches: int,
          recompute: bool) -> ParallelismPlan:
    return ParallelismPlan(
        name=f"tp{tp}-pp{pp}-z{shard}",
        world_size=WORLD,
        tensor_parallel=tp,
        pipeline_parallel=pp,
        micro_batches=micro_batches,
        zero_shard_group=shard,
        recompute=recompute,
    )


def _sweep_rows():
    candidates = [
        _plan(8, 4, 1, 32, False),     # InternEvo V1 (the paper's 3D)
        _plan(8, 8, 1, 64, False),
        _plan(4, 4, 1, 16, False),
        _plan(8, 1, 1, 4, False),
        _plan(1, 8, 1, 8, True),
        _plan(1, 1, 64, 1, True),      # InternEvo V2 (hierarchical ZeRO)
        _plan(1, 1, 256, 1, True),
        _plan(1, 1, 2048, 1, True),    # classic global ZeRO-3
    ]
    rows = []
    for plan in candidates:
        step = StepTimeModel(MODEL_123B, plan)
        memory = MemoryModel(MODEL_123B, plan)
        tokens = plan.global_batch_size * MODEL_123B.seq_len
        rows.append({
            "plan": plan.name,
            "global_batch_tokens_M": tokens / 1e6,
            "step_s": step.step_time(),
            "us_per_token": 1e6 * step.step_time() / tokens,
            "mfu": step.model_flops_utilization(),
            "peak_mem_gib": memory.peak_total_bytes(0) / 2 ** 30,
            "fits_80gb": memory.fits(),
        })
    rows.sort(key=lambda row: row["us_per_token"])
    return rows


def test_parallelism_sweep(benchmark, emit):
    rows = run_once(benchmark, _sweep_rows)
    emit("parallelism_sweep", render_table(
        rows, title="123B over 2048 GPUs: parallelization sweep "
        "[paper: hierarchical ZeRO-64 beats 3D pp=4/tp=8 by ~16%]"))
    viable = [row for row in rows if row["fits_80gb"]]
    assert viable, "no configuration fits"
    # The paper's V2 choice is the fastest viable configuration here.
    assert viable[0]["plan"] == "tp1-pp1-z64"
    by_plan = {row["plan"]: row for row in rows}
    v1 = by_plan["tp8-pp4-z1"]
    v2 = by_plan["tp1-pp1-z64"]
    assert v1["fits_80gb"] and v2["fits_80gb"]
    assert 1.05 < v1["us_per_token"] / v2["us_per_token"] < 1.35
