"""Figures 10-13: pretraining and evaluation workload profiling."""

from conftest import run_once

from repro.analysis import figures
from repro.analysis.report import render_key_values, render_table


def test_fig10_strategy_sm_utilization(benchmark, emit):
    result = run_once(benchmark, figures.fig10)
    rows = []
    for label in ("v1_3d", "v2_hierarchical_zero"):
        data = result[label]
        rows.append({"strategy": label,
                     "mean_sm": data["mean_sm"],
                     "peak_sm": data["peak_sm"],
                     "idle_fraction": data["idle_fraction"],
                     "step_seconds": data["step_seconds"]})
    text = "\n\n".join([
        render_table(rows, title="Fig 10: 123B over 2048 GPUs "
                     "[paper: V2 higher peak SM, ~16% acceleration]"),
        render_key_values({"v2_speedup": result["v2_speedup"]},
                          title="speedup (paper: ~1.16x)"),
        render_key_values(result["v1_3d"]["breakdown"],
                          title="V1 step breakdown (s)"),
        render_key_values(result["v2_hierarchical_zero"]["breakdown"],
                          title="V2 step breakdown (s)"),
    ])
    emit("fig10", text)
    assert result["v2_speedup"] > 1.05


def test_fig11_memory_snapshots(benchmark, emit):
    result = run_once(benchmark, figures.fig11)
    rows = [{"strategy": label,
             "static_gib": result[label]["static_gib"],
             "peak_activation_gib": result[label]["peak_activation_gib"]}
            for label in ("v1_3d", "v2_hierarchical_zero")]
    emit("fig11", render_table(
        rows, title="Fig 11: per-GPU memory (123B) [paper: 3D "
        "parallelism needs substantially more activation memory]"))
    assert result["v1_activations_higher"]


def test_fig12_pipeline_rank_memory(benchmark, emit):
    result = run_once(benchmark, figures.fig12)
    rows = [{"pipeline_rank": rank,
             "in_flight_microbatches": m,
             "activations_gib": act,
             "total_gib": total}
            for rank, (m, act, total) in enumerate(zip(
                result["in_flight_microbatches"],
                result["per_rank_activation_gib"],
                result["per_rank_total_gib"]))]
    emit("fig12", render_table(
        rows, title="Fig 12: 1F1B per-rank memory "
        "[paper: rank 0 holds the most]"))
    assert result["per_rank_total_gib"][0] > result["per_rank_total_gib"][-1]


def test_fig13_evaluation_stages(benchmark, emit):
    result = run_once(benchmark, figures.fig13)
    text = "\n\n".join([
        render_key_values(result["stage_seconds"],
                          title="Fig 13: HumanEval trial stage "
                                "durations (s)"),
        render_key_values(
            {"total_seconds": result["total_seconds"],
             "load_preprocess_fraction":
                 result["load_preprocess_fraction"],
             "metric_fraction": result["metric_fraction"],
             "gpu_busy_fraction": result["gpu_busy_fraction"]},
            title="anchors [paper: 29.5% load/preproc, 19.0% idle "
                  "metric tail, ~half GPU-busy]"),
    ])
    emit("fig13", text)
    assert abs(result["metric_fraction"] - 0.19) < 0.02
