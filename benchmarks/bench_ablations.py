"""Ablations of the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.analysis.report import render_table
from repro.analysis import figures
from repro.cluster.storage import SharedStorage
from repro.core.checkpoint import CheckpointCostModel
from repro.core.diagnosis import (DiagnosisSystem, LogCompressor,
                                  RuleBasedDiagnoser)
from repro.core.evalsched import (CoordinatorConfig, TrialCoordinator,
                                  lpt_pack, pack_makespan)
from repro.evaluation.datasets import standard_catalog
from repro.failures.logs import REASON_SIGNATURES, LogGenerator
from repro.training.memory import MemoryModel
from repro.training.model import MODEL_123B
from repro.training.parallelism import internevo_v2
from repro.training.pretrain import (PretrainJobConfig, PretrainSimulator,
                                     RecoveryMode)
from repro.training.step import StepTimeModel


def _reservation_sweep():
    rows = []
    for fraction in (0.80, 0.90, 0.96, 0.98):
        result = figures.fig6(n_jobs=2500, reserved_fraction=fraction)
        delays = result["seren"]["median_queueing_delay_s"]
        rows.append({"reserved_fraction": fraction,
                     "eval_median_delay_s":
                         delays.get("evaluation", 0.0),
                     "pretrain_median_delay_s":
                         delays.get("pretrain", 0.0)})
    return rows


def test_ablation_reservation_fraction(benchmark, emit):
    rows = run_once(benchmark, _reservation_sweep)
    emit("ablation_reservation", render_table(
        rows, title="Ablation: quota size vs evaluation queueing delay "
        "(the larger the pretraining reservation, the worse eval waits)"))
    assert rows[-1]["eval_median_delay_s"] >= rows[0][
        "eval_median_delay_s"]


def _checkpoint_interval_sweep():
    rows = []
    for interval_min, asynchronous in ((240, False), (240, True),
                                       (30, False), (30, True),
                                       (5, True)):
        config = PretrainJobConfig(
            name="sweep", step_time=12.0, total_iterations=40_000,
            checkpoint_interval=interval_min * 60.0,
            mtbf=0.8 * 86400.0, recovery=RecoveryMode.AUTOMATIC,
            loss_spike_probability=0.0)
        run = PretrainSimulator(config, seed=21).run(
            deadline=10 * 86400.0)
        storage = SharedStorage(backend_bandwidth=800e9,
                                node_nic_bandwidth=25e9)
        cost = CheckpointCostModel(storage).cost(MODEL_123B, 2048)
        blocking = (cost.async_blocking if asynchronous
                    else cost.sync_blocking)
        ckpt_overhead = blocking / (interval_min * 60.0)
        rows.append({
            "interval_min": interval_min,
            "async": asynchronous,
            "lost_iterations": run.lost_iterations,
            "useful_fraction": run.useful_fraction,
            "ckpt_overhead_pct": 100.0 * ckpt_overhead,
        })
    return rows


def test_ablation_checkpoint_interval(benchmark, emit):
    rows = run_once(benchmark, _checkpoint_interval_sweep)
    emit("ablation_checkpoint", render_table(
        rows, title="Ablation: checkpoint interval x sync/async "
        "(frequent async saves cut rollback loss at negligible cost)"))
    dense_async = [r for r in rows if r["interval_min"] == 5][0]
    sparse = [r for r in rows if r["interval_min"] == 240][0]
    assert dense_async["lost_iterations"] < sparse["lost_iterations"]
    assert dense_async["ckpt_overhead_pct"] < 5.0


def _shard_group_sweep():
    rows = []
    for group in (8, 32, 64, 256, 2048):
        plan = internevo_v2(2048, shard_group=group)
        step = StepTimeModel(MODEL_123B, plan)
        memory = MemoryModel(MODEL_123B, plan)
        rows.append({
            "shard_group": group,
            "step_seconds": step.step_time(),
            "static_gib": memory.static_bytes() / 2 ** 30,
            "fits_80gb": memory.fits(),
        })
    return rows


def test_ablation_zero_shard_group(benchmark, emit):
    rows = run_once(benchmark, _shard_group_sweep)
    emit("ablation_shard_group", render_table(
        rows, title="Ablation: hierarchical-ZeRO shard-group size "
        "(memory/step-time trade-off behind the paper's choice of 64)"))
    by_group = {row["shard_group"]: row for row in rows}
    assert not by_group[8]["fits_80gb"]     # too little sharding
    assert by_group[64]["fits_80gb"]        # the paper's setting


def _diagnosis_paths():
    rows = []
    generator = LogGenerator(seed=77)
    logs = [generator.failed_log(reason, n_steps=120)
            for reason in REASON_SIGNATURES]

    rules_only = RuleBasedDiagnoser()
    hits = 0
    for log in logs:
        errors = LogCompressor().compress(log.lines).error_lines
        if rules_only.diagnose(errors) == log.reason:
            hits += 1
    rows.append({"pipeline": "seed-rules-only",
                 "accuracy": hits / len(logs)})

    system = DiagnosisSystem()
    hits = sum(system.diagnose(log.lines).reason == log.reason
               for log in logs)
    rows.append({"pipeline": "rules+retrieval+agent",
                 "accuracy": hits / len(logs)})
    return rows


def test_ablation_diagnosis_pipeline(benchmark, emit):
    rows = run_once(benchmark, _diagnosis_paths)
    emit("ablation_diagnosis", render_table(
        rows, title="Ablation: rule matching alone vs the full §6.1 "
        "pipeline (the paper's motivation for the LLM stage)"))
    assert rows[1]["accuracy"] > rows[0]["accuracy"]


def _packing_strategies():
    catalog = standard_catalog()
    gpus = 32
    rows = []
    fifo_like = pack_makespan(  # arrival order, no splitting
        lpt_pack(catalog, gpus, prioritize_cpu_metrics=False))
    rows.append({"strategy": "lpt-no-split", "gpu_makespan_min":
                 fifo_like / 60.0})
    coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=4))
    baseline = coordinator.run_baseline(catalog).makespan
    decoupled = coordinator.run_decoupled(catalog).makespan
    rows.append({"strategy": "baseline-per-dataset-trials",
                 "gpu_makespan_min": baseline / 60.0})
    rows.append({"strategy": "decoupled+elastic",
                 "gpu_makespan_min": decoupled / 60.0})
    return rows


def test_ablation_eval_packing(benchmark, emit):
    rows = run_once(benchmark, _packing_strategies)
    emit("ablation_packing", render_table(
        rows, title="Ablation: evaluation packing strategies (32 GPUs)"))
    assert rows[-1]["gpu_makespan_min"] < rows[1]["gpu_makespan_min"]


def _optimal_interval_rows():
    from repro.failures.reliability import GoodputModel, interval_sweep

    storage2 = SharedStorage(backend_bandwidth=800e9,
                             node_nic_bandwidth=25e9)
    cost = CheckpointCostModel(storage2).cost(MODEL_123B, 2048)
    rows = []
    for label, blocking in (("sync", cost.sync_blocking),
                            ("async", cost.async_blocking)):
        model = GoodputModel(mtbf=0.8 * 86400.0,
                             checkpoint_cost=blocking,
                             restart_cost=600.0)
        optimum = model.optimal_interval()
        sweep = interval_sweep(model, [300.0, 1800.0, 7200.0, optimum])
        rows.append({
            "mode": label,
            "blocking_s": blocking,
            "young_daly_interval_min":
                model.young_daly_interval() / 60.0,
            "optimal_interval_min": optimum / 60.0,
            "goodput_at_30min": sweep[1]["goodput"],
            "goodput_at_optimum": sweep[3]["goodput"],
        })
    return rows


def test_ablation_optimal_checkpoint_interval(benchmark, emit):
    rows = run_once(benchmark, _optimal_interval_rows)
    emit("ablation_optimal_interval", render_table(
        rows, title="Ablation: Young/Daly optimal checkpoint interval "
        "(async checkpointing makes the paper's 30-min interval "
        "near-free)"))
    by_mode = {row["mode"]: row for row in rows}
    assert (by_mode["async"]["optimal_interval_min"]
            < by_mode["sync"]["optimal_interval_min"])
    assert by_mode["async"]["goodput_at_30min"] > 0.95


def _thermal_rows():
    from repro.failures.thermal import scenario_failure_rates

    return scenario_failure_rates()


def test_ablation_thermal_failures(benchmark, emit):
    rows = run_once(benchmark, _thermal_rows)
    emit("ablation_thermal", render_table(
        rows, title="§5.2: temperature-coupled NVLink/ECC failure rates "
        "(the July 2023 heat event and the cooling upgrade)"))
    by_name = {row["scenario"]: row for row in rows}
    assert (by_name["july-2023-heat"]["hazard_multiplier"]
            > by_name["after-cooling-upgrade"]["hazard_multiplier"])
