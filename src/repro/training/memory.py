"""Per-GPU memory footprint model (Figs. 11, 12, 20).

Splits GPU memory into the *static* part (parameters + gradients +
optimizer states, sharded by the parallelism plan) and the *dynamic* part
(activations that grow during forward passes and shrink during backward).

For a model of Ψ parameters under mixed-precision Adam (§4.1):
fp16 params 2Ψ, fp16 grads 2Ψ, fp32 optimizer states 12Ψ.

* 3D parallelism divides params/grads by tp*pp and optimizer states by
  tp*pp*dp (ZeRO-1 over the data-parallel group, as InternEvo V1 does);
* hierarchical ZeRO divides all 16Ψ by the shard-group size (redundant
  copies across groups are the "selective redundancy" of §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.training.model import TransformerConfig
from repro.training.parallelism import ParallelismPlan

GIB = 1024 ** 3


@dataclass(frozen=True)
class MemorySnapshot:
    """One sampled point of per-GPU memory state, in bytes."""

    time: float
    static_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.static_bytes + self.activation_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / GIB


class MemoryModel:
    """Computes static and peak-activation footprints for a plan."""

    def __init__(self, model: TransformerConfig,
                 plan: ParallelismPlan) -> None:
        self.model = model
        self.plan = plan

    # -- static ------------------------------------------------------------

    def static_bytes(self) -> float:
        """Parameters + gradients + optimizer states per GPU."""
        psi = self.model.param_count
        plan = self.plan
        if plan.zero_shard_group > 1:
            return 16.0 * psi / plan.zero_shard_group
        model_parallel = plan.tensor_parallel * plan.pipeline_parallel
        params_and_grads = 4.0 * psi / model_parallel
        optimizer = 12.0 * psi / (model_parallel * plan.data_parallel)
        return params_and_grads + optimizer

    # -- activations ----------------------------------------------------------

    def activation_bytes_per_microbatch(self) -> float:
        """Activations one in-flight micro-batch pins on one GPU."""
        plan = self.plan
        per_layer = self.model.activation_bytes_per_layer(
            plan.micro_batch_size, recompute=plan.recompute)
        layers_here = self.model.layers / plan.pipeline_parallel
        return per_layer * layers_here / plan.tensor_parallel

    def peak_activation_bytes(self, pipeline_rank: int = 0) -> float:
        """Peak dynamic memory on a pipeline rank (1F1B in-flight count)."""
        in_flight = self.plan.in_flight_microbatches(pipeline_rank)
        return self.activation_bytes_per_microbatch() * in_flight

    def peak_total_bytes(self, pipeline_rank: int = 0) -> float:
        """Static + peak-activation bytes on a pipeline rank."""
        return self.static_bytes() + self.peak_activation_bytes(pipeline_rank)

    def per_rank_peaks(self) -> list[float]:
        """Peak total bytes for every pipeline rank (Fig. 12)."""
        return [self.peak_total_bytes(rank)
                for rank in range(self.plan.pipeline_parallel)]

    def fits(self, budget_bytes: float | None = None) -> bool:
        """Whether the peak footprint fits the GPU (default 80 GiB)."""
        budget = budget_bytes or 80 * GIB
        return self.peak_total_bytes(0) <= budget

    # -- time series (Fig. 11 / 20) -------------------------------------------

    def snapshot_timeline(self, steps: int = 2, points_per_step: int = 200,
                          step_time: float = 1.0,
                          pipeline_rank: int = 0) -> list[MemorySnapshot]:
        """Synthesize the sawtooth memory profile over ``steps`` steps.

        Activations ramp up during the forward phase (micro-batches enter
        the pipeline), plateau through steady 1F1B, and drain during the
        final backward passes; static memory is flat.  This mirrors the
        PyTorch memory-snapshot traces of Fig. 11.
        """
        static = self.static_bytes()
        peak = self.peak_activation_bytes(pipeline_rank)
        snapshots = []
        # Warm-up / drain each take roughly the in-flight fraction of a
        # step; the plateau covers the rest.
        plan = self.plan
        in_flight = plan.in_flight_microbatches(pipeline_rank)
        ramp_fraction = min(0.45, in_flight / max(plan.micro_batches, 1))
        for step in range(steps):
            for i in range(points_per_step):
                phase = i / points_per_step
                if phase < ramp_fraction:
                    level = peak * (phase / ramp_fraction)
                elif phase > 1.0 - ramp_fraction:
                    level = peak * ((1.0 - phase) / ramp_fraction)
                else:
                    level = peak
                snapshots.append(MemorySnapshot(
                    time=(step + phase) * step_time,
                    static_bytes=static,
                    activation_bytes=level,
                ))
        return snapshots

    def timeline_arrays(self, **kwargs) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
        """(times, static, activations) arrays for plotting/analysis."""
        snaps = self.snapshot_timeline(**kwargs)
        times = np.array([snap.time for snap in snaps])
        static = np.array([snap.static_bytes for snap in snaps])
        acts = np.array([snap.activation_bytes for snap in snaps])
        return times, static, acts
