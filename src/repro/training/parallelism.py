"""Parallelization strategies: 3D parallelism and hierarchical ZeRO.

Two strategies are profiled in §4.1 (Fig. 10):

* **InternEvo V1** — Megatron-style 3D parallelism.  For the 123B model on
  2048 GPUs the paper uses pipeline parallelism 4 and tensor parallelism 8
  (data parallelism fills the rest: 2048 / (4*8) = 64).
* **InternEvo V2** — hierarchical ZeRO: pure data parallelism with model
  states redundantly sharded inside subgroups of 64 GPUs, plus activation
  recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelismPlan:
    """How a training job maps onto the GPU fleet."""

    name: str
    world_size: int
    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    #: micro-batches in flight per pipeline (1F1B schedule)
    micro_batches: int = 8
    micro_batch_size: int = 1
    #: ZeRO shard-group size; 1 disables sharding, ``world_size``/``dp``
    #: is classic global ZeRO, 64 is the paper's hierarchical setting
    zero_shard_group: int = 1
    recompute: bool = False

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        model_parallel = self.tensor_parallel * self.pipeline_parallel
        if self.world_size % model_parallel != 0:
            raise ValueError(
                f"world_size {self.world_size} not divisible by "
                f"tp*pp={model_parallel}")
        if self.micro_batches < 1:
            raise ValueError("micro_batches must be >= 1")
        if self.zero_shard_group < 1:
            raise ValueError("zero_shard_group must be >= 1")
        if self.data_parallel % self.zero_shard_group != 0:
            raise ValueError(
                f"data parallel degree {self.data_parallel} not divisible "
                f"by shard group {self.zero_shard_group}")

    @property
    def data_parallel(self) -> int:
        return self.world_size // (self.tensor_parallel
                                   * self.pipeline_parallel)

    @property
    def global_batch_size(self) -> int:
        """Sequences per optimizer step."""
        return (self.data_parallel * self.micro_batches
                * self.micro_batch_size)

    @property
    def pipeline_bubble_fraction(self) -> float:
        """Idle fraction of the 1F1B pipeline: (p-1)/(m+p-1)."""
        p = self.pipeline_parallel
        m = self.micro_batches
        return (p - 1) / (m + p - 1)

    def layers_per_stage(self, total_layers: int) -> int:
        """Transformer layers per pipeline stage."""
        if total_layers % self.pipeline_parallel != 0:
            raise ValueError(
                f"{total_layers} layers not divisible by pp="
                f"{self.pipeline_parallel}")
        return total_layers // self.pipeline_parallel

    def in_flight_microbatches(self, pipeline_rank: int) -> int:
        """Micro-batches whose activations rank ``r`` holds under 1F1B.

        Rank 0 warms up the deepest and holds p micro-batches; the last
        rank holds 1.  This is the imbalance behind Fig. 12.
        """
        if not 0 <= pipeline_rank < self.pipeline_parallel:
            raise IndexError("pipeline_rank out of range")
        return min(self.pipeline_parallel - pipeline_rank,
                   self.micro_batches)


def internevo_v1(world_size: int = 2048, micro_batches: int = 32,
                 micro_batch_size: int = 1) -> ParallelismPlan:
    """InternEvo V1: 3D parallelism, pp=4 / tp=8 (§4.1)."""
    return ParallelismPlan(
        name="internevo-v1-3d",
        world_size=world_size,
        tensor_parallel=8,
        pipeline_parallel=4,
        micro_batches=micro_batches,
        micro_batch_size=micro_batch_size,
        zero_shard_group=1,
        recompute=False,
    )


def internevo_v2(world_size: int = 2048, micro_batches: int = 1,
                 micro_batch_size: int = 1,
                 shard_group: int = 64) -> ParallelismPlan:
    """InternEvo V2: hierarchical ZeRO, shard subgroups of 64, recompute."""
    return ParallelismPlan(
        name="internevo-v2-hzero",
        world_size=world_size,
        tensor_parallel=1,
        pipeline_parallel=1,
        micro_batches=micro_batches,
        micro_batch_size=micro_batch_size,
        zero_shard_group=shard_group,
        recompute=True,
    )
