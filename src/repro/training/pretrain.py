"""Long-horizon pretraining simulation with failures (Fig. 14).

Simulates the wall-clock progress of a multi-week pretraining job under
failure injection, checkpoint policies, and a recovery mode:

* ``RecoveryMode.MANUAL`` — the paper's early regime: a developer notices
  the failure and restarts the job.  At night the response is slow (the
  Fig. 14 annotation: manual recovery at night loses hours).
* ``RecoveryMode.AUTOMATIC`` — the §6.1 system: detection + diagnosis +
  restart within minutes.

On every restart the job reverts to the last persisted checkpoint, so the
iterations since then are lost; with graceful termination (added for the
123B run) a cancel-style interruption still saves the current state first.
Loss spikes trigger a rollback to an *earlier* healthy checkpoint plus
data skipping (§6.1 "Fast Fault Detection and Recovery").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from repro.obs.span import Span
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.sim.engine import Engine


class RecoveryMode(Enum):
    """Manual (on-call developer) vs automatic (§6.1) recovery."""
    MANUAL = "manual"
    AUTOMATIC = "automatic"


@dataclass(frozen=True)
class PretrainJobConfig:
    """Parameters of one long pretraining campaign."""

    name: str
    step_time: float                     # seconds per iteration
    total_iterations: int
    checkpoint_interval: float           # seconds between checkpoints
    mtbf: float                          # mean time between failures, s
    recovery: RecoveryMode
    #: probability that a failure is a graceful interruption that still
    #: saves state before dying (the 123B framework feature)
    graceful_save_probability: float = 0.0
    #: probability a failure is a loss spike needing a deeper rollback
    loss_spike_probability: float = 0.08
    #: how many extra checkpoints a loss-spike rollback discards
    loss_spike_rollback_checkpoints: int = 2
    #: fixed overhead to reload data/model state on restart, seconds
    cold_start: float = 10.0 * 60.0

    def __post_init__(self) -> None:
        if self.step_time <= 0 or self.mtbf <= 0:
            raise ValueError("step_time and mtbf must be positive")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")


@dataclass
class Submission:
    """One contiguous run between restarts (a Fig. 14 segment)."""

    start_time: float
    end_time: float
    start_iteration: int
    end_iteration: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def iterations(self) -> int:
        return self.end_iteration - self.start_iteration


@dataclass
class PretrainRun:
    """Result of one simulated campaign."""

    config: PretrainJobConfig
    submissions: list[Submission] = field(default_factory=list)
    failures: int = 0
    loss_spikes: int = 0
    lost_iterations: int = 0
    total_time: float = 0.0

    @property
    def final_iteration(self) -> int:
        return (self.submissions[-1].end_iteration
                if self.submissions else 0)

    @property
    def useful_fraction(self) -> float:
        """Fraction of wall-clock time converted into retained progress."""
        if self.total_time <= 0:
            return 0.0
        useful = self.final_iteration * self.config.step_time
        return useful / self.total_time

    def progress_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(time, iteration) staircase including rollbacks, for plotting."""
        times: list[float] = []
        iterations: list[float] = []
        for sub in self.submissions:
            times.extend([sub.start_time, sub.end_time])
            iterations.extend([sub.start_iteration, sub.end_iteration])
        return np.array(times), np.array(iterations)


def _is_night(time_seconds: float) -> bool:
    """True between 00:00 and 08:00 of the simulated day."""
    hour = (time_seconds % 86400.0) / 3600.0
    return hour < 8.0


class PretrainSimulator:
    """Runs a :class:`PretrainJobConfig` to completion or a deadline."""

    def __init__(self, config: PretrainJobConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)

    def _restart_delay(self, failure_time: float) -> float:
        if self.config.recovery is RecoveryMode.AUTOMATIC:
            # detection + two-round NCCL test + reschedule: minutes
            return float(self.rng.uniform(3.0 * 60.0, 12.0 * 60.0))
        if _is_night(failure_time):
            # nobody is watching: hours until the on-call wakes up
            return float(self.rng.uniform(1.0 * 3600.0, 5.0 * 3600.0))
        return float(self.rng.uniform(10.0 * 60.0, 60.0 * 60.0))

    def run(self, deadline: float | None = None) -> PretrainRun:
        """Simulate the campaign to completion or a deadline."""
        cfg = self.config
        run = PretrainRun(config=cfg)
        now = 0.0
        iteration = 0            # retained progress (checkpointed)
        steps_per_checkpoint = max(
            1, int(round(cfg.checkpoint_interval / cfg.step_time)))
        while iteration < cfg.total_iterations:
            if deadline is not None and now >= deadline:
                break
            segment_start_time = now + cfg.cold_start
            time_to_failure = float(self.rng.exponential(cfg.mtbf))
            remaining = cfg.total_iterations - iteration
            steps_until_failure = int(time_to_failure / cfg.step_time)
            deadline_steps = remaining
            if deadline is not None:
                budget = max(0.0, deadline - segment_start_time)
                deadline_steps = min(remaining, int(budget / cfg.step_time))
            steps_run = min(steps_until_failure, deadline_steps)
            failed = steps_run == steps_until_failure and steps_run < remaining
            hit_deadline = (steps_run == deadline_steps
                            and deadline_steps < remaining and not failed)
            segment_end_time = segment_start_time + steps_run * cfg.step_time
            end_iteration = iteration + steps_run

            if not failed or hit_deadline:
                run.submissions.append(Submission(
                    segment_start_time, segment_end_time,
                    iteration, end_iteration))
                iteration = end_iteration
                now = segment_end_time
                break

            run.failures += 1
            is_spike = self.rng.uniform() < cfg.loss_spike_probability
            graceful = (not is_spike and self.rng.uniform()
                        < cfg.graceful_save_probability)
            if graceful:
                retained = end_iteration
            else:
                checkpoints_done = end_iteration // steps_per_checkpoint
                if is_spike:
                    run.loss_spikes += 1
                    checkpoints_done = max(
                        0, checkpoints_done
                        - cfg.loss_spike_rollback_checkpoints)
                retained = max(checkpoints_done * steps_per_checkpoint, 0)
            run.lost_iterations += max(end_iteration - retained, 0)
            run.submissions.append(Submission(
                segment_start_time, segment_end_time,
                iteration, end_iteration))
            iteration = retained
            now = segment_end_time + self._restart_delay(segment_end_time)
        run.total_time = now
        return run


class PretrainProcess:
    """A live, interruptible pretraining job hosted on a sim ``Engine``.

    :class:`PretrainSimulator` advances a campaign in closed-form segments
    with its own failure clock; this class instead runs *individual steps*
    as engine callbacks so an external fault injector (``repro.chaos``) can
    interrupt the job between steps, roll it back to a checkpoint, and
    restart it — the live failure path of §6.1.

    The process never samples randomness: every checkpoint and step lands
    at a deterministic simulated time, which keeps chaos scenarios
    byte-for-byte reproducible.
    """

    def __init__(self, engine: Engine, name: str, step_time: float,
                 total_iterations: int, steps_per_checkpoint: int,
                 on_checkpoint: Callable[[int], None] | None = None,
                 on_done: Callable[[int], None] | None = None,
                 tracer: TracerLike | None = None) -> None:
        if step_time <= 0:
            raise ValueError("step_time must be positive")
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        if steps_per_checkpoint <= 0:
            raise ValueError("steps_per_checkpoint must be positive")
        self.engine = engine
        self.name = name
        self.step_time = step_time
        self.total_iterations = total_iterations
        self.steps_per_checkpoint = steps_per_checkpoint
        self.on_checkpoint = on_checkpoint
        self.on_done = on_done
        #: the last *completed* iteration
        self.iteration = 0
        self.running = False
        self.restarts = 0
        self.lost_iterations = 0
        #: per-step time multiplier (>= 1.0) while the fabric under the
        #: gang is degraded; 1.0 exactly when healthy, so runs without
        #: network faults keep byte-identical step timestamps
        self._step_factor = 1.0
        #: extra seconds accrued versus nominal step_time (slowdown,
        #: not downtime — the job runs, just slower)
        self.slowdown_seconds = 0.0
        self.checkpoint_steps: list[int] = []
        #: closed (start_time, end_time, start_iter, end_iter) segments
        self.segments: list[Submission] = []
        self.done_at: float | None = None
        self._segment_start: tuple[float, int] | None = None
        self._tick_item = None
        self.tracer = tracer or NULL_TRACER
        self._segment_span: Span | None = None

    @property
    def done(self) -> bool:
        return self.done_at is not None

    @property
    def step_factor(self) -> float:
        return self._step_factor

    def set_step_factor(self, factor: float) -> None:
        """Stretch (or restore) the per-step time by ``factor``.

        The chaos harness sets this to 1 / bandwidth-factor while a
        degraded link sits under the gang — the comm-bound worst case,
        where step time scales inversely with collective bandwidth.
        Takes effect from the *next* scheduled step; the step already
        in flight completes at its original time.
        """
        if factor < 1.0:
            raise ValueError("step factor must be >= 1")
        self._step_factor = factor

    def _step_delay(self) -> float:
        """Seconds until the next step lands; accrues slowdown."""
        delay = self.step_time * self._step_factor
        self.slowdown_seconds += delay - self.step_time
        return delay

    def start(self, delay: float = 0.0) -> None:
        """Begin (or resume) stepping ``delay`` seconds from now."""
        if self.running:
            raise RuntimeError(f"{self.name} is already running")
        if self.done:
            raise RuntimeError(f"{self.name} already finished")
        self.running = True
        start_time = self.engine.now + delay
        self._segment_start = (start_time, self.iteration)
        self._segment_span = self.tracer.begin(
            f"segment:{self.name}", "pretrain", at=start_time,
            start_iteration=self.iteration)
        self._tick_item = self.engine.call_at(
            start_time + self._step_delay(), self._tick)

    def interrupt(self, reason: str = "") -> int:
        """Stop stepping *now* (a fault hit the gang).

        Returns the iteration reached, i.e. the progress at the moment of
        failure; the caller decides which checkpoint to resume from.
        """
        if not self.running:
            raise RuntimeError(f"{self.name} is not running")
        if self._tick_item is not None:
            self.engine.cancel(self._tick_item)
            self._tick_item = None
        self.running = False
        self._close_segment()
        return self.iteration

    def restart_from(self, step: int, delay: float = 0.0) -> None:
        """Roll back to checkpoint ``step`` and resume after ``delay``.

        ``step`` must not exceed the current iteration — recovery can
        never move the restored state *forward* past the failure point.
        """
        if self.running:
            raise RuntimeError(f"{self.name} must be interrupted first")
        if step > self.iteration:
            raise ValueError(
                f"restart step {step} is ahead of progress "
                f"{self.iteration}")
        if step < 0:
            raise ValueError("restart step must be non-negative")
        self.lost_iterations += self.iteration - step
        self.iteration = step
        self.restarts += 1
        self.start(delay)

    def _tick(self) -> None:
        self.iteration += 1
        if self.iteration % self.steps_per_checkpoint == 0:
            self.checkpoint_steps.append(self.iteration)
            self.tracer.instant("pretrain.checkpoint", "pretrain",
                                step=self.iteration)
            self.tracer.set_gauge("pretrain.iteration", self.iteration)
            if self.on_checkpoint is not None:
                self.on_checkpoint(self.iteration)
        if self.iteration >= self.total_iterations:
            self.running = False
            self._tick_item = None
            self.done_at = self.engine.now
            self._close_segment()
            self.tracer.instant("pretrain.done", "pretrain",
                                step=self.iteration)
            if self.on_done is not None:
                self.on_done(self.iteration)
            return
        self._tick_item = self.engine.call_after(self._step_delay(),
                                                 self._tick)

    def _close_segment(self) -> None:
        if self._segment_start is None:
            return
        start_time, start_iter = self._segment_start
        self.segments.append(Submission(
            start_time, self.engine.now, start_iter, self.iteration))
        self._segment_start = None
        if self._segment_span is not None:
            self.tracer.end(self._segment_span,
                            end_iteration=self.iteration)
            self._segment_span = None


def fig14_campaigns(seed: int = 7) -> dict[str, PretrainRun]:
    """The two Fig. 14 campaigns.

    * 104B (early framework): sparse checkpoints (5 h), purely manual
      recovery, no graceful termination — large rollbacks, unstable slope.
    * 123B (one month later): 30-minute checkpoints, graceful termination,
      faster manual response — near-linear progress.
    """
    week = 7 * 86400.0
    runs = {}
    cfg_104b = PretrainJobConfig(
        name="104B",
        step_time=12.0,
        total_iterations=80_000,
        checkpoint_interval=5.0 * 3600.0,
        mtbf=0.8 * 86400.0,
        recovery=RecoveryMode.MANUAL,
        graceful_save_probability=0.0,
    )
    runs["104B"] = PretrainSimulator(cfg_104b, seed).run(deadline=2 * week)
    cfg_123b = PretrainJobConfig(
        name="123B",
        step_time=14.0,
        total_iterations=80_000,
        checkpoint_interval=0.5 * 3600.0,
        mtbf=0.8 * 86400.0,
        recovery=RecoveryMode.MANUAL,
        graceful_save_probability=0.5,
    )
    runs["123B"] = PretrainSimulator(cfg_123b, seed + 1).run(
        deadline=2 * week)
    return runs
