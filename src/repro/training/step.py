"""Step-time decomposition for distributed pretraining.

Decomposes one optimizer step into compute, tensor-parallel collectives,
pipeline bubbles/point-to-point, data-parallel (or ZeRO) collectives, and
the optimizer update.  The arithmetic follows the standard Megatron/ZeRO
communication-volume accounting; two strategy-dependent efficiency
constants are calibrated to the paper's observations:

* ``compute_efficiency`` — achieved fraction of peak tensor-core FLOPs
  while kernels run.  Tensor parallelism fragments GEMMs eight ways and
  interleaves them with blocking collectives, so V1 achieves a lower
  kernel efficiency than V2's full-layer GEMMs.
* ``overlap`` — fraction of DP/ZeRO communication hidden behind compute.
  InternEvo V2's "fine-grained communication overlap" (§2.2) hides almost
  all of its (much larger) ZeRO gather traffic.

With the defaults, V2 beats V1 by ~16% on the 123B/2048-GPU configuration,
with higher SM utilization — the Fig. 10 result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import A100_SXM_80GB, GpuSpec
from repro.cluster.network import allreduce_time
from repro.training.model import TransformerConfig
from repro.training.parallelism import ParallelismPlan

#: effective ring-allreduce bus bandwidth inside a node (NVLink), bytes/s
DEFAULT_INTRA_NODE_BANDWIDTH = 150e9
#: per-GPU share of the node's application NICs (Kalos: 4x200Gb/s over
#: 8 GPUs = 12.5 GB/s), bytes/s
DEFAULT_INTER_NODE_BANDWIDTH = 12.5e9


def hierarchy_bandwidth_factor(nodes_in_group: int) -> float:
    """Effective-bandwidth derating as a collective spans switch tiers.

    Collectives confined to one leaf switch (<= 8 nodes) see full NIC
    bandwidth; pod-scale groups (<= 64 nodes) cross the spine once; and
    fabric-wide groups hit core oversubscription.  This is exactly why
    InternEvo's hierarchical ZeRO limits parameter sharding to 64-GPU
    (8-node) subgroups instead of sharding globally (§4.1).
    """
    if nodes_in_group <= 1:
        return 1.0
    if nodes_in_group <= 8:
        return 1.0
    if nodes_in_group <= 64:
        return 0.75
    return 0.55


@dataclass(frozen=True)
class StepBreakdown:
    """Seconds spent in each phase of one optimizer step."""

    compute: float
    tensor_parallel_comm: float
    pipeline_p2p: float
    pipeline_bubble: float
    exposed_dp_comm: float
    optimizer: float

    @property
    def total(self) -> float:
        return (self.compute + self.tensor_parallel_comm
                + self.pipeline_p2p + self.pipeline_bubble
                + self.exposed_dp_comm + self.optimizer)

    @property
    def busy_fraction(self) -> float:
        """Fraction of the step the SMs are doing useful compute."""
        return self.compute / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Phase durations as a plain dict."""
        return {
            "compute": self.compute,
            "tensor_parallel_comm": self.tensor_parallel_comm,
            "pipeline_p2p": self.pipeline_p2p,
            "pipeline_bubble": self.pipeline_bubble,
            "exposed_dp_comm": self.exposed_dp_comm,
            "optimizer": self.optimizer,
        }


class StepTimeModel:
    """Computes a :class:`StepBreakdown` for a (model, plan) pair."""

    def __init__(self, model: TransformerConfig, plan: ParallelismPlan,
                 gpu: GpuSpec = A100_SXM_80GB,
                 intra_node_bandwidth: float = DEFAULT_INTRA_NODE_BANDWIDTH,
                 inter_node_bandwidth: float = DEFAULT_INTER_NODE_BANDWIDTH,
                 compute_efficiency: float | None = None,
                 overlap: float | None = None,
                 fabric=None) -> None:
        """``fabric`` (a :class:`repro.cluster.fattree.FatTree`) replaces
        the built-in tier constants with topology-derived bandwidth
        factors when provided."""
        self.model = model
        self.plan = plan
        self.gpu = gpu
        self.intra_node_bandwidth = intra_node_bandwidth
        self.inter_node_bandwidth = inter_node_bandwidth
        if compute_efficiency is None:
            compute_efficiency = 0.45 if plan.tensor_parallel > 1 else 0.65
        if overlap is None:
            overlap = 0.70 if plan.zero_shard_group == 1 else 0.92
        if not 0 < compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0 <= overlap <= 1:
            raise ValueError("overlap must be in [0, 1]")
        self.compute_efficiency = compute_efficiency
        self.overlap = overlap
        self.fabric = fabric

    # -- components ---------------------------------------------------------

    def tokens_per_gpu(self) -> float:
        """Tokens flowing through each pipeline replica per step."""
        sequences = self.plan.micro_batches * self.plan.micro_batch_size
        return sequences * self.model.seq_len

    def compute_time(self) -> float:
        """Pure kernel time for forward+backward on this GPU's share.

        Tensor/pipeline parallelism split the per-token FLOPs across
        tp*pp GPUs, so per-GPU FLOPs = tokens * flops_per_token / (tp*pp).
        """
        flops_per_token = self.model.flops_per_token(self.plan.recompute)
        model_parallel = (self.plan.tensor_parallel
                          * self.plan.pipeline_parallel)
        flops = self.tokens_per_gpu() * flops_per_token / model_parallel
        return flops / (self.gpu.peak_flops * self.compute_efficiency)

    def tensor_parallel_time(self) -> float:
        """Blocking TP all-reduces: 4 per layer per micro-batch (fwd+bwd)."""
        plan = self.plan
        if plan.tensor_parallel <= 1:
            return 0.0
        activation_bytes = (2.0 * self.model.seq_len
                            * plan.micro_batch_size * self.model.hidden)
        per_allreduce = allreduce_time(activation_bytes,
                                       plan.tensor_parallel,
                                       self.intra_node_bandwidth)
        layers_here = self.model.layers / plan.pipeline_parallel
        count = 4 * layers_here * plan.micro_batches
        return per_allreduce * count

    def pipeline_p2p_time(self) -> float:
        """Inter-stage activation sends (cross-node, exposed)."""
        plan = self.plan
        if plan.pipeline_parallel <= 1:
            return 0.0
        boundary_bytes = (2.0 * self.model.seq_len
                          * plan.micro_batch_size * self.model.hidden)
        sends = 2 * plan.micro_batches  # forward + backward per boundary
        return sends * boundary_bytes / self.inter_node_bandwidth

    def pipeline_bubble_time(self) -> float:
        """Idle time implied by the 1F1B bubble fraction."""
        busy = (self.compute_time() + self.tensor_parallel_time()
                + self.pipeline_p2p_time())
        fraction = self.plan.pipeline_bubble_fraction
        if fraction >= 1.0:
            raise ValueError("degenerate pipeline (no micro-batches)")
        return busy * fraction / (1.0 - fraction)

    def dp_comm_time(self) -> float:
        """Raw (pre-overlap) data-parallel / ZeRO collective time."""
        plan = self.plan
        psi = self.model.param_count
        model_parallel = plan.tensor_parallel * plan.pipeline_parallel
        if plan.zero_shard_group > 1:
            # ZeRO-3-style: all-gather fp16 params for fwd and again for
            # bwd, plus reduce-scatter fp16 grads — within the shard group.
            group = plan.zero_shard_group
            nodes_in_group = max(1, group // 8)
            bandwidth = (self.inter_node_bandwidth
                         * self._tier_factor(nodes_in_group))
            volume = 3.0 * 2.0 * psi * (group - 1) / group
            return volume / bandwidth
        if plan.data_parallel <= 1:
            return 0.0
        # ZeRO-1 over DP: reduce-scatter grads + all-gather updated params
        # of this GPU's model-parallel shard.
        dp_nodes = max(1, plan.data_parallel
                       * plan.tensor_parallel * plan.pipeline_parallel
                       // 8)
        bandwidth = (self.inter_node_bandwidth
                     * self._tier_factor(dp_nodes))
        shard_bytes = 2.0 * psi / model_parallel
        return allreduce_time(2.0 * shard_bytes, plan.data_parallel,
                              bandwidth)

    def exposed_dp_comm_time(self) -> float:
        """DP/ZeRO communication left after overlap."""
        return self.dp_comm_time() * (1.0 - self.overlap)

    def _tier_factor(self, nodes_in_group: int) -> float:
        """Bandwidth derating for a collective spanning that many nodes:
        topology-derived when a fabric is attached, tier constants
        otherwise."""
        if self.fabric is not None:
            group = self.fabric.contiguous_group(0, min(
                nodes_in_group, self.fabric.config.nodes))
            return self.fabric.group_bandwidth_factor(group)
        return hierarchy_bandwidth_factor(nodes_in_group)

    def optimizer_time(self) -> float:
        """Adam update over this GPU's optimizer shard (memory-bound)."""
        psi = self.model.param_count
        plan = self.plan
        if plan.zero_shard_group > 1:
            shard = psi / plan.zero_shard_group
        else:
            shard = psi / (plan.tensor_parallel * plan.pipeline_parallel
                           * plan.data_parallel)
        # ~16 bytes of state read+written per element at ~1.5 TB/s HBM.
        return 2.0 * 16.0 * shard / 1.5e12

    # -- assembly -------------------------------------------------------------

    def breakdown(self) -> StepBreakdown:
        """Full per-phase decomposition of one step."""
        return StepBreakdown(
            compute=self.compute_time(),
            tensor_parallel_comm=self.tensor_parallel_time(),
            pipeline_p2p=self.pipeline_p2p_time(),
            pipeline_bubble=self.pipeline_bubble_time(),
            exposed_dp_comm=self.exposed_dp_comm_time(),
            optimizer=self.optimizer_time(),
        )

    def step_time(self) -> float:
        """Total seconds per optimizer step."""
        return self.breakdown().total

    def tokens_per_second_per_gpu(self) -> float:
        """Throughput implied by the step time."""
        return self.tokens_per_gpu() / self.step_time()

    def model_flops_utilization(self) -> float:
        """MFU: useful model FLOPs (6N, never counting recompute) / peak."""
        model_parallel = (self.plan.tensor_parallel
                          * self.plan.pipeline_parallel)
        useful = (self.tokens_per_gpu() * 6.0 * self.model.param_count
                  / model_parallel)
        return useful / (self.step_time() * self.gpu.peak_flops)
