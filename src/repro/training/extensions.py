"""Future-work training modes (§7, "Continuous System Enhancement").

The paper closes by naming the workloads InternEvo is being extended
for: **long-sequence pretraining**, **MoE pretraining** (see
``repro.training.moe``), and **efficient RLHF**.  This module models the
first and last, so their resource behaviour can be studied with the
same machinery as the dense-pretraining figures:

* ``LongSequencePlan`` — context parallelism: activation memory grows
  linearly and attention FLOPs quadratically with sequence length, so
  long contexts need sequence sharding to fit (the motivation behind
  InternEvo's long-sequence paper the authors cite [25]).
* ``RlhfStageModel`` — PPO-style RLHF holds four models (actor, critic,
  reward, reference) and alternates a generation phase (low SM
  activity, memory-bound decoding) with a training phase (high SM) —
  structurally similar to the evaluation workload's utilization problem
  (Fig. 13), which is why the paper groups them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.training.model import TransformerConfig
from repro.training.profiler import (UtilizationTimeline,
                                     _segments_to_timeline)

GIB = 1024 ** 3


# -- long-sequence pretraining ------------------------------------------------


@dataclass(frozen=True)
class LongSequencePlan:
    """Context parallelism for sequences beyond one GPU's memory."""

    base_model: TransformerConfig
    seq_len: int
    #: GPUs a single sequence's activations are sharded across
    context_parallel: int = 1
    recompute: bool = True

    def __post_init__(self) -> None:
        if self.seq_len <= 0 or self.context_parallel <= 0:
            raise ValueError("seq_len and context_parallel must be "
                             "positive")
        if self.seq_len % self.context_parallel != 0:
            raise ValueError("seq_len must divide across the context-"
                             "parallel group")

    @property
    def model(self) -> TransformerConfig:
        """The base architecture at this sequence length."""
        return replace(self.base_model, seq_len=self.seq_len)

    def activation_bytes_per_gpu(self) -> float:
        """Per-GPU activation memory for one sequence (all layers)."""
        per_layer = self.model.activation_bytes_per_layer(
            1, recompute=self.recompute)
        return per_layer * self.model.layers / self.context_parallel

    def attention_flops_per_sequence(self) -> float:
        """Quadratic attention term: 12 * L * h * s^2 (fwd+bwd)."""
        model = self.model
        return 12.0 * model.layers * model.hidden * self.seq_len ** 2

    def linear_flops_per_sequence(self) -> float:
        """The parameter-proportional term (6N per token)."""
        return self.model.flops_per_sequence(recompute=self.recompute)

    def attention_flops_fraction(self) -> float:
        """Share of total FLOPs spent in attention — grows with s."""
        attention = self.attention_flops_per_sequence()
        return attention / (attention
                            + self.linear_flops_per_sequence())

    def fits(self, budget_bytes: float = 70 * GIB) -> bool:
        """Whether one sequence's activations fit per GPU (activations
        only — the static states are handled by ZeRO as usual)."""
        return self.activation_bytes_per_gpu() <= budget_bytes

    def min_context_parallel(self, budget_bytes: float = 70 * GIB) -> int:
        """Smallest power-of-two context-parallel degree that fits."""
        degree = 1
        while degree <= self.seq_len:
            candidate = replace(self, context_parallel=degree)
            if (self.seq_len % degree == 0) and candidate.fits(
                    budget_bytes):
                return degree
            degree *= 2
        raise ValueError("sequence cannot fit at any sharding degree")


# -- RLHF --------------------------------------------------------------------


@dataclass(frozen=True)
class RlhfConfig:
    """PPO-style RLHF over a policy model."""

    actor: TransformerConfig
    #: critic/reward models are often smaller; scale relative to actor
    critic_scale: float = 1.0
    world_size: int = 256
    #: generated tokens per prompt during rollout
    rollout_tokens: int = 512
    prompts_per_batch: int = 512
    #: decode throughput per GPU, tokens/s — memory-bound generation,
    #: further squeezed by the co-resident critic/reward/reference
    #: models competing for HBM.  None derives it from model size
    #: (decoding streams weights from HBM, so rate scales ~1/params).
    decode_tokens_per_second: float | None = None
    #: training-phase efficiency (PPO update, compute-bound)
    train_efficiency: float = 0.45

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.critic_scale <= 0:
            raise ValueError("critic_scale must be positive")


class RlhfStageModel:
    """Memory and phase-time accounting for one PPO iteration."""

    def __init__(self, config: RlhfConfig) -> None:
        self.config = config

    # -- memory ------------------------------------------------------------

    def resident_model_bytes(self) -> float:
        """All four models' states, before sharding.

        Actor trains (16Ψ); critic trains (16Ψ * scale); reward and
        reference only infer (2Ψ each, fp16).
        """
        cfg = self.config
        actor = 16.0 * cfg.actor.param_count
        critic = 16.0 * cfg.actor.param_count * cfg.critic_scale
        frozen = 2.0 * 2.0 * cfg.actor.param_count
        return actor + critic + frozen

    def memory_multiple_of_pretraining(self) -> float:
        """How much more state RLHF holds than plain pretraining."""
        return self.resident_model_bytes() / (
            16.0 * self.config.actor.param_count)

    # -- phases ---------------------------------------------------------------

    def generation_seconds(self) -> float:
        """Rollout phase: autoregressive decoding (low SM activity).

        ``decode_tokens_per_second`` is the per-GPU aggregate across its
        concurrent decoding streams, so phase time is simply the GPU's
        token share over that rate.
        """
        cfg = self.config
        total_tokens = cfg.prompts_per_batch * cfg.rollout_tokens
        per_gpu = total_tokens / cfg.world_size
        return per_gpu / self.decode_rate()

    def decode_rate(self) -> float:
        """Per-GPU decode throughput, tokens/s (explicit or derived)."""
        cfg = self.config
        if cfg.decode_tokens_per_second is not None:
            return cfg.decode_tokens_per_second
        reference_params = 6.9e9  # 600 tok/s calibrated at 7B
        return 600.0 * reference_params / cfg.actor.param_count

    def training_seconds(self) -> float:
        """PPO update on the rollout batch (actor + critic)."""
        cfg = self.config
        tokens = cfg.prompts_per_batch * cfg.rollout_tokens
        flops = tokens * (cfg.actor.flops_per_token()
                          * (1.0 + cfg.critic_scale))
        per_gpu = flops / cfg.world_size
        return per_gpu / (312e12 * cfg.train_efficiency)

    def iteration_seconds(self) -> float:
        """One PPO iteration: rollout + update."""
        return self.generation_seconds() + self.training_seconds()

    def generation_fraction(self) -> float:
        """Share of the iteration spent decoding — the §7 efficiency
        problem: it dominates, at low SM activity."""
        return self.generation_seconds() / self.iteration_seconds()

    def utilization_timeline(self, iterations: int = 2,
                             resolution: float = 0.05
                             ) -> UtilizationTimeline:
        """DCGM-style SM trace: long low plateau, short high burst."""
        segments = [
            (self.generation_seconds(), 0.18, 0.05),   # decoding
            (self.training_seconds(), 0.88, 0.70),     # PPO update
        ]
        return _segments_to_timeline(segments * iterations, resolution,
                                     rng=None)
