"""Memoized analytic step times for full-trace replays.

:class:`~repro.training.step.StepTimeModel` is pure arithmetic over
frozen inputs — the same (model, plan, gpu, bandwidths) configuration
always yields the same :class:`~repro.training.step.StepBreakdown`.  A
full-trace replay with fault injection re-evaluates a handful of such
configurations millions of times, varying only the *health factor*
(the fraction of nominal inter-node bandwidth the fabric currently
delivers), which itself is piecewise-constant over the fault windows.

:class:`StepTimeCache` exploits both: breakdowns are memoized by the
full configuration tuple plus the health factor.  Because every key
component is hashable and the model is deterministic, a cache hit is
*exactly* the breakdown the model would recompute — the cache cannot
perturb results, only skip arithmetic.

Configurations with a live ``fabric`` attached are computed but never
cached: the fabric is mutable (its health overlay accrues windows), so
identity-keyed memoization could serve stale breakdowns.
"""

from __future__ import annotations

from repro.cluster.machine import A100_SXM_80GB, GpuSpec
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.training.model import TransformerConfig
from repro.training.parallelism import ParallelismPlan
from repro.training.step import (
    DEFAULT_INTER_NODE_BANDWIDTH,
    DEFAULT_INTRA_NODE_BANDWIDTH,
    StepBreakdown,
    StepTimeModel,
)

#: bounded cache size; cleared wholesale when exceeded (a replay uses a
#: few dozen live configurations, so eviction churn is not a concern)
_CACHE_MAX = 4096


class StepTimeCache:
    """Memoizes :meth:`StepTimeModel.breakdown` by configuration.

    ``health_factor`` scales the inter-node bandwidth (1.0 = nominal,
    0.5 = a degraded fabric delivering half rate), matching how the
    link-health overlay derates collectives that cross faulted links.

    Hits and misses are counted on the tracer (``step_cache.hits`` /
    ``step_cache.misses``) so a traced run shows whether the cache is
    earning its keep.
    """

    def __init__(self, tracer: TracerLike | None = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cache: dict[tuple, StepBreakdown] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached breakdowns (counters are kept)."""
        self._cache.clear()

    def breakdown(self, model: TransformerConfig, plan: ParallelismPlan,
                  gpu: GpuSpec = A100_SXM_80GB,
                  intra_node_bandwidth: float =
                  DEFAULT_INTRA_NODE_BANDWIDTH,
                  inter_node_bandwidth: float =
                  DEFAULT_INTER_NODE_BANDWIDTH,
                  compute_efficiency: float | None = None,
                  overlap: float | None = None,
                  health_factor: float = 1.0,
                  fabric=None) -> StepBreakdown:
        """The breakdown for this configuration, memoized.

        Parameters mirror :class:`StepTimeModel`; ``health_factor``
        additionally scales ``inter_node_bandwidth``.
        """
        if not 0.0 < health_factor <= 1.0:
            raise ValueError("health_factor must be in (0, 1]")
        effective_inter = inter_node_bandwidth * health_factor
        if fabric is not None:
            return StepTimeModel(
                model, plan, gpu,
                intra_node_bandwidth=intra_node_bandwidth,
                inter_node_bandwidth=effective_inter,
                compute_efficiency=compute_efficiency,
                overlap=overlap, fabric=fabric).breakdown()
        key = (model, plan, gpu, intra_node_bandwidth,
               inter_node_bandwidth, compute_efficiency, overlap,
               health_factor)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self.tracer.count("step_cache.hits")
            return cached
        self.misses += 1
        self.tracer.count("step_cache.misses")
        result = StepTimeModel(
            model, plan, gpu,
            intra_node_bandwidth=intra_node_bandwidth,
            inter_node_bandwidth=effective_inter,
            compute_efficiency=compute_efficiency,
            overlap=overlap).breakdown()
        if len(self._cache) >= _CACHE_MAX:
            self._cache.clear()
        self._cache[key] = result
        return result

    def step_time(self, model: TransformerConfig, plan: ParallelismPlan,
                  **kwargs) -> float:
        """Total seconds per step for this configuration, memoized."""
        return self.breakdown(model, plan, **kwargs).total


#: shared module-level cache for callers that don't manage their own
DEFAULT_STEP_CACHE = StepTimeCache()
