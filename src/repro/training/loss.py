"""Training-loss curve simulation with spikes (§5.3, §6.1).

A pretraining loss follows a power-law descent; occasionally it *spikes*
— jumping well above trend — and either recovers on its own or stays
elevated, in which case the framework must roll back to an earlier
healthy checkpoint and skip the offending data batches (§6.1).

``LossSimulator`` produces such curves; ``train_with_spike_recovery``
closes the loop with :class:`~repro.core.recovery.LossSpikeDetector` and
a checkpoint catalog, reproducing the §5.3 restart-on-spike behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.recovery.detector import LossSpikeDetector


@dataclass(frozen=True)
class SpikeSpec:
    """One injected loss spike."""

    step: int
    #: multiplicative jump over the healthy trend
    magnitude: float = 3.0
    #: whether the loss decays back to trend on its own
    recovers: bool = False
    #: steps to decay back when it does recover
    recovery_steps: int = 8


@dataclass(frozen=True)
class LossCurveConfig:
    """Power-law descent: L(t) = floor + amplitude * (t + offset)^-alpha."""

    floor: float = 1.7
    amplitude: float = 9.0
    offset: float = 40.0
    alpha: float = 0.35
    noise_sigma: float = 0.01

    def trend(self, step: int | np.ndarray) -> np.ndarray:
        """Noise-free loss at the given step(s)."""
        return self.floor + self.amplitude * np.power(
            np.asarray(step, dtype=float) + self.offset, -self.alpha)


class LossSimulator:
    """Generates loss samples, healthy or spiked."""

    def __init__(self, config: LossCurveConfig | None = None,
                 seed: int = 0) -> None:
        self.config = config or LossCurveConfig()
        self.rng = np.random.default_rng(seed)

    def sample(self, step: int,
               active_spike: SpikeSpec | None = None,
               steps_since_spike: int = 0) -> float:
        """One loss sample, optionally under an active spike."""
        trend = float(self.config.trend(step))
        value = trend + float(self.rng.normal(0.0,
                                              self.config.noise_sigma))
        if active_spike is None:
            return value
        jump = (active_spike.magnitude - 1.0) * trend
        if active_spike.recovers:
            decay = max(0.0, 1.0 - steps_since_spike
                        / active_spike.recovery_steps)
            return value + jump * decay
        return value + jump

    def generate(self, n_steps: int,
                 spikes: list[SpikeSpec] | None = None) -> np.ndarray:
        """A full curve with the given spikes injected."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        spikes = sorted(spikes or [], key=lambda s: s.step)
        curve = np.empty(n_steps)
        active: SpikeSpec | None = None
        since = 0
        spike_index = 0
        for step in range(n_steps):
            if (spike_index < len(spikes)
                    and step == spikes[spike_index].step):
                active = spikes[spike_index]
                since = 0
                spike_index += 1
            curve[step] = self.sample(step, active, since)
            if active is not None:
                since += 1
                if active.recovers and since > active.recovery_steps:
                    active = None
        return curve


@dataclass
class SpikeRecoveryResult:
    """Outcome of a spike-aware training replay."""

    losses: list[float] = field(default_factory=list)
    steps: list[int] = field(default_factory=list)
    rollbacks: list[dict] = field(default_factory=list)
    final_step: int = 0

    @property
    def rollback_count(self) -> int:
        return len(self.rollbacks)


def train_with_spike_recovery(
        total_steps: int,
        spike_steps: list[int],
        checkpoint_interval: int = 200,
        detector: LossSpikeDetector | None = None,
        rollback_checkpoints: int = 2,
        seed: int = 0,
        max_rollbacks: int = 20) -> SpikeRecoveryResult:
    """Run a training loop where non-recovering spikes trigger rollback.

    On a detector event the run reverts ``rollback_checkpoints`` saves
    before the spike and — because the offending data batches are
    skipped (§6.1) — the spike does not reoccur on the retried range.
    """
    simulator = LossSimulator(seed=seed)
    detector = detector or LossSpikeDetector(window=40, patience=6,
                                             relative_floor=0.25)
    result = SpikeRecoveryResult()
    checkpoints = [0]
    pending_spikes = sorted(set(spike_steps))
    skipped: set[int] = set()
    step = 0
    active: SpikeSpec | None = None
    since = 0
    while step < total_steps:
        if step in pending_spikes and step not in skipped:
            active = SpikeSpec(step=step, recovers=False)
            since = 0
        loss = simulator.sample(step, active, since)
        if active is not None:
            since += 1
        result.losses.append(loss)
        result.steps.append(step)
        event = detector.observe(step, loss)
        if event is not None and active is not None:
            if result.rollback_count >= max_rollbacks:
                break
            index = max(len(checkpoints) - rollback_checkpoints, 0)
            target = checkpoints[index]
            result.rollbacks.append({
                "spike_step": active.step,
                "detected_at": step,
                "restart_from": target,
            })
            skipped.add(active.step)  # data batches bypassed on retry
            checkpoints = [c for c in checkpoints if c <= target]
            step = target
            active = None
            detector = LossSpikeDetector(
                window=detector.window, patience=detector.patience,
                relative_floor=detector.relative_floor)
            continue
        step += 1
        if step % checkpoint_interval == 0 and active is None:
            checkpoints.append(step)
    result.final_step = step
    return result
