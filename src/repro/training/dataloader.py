"""Dataloader memory-leak model (Appendix B).

The paper's second troubleshooting lesson: PyTorch dataloaders with
``num_workers > 0`` leak host memory through the fork copy-on-write
mechanism touching large Python lists; after ~27 hours the worker is
OOM-killed (the Table 3 ``DataloaderKilled`` row, whose mean
time-to-failure is ~26 hours).  The fix: ``num_workers = 0`` plus
on-the-fly loading (which Appendix A.2 also credits with a much smaller
dataloader footprint than Megatron-style full-metadata loading).

``DataloaderModel`` reproduces the leak trajectory and the fix.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024 ** 3


@dataclass(frozen=True)
class DataloaderConfig:
    """Host-side dataloader configuration for one node."""

    num_workers: int = 4
    #: bytes of dataset index shared via fork (the CoW-touched list —
    #: sample metadata for trillions of tokens)
    index_bytes: int = 20 * GIB
    #: fraction of the index each worker gradually dirties per hour —
    #: refcount updates touch pages even on "read-only" access
    cow_touch_rate_per_hour: float = 0.035
    #: steady footprint of the loader process itself
    base_bytes: int = 2 * GIB
    #: on-the-fly loading (InternEvo) vs full-metadata (Megatron-style)
    on_the_fly: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if not 0.0 <= self.cow_touch_rate_per_hour <= 1.0:
            raise ValueError("touch rate must be a fraction")


class DataloaderModel:
    """Host-memory trajectory of a dataloader over a long run."""

    def __init__(self, config: DataloaderConfig,
                 host_memory_bytes: int = 200 * GIB,
                 other_usage_bytes: int = 123 * GIB) -> None:
        """``host_memory_bytes`` defaults to a per-job cgroup limit, not
        the full node: the OOM killer acts on the container's budget."""
        self.config = config
        self.host_memory_bytes = host_memory_bytes
        self.other_usage_bytes = other_usage_bytes

    def footprint_bytes(self, hours: float) -> float:
        """Dataloader memory after ``hours`` of training."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        cfg = self.config
        base = cfg.base_bytes
        if not cfg.on_the_fly:
            # Megatron-style: the whole dataset metadata is resident.
            base += cfg.index_bytes
        if cfg.num_workers == 0:
            return float(base)
        touched_fraction = min(1.0,
                               cfg.cow_touch_rate_per_hour * hours)
        leaked = cfg.num_workers * cfg.index_bytes * touched_fraction
        return float(base + leaked)

    def hours_until_killed(self, max_hours: float = 10_000.0) -> float:
        """Hours until the node OOMs (``inf`` if it never does)."""
        budget = self.host_memory_bytes - self.other_usage_bytes
        if self.footprint_bytes(0.0) >= budget:
            return 0.0
        cfg = self.config
        if cfg.num_workers == 0:
            return float("inf")
        # Solve base + W * I * r * t = budget for t, capped at full touch.
        base = self.footprint_bytes(0.0)
        slope_per_hour = (cfg.num_workers * cfg.index_bytes
                          * cfg.cow_touch_rate_per_hour)
        if slope_per_hour <= 0:
            return float("inf")
        hours = (budget - base) / slope_per_hour
        full_touch_hours = 1.0 / cfg.cow_touch_rate_per_hour
        if hours > full_touch_hours:
            return float("inf")  # leak saturates before OOM
        return min(hours, max_hours)

    def is_fixed_configuration(self) -> bool:
        """The Appendix B mitigation: no fork workers, on-the-fly data."""
        return self.config.num_workers == 0 and self.config.on_the_fly


def paper_leak_example() -> dict:
    """The Appendix B numbers: leaky config dies in ~27 hours; the
    num_workers=0 fix runs indefinitely."""
    leaky = DataloaderModel(DataloaderConfig(num_workers=4))
    fixed = DataloaderModel(DataloaderConfig(num_workers=0))
    return {
        "leaky_hours_until_killed": leaky.hours_until_killed(),
        "fixed_hours_until_killed": fixed.hours_until_killed(),
        "leaky_footprint_at_24h_gib":
            leaky.footprint_bytes(24.0) / GIB,
        "fixed_footprint_gib": fixed.footprint_bytes(24.0) / GIB,
    }
