"""SM-utilization timeline synthesis (Figs. 10, 19, 22).

The paper samples DCGM ``PROF_SM_ACTIVE`` at 1 ms during pretraining.  We
synthesize the equivalent timeline from the step-time breakdown: each phase
of the step contributes a segment with a characteristic SM activity level,
so the rendered trace shows the same signature the paper reports — deep
periodic valleys for 3D parallelism (pipeline bubbles, blocking TP
collectives) versus a flatter, higher trace for hierarchical ZeRO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.training.model import TransformerConfig
from repro.training.parallelism import ParallelismPlan
from repro.training.step import StepTimeModel

#: characteristic SM activity per phase, calibrated to DCGM traces:
#: kernels near-saturate the SMs; collectives keep copy/reduction kernels
#: partially active; bubbles are idle.
PHASE_ACTIVITY = {
    "compute": 0.92,
    "compute_recompute": 0.95,
    "tensor_parallel_comm": 0.30,
    "pipeline_p2p": 0.08,
    "pipeline_bubble": 0.02,
    "exposed_dp_comm": 0.12,
    "optimizer": 0.55,
}

#: tensor-core activity is a scaled-down SM activity (TC only runs in GEMMs)
TC_SCALE = {
    "compute": 0.75,
    "compute_recompute": 0.78,
    "tensor_parallel_comm": 0.05,
    "pipeline_p2p": 0.0,
    "pipeline_bubble": 0.0,
    "exposed_dp_comm": 0.0,
    "optimizer": 0.10,
}


@dataclass
class UtilizationTimeline:
    """Sampled SM/TC activity over time."""

    times: np.ndarray
    sm: np.ndarray
    tc: np.ndarray

    def mean_sm(self) -> float:
        """Mean SM activity over the timeline."""
        return float(self.sm.mean()) if self.sm.size else 0.0

    def peak_sm(self) -> float:
        """Peak SM activity over the timeline."""
        return float(self.sm.max()) if self.sm.size else 0.0

    def idle_fraction(self, threshold: float = 0.10) -> float:
        """Fraction of samples below ``threshold``."""
        if not self.sm.size:
            return 0.0
        return float((self.sm < threshold).mean())

    @property
    def duration(self) -> float:
        return float(self.times[-1]) if self.times.size else 0.0


def _segments_to_timeline(segments: list[tuple[float, float, float]],
                          resolution: float,
                          rng: np.random.Generator | None) -> (
                              UtilizationTimeline):
    """Expand (duration, sm, tc) segments into a sampled timeline."""
    total = sum(duration for duration, _, _ in segments)
    n_samples = max(2, int(total / resolution))
    times = np.linspace(0.0, total, n_samples)
    sm = np.empty(n_samples)
    tc = np.empty(n_samples)
    boundaries = np.cumsum([duration for duration, _, _ in segments])
    seg_index = 0
    for i, t in enumerate(times):
        while seg_index < len(segments) - 1 and t > boundaries[seg_index]:
            seg_index += 1
        _, sm_level, tc_level = segments[seg_index]
        sm[i] = sm_level
        tc[i] = tc_level
    if rng is not None:
        sm = np.clip(sm + rng.normal(0.0, 0.02, n_samples), 0.0, 1.0)
        tc = np.clip(tc + rng.normal(0.0, 0.02, n_samples), 0.0, 1.0)
    return UtilizationTimeline(times=times, sm=sm, tc=tc)


class SmProfiler:
    """Builds per-step phase sequences and renders them as DCGM timelines."""

    def __init__(self, model: TransformerConfig, plan: ParallelismPlan,
                 step_model: StepTimeModel | None = None,
                 seed: int | None = 0) -> None:
        self.model = model
        self.plan = plan
        self.step_model = step_model or StepTimeModel(model, plan)
        self.seed = seed

    def step_segments(self) -> list[tuple[float, float, float]]:
        """(duration, sm, tc) segments for one optimizer step.

        The compute/TP phases of 3D parallelism interleave per micro-batch,
        so they are emitted as alternating slices rather than two blocks —
        that is what produces the high-frequency oscillation in Fig. 10(a).
        """
        breakdown = self.step_model.breakdown()
        compute_key = ("compute_recompute" if self.plan.recompute
                       else "compute")
        segments: list[tuple[float, float, float]] = []

        def phase(key: str, duration: float) -> tuple[float, float, float]:
            return (duration, PHASE_ACTIVITY[key], TC_SCALE[key])

        interleave = max(4, min(self.plan.micro_batches, 32))
        compute_slice = breakdown.compute / interleave
        comm_slice = breakdown.tensor_parallel_comm / interleave
        p2p_slice = breakdown.pipeline_p2p / interleave
        for _ in range(interleave):
            segments.append(phase(compute_key, compute_slice))
            if comm_slice > 0:
                segments.append(phase("tensor_parallel_comm", comm_slice))
            if p2p_slice > 0:
                segments.append(phase("pipeline_p2p", p2p_slice))
        if breakdown.pipeline_bubble > 0:
            # Half the bubble manifests at warm-up, half at drain; fold
            # both into one visible idle valley per step.
            segments.append(phase("pipeline_bubble",
                                  breakdown.pipeline_bubble))
        if breakdown.exposed_dp_comm > 0:
            segments.append(phase("exposed_dp_comm",
                                  breakdown.exposed_dp_comm))
        segments.append(phase("optimizer", breakdown.optimizer))
        return segments

    def profile(self, steps: int = 3, resolution: float = 0.02,
                ) -> UtilizationTimeline:
        """Render ``steps`` optimizer steps at ``resolution`` seconds."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        rng = (np.random.default_rng(self.seed)
               if self.seed is not None else None)
        one_step = self.step_segments()
        return _segments_to_timeline(one_step * steps, resolution, rng)


def profile_strategies(model: TransformerConfig,
                       plans: list[ParallelismPlan],
                       steps: int = 3,
                       resolution: float = 0.02,
                       ) -> dict[str, UtilizationTimeline]:
    """Profile several strategies on the same model (Fig. 10 / 19)."""
    return {plan.name: SmProfiler(model, plan).profile(steps, resolution)
            for plan in plans}
