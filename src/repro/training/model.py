"""Transformer model configurations and FLOP/parameter accounting.

Acme develops decoder-only transformers from 7B to over 123B parameters
(§2.2).  The arithmetic here follows the standard accounting used by
Megatron-LM and the activation-recomputation paper [Korthikanti et al.]:

* parameters        ~ 12 * L * h^2 * (1 + 13/(12h) + (v+s)/(12Lh))
* training FLOPs    ~ 6 * N per token (8 * N with full recomputation)
* mixed-precision Adam state = 2Ψ (fp16 params) + 2Ψ (fp16 grads)
  + 12Ψ (fp32 master params, momentum, variance)  — §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransformerConfig:
    """A decoder-only transformer architecture."""

    name: str
    layers: int
    hidden: int
    heads: int
    vocab: int = 103_168  # InternLM tokenizer scale
    seq_len: int = 4096
    ffn_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise ValueError("hidden must be divisible by heads")

    # -- parameters --------------------------------------------------------

    @property
    def attention_params_per_layer(self) -> int:
        # QKV projection + output projection.
        return 4 * self.hidden * self.hidden + 4 * self.hidden

    @property
    def ffn_params_per_layer(self) -> int:
        intermediate = int(self.ffn_multiplier * self.hidden)
        return (2 * self.hidden * intermediate
                + self.hidden + intermediate)

    @property
    def params_per_layer(self) -> int:
        layer_norms = 4 * self.hidden
        return (self.attention_params_per_layer
                + self.ffn_params_per_layer + layer_norms)

    @property
    def embedding_params(self) -> int:
        return self.vocab * self.hidden

    @property
    def param_count(self) -> int:
        """Total parameters (embedding shared with the LM head)."""
        return self.layers * self.params_per_layer + self.embedding_params

    # -- compute -------------------------------------------------------------

    def flops_per_token(self, recompute: bool = False) -> float:
        """Training FLOPs per token: 6N, or 8N with full recomputation."""
        factor = 8.0 if recompute else 6.0
        return factor * self.param_count

    def flops_per_sequence(self, recompute: bool = False) -> float:
        """Training FLOPs for one full sequence."""
        return self.flops_per_token(recompute) * self.seq_len

    # -- memory ---------------------------------------------------------------

    @property
    def model_state_bytes(self) -> int:
        """Params + grads + Adam states for mixed-precision training: 16Ψ."""
        return 16 * self.param_count

    def activation_bytes_per_layer(self, micro_batch: int,
                                   recompute: bool = False,
                                   flash_attention: bool = True) -> float:
        """Activation memory for one layer, one micro-batch (bytes).

        Without recomputation: ~ s*b*h*(34 + 5*a*s/h) bytes per layer
        (fp16 activations); FlashAttention — which InternEvo uses (§2.2) —
        removes the quadratic 5*a*s/h attention-matrix term.  With
        selective recomputation only the layer-boundary input
        (2*s*b*h bytes) is kept.
        """
        sbh = self.seq_len * micro_batch * self.hidden
        if recompute:
            return 2.0 * sbh
        if flash_attention:
            return 34.0 * sbh
        attn_quadratic = 5.0 * self.heads * self.seq_len / self.hidden
        return sbh * (34.0 + attn_quadratic)

    def describe(self) -> str:
        """Human-readable one-line architecture summary."""
        billions = self.param_count / 1e9
        return (f"{self.name}: {billions:.1f}B params, "
                f"{self.layers}L x {self.hidden}h x {self.heads}a, "
                f"seq {self.seq_len}")


@dataclass(frozen=True)
class MoEConfig:
    """A sparsely-activated Mixture-of-Experts transformer (Appendix A.6)."""

    base: TransformerConfig
    num_experts: int
    experts_per_token: int

    @property
    def param_count(self) -> int:
        """Total (mostly inactive) parameters."""
        extra_ffn = ((self.num_experts - 1)
                     * self.base.ffn_params_per_layer * self.base.layers)
        return self.base.param_count + extra_ffn

    @property
    def active_param_count(self) -> int:
        """Parameters touched per token (top-k routing)."""
        active_ffn = ((self.experts_per_token - 1)
                      * self.base.ffn_params_per_layer * self.base.layers)
        return self.base.param_count + active_ffn

    def flops_per_token(self) -> float:
        """Active-parameter FLOPs per token (6N on the routed path)."""
        return 6.0 * self.active_param_count

    def alltoall_bytes_per_layer(self, micro_batch: int) -> float:
        """Token dispatch volume per MoE layer (fp16, top-k routed)."""
        tokens = self.base.seq_len * micro_batch
        return 2.0 * tokens * self.base.hidden * self.experts_per_token


# -- the model family Acme develops (7B .. >123B, §2.2) -----------------------

MODEL_7B = TransformerConfig("llm-7b", layers=32, hidden=4096, heads=32)
MODEL_13B = TransformerConfig("llm-13b", layers=40, hidden=5120, heads=40)
MODEL_30B = TransformerConfig("llm-30b", layers=60, hidden=6656, heads=52)
MODEL_104B = TransformerConfig("llm-104b", layers=88, hidden=9984, heads=78)
MODEL_123B = TransformerConfig("llm-123b", layers=96, hidden=10240, heads=80)

#: Mistral-7B-style MoE (8 experts, top-2) used in Appendix A.6.
MISTRAL_7B_MOE = MoEConfig(
    base=TransformerConfig("mistral-7b", layers=32, hidden=4096, heads=32,
                           seq_len=4096),
    num_experts=8,
    experts_per_token=2,
)
