"""Mixture-of-Experts pretraining model (Appendix A.6, Fig. 22).

The paper profiles Mistral-7B-style MoE pretraining on 1024 Seren GPUs and
observes much lower SM utilization than dense models: MoE layers require
an all-to-all dispatch and combine per layer, and Seren's single 200 Gb/s
NIC per node (≈3.1 GB/s per GPU) cannot keep up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import A100_SXM_80GB, GpuSpec
from repro.cluster.network import alltoall_time
from repro.training.model import MoEConfig
from repro.training.profiler import UtilizationTimeline, _segments_to_timeline

#: Seren: one 200 Gb/s HDR NIC shared by 8 GPUs.
SEREN_PER_GPU_BANDWIDTH = 200e9 / 8.0 / 8.0


@dataclass(frozen=True)
class MoEStepBreakdown:
    """One MoE optimizer step: compute vs exposed all-to-all."""

    compute: float
    alltoall: float
    optimizer: float

    @property
    def total(self) -> float:
        return self.compute + self.alltoall + self.optimizer

    @property
    def busy_fraction(self) -> float:
        return self.compute / self.total if self.total else 0.0


def moe_step_model(config: MoEConfig, world_size: int = 1024,
                   micro_batches: int = 4, micro_batch_size: int = 2,
                   per_gpu_bandwidth: float = SEREN_PER_GPU_BANDWIDTH,
                   gpu: GpuSpec = A100_SXM_80GB,
                   compute_efficiency: float = 0.6,
                   expert_parallel: int = 8) -> MoEStepBreakdown:
    """Step breakdown for expert-parallel MoE training.

    All-to-all runs 4 times per MoE layer per micro-batch (dispatch +
    combine, forward and backward) across the ``expert_parallel`` group,
    which spans nodes — so it rides the per-GPU NIC share.
    """
    tokens = (micro_batches * micro_batch_size * config.base.seq_len)
    flops = tokens * config.flops_per_token()
    compute = flops / (gpu.peak_flops * compute_efficiency)

    per_layer_bytes = config.alltoall_bytes_per_layer(micro_batch_size)
    per_exchange = alltoall_time(per_layer_bytes, expert_parallel,
                                 per_gpu_bandwidth)
    exchanges = 4 * config.base.layers * micro_batches
    alltoall = per_exchange * exchanges

    optimizer = 2.0 * 16.0 * (config.param_count / world_size) / 1.5e12
    return MoEStepBreakdown(compute=compute, alltoall=alltoall,
                            optimizer=optimizer)


def moe_utilization_timeline(config: MoEConfig, steps: int = 3,
                             resolution: float = 0.02,
                             **model_kwargs) -> UtilizationTimeline:
    """DCGM-style SM trace for MoE pretraining (Fig. 22)."""
    breakdown = moe_step_model(config, **model_kwargs)
    interleave = 16
    segments = []
    for _ in range(interleave):
        segments.append((breakdown.compute / interleave, 0.85, 0.65))
        segments.append((breakdown.alltoall / interleave, 0.06, 0.0))
    segments.append((breakdown.optimizer, 0.55, 0.10))
    return _segments_to_timeline(segments * steps, resolution,
                                 rng=None)
