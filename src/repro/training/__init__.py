"""Distributed LLM pretraining simulator.

Analytic models of transformer training at cluster scale: parameter/FLOP
accounting, 3D parallelism (tensor/pipeline/data) and hierarchical ZeRO,
per-GPU memory footprints under 1F1B scheduling, step-time decomposition,
SM-utilization timeline synthesis, and long-horizon pretraining progress
with failure injection.  These reproduce the paper's workload profiling
(Figs. 10–13, 19, 20, 22) and the recovery study (Fig. 14).
"""

from repro.training.model import (TransformerConfig, MoEConfig,
                                  MODEL_7B, MODEL_13B, MODEL_30B,
                                  MODEL_104B, MODEL_123B, MISTRAL_7B_MOE)
from repro.training.parallelism import (ParallelismPlan, internevo_v1,
                                        internevo_v2)
from repro.training.memory import MemoryModel, MemorySnapshot
from repro.training.step import StepTimeModel, StepBreakdown
from repro.training.profiler import SmProfiler, UtilizationTimeline
from repro.training.pretrain import (PretrainProcess, PretrainSimulator,
                                     PretrainRun, RecoveryMode)
from repro.training.moe import moe_step_model
from repro.training.gc_tuning import GcController, simulate_gc_impact

__all__ = [
    "TransformerConfig",
    "MoEConfig",
    "MODEL_7B",
    "MODEL_13B",
    "MODEL_30B",
    "MODEL_104B",
    "MODEL_123B",
    "MISTRAL_7B_MOE",
    "ParallelismPlan",
    "internevo_v1",
    "internevo_v2",
    "MemoryModel",
    "MemorySnapshot",
    "StepTimeModel",
    "StepBreakdown",
    "SmProfiler",
    "UtilizationTimeline",
    "PretrainProcess",
    "PretrainSimulator",
    "PretrainRun",
    "RecoveryMode",
    "moe_step_model",
    "GcController",
    "simulate_gc_impact",
]

from repro.training.loss import (LossCurveConfig, LossSimulator,  # noqa: E402
                                 SpikeSpec, train_with_spike_recovery)

__all__ += [
    "LossCurveConfig",
    "LossSimulator",
    "SpikeSpec",
    "train_with_spike_recovery",
]

from repro.training.dataloader import (DataloaderConfig,  # noqa: E402
                                       DataloaderModel, paper_leak_example)

__all__ += [
    "DataloaderConfig",
    "DataloaderModel",
    "paper_leak_example",
]

from repro.training.extensions import (LongSequencePlan,  # noqa: E402
                                       RlhfConfig, RlhfStageModel)

__all__ += [
    "LongSequencePlan",
    "RlhfConfig",
    "RlhfStageModel",
]
