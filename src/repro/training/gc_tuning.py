"""Garbage-collection tuning (Appendix B, "Lessons of Troubleshooting").

The paper reports that untimed Python garbage collection caused irregular
2–3x slowdowns of training steps (``list_traverse`` consuming ~30% of step
time), fixed in InternEvo V2 by disabling automatic GC and collecting at a
fixed step interval on every rank simultaneously.

``GcController`` is the production-style utility (usable around a real
training loop); ``simulate_gc_impact`` quantifies the throughput effect the
appendix describes.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass

import numpy as np


class GcController:
    """Fixed-interval garbage collection for training loops.

    Usage::

        controller = GcController(interval_steps=500)
        controller.start()
        for step in range(total):
            train_step()
            controller.on_step(step)
        controller.stop()

    While active, automatic collection is disabled so no rank pauses at a
    random point; ``on_step`` collects synchronously every
    ``interval_steps`` steps (all ranks use the same interval, so pauses
    align instead of cascading through collectives).
    """

    def __init__(self, interval_steps: int = 500) -> None:
        if interval_steps <= 0:
            raise ValueError("interval_steps must be positive")
        self.interval_steps = interval_steps
        self.collections = 0
        self._was_enabled: bool | None = None

    def start(self) -> None:
        """Disable automatic GC (remember the prior state)."""
        self._was_enabled = gc.isenabled()
        gc.disable()

    def stop(self) -> None:
        """Restore the pre-``start`` GC state."""
        if self._was_enabled:
            gc.enable()
        self._was_enabled = None

    def on_step(self, step: int) -> bool:
        """Collect if the step index hits the interval; returns True if so."""
        if step > 0 and step % self.interval_steps == 0:
            gc.collect()
            self.collections += 1
            return True
        return False

    def __enter__(self) -> "GcController":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass(frozen=True)
class GcImpactSummary:
    """Throughput comparison: automatic vs fixed-interval GC."""

    baseline_mean_step: float
    controlled_mean_step: float
    baseline_p99_step: float
    controlled_p99_step: float

    @property
    def speedup(self) -> float:
        return self.baseline_mean_step / self.controlled_mean_step


def simulate_gc_impact(steps: int = 2000, base_step_time: float = 1.0,
                       gc_probability: float = 0.02,
                       gc_pause_factor: float = 2.5,
                       controlled_interval: int = 500,
                       controlled_pause: float = 0.15,
                       seed: int = 0) -> GcImpactSummary:
    """Monte-Carlo model of the Appendix B slowdown.

    Baseline: each step independently suffers a GC pause with probability
    ``gc_probability``; because ranks pause at *different* steps and every
    step synchronizes on collectives, the whole job stalls whenever any of
    the (many) ranks collects — modeled by inflating the per-step pause
    probability.  A pause multiplies the step by ``gc_pause_factor``
    (the observed 2–3x).

    Controlled: a small synchronized pause every ``controlled_interval``
    steps on all ranks at once.
    """
    rng = np.random.default_rng(seed)
    baseline = np.full(steps, base_step_time)
    hit = rng.uniform(size=steps) < min(1.0, gc_probability * 8.0)
    baseline[hit] *= gc_pause_factor

    controlled = np.full(steps, base_step_time)
    controlled[controlled_interval::controlled_interval] += controlled_pause

    return GcImpactSummary(
        baseline_mean_step=float(baseline.mean()),
        controlled_mean_step=float(controlled.mean()),
        baseline_p99_step=float(np.percentile(baseline, 99)),
        controlled_p99_step=float(np.percentile(controlled, 99)),
    )
