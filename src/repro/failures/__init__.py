"""Failure substrate: taxonomy (Table 3), injection, and runtime logs.

The taxonomy embeds the paper's full failure statistics; the injector
samples failure events consistent with them; the log generator produces
realistic runtime logs (stdout/stderr) for each failure reason, which the
diagnosis system (``repro.core.diagnosis``) consumes.
"""

from repro.failures.taxonomy import (FailureCategory, FailureSpec,
                                     TAXONOMY, taxonomy_by_reason,
                                     taxonomy_by_category)
from repro.failures.injector import FailureInjector, FailureEvent
from repro.failures.logs import LogGenerator, generate_job_log
from repro.failures.reliability import (GoodputModel, mtbf_from_events,
                                        interval_sweep)
from repro.failures.thermal import (ThermalHazardModel,
                                    scenario_failure_rates)

__all__ = [
    "FailureCategory",
    "FailureSpec",
    "TAXONOMY",
    "taxonomy_by_reason",
    "taxonomy_by_category",
    "FailureInjector",
    "FailureEvent",
    "LogGenerator",
    "generate_job_log",
    "GoodputModel",
    "mtbf_from_events",
    "interval_sweep",
    "ThermalHazardModel",
    "scenario_failure_rates",
]
