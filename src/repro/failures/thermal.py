"""Temperature-coupled failure rates (§5.2).

The paper observed that training heavily communication-optimized 7B
models in Kalos raised the server room ~5°C and drove a wave of NVLink
and ECC errors — worst during July 2023, the hottest month on record —
and that a cooling upgrade "significantly reduced the frequency of such
failures".

This module couples the temperature model to failure hazard rates with
an Arrhenius-style acceleration factor, reproducing that coupling:
hotter fleets fail more, cooling restores the baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.monitor.temperature import TemperatureModel

#: failure reasons whose hazard is thermally accelerated (§5.2)
THERMALLY_SENSITIVE = ("NVLinkError", "ECCError")


@dataclass(frozen=True)
class ThermalHazardModel:
    """Hazard acceleration vs GPU core temperature.

    ``acceleration(T) = exp((T - reference) / scale)`` — the usual
    rule-of-thumb that every ~10°C doubles the electronics failure rate
    corresponds to ``scale ≈ 14.4``.
    """

    reference_celsius: float = 55.0
    scale_celsius: float = 14.4

    def acceleration(self, temperature: float) -> float:
        """Hazard multiplier at one core temperature."""
        return math.exp((temperature - self.reference_celsius)
                        / self.scale_celsius)

    def fleet_acceleration(self, temperatures: np.ndarray) -> float:
        """Mean hazard multiplier across a fleet of core temperatures."""
        temperatures = np.asarray(temperatures, dtype=float)
        if temperatures.size == 0:
            raise ValueError("no temperatures")
        return float(np.exp(
            (temperatures - self.reference_celsius)
            / self.scale_celsius).mean())

    def effective_mtbf(self, baseline_mtbf: float,
                       temperatures: np.ndarray) -> float:
        """MTBF of thermally-sensitive failures under the given fleet
        temperatures."""
        if baseline_mtbf <= 0:
            raise ValueError("baseline_mtbf must be positive")
        return baseline_mtbf / self.fleet_acceleration(temperatures)


@dataclass(frozen=True)
class ThermalScenario:
    """A named operating condition for the what-if comparison."""

    name: str
    ambient_offset: float
    mean_power_watts: float


#: The paper's three regimes: normal operation, the July 2023 heat event
#: (+5°C room, communication-optimized 7B jobs pushing power), and the
#: post-upgrade cooling (-3°C effective).
PAPER_SCENARIOS = [
    ThermalScenario("normal", 0.0, 380.0),
    ThermalScenario("july-2023-heat", 5.0, 430.0),
    ThermalScenario("after-cooling-upgrade", -3.0, 430.0),
]


def scenario_failure_rates(baseline_mtbf_hours: float = 400.0,
                           fleet_size: int = 2000,
                           scenarios: list[ThermalScenario] | None = None,
                           hazard: ThermalHazardModel | None = None,
                           seed: int = 0) -> list[dict]:
    """NVLink/ECC failure-rate comparison across operating conditions.

    Returns one row per scenario with the fleet's mean core temperature,
    the hazard multiplier, and the effective MTBF — the §5.2 narrative
    in numbers.
    """
    hazard = hazard or ThermalHazardModel()
    scenarios = scenarios if scenarios is not None else PAPER_SCENARIOS
    rows = []
    for index, scenario in enumerate(scenarios):
        model = TemperatureModel(ambient_offset=scenario.ambient_offset)
        draws = np.full(fleet_size, scenario.mean_power_watts)
        core, _ = model.sample_fleet(draws, seed=seed + index)
        multiplier = hazard.fleet_acceleration(core)
        rows.append({
            "scenario": scenario.name,
            "mean_core_celsius": float(core.mean()),
            "over_65c_fraction": float((core > 65.0).mean()),
            "hazard_multiplier": multiplier,
            "effective_mtbf_hours": baseline_mtbf_hours / multiplier,
        })
    return rows
