"""Failure-event sampling from the Table 3 taxonomy.

Two uses:

* generating a standalone population of failure events whose per-reason
  statistics reproduce Table 3 (``generate_events``);
* tagging the failed jobs of a synthetic trace with plausible reasons
  conditioned on the job's GPU demand (``assign_to_trace``) — large gang
  jobs fail from infrastructure, tiny jobs from script errors, matching
  §5.2's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.failures.taxonomy import (TAXONOMY, FailureCategory, FailureSpec)
from repro.scheduler.job import FinalStatus, Job
from repro.sim.distributions import lognormal_from_median_mean
from repro.workload.trace import Trace


@dataclass(frozen=True)
class FailureEvent:
    """One job failure with everything Table 3 tabulates."""

    reason: str
    category: FailureCategory
    cluster: str
    gpu_demand: int
    time_to_failure_min: float
    time_to_restart_min: float

    @property
    def gpu_time_min(self) -> float:
        return self.gpu_demand * self.time_to_failure_min


class FailureInjector:
    """Samples failure events consistent with the taxonomy statistics."""

    def __init__(self, seed: int = 0,
                 taxonomy: list[FailureSpec] | None = None) -> None:
        self.taxonomy = taxonomy or TAXONOMY
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # -- event population (Table 3 regeneration) ---------------------------

    def generate_events(self, scale: float = 1.0) -> list[FailureEvent]:
        """Sample ``scale``x the observed count of each failure reason."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        events: list[FailureEvent] = []
        for spec in self.taxonomy:
            count = max(1, int(round(spec.count * scale)))
            events.extend(self._sample_reason(spec, count))
        return events

    def _sample_reason(self, spec: FailureSpec, count: int,
                       rng: np.random.Generator | None = None
                       ) -> list[FailureEvent]:
        rng = self.rng if rng is None else rng
        demand_dist = lognormal_from_median_mean(
            max(spec.demand_median, 0.51), max(spec.demand_avg, 0.51))
        ttf_dist = lognormal_from_median_mean(
            max(spec.ttf_median_min, 0.05), max(spec.ttf_avg_min, 0.05))
        restart_dist = lognormal_from_median_mean(
            max(spec.restart_median_min, 0.01),
            max(spec.restart_avg_min, 0.01))
        events = []
        for _ in range(count):
            cluster = str(rng.choice(spec.clusters))
            demand = max(1, int(round(demand_dist.sample(rng))))
            events.append(FailureEvent(
                reason=spec.reason,
                category=spec.category,
                cluster=cluster,
                gpu_demand=demand,
                time_to_failure_min=float(ttf_dist.sample(rng)),
                time_to_restart_min=float(restart_dist.sample(rng)),
            ))
        return events

    # -- trace tagging --------------------------------------------------------

    def assign_to_trace(self, trace: Trace,
                        rng: np.random.Generator | None = None) -> None:
        """Set ``failure_reason`` on every failed job in the trace.

        Reasons are drawn with probability proportional to
        count x demand-affinity, where affinity favors reasons whose
        typical demand matches the job's (log-scale distance).

        Sampling is seed-stable: each call uses an explicit generator
        (``rng`` if given, else a fresh one derived from the injector's
        seed), so tagging the same trace twice — or tagging it after other
        sampling calls on the same injector — yields identical reasons.
        """
        rng = np.random.default_rng(self.seed) if rng is None else rng
        cluster = trace.cluster
        candidates = [spec for spec in self.taxonomy
                      if cluster in spec.clusters]
        if not candidates:
            candidates = list(self.taxonomy)
        counts = np.array([spec.count for spec in candidates], dtype=float)
        medians = np.array([max(spec.demand_median, 0.5)
                            for spec in candidates])
        for job in trace.gpu_jobs():
            if job.final_status is not FinalStatus.FAILED:
                continue
            distance = np.abs(np.log2(medians)
                              - np.log2(max(job.gpu_demand, 1)))
            affinity = np.exp(-distance / 1.5)
            weights = counts * affinity
            weights = weights / weights.sum()
            index = int(rng.choice(len(candidates), p=weights))
            job.failure_reason = candidates[index].reason

    def sample_pretraining_failure(self, cluster: str,
                                   rng: np.random.Generator | None = None
                                   ) -> FailureEvent:
        """One failure for a running large pretraining job.

        Long-running gang jobs draw from the demand-heavy reasons
        (infrastructure + heavyweight framework errors), weighted by GPU
        time share — the §5.2 profile of what interrupts pretraining.
        """
        rng = self.rng if rng is None else rng
        heavy = [spec for spec in self.taxonomy
                 if spec.demand_median >= 128
                 and cluster in spec.clusters]
        if not heavy:
            heavy = [spec for spec in self.taxonomy
                     if spec.demand_median >= 128]
        weights = np.array([max(spec.gpu_time_pct, 0.01)
                            for spec in heavy])
        weights = weights / weights.sum()
        spec = heavy[int(rng.choice(len(heavy), p=weights))]
        return self._sample_reason(spec, 1, rng)[0]


def events_to_jobs(events: list[FailureEvent]) -> list[Job]:
    """Materialize failure events as failed Job records (for analysis)."""
    jobs = []
    for index, event in enumerate(events):
        job = Job(
            job_id=f"fail-{index:06d}",
            cluster=event.cluster,
            job_type=_job_type_for(event),
            submit_time=0.0,
            duration=event.time_to_failure_min * 60.0,
            gpu_demand=event.gpu_demand,
            final_status=FinalStatus.FAILED,
            failure_reason=event.reason,
        )
        jobs.append(job)
    return jobs


def _job_type_for(event: FailureEvent):
    from repro.scheduler.job import JobType

    if event.gpu_demand >= 128:
        return JobType.PRETRAIN
    if event.gpu_demand <= 8:
        return JobType.EVALUATION
    return JobType.DEBUG
