"""The Table 3 failure taxonomy, embedded verbatim.

Each row records: occurrence count, GPU demand (average/median),
time-to-failure (average/median, minutes), share of total failure GPU
time, time-to-restart (average/median, minutes), and the clusters where
the reason appeared.  These statistics parameterize the failure injector
and are the ground truth the regenerated Table 3 is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FailureCategory(Enum):
    """Table 3's three failure classes."""
    INFRASTRUCTURE = "infrastructure"
    FRAMEWORK = "framework"
    SCRIPT = "script"


@dataclass(frozen=True)
class FailureSpec:
    """One Table 3 row."""

    category: FailureCategory
    reason: str
    count: int
    demand_avg: float
    demand_median: float
    ttf_avg_min: float       # time to failure, minutes
    ttf_median_min: float
    gpu_time_pct: float      # share of total failure GPU time, percent
    restart_avg_min: float   # time to restart, minutes
    restart_median_min: float
    clusters: tuple[str, ...]

    @property
    def recoverable_by_restart(self) -> bool:
        """Whether an automatic restart (possibly after cordoning nodes)
        is the right mitigation — true for infrastructure faults, false
        for user-code errors that will simply fail again."""
        return self.category is not FailureCategory.SCRIPT


_I = FailureCategory.INFRASTRUCTURE
_F = FailureCategory.FRAMEWORK
_S = FailureCategory.SCRIPT
_SK = ("seren", "kalos")
_SO = ("seren",)
_KO = ("kalos",)

#: Table 3, sorted by GPU-time share as in the paper.
TAXONOMY: list[FailureSpec] = [
    FailureSpec(_I, "NVLinkError", 54, 800, 896, 868.1, 155.3,
                30.25, 95.6, 0.2, _SK),
    FailureSpec(_I, "CUDAError", 21, 847, 1024, 923.2, 586.0,
                15.77, 78.3, 2.0, _SK),
    FailureSpec(_I, "NodeFailure", 16, 712, 768, 1288.8, 535.8,
                14.30, 102.8, 21.5, _SO),
    FailureSpec(_I, "ECCError", 12, 680, 512, 1303.4, 1192.3,
                11.00, 2.8, 1.8, _SK),
    FailureSpec(_I, "NetworkError", 12, 758, 768, 549.6, 310.1,
                4.53, 592.1, 7.4, _SK),
    FailureSpec(_I, "ConnectionError", 147, 29, 1, 51.9, 0.5,
                3.44, 0.8, 0.0, _SK),
    FailureSpec(_I, "S3StorageError", 10, 422, 256, 2317.8, 202.2,
                2.12, 6.2, 0.2, _SO),
    FailureSpec(_I, "NCCLTimeoutError", 6, 596, 512, 159.7, 48.1,
                0.50, 66.7, 43.6, _KO),
    FailureSpec(_I, "NCCLRemoteError", 3, 1152, 1024, 50.5, 22.6,
                0.15, 0.0, 0.7, _KO),
    FailureSpec(_F, "DataloaderKilled", 6, 445, 508, 1580.6, 961.4,
                4.38, 115.1, 0.9, _KO),
    FailureSpec(_F, "AttributeError", 67, 228, 8, 67.8, 1.2,
                3.90, 2.4, 0.0, _SK),
    FailureSpec(_F, "OutOfMemoryError", 14, 572, 640, 323.8, 14.5,
                3.28, 122.7, 1.2, _SK),
    FailureSpec(_F, "RuntimeError", 65, 441, 352, 66.4, 3.9,
                1.72, 10.9, 1.5, _SK),
    FailureSpec(_F, "AssertionError", 105, 413, 256, 41.7, 3.0,
                1.24, 185.9, 1.6, _SK),
    FailureSpec(_F, "ValueError", 33, 387, 256, 9.9, 3.7,
                0.16, 27.4, 0.6, _SK),
    FailureSpec(_F, "ZeroDivisionError", 5, 499, 256, 14.5, 15.6,
                0.03, 2.5, 1.1, _SK),
    FailureSpec(_F, "ModelLoadingError", 104, 8, 8, 2.6, 2.6,
                0.00, 0.0, 0.0, _KO),
    FailureSpec(_F, "DatasetLoadingError", 5, 1, 1, 1.6, 1.6,
                0.00, 0.0, 0.0, _KO),
    FailureSpec(_S, "FileNotFoundError", 568, 21, 1, 14.2, 0.4,
                2.83, 0.4, 0.0, _SK),
    FailureSpec(_S, "OSError", 266, 8, 1, 9.6, 0.8,
                0.28, 0.3, 0.0, _SK),
    FailureSpec(_S, "TypeError", 620, 18, 4, 0.9, 0.3,
                0.06, 0.2, 0.0, _SK),
    FailureSpec(_S, "NameError", 18, 247, 24, 3.2, 0.5,
                0.02, 2.9, 2.4, _SK),
    FailureSpec(_S, "PermissionError", 7, 438, 512, 4.3, 0.8,
                0.01, 2.4, 2.2, _SO),
    FailureSpec(_S, "ImportError", 111, 93, 8, 1.1, 0.4,
                0.01, 0.7, 0.0, _SK),
    FailureSpec(_S, "KeyError", 260, 7, 0.5, 3.0, 1.6,
                0.01, 0.1, 0.0, _SK),
    FailureSpec(_S, "SyntaxError", 10, 391, 384, 0.7, 0.6,
                0.00, 1.7, 1.7, _SK),
    FailureSpec(_S, "ArgumentError", 3, 344, 512, 0.7, 0.7,
                0.00, 2.7, 0.7, _SO),
    FailureSpec(_S, "CalledProcessError", 4, 256, 256, 0.2, 0.2,
                0.00, 11.7, 10.9, _SO),
    FailureSpec(_S, "IndexError", 23, 6, 1, 1.6, 0.9,
                0.00, 0.8, 0.0, _SK),
]


#: Chaos fault kinds that target the storage path rather than a node.
#: They map onto Table 3's ``S3StorageError`` row (network-storage
#: outages on Seren) for taxonomy accounting.
STORAGE_FAULT_KINDS: tuple[str, ...] = (
    "storage_outage", "storage_slowdown", "ckpt_corruption")

#: The taxonomy reason storage chaos faults are charged against.
STORAGE_CHAOS_REASON = "S3StorageError"

#: Chaos fault kinds that degrade the network fabric rather than a
#: node or the storage path: a dead link, a link at fractional
#: bandwidth, and a dead leaf switch (all its incident links down).
NETWORK_FAULT_KINDS: tuple[str, ...] = (
    "link_down", "link_degraded", "switch_down")

#: Chaos fault kinds that degrade the core (pod) tier of the fabric:
#: a dead or degraded ``pod:{p}`` aggregate uplink.  They behave like
#: network faults one tier up — only gangs that cross pods notice.
POD_FAULT_KINDS: tuple[str, ...] = (
    "pod_link_down", "pod_link_degraded")

#: Chaos fault kinds that degrade an *asymmetric set* of links at
#: once: some NIC pairs still pass the NCCL probe while others fail,
#: so localization must convict the segment set, not a single link.
PARTITION_FAULT_KINDS: tuple[str, ...] = ("partial_partition",)

#: Chaos fault kinds that slow a node down without any failure log
#: line.  ``straggler`` decays fast enough that timeseries deviation
#: detection catches it; ``silent_degrader`` stays under the detection
#: threshold and is flagged as silent waste at the end of the run.
STRAGGLER_FAULT_KINDS: tuple[str, ...] = (
    "straggler", "silent_degrader")

#: Chaos fault kinds that cap fleet power: the monitor power/thermal
#: models feed a capping curve that stretches every step in the window.
POWER_FAULT_KINDS: tuple[str, ...] = ("power_cap",)

#: Every fault kind that drives LinkHealth windows (NIC, leaf switch,
#: pod uplink, or partition link sets).
FABRIC_FAULT_KINDS: tuple[str, ...] = (
    NETWORK_FAULT_KINDS + POD_FAULT_KINDS + PARTITION_FAULT_KINDS)

#: Table 3 reasons network chaos faults are charged against: hard link
#: losses surface as NVLink errors, degradations and switch losses as
#: generic network errors.  Pod-tier and partition faults are fabric
#: faults too and use the same NetworkError row; straggler and power
#: kinds deliberately have no reason — they never emit a failure log.
NETWORK_CHAOS_REASONS: dict[str, str] = {
    "link_down": "NVLinkError",
    "link_degraded": "NetworkError",
    "switch_down": "NetworkError",
    "pod_link_down": "NetworkError",
    "pod_link_degraded": "NetworkError",
    "partial_partition": "NetworkError",
}


def storage_spec() -> FailureSpec:
    """The Table 3 row backing the storage fault domain."""
    return taxonomy_by_reason()[STORAGE_CHAOS_REASON]


def taxonomy_by_reason() -> dict[str, FailureSpec]:
    """Reason-name -> spec mapping."""
    return {spec.reason: spec for spec in TAXONOMY}


def taxonomy_by_category() -> dict[FailureCategory, list[FailureSpec]]:
    """Specs grouped by failure category."""
    grouped: dict[FailureCategory, list[FailureSpec]] = {
        category: [] for category in FailureCategory}
    for spec in TAXONOMY:
        grouped[spec.category].append(spec)
    return grouped


def total_failure_count() -> int:
    """Sum of all Table 3 occurrence counts."""
    return sum(spec.count for spec in TAXONOMY)


def category_counts() -> dict[FailureCategory, int]:
    """Occurrence counts per category."""
    counts = {category: 0 for category in FailureCategory}
    for spec in TAXONOMY:
        counts[spec.category] += spec.count
    return counts


def category_gpu_time_shares() -> dict[FailureCategory, float]:
    """GPU-time share per category (infrastructure > 82%, §5.2)."""
    shares = {category: 0.0 for category in FailureCategory}
    for spec in TAXONOMY:
        shares[spec.category] += spec.gpu_time_pct
    return shares
