"""Synthetic runtime-log generation for failed (and healthy) jobs.

The diagnosis system (§6.1) consumes stdout/stderr from the pretraining
framework.  Real logs are hundreds of MB, dominated by per-step metric
records, with the failure evidence buried at the end — often as a cascade
of errors where the first exceptions visible are *not* the root cause
(the paper's example: NCCLTimeoutError and RuntimeErrors surrounding an
underlying CUDAError).

``LogGenerator`` reproduces that structure: initialization banner, a large
body of templated metric lines, occasional benign warnings, then (for a
failed job) a cascade of distractor errors followed by the root-cause
signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.failures.taxonomy import TAXONOMY, FailureCategory

#: Root-cause signature lines per failure reason.  The first entry is the
#: canonical signature used for ground truth; the rest add variety.
REASON_SIGNATURES: dict[str, list[str]] = {
    "NVLinkError": [
        "NVRM: Xid (PCI:0000:4b:00): 74, NVLink: fatal error detected on "
        "link 3",
        "NCCL WARN Cuda failure 'uncorrectable NVLink error detected "
        "during the execution'",
    ],
    "CUDAError": [
        "RuntimeError: CUDA error: an illegal memory access was "
        "encountered",
        "RuntimeError: CUDA error: device-side assert triggered",
    ],
    "NodeFailure": [
        "slurmstepd: error: *** JOB 81374 CANCELLED DUE TO NODE FAILURE "
        "ON node-0173 ***",
        "kubelet: node controller lost heartbeat, marking NotReady",
    ],
    "ECCError": [
        "NVRM: Xid (PCI:0000:1a:00): 63, ECC row remapping event: "
        "uncorrectable error",
        "RuntimeError: CUDA error: uncorrectable ECC error encountered",
    ],
    "NetworkError": [
        "NCCL WARN NET/IB: got completion with error 12, opcode 1, "
        "vendor err 129 (transport retry counter exceeded)",
        "ibv_poll_cq failed with status transport retry counter exceeded",
    ],
    "ConnectionError": [
        "requests.exceptions.ConnectionError: "
        "HTTPSConnectionPool(host='metrics.acme.internal', port=443): "
        "Max retries exceeded",
        "ConnectionRefusedError: [Errno 111] Connection refused",
    ],
    "S3StorageError": [
        "botocore.exceptions.EndpointConnectionError: Could not connect "
        "to the endpoint URL: \"s3://acme-ckpt/pretrain/latest\"",
        "petrel_client.common.exception.AccessDeniedError: S3 GET timed "
        "out after 3 retries",
    ],
    "NCCLTimeoutError": [
        "torch.distributed.DistBackendError: [Rank 371] Watchdog caught "
        "collective operation timeout: WorkNCCL(SeqNum=88312, "
        "OpType=ALLREDUCE) ran for 1800000 milliseconds",
        "RuntimeError: NCCL communicator watchdog timeout",
    ],
    "NCCLRemoteError": [
        "torch.distributed.DistBackendError: NCCL error: remote process "
        "exited or there was a network error, NCCL version 2.14.3 "
        "(ncclRemoteError)",
    ],
    "DataloaderKilled": [
        "RuntimeError: DataLoader worker (pid 73214) is killed by "
        "signal: Killed.",
    ],
    "AttributeError": [
        "AttributeError: 'NoneType' object has no attribute 'shape'",
        "AttributeError: module 'internlm.model' has no attribute "
        "'build_moe_block'",
    ],
    "OutOfMemoryError": [
        "torch.cuda.OutOfMemoryError: CUDA out of memory. Tried to "
        "allocate 2.50 GiB (GPU 5; 79.35 GiB total capacity)",
    ],
    "RuntimeError": [
        "RuntimeError: The size of tensor a (4096) must match the size "
        "of tensor b (2048) at non-singleton dimension 1",
        "RuntimeError: Expected all tensors to be on the same device",
    ],
    "AssertionError": [
        "AssertionError: micro_num * micro_bsz must equal gradient "
        "accumulation size",
        "AssertionError: checkpoint step mismatch: expected 42000",
    ],
    "ValueError": [
        "ValueError: invalid literal for int() with base 10: 'auto'",
        "ValueError: optimizer got an empty parameter list",
    ],
    "ZeroDivisionError": [
        "ZeroDivisionError: division by zero",
    ],
    "ModelLoadingError": [
        "OSError: Unable to load weights from pytorch checkpoint file "
        "'/mnt/petrel/ckpt/7b/step_42000/model_tp0_pp0.pt'",
    ],
    "DatasetLoadingError": [
        "datasets.exceptions.DatasetGenerationError: An error occurred "
        "while generating the dataset split 'train'",
    ],
    "FileNotFoundError": [
        "FileNotFoundError: [Errno 2] No such file or directory: "
        "'/mnt/petrel/data/en/shard_000137.bin'",
    ],
    "OSError": [
        "OSError: [Errno 28] No space left on device",
        "OSError: [Errno 122] Disk quota exceeded",
    ],
    "TypeError": [
        "TypeError: forward() got an unexpected keyword argument "
        "'use_flash_attn'",
        "TypeError: unsupported operand type(s) for +: 'int' and 'str'",
    ],
    "NameError": [
        "NameError: name 'micro_bsz' is not defined",
    ],
    "PermissionError": [
        "PermissionError: [Errno 13] Permission denied: "
        "'/mnt/petrel/shared/tokenizer.model'",
    ],
    "ImportError": [
        "ImportError: cannot import name 'flash_attn_varlen_func' from "
        "'flash_attn'",
        "ModuleNotFoundError: No module named 'rotary_emb'",
    ],
    "KeyError": [
        "KeyError: 'grad_scaler'",
        "KeyError: 'moe_loss_coeff'",
    ],
    "SyntaxError": [
        "SyntaxError: invalid syntax (train_config.py, line 47)",
    ],
    "ArgumentError": [
        "argparse.ArgumentError: argument --learning-rate: invalid "
        "float value: '3e-4x'",
    ],
    "CalledProcessError": [
        "subprocess.CalledProcessError: Command "
        "'['/usr/bin/srun', 'nccl-tests/all_reduce_perf']' returned "
        "non-zero exit status 1.",
    ],
    "IndexError": [
        "IndexError: list index out of range",
    ],
}

#: Distractor errors that precede the root cause in real cascades (§6.1:
#: "a job might fail with messages that include NCCLTimeoutError,
#: CUDAError and multiple kinds of RuntimeError, whereas the root cause is
#: CUDAError").  Keys are root reasons; values are *other* reasons whose
#: signatures appear first.
CASCADE_DISTRACTORS: dict[str, list[str]] = {
    "CUDAError": ["NCCLTimeoutError", "RuntimeError"],
    "NVLinkError": ["NCCLTimeoutError", "CUDAError", "RuntimeError"],
    "ECCError": ["CUDAError", "RuntimeError"],
    "NetworkError": ["NCCLTimeoutError", "ConnectionError"],
    "NodeFailure": ["NCCLTimeoutError", "NetworkError"],
    "DataloaderKilled": ["RuntimeError"],
    "OutOfMemoryError": ["RuntimeError"],
    "S3StorageError": ["ConnectionError"],
}

_TRACEBACK_HEADER = "Traceback (most recent call last):"
_TRACEBACK_FRAMES = [
    '  File "/opt/internlm/train.py", line 312, in main',
    "    trainer.step(batch)",
    '  File "/opt/internlm/internlm/core/trainer.py", line 188, in step',
    "    loss = self.engine.execute_schedule(batch)",
    '  File "/opt/internlm/internlm/core/engine.py", line 97, in '
    "execute_schedule",
    "    output = self.model(**inputs)",
]


@dataclass
class JobLog:
    """A generated runtime log plus its ground truth."""

    lines: list[str]
    reason: str | None          # None for a healthy log
    category: FailureCategory | None = None
    distractors: list[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode())


class LogGenerator:
    """Produces framework logs with realistic structure and volume."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self._categories = {spec.reason: spec.category for spec in TAXONOMY}

    # -- building blocks -----------------------------------------------------

    def _timestamp(self, step: int) -> str:
        base_minutes = step // 3
        return (f"2023-07-{12 + base_minutes // 1440:02d} "
                f"{(3 + base_minutes // 60) % 24:02d}:"
                f"{base_minutes % 60:02d}:"
                f"{int(self.rng.integers(0, 60)):02d},"
                f"{int(self.rng.integers(0, 1000)):03d}")

    def _init_banner(self, world_size: int) -> list[str]:
        return [
            f"{self._timestamp(0)} INFO [launcher] launching job on "
            f"{world_size} GPUs ({world_size // 8} nodes)",
            f"{self._timestamp(0)} INFO [config] model=internlm "
            f"layers=96 hidden=10240 seq_len=4096 micro_bsz=1",
            f"{self._timestamp(0)} INFO [parallel] tp=8 pp=4 "
            f"dp={world_size // 32} zero=hierarchical",
            f"{self._timestamp(0)} INFO [dist] NCCL version 2.14.3+cuda11.7",
            f"{self._timestamp(0)} INFO [dataloader] loaded 1.6T tokens "
            f"from /mnt/petrel/data (on-the-fly tokenization)",
        ]

    def _metric_line(self, step: int) -> str:
        loss = 2.2 + 6.0 / (step + 10) + float(self.rng.normal(0, 0.01))
        tgs = 510.0 + float(self.rng.normal(0, 4.0))
        tflops = 181.0 + float(self.rng.normal(0, 2.0))
        return (f"{self._timestamp(step)} INFO [trainer] step={step} "
                f"loss={loss:.4f} lr=3.00e-05 grad_norm="
                f"{1.1 + float(self.rng.normal(0, 0.1)):.3f} "
                f"tgs={tgs:.1f} tflops={tflops:.1f}")

    def _benign_warnings(self, step: int) -> list[str]:
        pool = [
            f"{self._timestamp(step)} WARNING [monitor] metric push "
            f"latency 2.3s exceeds budget, retrying",
            f"{self._timestamp(step)} WARNING [ckpt] previous snapshot "
            f"still flushing, queueing",
            f"{self._timestamp(step)} DEBUG [memory] allocated=68.2GiB "
            f"reserved=74.5GiB",
        ]
        index = int(self.rng.integers(len(pool)))
        return [pool[index]]

    def _error_block(self, reason: str, step: int) -> list[str]:
        signature_pool = REASON_SIGNATURES[reason]
        signature = signature_pool[int(self.rng.integers(
            len(signature_pool)))]
        lines = [f"{self._timestamp(step)} ERROR [trainer] rank "
                 f"{int(self.rng.integers(0, 2048))} caught exception",
                 _TRACEBACK_HEADER]
        lines.extend(_TRACEBACK_FRAMES)
        lines.append(signature)
        return lines

    # -- public API -----------------------------------------------------------

    def healthy_log(self, n_steps: int = 200, world_size: int = 2048
                    ) -> JobLog:
        """A log for a job that runs cleanly (no failure)."""
        lines = self._init_banner(world_size)
        for step in range(1, n_steps + 1):
            lines.append(self._metric_line(step))
            if self.rng.uniform() < 0.02:
                lines.extend(self._benign_warnings(step))
        return JobLog(lines=lines, reason=None)

    def failed_log(self, reason: str, n_steps: int = 200,
                   world_size: int = 2048,
                   with_cascade: bool = True) -> JobLog:
        """A log that ends in ``reason`` (after optional distractors)."""
        if reason not in REASON_SIGNATURES:
            raise KeyError(f"unknown failure reason {reason!r}")
        lines = self._init_banner(world_size)
        for step in range(1, n_steps + 1):
            lines.append(self._metric_line(step))
            if self.rng.uniform() < 0.02:
                lines.extend(self._benign_warnings(step))
        distractors: list[str] = []
        if with_cascade:
            for distractor in CASCADE_DISTRACTORS.get(reason, []):
                if self.rng.uniform() < 0.7:
                    distractors.append(distractor)
                    lines.extend(self._error_block(distractor, n_steps))
        # The root cause is the *last* (and usually most specific) error;
        # real cascades repeat it on several ranks.
        for _ in range(int(self.rng.integers(1, 4))):
            lines.extend(self._error_block(reason, n_steps))
        return JobLog(lines=lines, reason=reason,
                      category=self._categories.get(reason),
                      distractors=distractors)

    def corpus(self, reasons: list[str], n_steps: int = 120
               ) -> list[JobLog]:
        """One failed log per reason (for training/evaluating diagnosis)."""
        return [self.failed_log(reason, n_steps=n_steps)
                for reason in reasons]


def generate_job_log(reason: str | None, seed: int = 0,
                     n_steps: int = 200) -> JobLog:
    """Convenience one-shot: healthy if ``reason`` is None."""
    generator = LogGenerator(seed)
    if reason is None:
        return generator.healthy_log(n_steps=n_steps)
    return generator.failed_log(reason, n_steps=n_steps)


_ANSI_CODES = ["\x1b[31m", "\x1b[33m", "\x1b[0m", "\x1b[1m"]


def make_messy(log: JobLog, seed: int = 0, rank_prefixes: bool = True,
               ansi: bool = True, truncate: bool = True,
               shuffle_window: int = 6) -> JobLog:
    """Degrade a log the way multi-rank captures degrade in production.

    * ``rank_prefixes`` — lines get ``[rank NNN]:`` prefixes, as when
      the launcher multiplexes per-rank stdout;
    * ``ansi`` — stray terminal color codes survive into the capture;
    * ``truncate`` — some long lines are cut mid-payload;
    * ``shuffle_window`` — nearby lines reorder (rank interleaving is
      not time-ordered).

    The diagnosis pipeline must survive all of this (tested in
    ``tests/test_diagnosis.py``).
    """
    rng = np.random.default_rng(seed)
    lines = list(log.lines)
    if shuffle_window > 1:
        for start in range(0, len(lines) - shuffle_window,
                           shuffle_window):
            window = lines[start:start + shuffle_window]
            rng.shuffle(window)
            lines[start:start + shuffle_window] = window
    messy = []
    for line in lines:
        if rank_prefixes and rng.uniform() < 0.8:
            line = f"[rank {int(rng.integers(0, 2048))}]: {line}"
        if ansi and rng.uniform() < 0.15:
            code = _ANSI_CODES[int(rng.integers(len(_ANSI_CODES)))]
            line = code + line + "\x1b[0m"
        if truncate and len(line) > 100 and rng.uniform() < 0.10:
            line = line[:int(rng.integers(80, 100))]
        messy.append(line)
    return JobLog(lines=messy, reason=log.reason, category=log.category,
                  distractors=list(log.distractors))
