"""Reliability analysis: MTBF, goodput, and optimal checkpoint interval.

Connects the Table 3 failure statistics to the §6.1 checkpointing
decisions:

* per-category and job-level MTBF estimation from failure events;
* expected goodput of a pretraining job as a function of checkpoint
  interval, blocking cost, and restart cost;
* the Young/Daly optimal checkpoint interval
  ``tau* = sqrt(2 * C * MTBF)`` and an exact discrete optimizer.

The paper's 30-minute interval (§6.1) emerges as near-optimal for the
123B configuration once checkpointing is asynchronous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.failures.injector import FailureEvent
from repro.failures.taxonomy import FailureCategory


def mtbf_from_events(events: list[FailureEvent],
                     category: FailureCategory | None = None,
                     fleet_gpu_time_min: float | None = None) -> float:
    """Mean time between failures, in minutes.

    With ``fleet_gpu_time_min`` the estimate is normalized per GPU-hour
    of exposure (failures are counted against how much work ran);
    otherwise it is the mean observed time-to-failure of the events
    themselves — the per-job view.
    """
    selected = [event for event in events
                if category is None or event.category is category]
    if not selected:
        raise ValueError("no events in the selection")
    if fleet_gpu_time_min is not None:
        if fleet_gpu_time_min <= 0:
            raise ValueError("fleet_gpu_time_min must be positive")
        return fleet_gpu_time_min / len(selected)
    return sum(event.time_to_failure_min
               for event in selected) / len(selected)


@dataclass(frozen=True)
class GoodputModel:
    """Expected useful fraction of wall-clock for a failing job.

    Parameters are in consistent time units (seconds below):

    * ``mtbf`` — mean time between failures of the job;
    * ``checkpoint_cost`` — blocking time per checkpoint (async: the
      snapshot; sync: snapshot + persist);
    * ``restart_cost`` — downtime per failure (detection + reschedule +
      cold start).
    """

    mtbf: float
    checkpoint_cost: float
    restart_cost: float

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if self.checkpoint_cost < 0 or self.restart_cost < 0:
            raise ValueError("costs must be non-negative")

    def _raw_waste(self, interval: float) -> float:
        """Unclamped first-order waste: C/tau + tau/(2*MTBF) + R/MTBF.

        Strictly convex in ``interval`` — the optimizer works on this.
        """
        overhead = self.checkpoint_cost / interval
        rework = interval / (2.0 * self.mtbf)
        downtime = self.restart_cost / self.mtbf
        return overhead + rework + downtime

    def wasted_fraction(self, interval: float) -> float:
        """Expected fraction of time not spent making retained progress.

        First-order model (valid for interval << MTBF): checkpoint
        overhead ``C/tau`` + expected rework ``tau/(2*MTBF)`` + restart
        downtime ``R/MTBF``.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        return min(1.0, self._raw_waste(interval))

    def goodput(self, interval: float) -> float:
        """1 - wasted fraction at the given interval."""
        return max(0.0, 1.0 - self.wasted_fraction(interval))

    def young_daly_interval(self) -> float:
        """The classic first-order optimum: sqrt(2 * C * MTBF)."""
        if self.checkpoint_cost == 0:
            return 0.0
        return math.sqrt(2.0 * self.checkpoint_cost * self.mtbf)

    def optimal_interval(self, low: float = 1.0,
                         high: float | None = None,
                         tolerance: float = 0.5) -> float:
        """Golden-section search of the (convex) waste curve.

        The default upper bound is the MTBF itself — checkpointing less
        often than you fail is never useful.
        """
        if self.checkpoint_cost == 0:
            return low
        high = high if high is not None else self.mtbf
        high = max(high, low + tolerance)
        inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = low, high
        c = b - inv_phi * (b - a)
        d = a + inv_phi * (b - a)
        while b - a > tolerance:
            if self._raw_waste(c) < self._raw_waste(d):
                b = d
            else:
                a = c
            c = b - inv_phi * (b - a)
            d = a + inv_phi * (b - a)
        return (a + b) / 2.0


def interval_sweep(model: GoodputModel,
                   intervals: list[float]) -> list[dict]:
    """Goodput at each candidate interval (for the ablation bench)."""
    return [{"interval_s": interval,
             "goodput": model.goodput(interval),
             "wasted_fraction": model.wasted_fraction(interval)}
            for interval in intervals]
