"""Process-parallel chaos seed sweeps with a deterministic merge.

The robustness experiments (seed-sweep tables, fault-rate sensitivity)
run the same scenario under many seeds.  Each run is independent and
single-threaded, so the sweep is embarrassingly parallel — but the
*artifact* must not depend on how the pool happened to schedule the
work.  Two rules keep the merged result byte-identical across worker
counts:

* results are collected **in input-seed order** (``executor.map``
  preserves it), never in completion order;
* float aggregation uses :func:`math.fsum`, which is exact and hence
  independent of grouping.

``run_sweep(..., workers=1)`` runs serially in-process with no
executor involved; the determinism test pins serial == parallel.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from math import fsum
from typing import Sequence

from repro.obs.tracer import NULL_TRACER, TracerLike


@dataclass(frozen=True)
class SeedRun:
    """One scenario run's artifact, reduced to mergeable form."""

    seed: int
    #: ``asdict`` of the run's :class:`~repro.chaos.report.ChaosSummary`
    summary: dict
    #: sha256 over the run's formatted event-log text
    event_log_sha256: str
    #: number of event-log entries
    events: int


@dataclass(frozen=True)
class SweepResult:
    """All runs of one sweep, in input-seed order."""

    scenario: str
    seeds: tuple[int, ...]
    runs: tuple[SeedRun, ...]

    def merged(self) -> dict:
        """Aggregate the per-seed summaries into one record.

        Integer metrics are summed; float metrics are ``fsum``-ed (and
        so independent of worker count and completion order); per-kind
        dict metrics are merged key-wise.  Identification fields
        (scenario name, seed) are dropped in favour of the sweep's own.
        """
        totals: dict = {"scenario": self.scenario,
                        "seeds": list(self.seeds),
                        "runs": len(self.runs)}
        if not self.runs:
            return totals
        skip = {"scenario", "seed"}
        for name, value in self.runs[0].summary.items():
            if name in skip:
                continue
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                totals[name] = sum(run.summary[name]
                                   for run in self.runs)
            elif isinstance(value, float):
                totals[name] = fsum(run.summary[name]
                                    for run in self.runs)
            elif isinstance(value, dict):
                totals[name] = _merge_dicts(
                    [run.summary[name] for run in self.runs])
        totals["event_log_sha256"] = {
            str(run.seed): run.event_log_sha256 for run in self.runs}
        totals["events"] = sum(run.events for run in self.runs)
        return totals

    def to_json(self) -> str:
        """Canonical JSON of the merged record (stable key order)."""
        return json.dumps(self.merged(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """sha256 over the canonical JSON — the determinism pin."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def _merge_dicts(records: Sequence[dict]) -> dict:
    """Key-wise merge: ints summed, floats fsum-ed, dicts recursed.

    Nested metrics (e.g. per-kind recovery-stage tables) merge level
    by level, and float aggregation stays grouping-independent.
    """
    merged: dict = {}
    for record in records:
        for key in record:
            merged.setdefault(key, []).append(record[key])
    out: dict = {}
    for key in sorted(merged):
        values = merged[key]
        if isinstance(values[0], dict):
            out[key] = _merge_dicts(values)
        elif isinstance(values[0], float):
            out[key] = fsum(values)
        else:
            out[key] = sum(values)
    return out


def _run_seed(scenario_name: str, seed: int) -> SeedRun:
    """Run one (scenario, seed) — module-level so workers can pickle it."""
    from repro.chaos import BUNDLED_SCENARIOS
    from repro.chaos.harness import run_scenario

    scenario = BUNDLED_SCENARIOS[scenario_name].with_seed(seed)
    result = run_scenario(scenario)
    text = result.event_log_text()
    return SeedRun(
        seed=seed,
        summary=asdict(result.summary),
        event_log_sha256=hashlib.sha256(text.encode()).hexdigest(),
        events=len(result.event_log),
    )


def run_sweep(scenario: str, seeds: Sequence[int], workers: int = 1,
              tracer: TracerLike | None = None) -> SweepResult:
    """Run ``scenario`` under every seed; merge deterministically.

    ``workers`` > 1 fans runs out over a process pool; the merged
    artifact is byte-identical to the serial run regardless of worker
    count or scheduling.  Duplicate seeds are rejected — they would
    silently double-count in the merge.
    """
    from repro.chaos import BUNDLED_SCENARIOS

    if scenario not in BUNDLED_SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from: "
            + ", ".join(sorted(BUNDLED_SCENARIOS)))
    seeds = tuple(int(seed) for seed in seeds)
    if not seeds:
        raise ValueError("at least one seed is required")
    if len(set(seeds)) != len(seeds):
        raise ValueError("duplicate seeds in sweep")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    trace = tracer if tracer is not None else NULL_TRACER
    if workers == 1 or len(seeds) == 1:
        runs = tuple(_run_seed(scenario, seed) for seed in seeds)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            runs = tuple(pool.map(_run_seed,
                                  [scenario] * len(seeds), seeds))
    trace.count("sweep.runs", float(len(runs)))
    return SweepResult(scenario=scenario, seeds=seeds, runs=runs)
