"""Two-tier leaf–spine (fat-tree) fabric model.

The training step model derates collective bandwidth as a group spans
switch tiers (``repro.training.step.hierarchy_bandwidth_factor``).  This
module derives that derating from an explicit topology instead of
constants: nodes hang off leaf switches; leaves connect to spines with a
configurable oversubscription ratio; a collective's effective per-node
bandwidth is limited by the narrowest tier it crosses.

InfiniBand HDR fabrics like Acme's are commonly built exactly this way,
and the 8-node leaf domain matches the hierarchical-ZeRO subgroup the
paper settles on (64 GPUs = 8 nodes, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.linkhealth import (
    LinkHealth,
    leaf_link,
    nic_link,
    pod_link,
)


@dataclass(frozen=True)
class FatTreeConfig:
    """Leaf–spine fabric parameters."""

    nodes: int
    nodes_per_leaf: int = 8
    #: per-node NIC bandwidth into its leaf, bytes/s
    nic_bandwidth: float = 200e9 / 8.0
    #: downlink:uplink capacity ratio at the leaf (1.0 = non-blocking)
    leaf_oversubscription: float = 1.5
    #: additional oversubscription crossing spine pods (large fabrics
    #: often aggregate spines into pods with a narrower core)
    pod_oversubscription: float = 1.8
    leaves_per_pod: int = 8

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.nodes_per_leaf <= 0:
            raise ValueError("nodes and nodes_per_leaf must be positive")
        if self.leaf_oversubscription < 1.0 \
                or self.pod_oversubscription < 1.0:
            raise ValueError("oversubscription ratios must be >= 1")

    @property
    def leaf_count(self) -> int:
        return -(-self.nodes // self.nodes_per_leaf)  # ceil

    @property
    def pod_count(self) -> int:
        return -(-self.leaf_count // self.leaves_per_pod)

    @property
    def nodes_per_pod(self) -> int:
        return self.nodes_per_leaf * self.leaves_per_pod


class FatTree:
    """Locality queries over the leaf–spine fabric.

    An optional :class:`~repro.cluster.linkhealth.LinkHealth` overlay
    makes bandwidth queries time-aware: pass the sim clock via ``at``
    and downed/degraded links shrink the group factor.  With no overlay
    (or an empty one, or ``at=None``) every query is byte-identical to
    the static model.
    """

    def __init__(self, config: FatTreeConfig,
                 health: Optional[LinkHealth] = None) -> None:
        self.config = config
        self.health = health

    def leaf_of(self, node: int) -> int:
        """Leaf switch index of a node."""
        self._check(node)
        return node // self.config.nodes_per_leaf

    def pod_of(self, node: int) -> int:
        """Spine pod index of a node."""
        return self.leaf_of(node) // self.config.leaves_per_pod

    def _check(self, node: int) -> None:
        if not 0 <= node < self.config.nodes:
            raise IndexError(f"node {node} out of range")

    def tiers_crossed(self, nodes: list[int]) -> int:
        """0 = one leaf, 1 = one pod (cross-leaf), 2 = cross-pod."""
        if not nodes:
            raise ValueError("empty node group")
        leaves = {self.leaf_of(node) for node in nodes}
        if len(leaves) == 1:
            return 0
        pods = {self.pod_of(node) for node in nodes}
        return 1 if len(pods) == 1 else 2

    def group_links(self, nodes: list[int]) -> list[str]:
        """Fabric links a collective over ``nodes`` depends on.

        Every member's NIC, plus leaf uplinks when the group crosses
        leaves, plus pod uplinks when it crosses pods.  A single-node
        group generates no fabric traffic and depends on no link.
        Sorted for deterministic iteration.
        """
        if not nodes:
            raise ValueError("empty node group")
        if len(set(nodes)) == 1:
            return []
        links = {nic_link(node) for node in nodes}
        leaves = {self.leaf_of(node) for node in nodes}
        if len(leaves) > 1:
            links.update(leaf_link(leaf) for leaf in sorted(leaves))
            pods = {self.pod_of(node) for node in nodes}
            if len(pods) > 1:
                links.update(pod_link(pod) for pod in sorted(pods))
        return sorted(links)

    def group_health_factor(self, nodes: list[int], at: float) -> float:
        """Minimum live-health factor across the group's links."""
        if self.health is None or self.health.empty:
            return 1.0
        return self.health.group_factor(self.group_links(nodes), at)

    def down_links_crossed(self, nodes: list[int],
                           at: float) -> list[str]:
        """Links in the group's path that are down at ``at`` (sorted)."""
        if self.health is None or self.health.empty:
            return []
        return [link for link in self.group_links(nodes)
                if self.health.is_down(link, at)]

    def group_bandwidth_factor(self, nodes: list[int],
                               at: Optional[float] = None) -> float:
        """Effective per-node bandwidth derating for a collective.

        Within one leaf the NIC is the only constraint (factor 1.0);
        crossing leaves divides by the leaf oversubscription; crossing
        pods additionally divides by the pod oversubscription.  When a
        sim time ``at`` is given and a health overlay is attached, the
        static factor is further scaled by the sickest link on the
        group's path (0.0 when a crossed link is down).
        """
        tiers = self.tiers_crossed(nodes)
        factor = 1.0
        if tiers >= 1:
            factor /= self.config.leaf_oversubscription
        if tiers >= 2:
            factor /= self.config.pod_oversubscription
        if at is not None:
            factor *= self.group_health_factor(nodes, at)
        return factor

    def group_bandwidth(self, nodes: list[int],
                        at: Optional[float] = None) -> float:
        """Per-node effective collective bandwidth, bytes/s."""
        return (self.config.nic_bandwidth
                * self.group_bandwidth_factor(nodes, at=at))

    def contiguous_group(self, first_node: int, count: int) -> list[int]:
        """Nodes [first, first+count) — how gang placement lays out."""
        nodes = list(range(first_node, first_node + count))
        self._check(nodes[-1])
        return nodes

    def bisection_bandwidth(self) -> float:
        """Aggregate bandwidth between the fabric's two halves."""
        cfg = self.config
        half_nodes = cfg.nodes / 2.0
        raw = half_nodes * cfg.nic_bandwidth
        return raw / (cfg.leaf_oversubscription
                      * (cfg.pod_oversubscription
                         if cfg.pod_count > 1 else 1.0))


def factor_table(config: FatTreeConfig,
                 group_sizes: list[int] | None = None) -> list[dict]:
    """Bandwidth factors per contiguous group size (ablation view).

    Shows why hierarchical ZeRO caps shard groups at one leaf: the
    64-GPU (8-node) group is the largest with factor 1.0.
    """
    tree = FatTree(config)
    sizes = group_sizes or [1, 2, 4, 8, 16, 32, 64, 128, 256]
    rows = []
    for size in sizes:
        if size > config.nodes:
            break
        group = tree.contiguous_group(0, size)
        rows.append({
            "nodes": size,
            "gpus": size * 8,
            "tiers_crossed": tree.tiers_crossed(group),
            "bandwidth_factor": tree.group_bandwidth_factor(group),
            "per_node_gbps": tree.group_bandwidth(group) * 8 / 1e9,
        })
    return rows
