"""Shared parallel file system model.

Acme uses an all-NVMe shared parallel file system (§2.2).  Two properties
matter for the paper's experiments:

* checkpoint writes see an aggregate backend bandwidth (async checkpointing,
  §6.1, amortizes this off the training critical path);
* model *reads* from many concurrent evaluation trials contend on each
  node's storage NIC (Fig. 16 left), collapsing per-trial load speed.

Both are bandwidth arithmetic, which this module models directly, plus a
discrete-event interface used by the evaluation coordinator simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cluster.network import FairShareLink
from repro.sim.engine import Engine, Event


@dataclass(frozen=True)
class LoadRequest:
    """A request to read ``size_bytes`` onto a node through its storage NIC."""

    node: str
    size_bytes: float


class SharedStorage:
    """Analytic model of the shared parallel FS.

    Parameters
    ----------
    backend_bandwidth:
        Aggregate backend bandwidth in bytes/s (NVMe array + fabric).
    node_nic_bandwidth:
        Per-node storage NIC bandwidth in bytes/s (25 Gb/s on Seren).
    """

    def __init__(self, backend_bandwidth: float,
                 node_nic_bandwidth: float) -> None:
        if backend_bandwidth <= 0 or node_nic_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self.backend_bandwidth = backend_bandwidth
        self.node_nic_bandwidth = node_nic_bandwidth

    # -- steady-state arithmetic ------------------------------------------

    def per_trial_load_rate(self, trials_per_node: int,
                            total_trials: int | None = None) -> float:
        """Per-trial read bandwidth with contention.

        ``trials_per_node`` sharers contend on the node NIC; across the
        cluster all trials also share the backend.  The observed Fig. 16
        behaviour (collapse 1→8 trials on one node, flat 8→256 across
        nodes) falls out: the node NIC is the binding constraint.
        """
        if trials_per_node <= 0:
            raise ValueError("trials_per_node must be positive")
        node_share = self.node_nic_bandwidth / trials_per_node
        if total_trials:
            backend_share = self.backend_bandwidth / total_trials
            return min(node_share, backend_share)
        return node_share

    def load_time(self, size_bytes: float, trials_per_node: int = 1,
                  total_trials: int | None = None) -> float:
        """Seconds to load a checkpoint of ``size_bytes`` under contention."""
        return size_bytes / self.per_trial_load_rate(trials_per_node,
                                                     total_trials)

    def write_time(self, size_bytes: float, concurrent_writers: int = 1
                   ) -> float:
        """Seconds to persist ``size_bytes`` (checkpoint flush)."""
        if concurrent_writers <= 0:
            raise ValueError("concurrent_writers must be positive")
        rate = min(self.node_nic_bandwidth,
                   self.backend_bandwidth / concurrent_writers)
        return size_bytes / rate

    def stress_test(self, model_bytes: float, trial_counts: list[int],
                    gpus_per_node: int = 8) -> list[tuple[int, float]]:
        """Reproduce the Fig. 16 (left) sweep.

        For each total trial count, trials pack ``gpus_per_node`` per node
        (the paper sweeps 1..256 single-GPU trials); returns
        ``(trials, per-trial load rate in bytes/s)`` pairs.
        """
        results = []
        for trials in trial_counts:
            per_node = min(trials, gpus_per_node)
            rate = self.per_trial_load_rate(per_node, trials)
            results.append((trials, rate))
        return results


class StorageVolume:
    """Discrete-event storage endpoint for one node's NIC.

    Transfers time-share the NIC; for simplicity each transfer observes the
    contention level at the moment it starts (adequate because evaluation
    loads in the coordinator start in batches).
    """

    def __init__(self, engine: Engine, nic_bandwidth: float) -> None:
        self.engine = engine
        self.link = FairShareLink(nic_bandwidth)
        self.active_transfers = 0

    def read(self, size_bytes: float) -> Event:
        """Start a read; the returned event fires on completion."""
        self.active_transfers += 1
        duration = self.link.transfer_time(size_bytes,
                                           self.active_transfers)
        done = self.engine.event()

        def finish() -> None:
            self.active_transfers -= 1
            done.succeed(size_bytes)

        self.engine.call_after(duration, finish)
        return done

    def read_process(self, size_bytes: float) -> Iterator:
        """Generator form for use inside simulation processes."""
        yield self.read(size_bytes)
