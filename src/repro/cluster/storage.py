"""Shared parallel file system model, plus injectable storage faults.

Acme uses an all-NVMe shared parallel file system (§2.2).  Two properties
matter for the paper's experiments:

* checkpoint writes see an aggregate backend bandwidth (async checkpointing,
  §6.1, amortizes this off the training critical path);
* model *reads* from many concurrent evaluation trials contend on each
  node's storage NIC (Fig. 16 left), collapsing per-trial load speed.

Both are bandwidth arithmetic, which this module models directly, plus a
discrete-event interface used by the evaluation coordinator simulation.

The second half of the module is the **storage fault domain**: Table 3
lists network-storage outages as a recurring Kalos failure class, so the
blob-storage protocol the checkpointers persist through (``write`` /
``read`` / ``keys`` / ``delete``) can be wrapped in fault decorators —
:class:`FlakyStorage` (outages), :class:`SlowStorage` (degraded
bandwidth), and :class:`CorruptingStorage` (silent bit rot) — each with
seeded randomness and/or schedulable fault windows measured against a
pluggable :class:`MonotonicClock` / :class:`VirtualClock`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.cluster.network import FairShareLink
from repro.sim.engine import Engine, Event


class StorageError(OSError):
    """A storage-backend operation failed (possibly transiently)."""


class StorageUnavailableError(StorageError):
    """The storage backend is unreachable (outage window or flake)."""


@dataclass(frozen=True)
class LoadRequest:
    """A request to read ``size_bytes`` onto a node through its storage NIC."""

    node: str
    size_bytes: float


class SharedStorage:
    """Analytic model of the shared parallel FS.

    Parameters
    ----------
    backend_bandwidth:
        Aggregate backend bandwidth in bytes/s (NVMe array + fabric).
    node_nic_bandwidth:
        Per-node storage NIC bandwidth in bytes/s (25 Gb/s on Seren).
    """

    def __init__(self, backend_bandwidth: float,
                 node_nic_bandwidth: float) -> None:
        if backend_bandwidth <= 0 or node_nic_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self.backend_bandwidth = backend_bandwidth
        self.node_nic_bandwidth = node_nic_bandwidth

    # -- steady-state arithmetic ------------------------------------------

    def per_trial_load_rate(self, trials_per_node: int,
                            total_trials: int | None = None) -> float:
        """Per-trial read bandwidth with contention.

        ``trials_per_node`` sharers contend on the node NIC; across the
        cluster all trials also share the backend.  The observed Fig. 16
        behaviour (collapse 1→8 trials on one node, flat 8→256 across
        nodes) falls out: the node NIC is the binding constraint.
        """
        if trials_per_node <= 0:
            raise ValueError("trials_per_node must be positive")
        node_share = self.node_nic_bandwidth / trials_per_node
        if total_trials:
            backend_share = self.backend_bandwidth / total_trials
            return min(node_share, backend_share)
        return node_share

    def load_time(self, size_bytes: float, trials_per_node: int = 1,
                  total_trials: int | None = None) -> float:
        """Seconds to load a checkpoint of ``size_bytes`` under contention."""
        return size_bytes / self.per_trial_load_rate(trials_per_node,
                                                     total_trials)

    def write_time(self, size_bytes: float, concurrent_writers: int = 1
                   ) -> float:
        """Seconds to persist ``size_bytes`` (checkpoint flush)."""
        if concurrent_writers <= 0:
            raise ValueError("concurrent_writers must be positive")
        rate = min(self.node_nic_bandwidth,
                   self.backend_bandwidth / concurrent_writers)
        return size_bytes / rate

    def stress_test(self, model_bytes: float, trial_counts: list[int],
                    gpus_per_node: int = 8) -> list[tuple[int, float]]:
        """Reproduce the Fig. 16 (left) sweep.

        For each total trial count, trials pack ``gpus_per_node`` per node
        (the paper sweeps 1..256 single-GPU trials); returns
        ``(trials, per-trial load rate in bytes/s)`` pairs.
        """
        results = []
        for trials in trial_counts:
            per_node = min(trials, gpus_per_node)
            rate = self.per_trial_load_rate(per_node, trials)
            results.append((trials, rate))
        return results


class StorageVolume:
    """Discrete-event storage endpoint for one node's NIC.

    Transfers time-share the NIC; for simplicity each transfer observes the
    contention level at the moment it starts (adequate because evaluation
    loads in the coordinator start in batches).
    """

    def __init__(self, engine: Engine, nic_bandwidth: float) -> None:
        self.engine = engine
        self.link = FairShareLink(nic_bandwidth)
        self.active_transfers = 0

    def read(self, size_bytes: float) -> Event:
        """Start a read; the returned event fires on completion."""
        self.active_transfers += 1
        duration = self.link.transfer_time(size_bytes,
                                           self.active_transfers)
        done = self.engine.event()

        def finish() -> None:
            self.active_transfers -= 1
            done.succeed(size_bytes)

        self.engine.call_after(duration, finish)
        return done

    def read_process(self, size_bytes: float) -> Iterator:
        """Generator form for use inside simulation processes."""
        yield self.read(size_bytes)


# -- clocks ----------------------------------------------------------------


class MonotonicClock:
    """Wall-clock time source: the default for real checkpointers."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class VirtualClock:
    """A clock whose ``sleep`` merely advances virtual time.

    Used by simulations (and tests) so retry backoff and fault windows
    consume *simulated* seconds deterministically instead of real ones.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    advance = sleep


# -- fault decorators -------------------------------------------------------


def _validated_windows(windows) -> tuple[tuple[float, float], ...] | None:
    if windows is None:
        return None
    parsed = tuple((float(start), float(end)) for start, end in windows)
    for start, end in parsed:
        if end <= start:
            raise ValueError(f"fault window [{start}, {end}) is empty")
    return parsed


class _FaultDecorator:
    """Base for fault wrappers over the blob-storage protocol.

    ``windows`` are half-open ``[start, end)`` intervals on ``clock``;
    a decorator's fault behaviour is *armed* inside any window.  With
    ``windows=None`` arming is left to the subclass's probabilistic
    trigger (seeded), so decorators compose for both deterministic
    chaos schedules and randomized unit tests.
    """

    def __init__(self, inner, windows=None, clock=None) -> None:
        self.inner = inner
        self.windows = _validated_windows(windows)
        self.clock = clock or MonotonicClock()

    def _in_window(self) -> bool:
        if self.windows is None:
            return False
        now = self.clock.now()
        return any(start <= now < end for start, end in self.windows)

    # pass-through protocol; subclasses override what they perturb
    def write(self, key: str, blob: bytes) -> None:
        self.inner.write(key, blob)

    def read(self, key: str) -> bytes:
        return self.inner.read(key)

    def keys(self) -> list[str]:
        return self.inner.keys()

    def delete(self, key: str) -> None:
        self.inner.delete(key)


class FlakyStorage(_FaultDecorator):
    """Fails every operation during outage windows, plus an optional
    seeded per-operation failure rate outside them."""

    def __init__(self, inner, windows=None, fail_rate: float = 0.0,
                 seed: int = 0, clock=None) -> None:
        super().__init__(inner, windows, clock)
        if not 0.0 <= fail_rate <= 1.0:
            raise ValueError("fail_rate must be in [0, 1]")
        self.fail_rate = fail_rate
        self._rng = np.random.default_rng(seed)
        self.faults_injected = 0

    def _maybe_fail(self, op: str) -> None:
        if self._in_window() or (self.fail_rate > 0.0
                                 and float(self._rng.uniform())
                                 < self.fail_rate):
            self.faults_injected += 1
            raise StorageUnavailableError(
                f"storage backend unavailable (injected, op={op})")

    def write(self, key: str, blob: bytes) -> None:
        self._maybe_fail("write")
        self.inner.write(key, blob)

    def read(self, key: str) -> bytes:
        self._maybe_fail("read")
        return self.inner.read(key)

    def keys(self) -> list[str]:
        self._maybe_fail("keys")
        return self.inner.keys()

    def delete(self, key: str) -> None:
        self._maybe_fail("delete")
        self.inner.delete(key)


class SlowStorage(_FaultDecorator):
    """Adds ``delay`` clock-seconds to reads and writes.

    With windows the slowdown applies only inside them; with
    ``windows=None`` every read/write is slow (a permanently saturated
    backend).  Against a :class:`VirtualClock` the delay consumes
    virtual time only — which is exactly how the chaos harness charges
    storage slowness against a persist deadline without real sleeps.
    """

    def __init__(self, inner, delay: float, windows=None,
                 clock=None) -> None:
        super().__init__(inner, windows, clock)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay
        self.delays_injected = 0
        self.total_delay = 0.0

    def _active(self) -> bool:
        return self._in_window() if self.windows is not None else True

    def _maybe_stall(self) -> None:
        if self.delay > 0.0 and self._active():
            self.delays_injected += 1
            self.total_delay += self.delay
            self.clock.sleep(self.delay)

    def write(self, key: str, blob: bytes) -> None:
        self._maybe_stall()
        self.inner.write(key, blob)

    def read(self, key: str) -> bytes:
        self._maybe_stall()
        return self.inner.read(key)


class CorruptingStorage(_FaultDecorator):
    """Silently flips bytes in blobs written during corruption windows
    (or, seeded, at a per-write ``corrupt_rate``).

    The write *succeeds* — the damage only surfaces when a restore
    checksums the generation, which is what forces the multi-generation
    fallback path.
    """

    def __init__(self, inner, windows=None, corrupt_rate: float = 0.0,
                 seed: int = 0, clock=None) -> None:
        super().__init__(inner, windows, clock)
        if not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError("corrupt_rate must be in [0, 1]")
        self.corrupt_rate = corrupt_rate
        self._rng = np.random.default_rng(seed)
        self.corrupted_writes = 0
        self.corrupted_keys: set[str] = set()

    @staticmethod
    def _corrupt(blob: bytes) -> bytes:
        if not blob:
            return blob
        index = len(blob) // 2
        return (blob[:index] + bytes([blob[index] ^ 0xFF])
                + blob[index + 1:])

    def write(self, key: str, blob: bytes) -> None:
        if self._in_window() or (self.corrupt_rate > 0.0
                                 and float(self._rng.uniform())
                                 < self.corrupt_rate):
            self.corrupted_writes += 1
            self.corrupted_keys.add(key)
            blob = self._corrupt(blob)
        else:
            self.corrupted_keys.discard(key)
        self.inner.write(key, blob)
