"""Cluster hardware model.

Models the two Acme clusters (Table 1 of the paper): node specifications,
GPUs, NVLink/InfiniBand interconnect, and the shared all-NVMe parallel file
system.  Everything is a capacity/contention model — sufficient for the
paper's characterization figures, which depend only on resource arithmetic.
"""

from repro.cluster.machine import GpuSpec, NodeSpec, Gpu, Node, A100_SXM_80GB
from repro.cluster.cluster import Cluster, make_seren, make_kalos, make_acme
from repro.cluster.network import Link, FairShareLink, NetworkFabric
from repro.cluster.storage import SharedStorage, LoadRequest
from repro.cluster.topology import ClusterTopology
from repro.cluster.fattree import FatTree, FatTreeConfig, factor_table
from repro.cluster.linkhealth import (
    LinkFault,
    LinkHealth,
    leaf_link,
    nic_link,
    pod_link,
)

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "Gpu",
    "Node",
    "A100_SXM_80GB",
    "Cluster",
    "make_seren",
    "make_kalos",
    "make_acme",
    "Link",
    "FairShareLink",
    "NetworkFabric",
    "SharedStorage",
    "LoadRequest",
    "ClusterTopology",
    "FatTree",
    "FatTreeConfig",
    "factor_table",
    "LinkFault",
    "LinkHealth",
    "leaf_link",
    "nic_link",
    "pod_link",
]
