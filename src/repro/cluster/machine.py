"""Node and GPU hardware specifications.

Constants follow Table 1 and §2.2 of the paper: every node carries
8× NVIDIA A100-SXM 80GB GPUs and 2× Intel Xeon Platinum 8358P (128 threads),
NVLink/NVSwitch intra-node, and 200 Gb/s HDR InfiniBand inter-node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

GIB = 1024 ** 3
GB = 10 ** 9


@dataclass(frozen=True)
class GpuSpec:
    """Static properties of a GPU model."""

    name: str
    memory_bytes: int
    tdp_watts: float
    idle_watts: float
    peak_watts: float
    #: dense BF16 tensor-core throughput, FLOP/s
    peak_flops: float
    #: NVLink bandwidth per GPU (unidirectional), bytes/s
    nvlink_bandwidth: float
    #: host <-> device PCIe bandwidth, bytes/s
    pcie_bandwidth: float


#: The A100-SXM 80GB used throughout Acme.  312 TFLOP/s BF16 tensor core,
#: 400 W TDP (the paper observes idle ~60 W and excursions to ~600 W),
#: 600 GB/s NVLink (NVLink 3, per direction), ~25 GB/s effective PCIe 4.0.
A100_SXM_80GB = GpuSpec(
    name="A100-SXM-80GB",
    memory_bytes=80 * GIB,
    tdp_watts=400.0,
    idle_watts=60.0,
    peak_watts=600.0,
    peak_flops=312e12,
    nvlink_bandwidth=600e9,
    pcie_bandwidth=25e9,
)


@dataclass(frozen=True)
class NodeSpec:
    """Static properties of a compute node (one Table 1 row)."""

    name: str
    cpus: int
    gpus_per_node: int
    host_memory_bytes: int
    #: number of 200 Gb/s IB HCAs dedicated to application traffic
    compute_nics: int
    #: per-HCA application bandwidth, bytes/s (200 Gb/s HDR)
    nic_bandwidth: float
    #: bandwidth of the HCA (or share) that reaches remote storage, bytes/s.
    #: §6.2: Seren's storage NIC is 25 Gb/s.
    storage_bandwidth: float
    gpu: GpuSpec = A100_SXM_80GB

    @property
    def total_network_bandwidth(self) -> float:
        return self.compute_nics * self.nic_bandwidth


def seren_node_spec() -> NodeSpec:
    """Seren: 128 CPUs, 8 GPUs, 1 TB host memory, 1×200 Gb/s IB."""
    return NodeSpec(
        name="seren-node",
        cpus=128,
        gpus_per_node=8,
        host_memory_bytes=1024 * GIB,
        compute_nics=1,
        nic_bandwidth=200e9 / 8.0,
        storage_bandwidth=25e9 / 8.0,
    )


def kalos_node_spec() -> NodeSpec:
    """Kalos: 2 TB host memory, 4 application HCAs + 1 storage HCA."""
    return NodeSpec(
        name="kalos-node",
        cpus=128,
        gpus_per_node=8,
        host_memory_bytes=2048 * GIB,
        compute_nics=4,
        nic_bandwidth=200e9 / 8.0,
        storage_bandwidth=200e9 / 8.0,
    )


class NodeHealth(Enum):
    """Operational state used by the recovery toolkit (§6.1)."""

    HEALTHY = "healthy"
    FAULTY = "faulty"
    CORDONED = "cordoned"


@dataclass
class Gpu:
    """A single GPU's dynamic state.

    ``sm_activity`` / ``tc_activity`` are the DCGM-style instantaneous
    activity fractions in [0, 1]; ``memory_used`` is the allocated
    framebuffer in bytes.  The power model (``repro.monitor.power``) derives
    draw from these.
    """

    index: int
    spec: GpuSpec
    sm_activity: float = 0.0
    tc_activity: float = 0.0
    memory_used: int = 0
    job_id: str | None = None

    @property
    def busy(self) -> bool:
        return self.job_id is not None

    def assign(self, job_id: str) -> None:
        """Bind this GPU to a job."""
        if self.job_id is not None:
            raise RuntimeError(
                f"GPU {self.index} already assigned to {self.job_id}")
        self.job_id = job_id

    def free(self) -> None:
        """Release the GPU and clear its activity state."""
        self.job_id = None
        self.sm_activity = 0.0
        self.tc_activity = 0.0
        self.memory_used = 0

    def memory_fraction(self) -> float:
        """Used framebuffer as a fraction of capacity."""
        return self.memory_used / self.spec.memory_bytes


@dataclass
class Node:
    """A compute node: GPUs, CPUs, host memory, NICs."""

    name: str
    spec: NodeSpec
    gpus: list[Gpu] = field(default_factory=list)
    health: NodeHealth = NodeHealth.HEALTHY
    cpus_used: int = 0
    host_memory_used: int = 0

    def __post_init__(self) -> None:
        if not self.gpus:
            self.gpus = [Gpu(index=i, spec=self.spec.gpu)
                         for i in range(self.spec.gpus_per_node)]

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    def free_gpus(self) -> list[Gpu]:
        """The node's unallocated GPUs."""
        return [gpu for gpu in self.gpus if not gpu.busy]

    @property
    def free_gpu_count(self) -> int:
        return sum(1 for gpu in self.gpus if not gpu.busy)

    def allocate_gpus(self, count: int, job_id: str) -> list[Gpu]:
        """Assign ``count`` free GPUs to ``job_id``; raises if unavailable."""
        free = self.free_gpus()
        if count > len(free):
            raise RuntimeError(
                f"node {self.name}: requested {count} GPUs, "
                f"{len(free)} free")
        chosen = free[:count]
        for gpu in chosen:
            gpu.assign(job_id)
        return chosen

    def release_job(self, job_id: str) -> int:
        """Free every GPU held by ``job_id``; returns the number freed."""
        freed = 0
        for gpu in self.gpus:
            if gpu.job_id == job_id:
                gpu.free()
                freed += 1
        return freed

    def allocate_host_memory(self, amount: int) -> None:
        """Reserve host memory; raises when the node would overcommit."""
        if self.host_memory_used + amount > self.spec.host_memory_bytes:
            raise RuntimeError(
                f"node {self.name}: host memory exhausted "
                f"({self.host_memory_used + amount} > "
                f"{self.spec.host_memory_bytes})")
        self.host_memory_used += amount

    def release_host_memory(self, amount: int) -> None:
        """Return previously reserved host memory."""
        if amount > self.host_memory_used:
            raise RuntimeError("releasing more host memory than in use")
        self.host_memory_used -= amount

    @property
    def host_memory_free(self) -> int:
        return self.spec.host_memory_bytes - self.host_memory_used

    def cordon(self) -> None:
        """Mark the node unschedulable (used after fault detection)."""
        if self.health is NodeHealth.FAULTY:
            return  # escalated nodes stay out of service
        self.health = NodeHealth.CORDONED

    def mark_faulty(self) -> None:
        """Escalate a repeat offender: out of service until replaced.

        Unlike a cordon (lifted once an NCCL sweep clears the node), a
        faulty node must be physically repaired; ``uncordon`` refuses to
        return it to the pool.
        """
        self.health = NodeHealth.FAULTY

    def uncordon(self) -> None:
        """Return a repaired node to the schedulable pool."""
        if self.health is NodeHealth.FAULTY:
            raise RuntimeError(
                f"node {self.name} is marked faulty; it needs hardware "
                "replacement, not an uncordon")
        self.health = NodeHealth.HEALTHY

    @property
    def schedulable(self) -> bool:
        return self.health == NodeHealth.HEALTHY
