"""Cluster objects and the Seren/Kalos factories (Table 1).

A :class:`Cluster` owns its nodes, a topology/fabric, and the shared
storage; it exposes the aggregate GPU pool the scheduler allocates from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import (Node, NodeSpec, kalos_node_spec,
                                   seren_node_spec)
from repro.cluster.storage import SharedStorage
from repro.cluster.topology import ClusterTopology


@dataclass
class Cluster:
    """A homogeneous GPU cluster."""

    name: str
    nodes: list[Node]
    storage: SharedStorage
    scheduler_kind: str = "slurm"
    topology: ClusterTopology = field(init=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster must have nodes")
        self.topology = ClusterTopology(self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(node.gpu_count for node in self.nodes)

    @property
    def total_cpus(self) -> int:
        return sum(node.spec.cpus for node in self.nodes)

    @property
    def free_gpus(self) -> int:
        return sum(node.free_gpu_count for node in self.nodes
                   if node.schedulable)

    def schedulable_nodes(self) -> list[Node]:
        """Nodes that are healthy (not cordoned)."""
        return [node for node in self.nodes if node.schedulable]

    def find_nodes_with_free_gpus(self, gpus: int) -> list[tuple[Node, int]]:
        """Greedy placement: returns (node, gpus_from_node) covering ``gpus``.

        Large jobs are placed on whole nodes first (gang placement, as the
        paper's pretraining jobs require); returns an empty list if the
        demand cannot be met.
        """
        if gpus <= 0:
            raise ValueError("gpus must be positive")
        placement: list[tuple[Node, int]] = []
        remaining = gpus
        candidates = sorted(self.schedulable_nodes(),
                            key=lambda node: -node.free_gpu_count)
        for node in candidates:
            if remaining == 0:
                break
            take = min(node.free_gpu_count, remaining)
            if take > 0:
                placement.append((node, take))
                remaining -= take
        if remaining > 0:
            return []
        return placement

    def summary(self) -> dict:
        """Table 1 row for this cluster."""
        spec = self.nodes[0].spec
        return {
            "cluster": self.name,
            "cpus_per_node": spec.cpus,
            "gpus_per_node": spec.gpus_per_node,
            "memory_gb": spec.host_memory_bytes // (1024 ** 3),
            "network": (f"{spec.compute_nics}x"
                        f"{spec.nic_bandwidth * 8 / 1e9:.0f}Gb/s"),
            "nodes": self.node_count,
            "total_gpus": self.total_gpus,
        }


def _make_cluster(name: str, spec: NodeSpec, node_count: int,
                  scheduler_kind: str,
                  backend_bandwidth: float) -> Cluster:
    nodes = [Node(name=f"{name}-{index:04d}", spec=spec)
             for index in range(node_count)]
    storage = SharedStorage(backend_bandwidth=backend_bandwidth,
                            node_nic_bandwidth=spec.storage_bandwidth)
    return Cluster(name=name, nodes=nodes, storage=storage,
                   scheduler_kind=scheduler_kind)


def make_seren(node_count: int = 286) -> Cluster:
    """Seren: 286 nodes x 8 A100 = 2,288 GPUs, Slurm, 1 NIC/node."""
    return _make_cluster("seren", seren_node_spec(), node_count,
                         scheduler_kind="slurm",
                         backend_bandwidth=400e9)


def make_kalos(node_count: int = 302) -> Cluster:
    """Kalos: 302 nodes x 8 A100 = 2,416 GPUs, Kubernetes, 4+1 NICs/node."""
    return _make_cluster("kalos", kalos_node_spec(), node_count,
                         scheduler_kind="kubernetes",
                         backend_bandwidth=800e9)


def make_acme(seren_nodes: int = 286, kalos_nodes: int = 302
              ) -> dict[str, Cluster]:
    """Both Acme LLM clusters, keyed by name."""
    return {"seren": make_seren(seren_nodes),
            "kalos": make_kalos(kalos_nodes)}
