"""Time-windowed link health overlay for the cluster fabric.

The paper's most frequent and most disruptive interruptions come from
the network fabric (Table 3: NVLink/IB link errors, NIC flaps, switch
failures).  This module makes the otherwise-immutable fabric models
(`repro.cluster.network.NetworkFabric`, `repro.cluster.fattree.FatTree`)
degradable: a :class:`LinkHealth` overlay records ``[start, end)``
fault windows on the simulation clock, and the fabric consults it when
computing rates and bandwidth factors.

Three fault shapes are supported, mirroring the chaos fault kinds:

- ``link_down`` — a link carries no traffic for the window (factor 0).
- ``link_degraded`` — a link runs at a fraction of nominal bandwidth.
- ``switch_down`` — a leaf switch dies; every link it terminates (the
  member nodes' NICs and the leaf's uplink) goes down for the window.

The overlay is a strict no-op when empty: an armed-but-empty
:class:`LinkHealth` must never perturb rates, placement, or event
ordering, so seeded runs without network faults stay byte-identical.

Link naming follows the fat-tree tiers (node/leaf/pod indices are the
integer coordinates used by :class:`~repro.cluster.fattree.FatTree`):

- ``nic:{node}`` — the node's NIC into its leaf switch.
- ``leaf:{leaf}`` — the leaf switch's aggregate uplink to the spine.
- ``pod:{pod}`` — the pod's aggregate uplink to the core.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.sim.fastpath import fast_path_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.fattree import FatTreeConfig

#: bounded per-(link, at) memo size; cleared wholesale when exceeded
_MEMO_MAX = 8192


def nic_link(node: int) -> str:
    """Link id of a node's NIC into its leaf."""
    return f"nic:{node}"


def leaf_link(leaf: int) -> str:
    """Link id of a leaf switch's uplink into the spine."""
    return f"leaf:{leaf}"


def pod_link(pod: int) -> str:
    """Link id of a pod's uplink into the core."""
    return f"pod:{pod}"


@dataclass(frozen=True)
class LinkFault:
    """One ``[start, end)`` health window on a named link.

    ``factor`` is the fraction of nominal bandwidth available during
    the window: ``0.0`` means the link is down, ``0 < factor < 1``
    means degraded.  A factor of 1.0 would be a no-op and is rejected.
    """

    link: str
    start: float
    end: float
    factor: float = 0.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("fault window must have end > start")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError("factor must be in [0, 1)")

    def active_at(self, at: float) -> bool:
        """Whether the window covers sim time ``at`` (half-open)."""
        return self.start <= at < self.end


class LinkHealth:
    """Windowed health state for a set of named links.

    Queries are pure functions of (link, time): the overlay never
    mutates on read, so the same schedule replayed with the same clock
    yields identical answers — the property the chaos goldens pin.
    """

    def __init__(self, faults: Iterable[LinkFault] = ()) -> None:
        self._faults: list[LinkFault] = list(faults)
        #: per-link piecewise-constant factor timeline, built lazily:
        #: (sorted boundaries, factor on [boundary[i], boundary[i+1]))
        self._timelines: dict[str, tuple[list[float], list[float]]] = {}
        self._memo: dict[tuple[str, float], float] = {}

    @property
    def empty(self) -> bool:
        """True when no fault windows are registered (strict no-op)."""
        return not self._faults

    @property
    def faults(self) -> tuple[LinkFault, ...]:
        return tuple(self._faults)

    def add(self, fault: LinkFault) -> None:
        """Register a fault window (invalidates cached timelines)."""
        self._faults.append(fault)
        self._timelines.pop(fault.link, None)
        if self._memo:
            self._memo.clear()

    def link_down(self, link: str, start: float, end: float) -> None:
        """Take ``link`` fully down for ``[start, end)``.

        An empty window (``end <= start``, e.g. a zero-duration chaos
        fault) is a strict no-op: nothing is registered, ``empty``
        stays true, and no degenerate ``[t, t)`` entry can perturb
        timelines or memo state.
        """
        if end <= start:
            return
        self.add(LinkFault(link=link, start=start, end=end, factor=0.0))

    def link_degraded(self, link: str, start: float, end: float,
                      factor: float) -> None:
        """Run ``link`` at ``factor`` of nominal for ``[start, end)``.

        Empty windows (``end <= start``) are strict no-ops, as in
        :meth:`link_down`; a non-positive factor is still rejected.
        """
        if factor <= 0.0:
            raise ValueError("degraded factor must be positive; "
                             "use link_down for factor 0")
        if end <= start:
            return
        self.add(LinkFault(link=link, start=start, end=end,
                           factor=factor))

    def switch_down(self, config: "FatTreeConfig", leaf: int,
                    start: float, end: float) -> tuple[str, ...]:
        """Take a leaf switch down: derive and down its incident links.

        Returns the derived link ids (member-node NICs plus the leaf
        uplink) so callers can log or assert against the expansion.
        An empty window returns ``()`` and registers nothing.
        """
        if not 0 <= leaf < config.leaf_count:
            raise ValueError(f"leaf {leaf} out of range")
        if end <= start:
            return ()
        first = leaf * config.nodes_per_leaf
        last = min(first + config.nodes_per_leaf, config.nodes)
        derived = tuple(nic_link(node) for node in range(first, last)
                        ) + (leaf_link(leaf),)
        for link in derived:
            self.link_down(link, start, end)
        return derived

    def factor(self, link: str, at: float) -> float:
        """Bandwidth factor for ``link`` at sim time ``at``.

        1.0 when healthy; the minimum factor across overlapping
        windows otherwise (a down window dominates a degraded one).

        Fast path: a lazily built piecewise-constant timeline per link
        answered by bisect, fronted by a bounded ``(link, at)`` memo —
        chaos storms query the same (link, time) pairs repeatedly from
        rate recomputation.  The timeline is exactly equivalent to the
        window scan (:meth:`_factor_scan`): the factor is constant
        between consecutive window boundaries.
        """
        if not fast_path_enabled():
            return self._factor_scan(link, at)
        key = (link, at)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        timeline = self._timelines.get(link)
        if timeline is None:
            timeline = self._build_timeline(link)
            self._timelines[link] = timeline
        boundaries, factors = timeline
        segment = bisect_right(boundaries, at) - 1
        result = 1.0 if segment < 0 else factors[segment]
        if len(self._memo) >= _MEMO_MAX:
            self._memo.clear()
        self._memo[key] = result
        return result

    def _factor_scan(self, link: str, at: float) -> float:
        """Reference linear scan over all fault windows."""
        factor = 1.0
        for fault in self._faults:
            if fault.link == link and fault.active_at(at):
                factor = min(factor, fault.factor)
        return factor

    def _build_timeline(self, link: str
                        ) -> tuple[list[float], list[float]]:
        """Piecewise-constant factor timeline for one link.

        Boundaries are the sorted distinct window starts/ends; the
        factor on ``[boundaries[i], boundaries[i+1])`` is the minimum
        over windows active there (evaluated at the segment start —
        windows are half-open, so activity cannot change inside a
        segment).  Beyond the last boundary every window has ended and
        the factor is 1.0.
        """
        windows = [fault for fault in self._faults if fault.link == link]
        boundaries = sorted({edge for fault in windows
                             for edge in (fault.start, fault.end)})
        factors = []
        for start in boundaries:
            factor = 1.0
            for fault in windows:
                if fault.active_at(start):
                    factor = min(factor, fault.factor)
            factors.append(factor)
        return boundaries, factors

    def is_down(self, link: str, at: float) -> bool:
        """Whether ``link`` carries no traffic at ``at``."""
        return self.factor(link, at) == 0.0

    def group_factor(self, links: Iterable[str], at: float) -> float:
        """Minimum factor across a set of links (path health)."""
        factor = 1.0
        for link in links:
            factor = min(factor, self.factor(link, at))
        return factor

    def down_links(self, at: float) -> tuple[str, ...]:
        """Sorted ids of all links down at ``at``."""
        down = {fault.link for fault in self._faults
                if fault.factor == 0.0 and fault.active_at(at)}
        return tuple(sorted(down))

    def last_end(self) -> float:
        """End of the latest fault window (0.0 when empty)."""
        if not self._faults:
            return 0.0
        return max(fault.end for fault in self._faults)
