"""Cluster topology: which GPUs live where, and link construction.

Builds a :class:`repro.cluster.network.NetworkFabric` mirroring the paper's
architecture — NVLink/NVSwitch inside a node, HDR InfiniBand between nodes,
and a separate path to storage.  The training step model asks the topology
for effective bandwidths between parallelism groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import Node
from repro.cluster.network import Link, NetworkFabric


@dataclass(frozen=True)
class GpuAddress:
    """Global coordinates of a GPU."""

    node_index: int
    local_index: int

    def global_index(self, gpus_per_node: int) -> int:
        """Flatten to a global GPU rank."""
        return self.node_index * gpus_per_node + self.local_index


class ClusterTopology:
    """Maps global GPU ranks onto nodes and exposes bandwidth queries."""

    def __init__(self, nodes: list[Node]) -> None:
        if not nodes:
            raise ValueError("topology needs at least one node")
        self.nodes = nodes
        self.gpus_per_node = nodes[0].spec.gpus_per_node
        for node in nodes:
            if node.spec.gpus_per_node != self.gpus_per_node:
                raise ValueError("heterogeneous nodes are not supported")
        self.fabric = self._build_fabric()

    def _build_fabric(self) -> NetworkFabric:
        fabric = NetworkFabric()
        for index, node in enumerate(self.nodes):
            spec = node.spec
            fabric.add_link(Link(f"nic/{index}",
                                 spec.total_network_bandwidth))
            fabric.add_link(Link(f"storage-nic/{index}",
                                 spec.storage_bandwidth))
            for gpu in range(spec.gpus_per_node):
                fabric.add_link(Link(f"pcie/{index}/{gpu}",
                                     spec.gpu.pcie_bandwidth))
        return fabric

    @property
    def total_gpus(self) -> int:
        return len(self.nodes) * self.gpus_per_node

    def address(self, rank: int) -> GpuAddress:
        """Global rank -> (node, local GPU)."""
        if not 0 <= rank < self.total_gpus:
            raise IndexError(f"rank {rank} out of range")
        return GpuAddress(rank // self.gpus_per_node,
                          rank % self.gpus_per_node)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two global ranks share a node."""
        return (self.address(rank_a).node_index
                == self.address(rank_b).node_index)

    def group_bandwidth(self, ranks: list[int]) -> float:
        """Effective per-GPU collective bandwidth within a rank group.

        If the whole group lives in one node, NVLink bandwidth applies.
        Otherwise the group's collectives cross node NICs; each GPU's share
        is the node's application NIC bandwidth divided by the number of
        group members on that node (they share the NIC during the
        collective).
        """
        if not ranks:
            raise ValueError("empty rank group")
        nodes_involved: dict[int, int] = {}
        for rank in ranks:
            addr = self.address(rank)
            nodes_involved[addr.node_index] = (
                nodes_involved.get(addr.node_index, 0) + 1)
        if len(nodes_involved) == 1:
            return self.nodes[0].spec.gpu.nvlink_bandwidth
        worst = float("inf")
        for node_index, members in nodes_involved.items():
            spec = self.nodes[node_index].spec
            worst = min(worst, spec.total_network_bandwidth / members)
        return worst

    def contiguous_group(self, start_rank: int, size: int) -> list[int]:
        """Ranks [start, start+size) — the layout 3D parallelism uses."""
        if start_rank < 0 or start_rank + size > self.total_gpus:
            raise IndexError("group out of range")
        return list(range(start_rank, start_rank + size))

    def strided_group(self, start_rank: int, stride: int, size: int
                      ) -> list[int]:
        """Ranks start, start+stride, ... (pipeline/data parallel groups)."""
        ranks = [start_rank + i * stride for i in range(size)]
        if ranks and ranks[-1] >= self.total_gpus:
            raise IndexError("group out of range")
        return ranks
