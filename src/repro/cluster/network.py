"""Bandwidth-sharing network model.

Transfers through a shared link receive a max-min fair share of its
capacity.  This is the contention model behind the model-loading stress
test (Fig. 16 left): N concurrent single-GPU evaluation trials on one node
share the node's 25 Gb/s storage NIC, so per-trial loading speed collapses
roughly as 1/N until trials spread across nodes.

The model is analytic (progressive filling) rather than packet-level: the
paper's observations are about steady-state throughput, not transport
dynamics.

Two implementations back :func:`max_min_fair_rates`:

* :func:`max_min_fair_rates_scalar` — the original pure-python
  progressive filling, kept bit-for-bit as the reference path;
* a numpy-vectorized filling over the flow/link incidence matrix, used
  on the fast path once the flow count justifies the array setup cost.

Both run the same algorithm; results agree to float-summation noise
(≤1e-9 relative), which the property tests in
``tests/test_network_properties.py`` pin.  Small flow sets additionally
hit a bounded result cache keyed by the used-link capacities and flow
tuples — the model-loading stress test asks for the same handful of
configurations thousands of times per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.cluster.linkhealth import LinkHealth
from repro.sim.fastpath import fast_path_enabled


@dataclass(frozen=True)
class Link:
    """A named capacity: bytes/s."""

    name: str
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


@dataclass
class Flow:
    """A transfer traversing an ordered list of links."""

    flow_id: str
    links: tuple[str, ...]
    #: optional per-flow cap (e.g. a single GPU's PCIe ingest rate)
    rate_cap: float = float("inf")


#: flow count at which the vectorized filling beats the scalar loop
_VECTOR_MIN_FLOWS = 32
#: bounded small-N result cache (cleared wholesale when full)
_RATE_CACHE_MAX = 4096
_rate_cache: dict[tuple, dict[str, float]] = {}


def clear_rate_cache() -> None:
    """Drop all cached small-N results (test isolation hook)."""
    _rate_cache.clear()


def _validate_links(links: dict[str, float],
                    flows: Sequence[Flow]) -> None:
    for flow in flows:
        for link in flow.links:
            if link not in links:
                raise ValueError(f"flow {flow.flow_id} uses unknown "
                                 f"link {link!r}")


def max_min_fair_rates(links: dict[str, float],
                       flows: Sequence[Flow]) -> dict[str, float]:
    """Compute max-min fair flow rates over shared links.

    Progressive filling: repeatedly find the bottleneck link (smallest
    equal-share rate among unfrozen flows), freeze its flows at that rate,
    and subtract.  Per-flow ``rate_cap`` is treated as a virtual one-flow
    link.  A link capacity of zero (e.g. a downed link under a
    :class:`~repro.cluster.linkhealth.LinkHealth` overlay) pins every
    flow crossing it to rate 0.

    Dispatches to a numpy filling for large flow sets on the fast path
    and memoizes small flow sets; with the fast path off this *is*
    :func:`max_min_fair_rates_scalar`.

    Returns a mapping flow_id -> bytes/s.
    """
    _validate_links(links, flows)
    if not fast_path_enabled():
        return _fill_scalar(links, flows)
    if len(flows) >= _VECTOR_MIN_FLOWS:
        return _fill_vector(links, flows)
    used = sorted({link for flow in flows for link in flow.links})
    key = (tuple((name, links[name]) for name in used),
           tuple((flow.flow_id, flow.links, flow.rate_cap)
                 for flow in flows))
    cached = _rate_cache.get(key)
    if cached is not None:
        return dict(cached)
    rates = _fill_scalar(links, flows)
    if len(_rate_cache) >= _RATE_CACHE_MAX:
        _rate_cache.clear()
    _rate_cache[key] = dict(rates)
    return rates


def max_min_fair_rates_scalar(links: dict[str, float],
                              flows: Sequence[Flow]) -> dict[str, float]:
    """Reference progressive filling (pure python, no cache).

    The behaviour every optimized path must reproduce; the property
    tests compare the vectorized filling against this function.
    """
    _validate_links(links, flows)
    return _fill_scalar(links, flows)


def _fill_scalar(links: dict[str, float],
                 flows: Sequence[Flow]) -> dict[str, float]:
    remaining = dict(links)
    active: dict[str, Flow] = {flow.flow_id: flow for flow in flows}
    rates: dict[str, float] = {}
    while active:
        # Share each link equally among the active flows crossing it.
        link_users: dict[str, int] = {}
        for flow in active.values():
            for link in flow.links:
                link_users[link] = link_users.get(link, 0) + 1
        bottleneck_rate = float("inf")
        for link, users in link_users.items():
            share = remaining[link] / users
            bottleneck_rate = min(bottleneck_rate, share)
        # Float subtraction can leave a link epsilon-negative; a share
        # below zero is physically zero (downed-link flows freeze at 0).
        bottleneck_rate = max(bottleneck_rate, 0.0)
        # Per-flow caps can bind before any link does.
        capped = [flow for flow in active.values()
                  if flow.rate_cap <= bottleneck_rate]
        if capped:
            for flow in capped:
                rates[flow.flow_id] = flow.rate_cap
                for link in flow.links:
                    remaining[link] -= flow.rate_cap
                del active[flow.flow_id]
            continue
        frozen = [flow for flow in active.values()
                  if any(remaining[link] / link_users[link] <=
                         bottleneck_rate + 1e-12
                         for link in flow.links)]
        for flow in frozen:
            rates[flow.flow_id] = bottleneck_rate
            for link in flow.links:
                remaining[link] -= bottleneck_rate
            del active[flow.flow_id]
    return rates


def _fill_vector(links: dict[str, float],
                 flows: Sequence[Flow]) -> dict[str, float]:
    """Numpy progressive filling over the flow/link incidence matrix.

    Mirrors :func:`_fill_scalar` round for round — equal shares,
    cap-before-freeze, the same ``1e-12`` freeze tolerance, duplicate
    links in a flow counted per occurrence — but each round is a
    handful of array ops instead of per-flow python loops.
    """
    used = sorted({link for flow in flows for link in flow.links})
    index = {name: position for position, name in enumerate(used)}
    n_flows, n_links = len(flows), len(used)
    incidence = np.zeros((n_flows, n_links))
    caps = np.empty(n_flows)
    for row, flow in enumerate(flows):
        for link in flow.links:
            incidence[row, index[link]] += 1.0
        caps[row] = flow.rate_cap
    remaining = np.array([links[name] for name in used], dtype=float)
    crosses = incidence > 0.0
    active = np.ones(n_flows, dtype=bool)
    rates = np.zeros(n_flows)
    while active.any():
        users = incidence[active].sum(axis=0)
        shared = users > 0.0
        shares = np.full(n_links, np.inf)
        np.divide(remaining, users, out=shares, where=shared)
        bottleneck = (max(float(shares[shared].min()), 0.0)
                      if shared.any() else float("inf"))
        capped = active & (caps <= bottleneck)
        if capped.any():
            rates[capped] = caps[capped]
            remaining -= caps[capped] @ incidence[capped]
            active &= ~capped
            continue
        frozen = active & (crosses
                           & (shares <= bottleneck + 1e-12)).any(axis=1)
        rates[frozen] = bottleneck
        remaining -= bottleneck * incidence[frozen].sum(axis=0)
        active &= ~frozen
    return {flow.flow_id: float(rates[row])
            for row, flow in enumerate(flows)}


class FairShareLink:
    """A single link shared equally by concurrent transfers.

    Convenience wrapper used where only one bottleneck matters (the storage
    NIC).  ``rate_for(n)`` gives the per-transfer rate with ``n`` sharers.
    """

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth

    def rate_for(self, concurrent: int, per_flow_cap: float = float("inf")
                 ) -> float:
        """Per-transfer rate with ``concurrent`` equal sharers."""
        if concurrent <= 0:
            raise ValueError("concurrent must be positive")
        return min(self.bandwidth / concurrent, per_flow_cap)

    def transfer_time(self, size_bytes: float, concurrent: int = 1,
                      per_flow_cap: float = float("inf")) -> float:
        """Seconds to move ``size_bytes`` at the fair-share steady rate."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if size_bytes == 0:
            # An empty transfer completes instantly even when the fair
            # share is zero (per_flow_cap 0 / fully contended link).
            return 0.0
        return size_bytes / self.rate_for(concurrent, per_flow_cap)


class NetworkFabric:
    """The cluster interconnect as a set of named links.

    Links follow the paper's architecture: per-node application NIC(s),
    per-node storage NIC, per-GPU PCIe, per-GPU NVLink, and an aggregate
    storage backend.

    An optional :class:`~repro.cluster.linkhealth.LinkHealth` overlay
    makes capacities time-dependent: pass the sim clock via ``at`` to
    :meth:`rates` / :meth:`transfer_times` and downed or degraded links
    shrink accordingly.  An absent or empty overlay is a strict no-op.
    """

    def __init__(self, health: Optional[LinkHealth] = None) -> None:
        self._links: dict[str, Link] = {}
        self.health = health

    def add_link(self, link: Link) -> None:
        """Register a named link; duplicate names are rejected."""
        if link.name in self._links:
            raise ValueError(f"duplicate link {link.name!r}")
        self._links[link.name] = link

    def link(self, name: str) -> Link:
        """Look up a link by name."""
        return self._links[name]

    def has_link(self, name: str) -> bool:
        """Whether a link with this name exists."""
        return name in self._links

    def rates(self, flows: Sequence[Flow],
              at: float = 0.0) -> dict[str, float]:
        """Max-min fair rates for the given flows at sim time ``at``."""
        capacities = {name: link.bandwidth
                      for name, link in self._links.items()}
        if self.health is not None and not self.health.empty:
            capacities = {name: bandwidth * self.health.factor(name, at)
                          for name, bandwidth in capacities.items()}
        return max_min_fair_rates(capacities, flows)

    def transfer_times(self, flows: Sequence[Flow],
                       sizes: dict[str, float],
                       at: float = 0.0) -> dict[str, float]:
        """Steady-state completion time per flow (no rate re-negotiation).

        A flow pinned to rate 0 (downed link) never completes: inf.
        """
        rates = self.rates(flows, at=at)
        return {flow_id: (sizes[flow_id] / rate if rate > 0.0
                          else float("inf"))
                for flow_id, rate in rates.items()}

    @property
    def link_names(self) -> Iterable[str]:
        return self._links.keys()


def allreduce_time(size_bytes: float, world: int, bandwidth: float,
                   latency: float = 15e-6) -> float:
    """Ring all-reduce time for ``size_bytes`` across ``world`` workers.

    Standard model: 2*(w-1)/w chunks traverse the slowest inter-worker
    bandwidth, plus per-step latency.  Used by the training step model for
    tensor-parallel all-reduce and ZeRO gradient reduce-scatter/all-gather.
    """
    if world <= 1:
        return 0.0
    if bandwidth <= 0:
        return float("inf")
    steps = 2 * (world - 1)
    volume = 2.0 * (world - 1) / world * size_bytes
    return volume / bandwidth + steps * latency


def alltoall_time(size_bytes: float, world: int, bandwidth: float,
                  latency: float = 15e-6) -> float:
    """All-to-all exchange time (MoE dispatch/combine).

    Each worker sends (w-1)/w of its buffer through its NIC; with a single
    NIC per node this serializes heavily — the effect behind the paper's
    Fig. 22 (MoE utilization collapse on Seren's 1-NIC nodes).
    """
    if world <= 1:
        return 0.0
    if bandwidth <= 0:
        return float("inf")
    volume = (world - 1) / world * size_bytes
    return volume / bandwidth + (world - 1) * latency
