"""Bandwidth-sharing network model.

Transfers through a shared link receive a max-min fair share of its
capacity.  This is the contention model behind the model-loading stress
test (Fig. 16 left): N concurrent single-GPU evaluation trials on one node
share the node's 25 Gb/s storage NIC, so per-trial loading speed collapses
roughly as 1/N until trials spread across nodes.

The model is analytic (progressive filling) rather than packet-level: the
paper's observations are about steady-state throughput, not transport
dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.cluster.linkhealth import LinkHealth


@dataclass(frozen=True)
class Link:
    """A named capacity: bytes/s."""

    name: str
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


@dataclass
class Flow:
    """A transfer traversing an ordered list of links."""

    flow_id: str
    links: tuple[str, ...]
    #: optional per-flow cap (e.g. a single GPU's PCIe ingest rate)
    rate_cap: float = float("inf")


def max_min_fair_rates(links: dict[str, float],
                       flows: Sequence[Flow]) -> dict[str, float]:
    """Compute max-min fair flow rates over shared links.

    Progressive filling: repeatedly find the bottleneck link (smallest
    equal-share rate among unfrozen flows), freeze its flows at that rate,
    and subtract.  Per-flow ``rate_cap`` is treated as a virtual one-flow
    link.  A link capacity of zero (e.g. a downed link under a
    :class:`~repro.cluster.linkhealth.LinkHealth` overlay) pins every
    flow crossing it to rate 0.

    Returns a mapping flow_id -> bytes/s.
    """
    remaining = dict(links)
    active: dict[str, Flow] = {flow.flow_id: flow for flow in flows}
    rates: dict[str, float] = {}
    for flow in flows:
        for link in flow.links:
            if link not in remaining:
                raise ValueError(f"flow {flow.flow_id} uses unknown "
                                 f"link {link!r}")
    while active:
        # Share each link equally among the active flows crossing it.
        link_users: dict[str, int] = {}
        for flow in active.values():
            for link in flow.links:
                link_users[link] = link_users.get(link, 0) + 1
        bottleneck_rate = float("inf")
        for link, users in link_users.items():
            share = remaining[link] / users
            bottleneck_rate = min(bottleneck_rate, share)
        # Float subtraction can leave a link epsilon-negative; a share
        # below zero is physically zero (downed-link flows freeze at 0).
        bottleneck_rate = max(bottleneck_rate, 0.0)
        # Per-flow caps can bind before any link does.
        capped = [flow for flow in active.values()
                  if flow.rate_cap <= bottleneck_rate]
        if capped:
            for flow in capped:
                rates[flow.flow_id] = flow.rate_cap
                for link in flow.links:
                    remaining[link] -= flow.rate_cap
                del active[flow.flow_id]
            continue
        frozen = [flow for flow in active.values()
                  if any(remaining[link] / link_users[link] <=
                         bottleneck_rate + 1e-12
                         for link in flow.links)]
        for flow in frozen:
            rates[flow.flow_id] = bottleneck_rate
            for link in flow.links:
                remaining[link] -= bottleneck_rate
            del active[flow.flow_id]
    return rates


class FairShareLink:
    """A single link shared equally by concurrent transfers.

    Convenience wrapper used where only one bottleneck matters (the storage
    NIC).  ``rate_for(n)`` gives the per-transfer rate with ``n`` sharers.
    """

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth

    def rate_for(self, concurrent: int, per_flow_cap: float = float("inf")
                 ) -> float:
        """Per-transfer rate with ``concurrent`` equal sharers."""
        if concurrent <= 0:
            raise ValueError("concurrent must be positive")
        return min(self.bandwidth / concurrent, per_flow_cap)

    def transfer_time(self, size_bytes: float, concurrent: int = 1,
                      per_flow_cap: float = float("inf")) -> float:
        """Seconds to move ``size_bytes`` at the fair-share steady rate."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if size_bytes == 0:
            # An empty transfer completes instantly even when the fair
            # share is zero (per_flow_cap 0 / fully contended link).
            return 0.0
        return size_bytes / self.rate_for(concurrent, per_flow_cap)


class NetworkFabric:
    """The cluster interconnect as a set of named links.

    Links follow the paper's architecture: per-node application NIC(s),
    per-node storage NIC, per-GPU PCIe, per-GPU NVLink, and an aggregate
    storage backend.

    An optional :class:`~repro.cluster.linkhealth.LinkHealth` overlay
    makes capacities time-dependent: pass the sim clock via ``at`` to
    :meth:`rates` / :meth:`transfer_times` and downed or degraded links
    shrink accordingly.  An absent or empty overlay is a strict no-op.
    """

    def __init__(self, health: Optional[LinkHealth] = None) -> None:
        self._links: dict[str, Link] = {}
        self.health = health

    def add_link(self, link: Link) -> None:
        """Register a named link; duplicate names are rejected."""
        if link.name in self._links:
            raise ValueError(f"duplicate link {link.name!r}")
        self._links[link.name] = link

    def link(self, name: str) -> Link:
        """Look up a link by name."""
        return self._links[name]

    def has_link(self, name: str) -> bool:
        """Whether a link with this name exists."""
        return name in self._links

    def rates(self, flows: Sequence[Flow],
              at: float = 0.0) -> dict[str, float]:
        """Max-min fair rates for the given flows at sim time ``at``."""
        capacities = {name: link.bandwidth
                      for name, link in self._links.items()}
        if self.health is not None and not self.health.empty:
            capacities = {name: bandwidth * self.health.factor(name, at)
                          for name, bandwidth in capacities.items()}
        return max_min_fair_rates(capacities, flows)

    def transfer_times(self, flows: Sequence[Flow],
                       sizes: dict[str, float],
                       at: float = 0.0) -> dict[str, float]:
        """Steady-state completion time per flow (no rate re-negotiation).

        A flow pinned to rate 0 (downed link) never completes: inf.
        """
        rates = self.rates(flows, at=at)
        return {flow_id: (sizes[flow_id] / rate if rate > 0.0
                          else float("inf"))
                for flow_id, rate in rates.items()}

    @property
    def link_names(self) -> Iterable[str]:
        return self._links.keys()


def allreduce_time(size_bytes: float, world: int, bandwidth: float,
                   latency: float = 15e-6) -> float:
    """Ring all-reduce time for ``size_bytes`` across ``world`` workers.

    Standard model: 2*(w-1)/w chunks traverse the slowest inter-worker
    bandwidth, plus per-step latency.  Used by the training step model for
    tensor-parallel all-reduce and ZeRO gradient reduce-scatter/all-gather.
    """
    if world <= 1:
        return 0.0
    if bandwidth <= 0:
        return float("inf")
    steps = 2 * (world - 1)
    volume = 2.0 * (world - 1) / world * size_bytes
    return volume / bandwidth + steps * latency


def alltoall_time(size_bytes: float, world: int, bandwidth: float,
                  latency: float = 15e-6) -> float:
    """All-to-all exchange time (MoE dispatch/combine).

    Each worker sends (w-1)/w of its buffer through its NIC; with a single
    NIC per node this serializes heavily — the effect behind the paper's
    Fig. 22 (MoE utilization collapse on Seren's 1-NIC nodes).
    """
    if world <= 1:
        return 0.0
    if bandwidth <= 0:
        return float("inf")
    volume = (world - 1) / world * size_bytes
    return volume / bandwidth + (world - 1) * latency
