"""Cluster scheduler model.

Acme's schedulers (Slurm on Seren, Kubernetes on Kalos) provide resource
isolation and quota reservation for pretraining plus a best-effort path for
everything else (§2.2).  This package reproduces the scheduling behaviour
behind Fig. 6: evaluation jobs — tiny and short — nonetheless see the
longest queueing delay because most capacity is reserved for pretraining.
"""

from repro.scheduler.job import (Job, JobState, JobType, FinalStatus,
                                 WORKLOAD_TYPES)
from repro.scheduler.queue import JobQueue
from repro.scheduler.policy import (SchedulingPolicy, FifoPolicy,
                                    ReservationPolicy, PriorityPolicy)
from repro.scheduler.simulator import SchedulerSimulator, SchedulerConfig
from repro.scheduler.placement import GangPlacer, Placement, PlacementError

__all__ = [
    "Job",
    "JobState",
    "JobType",
    "FinalStatus",
    "WORKLOAD_TYPES",
    "JobQueue",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "ReservationPolicy",
    "SchedulerSimulator",
    "SchedulerConfig",
    "GangPlacer",
    "Placement",
    "PlacementError",
]
