"""Node-level gang placement.

The counter-based :class:`~repro.scheduler.simulator.SchedulerSimulator`
answers *when* jobs run; this module answers *where* — mapping a gang
job onto concrete nodes, avoiding cordoned hardware, and preferring
whole nodes (pretraining collectives assume 8 local ranks per node).

The recovery flow uses it to restart a pretraining job on the surviving
pool after the NCCL test cordons faulty nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Node


class PlacementError(RuntimeError):
    """Raised when a gang job cannot be placed or released."""
    pass


@dataclass
class Placement:
    """A concrete assignment of one job's GPUs to nodes."""

    job_id: str
    assignments: list[tuple[Node, int]] = field(default_factory=list)

    @property
    def gpu_count(self) -> int:
        return sum(count for _, count in self.assignments)

    @property
    def node_names(self) -> list[str]:
        return [node.name for node, _ in self.assignments]

    @property
    def is_node_aligned(self) -> bool:
        """True if every involved node is used entirely (gang-friendly)."""
        return all(count == node.spec.gpus_per_node
                   for node, count in self.assignments)


class GangPlacer:
    """Places and releases gang jobs on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._placements: dict[str, Placement] = {}

    def place(self, job_id: str, gpus: int,
              require_whole_nodes: bool = False) -> Placement:
        """Allocate ``gpus`` for ``job_id``; raises if impossible.

        ``require_whole_nodes`` is what pretraining wants: demand must be
        a multiple of 8 and every node is taken entirely, so NVLink
        domains stay intact.
        """
        if job_id in self._placements:
            raise PlacementError(f"job {job_id} already placed")
        if gpus <= 0:
            raise ValueError("gpus must be positive")
        per_node = self.cluster.nodes[0].spec.gpus_per_node
        if require_whole_nodes and gpus % per_node != 0:
            raise PlacementError(
                f"gang job needs a multiple of {per_node} GPUs, "
                f"got {gpus}")
        candidates = self.cluster.find_nodes_with_free_gpus(gpus)
        if not candidates:
            raise PlacementError(
                f"cannot place {gpus} GPUs "
                f"({self.cluster.free_gpus} free)")
        if require_whole_nodes:
            whole = [(node, take) for node, take in candidates
                     if node.free_gpu_count == per_node]
            needed = gpus // per_node
            if len(whole) < needed:
                raise PlacementError(
                    f"need {needed} whole nodes, "
                    f"only {len(whole)} available")
            candidates = [(node, per_node) for node, _ in whole[:needed]]
        placement = Placement(job_id=job_id)
        for node, take in candidates:
            node.allocate_gpus(take, job_id)
            placement.assignments.append((node, take))
        self._placements[job_id] = placement
        return placement

    def release(self, job_id: str) -> int:
        """Free all GPUs of a job; returns the number released."""
        placement = self._placements.pop(job_id, None)
        if placement is None:
            raise PlacementError(f"job {job_id} not placed")
        freed = 0
        for node, _ in placement.assignments:
            freed += node.release_job(job_id)
        return freed

    def migrate_off(self, job_id: str, bad_nodes: set[str],
                    require_whole_nodes: bool = True) -> Placement:
        """Re-place a job after some of its nodes were cordoned.

        The §6.1 restart flow: release the old allocation, cordon stays
        with the cluster, and the job lands on healthy nodes only.
        """
        old = self._placements.get(job_id)
        if old is None:
            raise PlacementError(f"job {job_id} not placed")
        gpus = old.gpu_count
        self.release(job_id)
        for node in self.cluster.nodes:
            if node.name in bad_nodes:
                node.cordon()
        return self.place(job_id, gpus,
                          require_whole_nodes=require_whole_nodes)

    def placement_of(self, job_id: str) -> Placement | None:
        """The job's current placement, or None."""
        return self._placements.get(job_id)

    @property
    def placed_jobs(self) -> list[str]:
        return list(self._placements)
