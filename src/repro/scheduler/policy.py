"""Scheduling policies.

``ReservationPolicy`` reproduces Acme's production setup (§2.2, §3.2):

* a quota of GPUs is *reserved* for pretraining (and other high-priority
  work), minimizing pretraining queueing delay;
* all other jobs run best-effort on the remaining pool, with evaluation at
  the lowest priority — which is why evaluation shows the longest queueing
  delay in Fig. 6 despite the smallest demand.

Policies are pure ordering/eligibility logic; the simulator owns placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.job import Job, JobType
from repro.scheduler.queue import JobQueue


@dataclass(frozen=True)
class Candidate:
    """A job the policy wants started, tagged with the pool it may use."""

    job: Job
    pool: str  # "reserved" or "shared"


class SchedulingPolicy:
    """Base policy interface."""

    def candidates(self, queue: JobQueue) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Strict arrival order; everything shares one pool.

    The baseline prior DL schedulers approximate (§3.1): large jobs at the
    head block everyone behind them.
    """

    def candidates(self, queue: JobQueue) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        return [Candidate(job, "shared") for job in queue.pending()]


@dataclass
class PriorityPolicy(SchedulingPolicy):
    """Fixed per-type priorities over a single pool, FIFO within a class.

    Lower number = higher priority.
    """

    priorities: dict[JobType, int] = field(default_factory=lambda: {
        JobType.PRETRAIN: 0,
        JobType.SFT: 1,
        JobType.MLLM: 1,
        JobType.DEBUG: 2,
        JobType.OTHER: 2,
        JobType.EVALUATION: 3,
    })

    def priority_of(self, job: Job) -> int:
        """Priority class of a job (lower runs first)."""
        return self.priorities.get(job.job_type, 2)

    def candidates(self, queue: JobQueue) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        ordered = sorted(enumerate(queue.pending()),
                         key=lambda pair: (self.priority_of(pair[1]),
                                           pair[0]))
        return [Candidate(job, "shared") for _, job in ordered]


@dataclass
class ReservationPolicy(SchedulingPolicy):
    """Quota reservation for pretraining + best-effort for the rest.

    Pretraining (and optionally SFT/MLLM) jobs may draw from both the
    reserved pool and the shared pool; everything else is confined to the
    shared pool.  Within each class, FIFO order.
    """

    #: training jobs draw from the reserved quota; evaluation and other
    #: best-effort work is confined to the spare pool (§2.2/§3.2)
    reserved_types: frozenset[JobType] = frozenset(
        {JobType.PRETRAIN, JobType.SFT, JobType.MLLM})
    priorities: dict[JobType, int] = field(default_factory=lambda: {
        JobType.PRETRAIN: 0,
        JobType.SFT: 1,
        JobType.MLLM: 1,
        JobType.DEBUG: 2,
        JobType.OTHER: 2,
        JobType.EVALUATION: 3,
    })

    def priority_of(self, job: Job) -> int:
        """Priority class of a job (lower runs first)."""
        return self.priorities.get(job.job_type, 2)

    def candidates(self, queue: JobQueue) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        ordered = sorted(enumerate(queue.pending()),
                         key=lambda pair: (self.priority_of(pair[1]),
                                           pair[0]))
        result = []
        for _, job in ordered:
            pool = ("reserved" if job.job_type in self.reserved_types
                    else "shared")
            result.append(Candidate(job, pool))
        return result
