"""Scheduling policies.

``ReservationPolicy`` reproduces Acme's production setup (§2.2, §3.2):

* a quota of GPUs is *reserved* for pretraining (and other high-priority
  work), minimizing pretraining queueing delay;
* all other jobs run best-effort on the remaining pool, with evaluation at
  the lowest priority — which is why evaluation shows the longest queueing
  delay in Fig. 6 despite the smallest demand.

Policies are pure ordering/eligibility logic; the simulator owns placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.job import Job, JobType
from repro.scheduler.queue import JobQueue
from repro.sim.fastpath import fast_path_enabled


@dataclass(frozen=True)
class Candidate:
    """A job the policy wants started, tagged with the pool it may use."""

    job: Job
    pool: str  # "reserved" or "shared"


class SchedulingPolicy:
    """Base policy interface.

    ``candidates(queue, limit)`` returns jobs to attempt in priority
    order; ``limit`` (the simulator's backfill depth) bounds how many
    the caller will look at, which lets fast-path implementations stop
    early instead of ordering the entire queue on every scheduling
    round.  ``limit=None`` returns the full ordering.
    """

    def candidates(self, queue: JobQueue,
                   limit: int | None = None) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Strict arrival order; everything shares one pool.

    The baseline prior DL schedulers approximate (§3.1): large jobs at the
    head block everyone behind them.
    """

    def candidates(self, queue: JobQueue,
                   limit: int | None = None) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        jobs = queue.pending()
        if limit is not None:
            jobs = jobs[:limit]
        return [Candidate(job, "shared") for job in jobs]


def _ordered_head(policy: "PriorityPolicy | ReservationPolicy",
                  queue: JobQueue, limit: int | None) -> list[Job]:
    """First ``limit`` pending jobs in (priority class, arrival) order.

    Fast path: the queue's incremental bucket index, O(limit).
    Reference path: stable sort of the whole queue by (class, position)
    — the original implementation, kept bit-for-bit for equivalence
    testing.  Both orders are identical by construction (within a
    class, bucket order *is* arrival order).
    """
    if limit is not None and fast_path_enabled():
        queue.ensure_priority_index(policy.priority_of)
        return queue.head_by_priority(limit)
    ordered = sorted(enumerate(queue.pending()),
                     key=lambda pair: (policy.priority_of(pair[1]),
                                       pair[0]))
    jobs = [job for _, job in ordered]
    return jobs if limit is None else jobs[:limit]


@dataclass
class PriorityPolicy(SchedulingPolicy):
    """Fixed per-type priorities over a single pool, FIFO within a class.

    Lower number = higher priority.
    """

    priorities: dict[JobType, int] = field(default_factory=lambda: {
        JobType.PRETRAIN: 0,
        JobType.SFT: 1,
        JobType.MLLM: 1,
        JobType.DEBUG: 2,
        JobType.OTHER: 2,
        JobType.EVALUATION: 3,
    })

    def priority_of(self, job: Job) -> int:
        """Priority class of a job (lower runs first)."""
        return self.priorities.get(job.job_type, 2)

    def candidates(self, queue: JobQueue,
                   limit: int | None = None) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        return [Candidate(job, "shared")
                for job in _ordered_head(self, queue, limit)]


@dataclass
class ReservationPolicy(SchedulingPolicy):
    """Quota reservation for pretraining + best-effort for the rest.

    Pretraining (and optionally SFT/MLLM) jobs may draw from both the
    reserved pool and the shared pool; everything else is confined to the
    shared pool.  Within each class, FIFO order.
    """

    #: training jobs draw from the reserved quota; evaluation and other
    #: best-effort work is confined to the spare pool (§2.2/§3.2)
    reserved_types: frozenset[JobType] = frozenset(
        {JobType.PRETRAIN, JobType.SFT, JobType.MLLM})
    priorities: dict[JobType, int] = field(default_factory=lambda: {
        JobType.PRETRAIN: 0,
        JobType.SFT: 1,
        JobType.MLLM: 1,
        JobType.DEBUG: 2,
        JobType.OTHER: 2,
        JobType.EVALUATION: 3,
    })

    def priority_of(self, job: Job) -> int:
        """Priority class of a job (lower runs first)."""
        return self.priorities.get(job.job_type, 2)

    def candidates(self, queue: JobQueue,
                   limit: int | None = None) -> list[Candidate]:
        """Jobs to attempt, in priority order."""
        reserved = self.reserved_types
        return [Candidate(job, "reserved" if job.job_type in reserved
                          else "shared")
                for job in _ordered_head(self, queue, limit)]
