"""Job model: the unit every trace row describes.

Field names follow the paper's job-log schema (§2.3): submission/start/end
times, final status (completed/canceled/failed), requested resources, and
the workload type inferred from metadata (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class JobType(Enum):
    """Workload categories of Fig. 4/5/6."""

    PRETRAIN = "pretrain"
    SFT = "sft"
    MLLM = "mllm"
    EVALUATION = "evaluation"
    DEBUG = "debug"
    OTHER = "other"


#: Order used for reporting (matches the paper's figure legends).
WORKLOAD_TYPES = [JobType.PRETRAIN, JobType.SFT, JobType.MLLM,
                  JobType.EVALUATION, JobType.DEBUG, JobType.OTHER]


class JobState(Enum):
    """Lifecycle state of a job in the scheduler."""
    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


class FinalStatus(Enum):
    """Terminal status in the job log (Fig. 17)."""

    COMPLETED = "completed"
    FAILED = "failed"
    CANCELED = "canceled"


@dataclass
class Job:
    """One job-log row.

    Times are seconds from the trace epoch.  ``duration`` is the runtime
    the job will consume once started (excluding queueing delay), which is
    how the paper defines job duration in Fig. 2a.
    """

    job_id: str
    cluster: str
    job_type: JobType
    submit_time: float
    duration: float
    gpu_demand: int
    cpu_demand: int = 0
    final_status: FinalStatus = FinalStatus.COMPLETED
    #: mean GPU utilization over the job's lifetime, in [0, 1] (Fig. 2b)
    gpu_utilization: float = 0.0
    state: JobState = JobState.PENDING
    start_time: float | None = None
    end_time: float | None = None
    #: failure reason key into the taxonomy (Table 3), when failed
    failure_reason: str | None = None
    #: free-form metadata (job name, user, etc.)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.gpu_demand < 0:
            raise ValueError("gpu_demand must be non-negative")

    # -- lifecycle ---------------------------------------------------------

    def mark_started(self, time: float) -> None:
        """Transition to RUNNING at ``time``."""
        if self.state is not JobState.PENDING:
            raise RuntimeError(f"job {self.job_id} started twice")
        self.state = JobState.RUNNING
        if self.start_time is None:
            # queueing delay measures submit -> *first* start; restarts
            # after preemption keep the original
            self.start_time = time

    def mark_preempted(self, time: float) -> None:
        """Return a running job to the pending state (best-effort
        eviction when a reserved job reclaims its quota)."""
        if self.state is not JobState.RUNNING:
            raise RuntimeError(
                f"job {self.job_id} preempted but not running")
        self.state = JobState.PENDING
        self.metadata["preemptions"] = (
            self.metadata.get("preemptions", 0) + 1)

    def mark_finished(self, time: float) -> None:
        """Transition to FINISHED at ``time``."""
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id} finished but not running")
        self.state = JobState.FINISHED
        self.end_time = time

    def mark_canceled(self, time: float) -> None:
        """Terminate a job straight out of the queue (load shedding).

        Unlike :meth:`mark_finished` the job never ran: it goes
        PENDING → FINISHED with ``FinalStatus.CANCELED`` and no
        ``start_time``, which is how the paper's job log records jobs
        withdrawn before placement.
        """
        if self.state is not JobState.PENDING:
            raise RuntimeError(
                f"job {self.job_id} canceled but not pending")
        self.state = JobState.FINISHED
        self.end_time = time
        self.final_status = FinalStatus.CANCELED

    # -- derived metrics -----------------------------------------------------

    @property
    def queueing_delay(self) -> float:
        """Seconds between submission and start (Fig. 6b/6d)."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.job_id} never started")
        return self.start_time - self.submit_time

    @property
    def gpu_time(self) -> float:
        """Requested GPUs x duration — the paper's GPU-time metric."""
        return self.gpu_demand * self.duration

    @property
    def is_gpu_job(self) -> bool:
        return self.gpu_demand > 0

    def to_record(self) -> dict:
        """Flat dict for CSV/JSONL serialization."""
        return {
            "job_id": self.job_id,
            "cluster": self.cluster,
            "job_type": self.job_type.value,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "gpu_demand": self.gpu_demand,
            "cpu_demand": self.cpu_demand,
            "final_status": self.final_status.value,
            "gpu_utilization": self.gpu_utilization,
            "failure_reason": self.failure_reason,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Job":
        """Rebuild a job from :meth:`to_record` output."""
        job = cls(
            job_id=record["job_id"],
            cluster=record["cluster"],
            job_type=JobType(record["job_type"]),
            submit_time=float(record["submit_time"]),
            duration=float(record["duration"]),
            gpu_demand=int(record["gpu_demand"]),
            cpu_demand=int(record.get("cpu_demand", 0) or 0),
            final_status=FinalStatus(record["final_status"]),
            gpu_utilization=float(record.get("gpu_utilization", 0.0) or 0.0),
            failure_reason=record.get("failure_reason") or None,
        )
        start = record.get("start_time")
        end = record.get("end_time")
        if start is not None and start != "":
            job.mark_started(float(start))
        if end is not None and end != "":
            job.mark_finished(float(end))
        return job
