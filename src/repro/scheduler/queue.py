"""Pending-job queue with priority classes.

The scheduler keeps one logical queue; policies decide eligibility and
ordering.  The queue itself only maintains insertion order and provides
filtered views, so different policies can share it.

Two structures back the queue:

* an insertion-ordered ``dict`` of pending jobs (push, remove and
  membership are O(1) — the old list-backed remove was a linear scan
  that dominated full-trace replays);
* an optional **priority index**: per-class insertion-ordered buckets
  maintained incrementally, so a policy can take the first *k*
  candidates in (priority, arrival) order without re-sorting the whole
  queue on every scheduling round.  Within a class, bucket order equals
  arrival order, which is exactly what the stable
  ``sorted(..., key=(priority, index))`` of the reference path yields —
  the fast-vs-reference equivalence tests pin this.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.scheduler.job import Job, JobType


class JobQueue:
    """FIFO container of pending jobs with removal by ``job_id``."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        #: priority classifier backing the bucket index (None = unbuilt)
        self._priority_fn: Callable[[Job], int] | None = None
        self._buckets: dict[int, dict[str, Job]] = {}

    def push(self, job: Job) -> None:
        """Append a job; duplicates are rejected."""
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id} already queued")
        self._jobs[job.job_id] = job
        if self._priority_fn is not None:
            bucket = self._buckets.setdefault(self._priority_fn(job), {})
            bucket[job.job_id] = job

    def remove(self, job: Job) -> None:
        """Drop a queued job by ``job_id``.

        Keyed by id, matching ``__contains__`` and ``push`` — removal by
        instance equality let ``job in queue`` be True while
        ``remove(job)`` raised ``ValueError`` for a distinct instance
        sharing the id (e.g. a resubmitted clone).
        """
        queued = self._jobs.pop(job.job_id, None)
        if queued is None:
            raise ValueError(f"job {job.job_id} is not queued")
        if self._priority_fn is not None:
            self._buckets[self._priority_fn(queued)].pop(queued.job_id,
                                                         None)

    # -- priority index ----------------------------------------------------

    def ensure_priority_index(self, priority_fn: Callable[[Job], int]
                              ) -> None:
        """(Re)build the bucket index for ``priority_fn`` if needed.

        Idempotent for an equal classifier (e.g. the same policy's bound
        method across calls); switching policies rebuilds the buckets.
        """
        if self._priority_fn == priority_fn:
            return
        self._priority_fn = priority_fn
        self._buckets = {}
        for job in self._jobs.values():
            self._buckets.setdefault(priority_fn(job), {})[job.job_id] \
                = job

    def head_by_priority(self, limit: int) -> list[Job]:
        """First ``limit`` jobs in (priority class, arrival) order.

        Requires :meth:`ensure_priority_index`.  Equivalent to sorting
        all pending jobs stably by priority class and slicing — without
        touching jobs beyond the first ``limit``.
        """
        if self._priority_fn is None:
            raise RuntimeError("priority index not built; call "
                               "ensure_priority_index first")
        out: list[Job] = []
        for priority in sorted(self._buckets):
            bucket = self._buckets[priority]
            if not bucket:
                continue
            for job in bucket.values():
                out.append(job)
                if len(out) >= limit:
                    return out
        return out

    # -- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._jobs

    def pending(self, predicate: Callable[[Job], bool] | None = None
                ) -> list[Job]:
        """Jobs in FIFO order, optionally filtered."""
        if predicate is None:
            return list(self._jobs.values())
        return [job for job in self._jobs.values() if predicate(job)]

    def by_type(self, job_type: JobType) -> list[Job]:
        """Pending jobs of one workload type."""
        return self.pending(lambda job: job.job_type is job_type)

    def oldest(self) -> Job | None:
        """Head of the queue, or None."""
        return next(iter(self._jobs.values()), None)

    def get(self, job_id: str) -> Job | None:
        """The queued job with ``job_id``, or None."""
        return self._jobs.get(job_id)
