"""Pending-job queue with priority classes.

The scheduler keeps one logical queue; policies decide eligibility and
ordering.  The queue itself only maintains insertion order and provides
filtered views, so different policies can share it.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.scheduler.job import Job, JobType


class JobQueue:
    """FIFO container of pending jobs with removal by identity."""

    def __init__(self) -> None:
        self._jobs: list[Job] = []
        self._ids: set[str] = set()

    def push(self, job: Job) -> None:
        """Append a job; duplicates are rejected."""
        if job.job_id in self._ids:
            raise ValueError(f"job {job.job_id} already queued")
        self._jobs.append(job)
        self._ids.add(job.job_id)

    def remove(self, job: Job) -> None:
        """Drop a queued job by ``job_id``.

        Keyed by id, matching ``__contains__`` and ``push`` — removal by
        instance equality let ``job in queue`` be True while
        ``remove(job)`` raised ``ValueError`` for a distinct instance
        sharing the id (e.g. a resubmitted clone).
        """
        if job.job_id not in self._ids:
            raise ValueError(f"job {job.job_id} is not queued")
        for index, queued in enumerate(self._jobs):
            if queued.job_id == job.job_id:
                del self._jobs[index]
                break
        self._ids.discard(job.job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._ids

    def pending(self, predicate: Callable[[Job], bool] | None = None
                ) -> list[Job]:
        """Jobs in FIFO order, optionally filtered."""
        if predicate is None:
            return list(self._jobs)
        return [job for job in self._jobs if predicate(job)]

    def by_type(self, job_type: JobType) -> list[Job]:
        """Pending jobs of one workload type."""
        return self.pending(lambda job: job.job_type is job_type)

    def oldest(self) -> Job | None:
        """Head of the queue, or None."""
        return self._jobs[0] if self._jobs else None
