"""Discrete-event cluster scheduling simulation.

Replays a list of jobs (arrival time, demand, duration) through a
two-pool scheduler — a reserved pretraining quota plus a best-effort shared
pool — and records start/end times, from which queueing delays (Fig. 6)
are derived.

The simulator allocates from GPU *counters* rather than individual devices:
Acme's clusters are homogeneous and gang-scheduled, so placement detail does
not affect queueing behaviour.  Placement onto concrete nodes is exercised
separately by the evaluation coordinator (``repro.core.evalsched``).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.obs.span import Span
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.scheduler.job import FinalStatus, Job
from repro.scheduler.policy import ReservationPolicy, SchedulingPolicy
from repro.scheduler.queue import JobQueue
from repro.sim.engine import Engine


@dataclass
class SchedulerConfig:
    """Scheduler knobs.

    ``reserved_fraction`` is the share of GPUs held for reserved job types;
    the paper reserves "the majority of resources" for pretraining, so the
    default is high.  ``backfill_depth`` bounds how far down the queue the
    scheduler looks for jobs that fit (Slurm-style conservative backfill).
    """

    total_gpus: int
    reserved_fraction: float = 0.75
    backfill_depth: int = 256
    #: reserved-class jobs may also draw from the shared pool when the
    #: quota alone cannot fit them
    reserved_spillover: bool = True
    #: reserved jobs evict best-effort borrowers occupying their quota
    #: (the resource-isolation guarantee of §2.2)
    preempt_borrowers: bool = True

    def __post_init__(self) -> None:
        if self.total_gpus <= 0:
            raise ValueError("total_gpus must be positive")
        if not 0.0 <= self.reserved_fraction <= 1.0:
            raise ValueError("reserved_fraction must be in [0, 1]")

    @property
    def reserved_gpus(self) -> int:
        return int(round(self.total_gpus * self.reserved_fraction))

    @property
    def shared_gpus(self) -> int:
        return self.total_gpus - self.reserved_gpus


@dataclass
class _Allocation:
    from_reserved: int
    from_shared: int
    #: the pool the job was admitted through ("reserved" or "shared")
    pool: str = "shared"
    #: the running job (set at start time)
    job: Job | None = None
    #: scheduled completion callback (cancelled on preemption)
    finish_item: object = None


class SchedulerSimulator:
    """Event-driven replay of a job trace through the scheduler."""

    def __init__(self, config: SchedulerConfig,
                 policy: SchedulingPolicy | None = None,
                 engine: Engine | None = None,
                 tracer: TracerLike | None = None) -> None:
        self.config = config
        self.policy = policy or ReservationPolicy()
        self.engine = engine or Engine()
        self.tracer = tracer or NULL_TRACER
        #: open queue-wait / run spans, by job id (observability)
        self._wait_spans: dict[str, Span] = {}
        self._run_spans: dict[str, Span] = {}
        self.queue = JobQueue()
        self.free_reserved = config.reserved_gpus
        self.free_shared = config.shared_gpus
        #: pool capacities cached off the config properties — ``_fit``
        #: runs hundreds of thousands of times in a full-trace replay
        #: and the property recomputes a round() on every access
        self._shared_capacity = config.shared_gpus
        self._allocations: dict[str, _Allocation] = {}
        self.started: list[Job] = []
        self.finished: list[Job] = []
        #: queued jobs withdrawn by load shedding (never ran)
        self.shed: list[Job] = []
        self.preemptions = 0
        #: time series of (time, gpus_in_use) for utilization accounting
        self.occupancy: list[tuple[float, int]] = []
        #: lifecycle hooks, called as hook(kind, job) with kind one of
        #: "start", "finish", "preempt", "fail", "shed"
        #: (chaos/observability layer)
        self.hooks: list[Callable[[str, Job], None]] = []
        #: GPUs removed from service (cordoned nodes); they are taken out
        #: of the free pools, never out of running allocations
        self.cordoned_gpus = 0
        #: cordons requested while the GPUs were still busy; applied as
        #: allocations drain
        self._pending_cordon = 0

    # -- public API ---------------------------------------------------------

    def simulate(self, jobs: list[Job]) -> list[Job]:
        """Run all jobs to completion; returns them with times filled in."""
        for job in jobs:
            if job.gpu_demand > self.config.total_gpus:
                raise ValueError(
                    f"job {job.job_id} demands {job.gpu_demand} GPUs but the "
                    f"cluster has {self.config.total_gpus}")
            self.engine.call_at(job.submit_time,
                                lambda j=job: self._on_submit(j))
        self.engine.run()
        return jobs

    def submit(self, job: Job, at: float | None = None) -> None:
        """Schedule one job's arrival (live use; ``simulate`` batches)."""
        if job.gpu_demand > self.config.total_gpus:
            raise ValueError(
                f"job {job.job_id} demands {job.gpu_demand} GPUs but the "
                f"cluster has {self.config.total_gpus}")
        self.engine.call_at(job.submit_time if at is None else at,
                            lambda: self._on_submit(job))

    def running_jobs(self) -> list[Job]:
        """Jobs currently holding GPUs, in start order."""
        ordered = sorted(self._allocations.values(),
                         key=lambda a: (a.job.start_time or 0.0,
                                        a.job.job_id))
        return [allocation.job for allocation in ordered]

    def fail_job(self, job_id: str, reason: str | None = None) -> Job:
        """Kill a running job *now* (fault injection).

        The job terminates with ``FinalStatus.FAILED``, its GPUs return to
        the pools (honouring any pending cordon), and the queue is
        re-scheduled — the same path a crashed gang takes in production.
        """
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise KeyError(f"job {job_id} is not running")
        job = allocation.job
        if allocation.finish_item is not None:
            self.engine.cancel(allocation.finish_item)
        job.final_status = FinalStatus.FAILED
        if reason is not None:
            job.failure_reason = reason
        job.mark_finished(self.engine.now)
        self.free_reserved += allocation.from_reserved
        self.free_shared += allocation.from_shared
        self._apply_pending_cordon()
        self.finished.append(job)
        self._end_run_span(job, "fail")
        self._record_occupancy()
        self._notify("fail", job)
        self._try_schedule()
        return job

    def shed_job(self, job_id: str, reason: str | None = None) -> Job:
        """Withdraw a *queued* job (admission-control load shedding).

        The job terminates with ``FinalStatus.CANCELED`` without ever
        holding GPUs; its queue-wait span closes with outcome
        ``"shed"`` and hooks fire with kind ``"shed"``.  Only pending
        jobs can be shed — running work is protected; killing it is
        :meth:`fail_job`'s business.
        """
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(f"job {job_id} is not queued")
        self.queue.remove(job)
        job.mark_canceled(self.engine.now)
        if reason is not None:
            job.failure_reason = reason
        self.shed.append(job)
        wait = self._wait_spans.pop(job_id, None)
        if wait is not None:
            self.tracer.end(wait, outcome="shed")
        self.tracer.set_gauge("scheduler.queue_length", len(self.queue))
        self._notify("shed", job)
        return job

    # -- capacity cordons ---------------------------------------------------

    def cordon_gpus(self, count: int) -> None:
        """Remove ``count`` GPUs from service (cordoned node capacity).

        Free GPUs leave the pools immediately; GPUs still held by running
        jobs are reclaimed as those allocations drain, so counters never
        go negative and running gangs are never silently shrunk.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._pending_cordon += count
        self._apply_pending_cordon()

    def uncordon_gpus(self, count: int) -> None:
        """Return repaired capacity to the shared pool."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.cordoned_gpus + self._pending_cordon:
            raise ValueError("uncordoning more GPUs than are cordoned")
        # cancel not-yet-applied cordons first, then restore capacity
        cancelled = min(count, self._pending_cordon)
        self._pending_cordon -= cancelled
        remainder = count - cancelled
        self.cordoned_gpus -= remainder
        self.free_shared += remainder
        self._try_schedule()

    def _apply_pending_cordon(self) -> None:
        for pool in ("free_shared", "free_reserved"):
            if self._pending_cordon <= 0:
                break
            take = min(getattr(self, pool), self._pending_cordon)
            setattr(self, pool, getattr(self, pool) - take)
            self.cordoned_gpus += take
            self._pending_cordon -= take

    def _notify(self, kind: str, job: Job) -> None:
        for hook in self.hooks:
            hook(kind, job)

    @property
    def gpus_allocated(self) -> int:
        """GPUs currently held by running jobs."""
        return sum(a.from_reserved + a.from_shared
                   for a in self._allocations.values())

    # -- event handlers -----------------------------------------------------

    def _on_submit(self, job: Job) -> None:
        if job.gpu_demand == 0:
            # CPU jobs bypass the GPU queue entirely (§2.3 counts them
            # separately); they start immediately.
            job.mark_started(self.engine.now)
            self.engine.call_after(job.duration,
                                   lambda: self._on_cpu_finish(job))
            return
        self.queue.push(job)
        self._wait_spans[job.job_id] = self.tracer.begin(
            f"wait:{job.job_id}", "scheduler.queue",
            job_type=job.job_type.value, gpus=job.gpu_demand)
        self.tracer.set_gauge("scheduler.queue_length", len(self.queue))
        self._try_schedule()

    def _on_cpu_finish(self, job: Job) -> None:
        job.mark_finished(self.engine.now)
        self.finished.append(job)
        self.tracer.complete(
            f"run:{job.job_id}", job.start_time or 0.0, self.engine.now,
            "scheduler.cpu", job_type=job.job_type.value)
        self._notify("finish", job)

    def _on_finish(self, job: Job) -> None:
        job.mark_finished(self.engine.now)
        allocation = self._allocations.pop(job.job_id)
        self.free_reserved += allocation.from_reserved
        self.free_shared += allocation.from_shared
        self._apply_pending_cordon()
        self.finished.append(job)
        self._end_run_span(job, "finish")
        self._record_occupancy()
        self._notify("finish", job)
        self._try_schedule()

    def _end_run_span(self, job: Job, outcome: str) -> None:
        span = self._run_spans.pop(job.job_id, None)
        if span is not None:
            self.tracer.end(span, outcome=outcome)

    # -- scheduling core ------------------------------------------------------

    def _try_schedule(self) -> None:
        progress = True
        depth = self.config.backfill_depth
        while progress:
            progress = False
            candidates = self.policy.candidates(self.queue, limit=depth)
            for candidate in candidates:
                allocation = self._fit(candidate.job.gpu_demand,
                                       candidate.pool)
                if allocation is None:
                    if (candidate.pool == "reserved"
                            and self.config.preempt_borrowers
                            and self._evict_borrowers_for(
                                candidate.job.gpu_demand)):
                        allocation = self._fit(candidate.job.gpu_demand,
                                               "reserved")
                    if allocation is None:
                        continue
                self._start(candidate.job, allocation, candidate.pool)
                progress = True
                break  # re-evaluate priorities after every start

    def _evict_borrowers_for(self, demand: int) -> bool:
        """Preempt best-effort jobs holding reserved GPUs until
        ``demand`` fits; returns True if eviction freed enough.

        Borrowers are evicted youngest-first (least progress lost); the
        evicted job goes back to the pending queue and will rerun from
        scratch — the "considerable recovery overhead" that makes
        preemption unattractive for LLM workloads (§3.1).
        """
        borrowers = [allocation for allocation in
                     self._allocations.values()
                     if allocation.pool == "shared"
                     and allocation.from_reserved > 0]
        if not borrowers:
            return False
        reclaimable = sum(a.from_reserved for a in borrowers)
        available = (self.free_reserved + reclaimable
                     + (self.free_shared
                        if self.config.reserved_spillover else 0))
        if demand > available:
            return False
        borrowers.sort(key=lambda a: a.job.start_time or 0.0,
                       reverse=True)
        for allocation in borrowers:
            if demand <= self.free_reserved + (
                    self.free_shared
                    if self.config.reserved_spillover else 0):
                break
            self._preempt(allocation)
        return True

    def _preempt(self, allocation: "_Allocation") -> None:
        job = allocation.job
        if allocation.finish_item is not None:
            self.engine.cancel(allocation.finish_item)
        del self._allocations[job.job_id]
        self.free_reserved += allocation.from_reserved
        self.free_shared += allocation.from_shared
        self._apply_pending_cordon()
        job.mark_preempted(self.engine.now)
        self.preemptions += 1
        self.queue.push(job)
        self._end_run_span(job, "preempt")
        self._wait_spans[job.job_id] = self.tracer.begin(
            f"wait:{job.job_id}", "scheduler.queue", preempted=True,
            job_type=job.job_type.value, gpus=job.gpu_demand)
        self._record_occupancy()
        self._notify("preempt", job)

    def _fit(self, demand: int, pool: str) -> _Allocation | None:
        if pool == "reserved":
            if demand <= self.free_reserved:
                return _Allocation(demand, 0)
            if (self.config.reserved_spillover
                    and demand <= self.free_reserved + self.free_shared):
                return _Allocation(self.free_reserved,
                                   demand - self.free_reserved)
            return None
        if pool == "shared":
            if demand <= self.free_shared:
                return _Allocation(0, demand)
            if demand > self._shared_capacity:
                # A best-effort job larger than the whole spare pool can
                # never fit there; it borrows idle reserved capacity (the
                # §2.2 best-effort mechanism) rather than starving forever.
                if demand <= self.free_reserved + self.free_shared:
                    return _Allocation(demand - self.free_shared,
                                       self.free_shared)
            return None
        raise ValueError(f"unknown pool {pool!r}")

    def _start(self, job: Job, allocation: _Allocation,
               pool: str = "shared") -> None:
        self.queue.remove(job)
        self.free_reserved -= allocation.from_reserved
        self.free_shared -= allocation.from_shared
        allocation.pool = pool
        allocation.job = job
        self._allocations[job.job_id] = allocation
        job.mark_started(self.engine.now)
        self.started.append(job)
        wait = self._wait_spans.pop(job.job_id, None)
        if wait is not None:
            self.tracer.end(wait, outcome="scheduled", pool=pool)
        self._run_spans[job.job_id] = self.tracer.begin(
            f"run:{job.job_id}", "scheduler.run", pool=pool,
            gpus=job.gpu_demand, job_type=job.job_type.value,
            borrowed=allocation.from_reserved if pool == "shared" else 0)
        self.tracer.set_gauge("scheduler.queue_length", len(self.queue))
        self._record_occupancy()
        self._notify("start", job)
        allocation.finish_item = self.engine.call_after(
            job.duration, lambda: self._on_finish(job))

    def _record_occupancy(self) -> None:
        in_use = (self.config.total_gpus - self.free_reserved
                  - self.free_shared - self.cordoned_gpus)
        self.occupancy.append((self.engine.now, in_use))
        self.tracer.set_gauge("scheduler.gpus_in_use", in_use)

    # -- reporting ------------------------------------------------------------

    def state_digest(self) -> str:
        """Deterministic digest of the live scheduling state.

        Captures everything a resumed run's scheduling decisions depend
        on — queue contents and order, allocations, free pools, cordon
        state, and lifetime counters — as a crc32 over a canonical
        repr.  The service snapshot records this digest so a journal-
        replay restore can prove the rebuilt scheduler is equivalent,
        without trying to serialize live ``Job``/callback objects.
        """
        queued = tuple((job.job_id, job.gpu_demand) for job in self.queue)
        allocations = tuple(sorted(
            (job_id, alloc.from_reserved, alloc.from_shared, alloc.pool)
            for job_id, alloc in self._allocations.items()))
        canonical = repr((
            queued, allocations, self.free_reserved, self.free_shared,
            self.cordoned_gpus, self._pending_cordon, self.preemptions,
            len(self.started), len(self.finished), len(self.shed)))
        return f"{zlib.crc32(canonical.encode('utf-8')):08x}"

    def gpu_seconds_used(self) -> float:
        """Integral of occupancy over time (for utilization accounting)."""
        if len(self.occupancy) < 2:
            return 0.0
        return math.fsum(
            gpus * (t1 - t0)
            for (t0, gpus), (t1, _)
            in zip(self.occupancy, self.occupancy[1:]))
