"""One generator per paper figure.

Every function returns a plain dict of labeled series/scalars — the same
rows and series the corresponding figure plots — so benchmarks can print
them and tests can assert their shape.  Figure numbering follows the
paper; appendix figures (17–22) are included.

All generators are deterministic given (n_jobs, seed); trace generation is
memoized because most figures share the same synthetic traces.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np

from repro.analysis.stats import boxplot_stats, cdf, median
from repro.core.evalsched import (CoordinatorConfig, TrialCoordinator,
                                  loading_stress_test)
from repro.cluster.storage import SharedStorage
from repro.evaluation import EvalStage, humaneval_profile, standard_catalog
from repro.monitor.carbon import (ACME_CARBON, SEREN_MAY_2023_ENERGY_MWH)
from repro.monitor.dcgm import DcgmSampler
from repro.monitor.hostmem import pretraining_host_memory
from repro.monitor.ipmi import IpmiSampler
from repro.monitor.power import GpuPowerModel, ServerPowerModel
from repro.monitor.prometheus import PrometheusSampler
from repro.monitor.temperature import TemperatureModel
from repro.scheduler.job import JobType, WORKLOAD_TYPES
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator
from repro.training.memory import MemoryModel
from repro.training.model import MISTRAL_7B_MOE, MODEL_123B
from repro.training.moe import moe_utilization_timeline
from repro.training.parallelism import internevo_v1, internevo_v2
from repro.training.pretrain import fig14_campaigns
from repro.training.profiler import SmProfiler
from repro.training.step import StepTimeModel
from repro.workload.baselines import (BASELINE_PROFILES,
                                      generate_baseline_trace)
from repro.workload.generator import TraceGenerator
from repro.workload.spec import KALOS_SPEC, SEREN_SPEC
from repro.workload.trace import Trace

DEFAULT_JOBS = 8000


@lru_cache(maxsize=8)
def acme_traces(n_jobs: int = DEFAULT_JOBS, seed: int = 0
                ) -> dict[str, Trace]:
    """Synthetic Seren + Kalos traces (shared across figures)."""
    return {
        "seren": TraceGenerator(SEREN_SPEC, seed=seed).generate(n_jobs),
        "kalos": TraceGenerator(KALOS_SPEC,
                                seed=seed + 1).generate(n_jobs),
    }


@lru_cache(maxsize=8)
def baseline_traces(n_jobs: int = DEFAULT_JOBS, seed: int = 0):
    """Synthetic Philly/Helios/PAI traces (memoized)."""
    return {name: generate_baseline_trace(profile, n_jobs, seed=seed + i)
            for i, (name, profile) in
            enumerate(sorted(BASELINE_PROFILES.items()))}


# -- §3.1: Acme vs prior DL workloads -----------------------------------------


def fig2(n_jobs: int = DEFAULT_JOBS, seed: int = 0) -> dict:
    """(a) CDF of GPU job duration; (b) CDF of GPU utilization."""
    acme = acme_traces(n_jobs, seed)
    baselines = baseline_traces(n_jobs, seed)
    durations = {}
    utilizations = {}
    for name, trace in acme.items():
        durations[name] = cdf(trace.durations())
        utilizations[name] = cdf(trace.utilizations())
    for name, baseline in baselines.items():
        durations[name] = cdf(baseline.durations)
        if baseline.utilizations is not None:
            utilizations[name] = cdf(baseline.utilizations)
    medians = {name: float(np.median(series[0]))
               for name, series in durations.items()}
    return {
        "duration_cdf": durations,
        "utilization_cdf": utilizations,
        "median_duration_s": medians,
        "median_utilization": {
            name: float(np.median(series[0]))
            for name, series in utilizations.items()},
    }


def fig3(n_jobs: int = DEFAULT_JOBS, seed: int = 0) -> dict:
    """CDF of (a) job count and (b) GPU time vs requested GPUs."""
    acme = acme_traces(n_jobs, seed)
    baselines = baseline_traces(n_jobs, seed)
    count_cdf = {}
    time_share = {}

    def gpu_time_cdf(demands: np.ndarray, gpu_times: np.ndarray):
        order = np.argsort(demands)
        sorted_demands = demands[order]
        cumulative = np.cumsum(gpu_times[order])
        total = cumulative[-1] if cumulative.size else 1.0
        return sorted_demands, cumulative / total

    for name, trace in acme.items():
        demands = trace.gpu_demands()
        count_cdf[name] = cdf(demands)
        time_share[name] = gpu_time_cdf(demands, trace.gpu_times())
    for name, baseline in baselines.items():
        count_cdf[name] = cdf(baseline.gpu_demands)
        time_share[name] = gpu_time_cdf(baseline.gpu_demands,
                                        baseline.gpu_times)

    def share_at_least(name: str, threshold: float) -> float:
        demands, shares = time_share[name]
        below = shares[demands < threshold]
        return 1.0 - (float(below[-1]) if below.size else 0.0)

    return {
        "count_cdf": count_cdf,
        "gpu_time_cdf": time_share,
        "kalos_share_ge_256": share_at_least("kalos", 256),
        "single_gpu_time_share": {
            name: 1.0 - share_at_least(name, 1.001)
            for name in time_share},
    }


# -- §3.2: workload categories -----------------------------------------------


def fig4(n_jobs: int = DEFAULT_JOBS, seed: int = 0) -> dict:
    """Job-count and GPU-time shares per workload type, per cluster."""
    acme = acme_traces(n_jobs, seed)
    result = {}
    for name, trace in acme.items():
        result[name] = {
            "count_share": {t.value: share for t, share in
                            trace.count_share_by_type().items()},
            "gpu_time_share": {t.value: share for t, share in
                               trace.gpu_time_share_by_type().items()},
        }
    return result


def fig5(n_jobs: int = DEFAULT_JOBS, seed: int = 0) -> dict:
    """Boxplot statistics of GPU demand per workload type."""
    acme = acme_traces(n_jobs, seed)
    result = {}
    for name, trace in acme.items():
        boxes = {}
        for job_type in WORKLOAD_TYPES:
            demands = trace.gpu_demands(job_type)
            if demands.size:
                boxes[job_type.value] = boxplot_stats(demands)
        result[name] = boxes
    return result


def fig6(n_jobs: int = 4000, seed: int = 0,
         reserved_fraction: float = 0.98) -> dict:
    """Duration and queueing-delay CDFs per type, from a scheduling replay.

    The trace span is compressed so the synthetic job count reproduces the
    production arrival *rate*; the scheduler reserves most GPUs for
    pretraining, which is what starves batched evaluation jobs (§3.2).
    """
    result = {}
    for spec, offset in ((SEREN_SPEC, 0), (KALOS_SPEC, 1)):
        scaled = replace(
            spec, span=spec.span * n_jobs / spec.real_gpu_jobs)
        trace = TraceGenerator(scaled, seed=seed + offset).generate(n_jobs)
        simulator = SchedulerSimulator(SchedulerConfig(
            total_gpus=spec.total_gpus,
            reserved_fraction=reserved_fraction))
        simulator.simulate(list(trace.gpu_jobs()))
        durations = {}
        delays = {}
        median_delay = {}
        for job_type in WORKLOAD_TYPES:
            values = trace.durations(job_type)
            if values.size:
                durations[job_type.value] = cdf(values)
            delay = trace.queueing_delays(job_type)
            if delay.size:
                delays[job_type.value] = cdf(delay)
                median_delay[job_type.value] = float(np.median(delay))
        result[spec.cluster] = {
            "duration_cdf": durations,
            "queueing_cdf": delays,
            "median_queueing_delay_s": median_delay,
        }
    return result


def queueing_contrast(n_jobs: int = 2500, seed: int = 0) -> dict:
    """§3.2's 'contrary to previous reports' claim, made explicit.

    Prior DL traces (Philly/Helios/PAI) report that *larger* jobs wait
    longer — reproduced by replaying a Philly-like workload through a
    plain FIFO scheduler.  Acme inverts this: tiny evaluation jobs wait
    the longest because of pretraining quota reservation.
    """
    from repro.scheduler.job import FinalStatus, Job
    from repro.scheduler.policy import FifoPolicy
    from repro.workload.baselines import PHILLY, generate_baseline_trace

    # Philly-like workload through FIFO: delay grows with demand.
    sample = generate_baseline_trace(PHILLY, n_jobs, seed=seed)
    rng = np.random.default_rng(seed)
    span = n_jobs * 140.0  # arrival rate tuned for sustained contention
    jobs = [Job(job_id=f"p{i}", cluster="philly",
                job_type=JobType.OTHER,
                submit_time=float(rng.uniform(0.0, span)),
                duration=float(sample.durations[i]),
                gpu_demand=int(max(1, sample.gpu_demands[i])),
                final_status=FinalStatus.COMPLETED)
            for i in range(n_jobs)]
    simulator = SchedulerSimulator(
        SchedulerConfig(total_gpus=64, reserved_fraction=0.0,
                        backfill_depth=16),
        policy=FifoPolicy())
    simulator.simulate(jobs)
    small = [job.queueing_delay for job in jobs if job.gpu_demand <= 2]
    large = [job.queueing_delay for job in jobs if job.gpu_demand >= 8]
    philly_small = float(np.mean(small)) if small else 0.0
    philly_large = float(np.mean(large)) if large else 0.0

    acme = fig6(n_jobs=n_jobs, seed=seed)
    kalos = acme["kalos"]["median_queueing_delay_s"]
    return {
        "philly_mean_delay_small_jobs_s": philly_small,
        "philly_mean_delay_large_jobs_s": philly_large,
        "philly_large_jobs_wait_longer": philly_large > philly_small,
        "acme_eval_median_delay_s": kalos.get("evaluation", 0.0),
        "acme_pretrain_median_delay_s": kalos.get("pretrain", 0.0),
        "acme_smallest_jobs_wait_longest":
            kalos.get("evaluation", 0.0) >= max(kalos.values()),
    }


# -- §3.3 / §3.4: infrastructure ----------------------------------------------


def fig7(n_jobs: int = DEFAULT_JOBS, seed: int = 0,
         samples: int = 4000) -> dict:
    """Infrastructure-utilization CDFs: SM/TC, memory, CPU, IB."""
    acme = acme_traces(n_jobs, seed)
    result = {}
    for index, (name, trace) in enumerate(sorted(acme.items())):
        dcgm = DcgmSampler(trace, seed=seed + index)
        gpu_metrics = dcgm.metric_arrays(samples)
        host_memory_gb = 2048.0 if name == "kalos" else 1024.0
        prometheus = PrometheusSampler(host_memory_gb=host_memory_gb,
                                       seed=seed + index)
        host_metrics = prometheus.metric_arrays(samples)
        result[name] = {
            "sm_activity_cdf": cdf(gpu_metrics["sm_activity"]),
            "tc_activity_cdf": cdf(gpu_metrics["tc_activity"]),
            "gpu_memory_cdf": cdf(gpu_metrics["memory_fraction"]),
            "host_memory_cdf": cdf(host_metrics["host_memory_fraction"]),
            "cpu_utilization_cdf": cdf(host_metrics["cpu_utilization"]),
            "ib_send_cdf": cdf(host_metrics["ib_send_fraction"]),
            "ib_recv_cdf": cdf(host_metrics["ib_recv_fraction"]),
            "median_sm_activity": median(gpu_metrics["sm_activity"]),
            "gpu_memory_over_75pct": float(
                (gpu_metrics["memory_fraction"] > 0.75).mean()),
            "nic_idle_fraction": float(
                (host_metrics["ib_send_fraction"] < 0.01).mean()),
        }
    return result


def fig8(n_jobs: int = DEFAULT_JOBS, seed: int = 0,
         samples: int = 4000) -> dict:
    """CDFs of GPU power and Seren server power."""
    acme = acme_traces(n_jobs, seed)
    power_model = GpuPowerModel()
    result = {}
    for index, (name, trace) in enumerate(sorted(acme.items())):
        dcgm = DcgmSampler(trace, seed=seed + index)
        draws = power_model.sample_cluster(dcgm, samples, seed=seed)
        result[name] = {
            "gpu_power_cdf": cdf(draws),
            "idle_fraction": float((draws < 70.0).mean()),
            "over_tdp_fraction": float((draws > 400.0).mean()),
        }
    seren_dcgm = DcgmSampler(acme["seren"], seed=seed)
    server_model = ServerPowerModel()
    servers = server_model.sample_servers(seren_dcgm, 300, power_model,
                                          seed=seed)
    result["seren_server"] = {
        "server_power_cdf": cdf(servers),
        "mean_gpu_server_w": float(servers.mean()),
        "cpu_server_w": server_model.cpu_server_watts(),
        "gpu_to_cpu_server_ratio": float(
            servers.mean() / server_model.cpu_server_watts()),
    }
    return result


def fig9(n_jobs: int = DEFAULT_JOBS, seed: int = 0) -> dict:
    """Average power breakdown of Seren GPU servers."""
    trace = acme_traces(n_jobs, seed)["seren"]
    sampler = IpmiSampler(DcgmSampler(trace, seed=seed), seed=seed)
    breakdown = sampler.average_breakdown(n_servers=150)
    return {"watts": {
        "gpu": breakdown.gpu,
        "cpu": breakdown.cpu,
        "memory": breakdown.memory,
        "fans": breakdown.fans,
        "nic_and_drives": breakdown.nic_and_drives,
        "psu_loss": breakdown.psu_loss,
    }, "shares": breakdown.shares()}


# -- §4.1: pretraining profiling ----------------------------------------------


def fig10(world_size: int = 2048, steps: int = 2) -> dict:
    """SM utilization: InternEvo V1 (3D) vs V2 (hierarchical ZeRO), 123B."""
    plans = {"v1_3d": internevo_v1(world_size),
             "v2_hierarchical_zero": internevo_v2(world_size)}
    result = {}
    per_token = {}
    for label, plan in plans.items():
        model = StepTimeModel(MODEL_123B, plan)
        timeline = SmProfiler(MODEL_123B, plan, model).profile(steps=steps)
        breakdown = model.breakdown()
        tokens = plan.global_batch_size * MODEL_123B.seq_len
        per_token[label] = breakdown.total / tokens
        result[label] = {
            "timeline": timeline,
            "mean_sm": timeline.mean_sm(),
            "peak_sm": timeline.peak_sm(),
            "idle_fraction": timeline.idle_fraction(),
            "step_seconds": breakdown.total,
            "breakdown": breakdown.as_dict(),
        }
    result["v2_speedup"] = (per_token["v1_3d"]
                            / per_token["v2_hierarchical_zero"])
    return result


def fig11(world_size: int = 2048) -> dict:
    """Memory snapshots over time for both strategies (123B)."""
    result = {}
    for label, plan in (("v1_3d", internevo_v1(world_size)),
                        ("v2_hierarchical_zero",
                         internevo_v2(world_size))):
        memory = MemoryModel(MODEL_123B, plan)
        times, static, activations = memory.timeline_arrays(steps=2)
        result[label] = {
            "times": times,
            "static_bytes": static,
            "activation_bytes": activations,
            "static_gib": memory.static_bytes() / 2 ** 30,
            "peak_activation_gib":
                memory.peak_activation_bytes(0) / 2 ** 30,
        }
    result["v1_activations_higher"] = (
        result["v1_3d"]["peak_activation_gib"]
        > result["v2_hierarchical_zero"]["peak_activation_gib"])
    return result


def fig12(world_size: int = 2048) -> dict:
    """Per-pipeline-rank memory under 1F1B (InternEvo V1)."""
    plan = internevo_v1(world_size)
    memory = MemoryModel(MODEL_123B, plan)
    peaks = memory.per_rank_peaks()
    return {
        "per_rank_total_gib": [peak / 2 ** 30 for peak in peaks],
        "per_rank_activation_gib": [
            memory.peak_activation_bytes(rank) / 2 ** 30
            for rank in range(plan.pipeline_parallel)],
        "in_flight_microbatches": [
            plan.in_flight_microbatches(rank)
            for rank in range(plan.pipeline_parallel)],
    }


# -- §4.2: evaluation profiling -----------------------------------------------


def fig13() -> dict:
    """SM utilization over a HumanEval evaluation job (7B)."""
    profile = humaneval_profile()
    timeline = profile.utilization_timeline(resolution=0.5)
    return {
        "timeline": timeline,
        "total_seconds": profile.total,
        "stage_seconds": {stage.value: profile.stage_seconds(stage)
                          for stage in EvalStage},
        "load_preprocess_fraction": (
            profile.stage_fraction(EvalStage.MODEL_LOAD)
            + profile.stage_fraction(EvalStage.PREPROCESS)),
        "metric_fraction": profile.stage_fraction(EvalStage.METRIC),
        "gpu_busy_fraction": profile.gpu_busy_fraction,
    }


# -- §5.3: recovery -----------------------------------------------------------


def fig14(seed: int = 7) -> dict:
    """Training progress of the 104B and 123B campaigns."""
    runs = fig14_campaigns(seed)
    result = {}
    for name, run in runs.items():
        times, iterations = run.progress_curve()
        result[name] = {
            "progress_curve": (times, iterations),
            "failures": run.failures,
            "lost_iterations": run.lost_iterations,
            "useful_fraction": run.useful_fraction,
            "final_iteration": run.final_iteration,
        }
    return result


# -- §6.2: evaluation scheduling ----------------------------------------------


def fig16(model_bytes: float = 14e9) -> dict:
    """Left: loading stress test; right: makespan comparison."""
    storage = SharedStorage(backend_bandwidth=400e9,
                            node_nic_bandwidth=25e9 / 8.0)
    stress = loading_stress_test(storage, model_bytes)
    catalog = standard_catalog()
    comparison = {}
    for nodes in (1, 4):
        coordinator = TrialCoordinator(CoordinatorConfig(n_nodes=nodes),
                                       storage)
        outcome = coordinator.compare(catalog)
        comparison[f"{nodes}_node"] = {
            "baseline_makespan_s": outcome["baseline"].makespan,
            "decoupled_makespan_s": outcome["decoupled"].makespan,
            "speedup": outcome["speedup"],
        }
    return {
        "loading_speed_by_trials": stress,
        "speed_collapse_1_to_8": stress[0][1] / stress[3][1],
        "makespan": comparison,
    }


# -- appendix -----------------------------------------------------------------


def fig17(n_jobs: int = DEFAULT_JOBS, seed: int = 0) -> dict:
    """Final statuses by job count and GPU time."""
    acme = acme_traces(n_jobs, seed)
    result = {}
    for name, trace in acme.items():
        counts = trace.status_counts()
        total_jobs = sum(counts.values())
        times = trace.status_gpu_time()
        total_time = sum(times.values())
        result[name] = {
            "count_share": {status.value: count / total_jobs
                            for status, count in counts.items()},
            "gpu_time_share": {status.value: value / total_time
                               for status, value in times.items()},
        }
    return result


def fig18() -> dict:
    """Host-memory breakdown of a Seren pretraining node."""
    breakdown = pretraining_host_memory()
    return {
        "components_gb": {name: amount / 1e9
                          for name, amount in
                          breakdown.components.items()},
        "total_used_gb": breakdown.total_used / 1e9,
        "idle_gb": breakdown.idle / 1e9,
        "used_fraction": breakdown.used_fraction,
        "checkpoint_buffers_7b": breakdown.checkpoint_buffers_that_fit(
            int(16 * 7e9 / 8)),  # one GPU's shard of a 7B state per node
    }


def fig19(steps: int = 2) -> dict:
    """Fig. 10 at 1024 GPUs (same patterns — generalizability)."""
    return fig10(world_size=1024, steps=steps)


def fig20() -> dict:
    """Fig. 11 at 1024 GPUs."""
    return fig11(world_size=1024)


def fig21(n_jobs: int = DEFAULT_JOBS, seed: int = 0,
          samples: int = 4000) -> dict:
    """GPU core/memory temperature CDFs."""
    trace = acme_traces(n_jobs, seed)["seren"]
    draws = GpuPowerModel().sample_cluster(
        DcgmSampler(trace, seed=seed), samples, seed=seed)
    model = TemperatureModel()
    core, memory = model.sample_fleet(draws, seed=seed)
    return {
        "core_cdf": cdf(core),
        "memory_cdf": cdf(memory),
        "memory_hotter": bool(np.median(memory) > np.median(core)),
        "over_65c_fraction": float((core > 65.0).mean()),
    }


def fig22(steps: int = 2) -> dict:
    """MoE (Mistral-7B) SM utilization vs the dense 123B (Fig. 10)."""
    moe_timeline = moe_utilization_timeline(MISTRAL_7B_MOE, steps=steps)
    dense = fig10(steps=1)
    return {
        "timeline": moe_timeline,
        "moe_mean_sm": moe_timeline.mean_sm(),
        "dense_mean_sm": dense["v2_hierarchical_zero"]["mean_sm"],
        "moe_lower": moe_timeline.mean_sm()
        < dense["v2_hierarchical_zero"]["mean_sm"],
    }


def carbon_a3() -> dict:
    """Appendix A.3: Seren's May 2023 emissions."""
    emissions = ACME_CARBON.effective_emissions_tco2e(
        SEREN_MAY_2023_ENERGY_MWH)
    return {
        "energy_mwh": SEREN_MAY_2023_ENERGY_MWH,
        "pue": ACME_CARBON.pue,
        "carbon_free_fraction": ACME_CARBON.carbon_free_fraction,
        "emissions_tco2e": emissions,
    }
