"""Table generators: Tables 1–3 of the paper."""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import make_kalos, make_seren
from repro.failures.injector import FailureEvent, FailureInjector
from repro.failures.taxonomy import (TAXONOMY, FailureCategory,
                                     category_gpu_time_shares)
from repro.workload.baselines import BASELINE_PROFILES
from repro.workload.spec import KALOS_SPEC, SEREN_SPEC


def table1() -> list[dict]:
    """Per-node specification and cluster scale (Table 1)."""
    return [make_seren().summary(), make_kalos().summary()]


def table2(acme_traces: dict | None = None) -> list[dict]:
    """Datacenter comparison (Table 2).

    The Acme row's average-GPU figure can be measured from synthetic
    traces (pass ``acme_traces``) or reported from the published value.
    """
    rows = []
    for name, profile in sorted(BASELINE_PROFILES.items()):
        rows.append({
            "datacenter": name,
            "year": profile.year,
            "jobs": profile.real_jobs,
            "avg_gpus": {"philly": 1.9, "helios": 3.7,
                         "pai": 0.7}[name],
            "gpu_model": profile.gpu_model,
            "total_gpus": profile.total_gpus,
        })
    if acme_traces:
        demands = np.concatenate([trace.gpu_demands()
                                  for trace in acme_traces.values()])
        avg = float(demands.mean())
    else:
        avg = 6.3
    rows.append({
        "datacenter": "acme",
        "year": 2023,
        "jobs": SEREN_SPEC.real_gpu_jobs + KALOS_SPEC.real_gpu_jobs
        + SEREN_SPEC.real_cpu_jobs + KALOS_SPEC.real_cpu_jobs,
        "avg_gpus": avg,
        "gpu_model": "A100",
        "total_gpus": SEREN_SPEC.total_gpus + KALOS_SPEC.total_gpus,
    })
    return rows


def table3(scale: float = 1.0, seed: int = 0) -> list[dict]:
    """Regenerate the failure-statistics table from sampled events.

    Samples ``scale``x the observed count of every failure reason and
    recomputes each Table 3 column, so the row statistics can be compared
    with the published ones (stored alongside as ``paper_*``).
    """
    injector = FailureInjector(seed=seed)
    events = injector.generate_events(scale)
    by_reason: dict[str, list[FailureEvent]] = {}
    for event in events:
        by_reason.setdefault(event.reason, []).append(event)
    total_gpu_time = sum(event.gpu_time_min for event in events)
    rows = []
    for spec in TAXONOMY:
        sampled = by_reason.get(spec.reason, [])
        if not sampled:
            continue
        demand = np.array([event.gpu_demand for event in sampled])
        ttf = np.array([event.time_to_failure_min for event in sampled])
        restart = np.array([event.time_to_restart_min
                            for event in sampled])
        gpu_time = float(sum(event.gpu_time_min for event in sampled))
        rows.append({
            "category": spec.category.value,
            "reason": spec.reason,
            "num": len(sampled),
            "demand_avg": float(demand.mean()),
            "demand_median": float(np.median(demand)),
            "ttf_avg_min": float(ttf.mean()),
            "ttf_median_min": float(np.median(ttf)),
            "gpu_time_pct": 100.0 * gpu_time / total_gpu_time,
            "restart_avg_min": float(restart.mean()),
            "restart_median_min": float(np.median(restart)),
            "paper_num": spec.count,
            "paper_demand_avg": spec.demand_avg,
            "paper_ttf_avg_min": spec.ttf_avg_min,
            "paper_gpu_time_pct": spec.gpu_time_pct,
        })
    rows.sort(key=lambda row: -row["gpu_time_pct"])
    return rows


def table3_category_summary(rows: list[dict] | None = None) -> dict:
    """Category-level aggregation: the §5.2 '11% of failures, >82% of
    GPU time' headline for infrastructure."""
    rows = rows if rows is not None else table3()
    totals = {category.value: {"num": 0, "gpu_time_pct": 0.0}
              for category in FailureCategory}
    total_num = 0
    for row in rows:
        totals[row["category"]]["num"] += row["num"]
        totals[row["category"]]["gpu_time_pct"] += row["gpu_time_pct"]
        total_num += row["num"]
    for value in totals.values():
        value["num_share"] = (value["num"] / total_num
                              if total_num else 0.0)
    totals["paper_infrastructure_gpu_time_pct"] = (
        category_gpu_time_shares()[FailureCategory.INFRASTRUCTURE])
    return totals


def chaos_recovery_table(summaries: list) -> list[dict]:
    """Per-scenario recovery numbers from chaos runs (compare §6.1.2).

    Takes :class:`repro.chaos.ChaosSummary` objects and lines them up the
    way Table 3's restart columns and the §6.1 recovery claims are
    reported: failure pressure (MTTF), response (MTTR), the cost (wasted
    GPU-hours, goodput), and how much of it needed no human.
    """
    rows = []
    for summary in summaries:
        rows.append({
            "scenario": summary.scenario,
            "faults": summary.faults_injected,
            "mttf_h": summary.mttf_hours,
            "mttr_min": summary.mttr_minutes,
            "recovery_rate": summary.recovery_success_rate,
            "automation_rate": summary.automation_rate,
            "goodput": summary.pretrain_goodput,
            "wasted_gpu_h": summary.wasted_gpu_hours,
            "escalated_nodes": summary.nodes_escalated,
        })
    rows.sort(key=lambda row: row["scenario"])
    return rows
