"""Plain-text rendering of tables and figure summaries.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = list(columns or rows[0].keys())
    cells = [[_format_cell(row.get(col, "")) for col in columns]
             for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_cdf_summary(series: dict, quantiles: Sequence[float] =
                       (10, 25, 50, 75, 90, 99),
                       title: str | None = None,
                       unit: str = "") -> str:
    """Summarize named CDF series at fixed quantiles."""
    rows = []
    for name, (values, _prob) in sorted(series.items()):
        row = {"series": name}
        for q in quantiles:
            key = f"p{int(q)}"
            row[key] = (float(np.percentile(values, q))
                        if len(values) else float("nan"))
        rows.append(row)
    table = render_table(rows, title=title)
    if unit:
        table += f"\n(values in {unit})"
    return table


def render_key_values(data: dict, title: str | None = None) -> str:
    """Render scalar findings as 'key: value' lines."""
    lines = [title] if title else []
    for key, value in data.items():
        lines.append(f"  {key}: {_format_cell(value)}")
    return "\n".join(lines)
