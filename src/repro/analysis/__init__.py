"""Analysis layer: regenerates every table and figure of the paper.

``figures`` exposes one function per paper figure returning structured
series (the same rows/series the paper plots); ``tables`` does the same
for Tables 1–3; ``report`` renders them as aligned text for the benchmark
harness output.
"""

from repro.analysis.stats import (cdf, percentile, boxplot_stats,
                                  BoxplotStats, median)
from repro.analysis import figures
from repro.analysis import tables
from repro.analysis.report import (render_table, render_cdf_summary,
                                   render_key_values)
from repro.analysis import plotting
from repro.analysis.export import export_all

__all__ = [
    "cdf",
    "percentile",
    "median",
    "boxplot_stats",
    "BoxplotStats",
    "figures",
    "tables",
    "render_table",
    "render_cdf_summary",
    "render_key_values",
    "plotting",
    "export_all",
]
