"""Figure export: SVG charts and CSV series for every paper figure.

``export_all(outdir)`` regenerates the figures and writes:

* ``<figure>.svg`` — a rendered chart (``repro.analysis.plotting``);
* ``<figure>__<series>.csv`` — the underlying series for external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.analysis import figures
from repro.analysis.plotting import plot_bars, plot_cdfs, plot_timeline


def _write_series_csv(path: Path, columns: dict[str, np.ndarray]) -> None:
    arrays = {name: np.asarray(values).ravel()
              for name, values in columns.items()}
    length = max(array.size for array in arrays.values())
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(arrays.keys())
        for index in range(length):
            writer.writerow([arrays[name][index]
                             if index < arrays[name].size else ""
                             for name in arrays])


def export_fig2(outdir: Path, n_jobs: int, seed: int) -> list[Path]:
    """Render Fig. 2's duration/utilization CDFs as SVG + CSV."""
    data = figures.fig2(n_jobs, seed)
    written = [
        plot_cdfs(data["duration_cdf"], "Fig 2a: GPU job duration",
                  "duration (s)", outdir / "fig02a_duration.svg",
                  log_x=True),
        plot_cdfs(data["utilization_cdf"], "Fig 2b: GPU utilization",
                  "utilization", outdir / "fig02b_utilization.svg"),
    ]
    for name, (values, probability) in data["duration_cdf"].items():
        path = outdir / f"fig02a__{name}.csv"
        _write_series_csv(path, {"duration_s": values,
                                 "cdf": probability})
        written.append(path)
    return written


def export_fig6(outdir: Path, n_jobs: int, seed: int) -> list[Path]:
    """Render Fig. 6's queueing-delay CDFs as SVG."""
    data = figures.fig6(min(n_jobs, 3000), seed)
    written = []
    for cluster, cluster_data in data.items():
        written.append(plot_cdfs(
            cluster_data["queueing_cdf"],
            f"Fig 6: queueing delay ({cluster})", "delay (s)",
            outdir / f"fig06_queueing_{cluster}.svg", log_x=True))
    return written


def export_fig10(outdir: Path) -> list[Path]:
    """Render Fig. 10's SM-activity timelines as SVG + CSV."""
    data = figures.fig10()
    written = []
    for label in ("v1_3d", "v2_hierarchical_zero"):
        timeline = data[label]["timeline"]
        written.append(plot_timeline(
            timeline, f"Fig 10: SM activity ({label})",
            outdir / f"fig10_{label}.svg"))
        csv_path = outdir / f"fig10__{label}.csv"
        _write_series_csv(csv_path, {"time_s": timeline.times,
                                     "sm": timeline.sm,
                                     "tc": timeline.tc})
        written.append(csv_path)
    return written


def export_fig12(outdir: Path) -> list[Path]:
    """Render Fig. 12's per-rank memory bars as SVG."""
    data = figures.fig12()
    bars = {f"rank {rank}": gib
            for rank, gib in enumerate(data["per_rank_total_gib"])}
    return [plot_bars(bars, "Fig 12: per-pipeline-rank memory",
                      "GiB", outdir / "fig12_rank_memory.svg")]


def export_fig13(outdir: Path) -> list[Path]:
    """Render Fig. 13's HumanEval trial timeline as SVG."""
    data = figures.fig13()
    return [plot_timeline(data["timeline"],
                          "Fig 13: HumanEval evaluation trial",
                          outdir / "fig13_humaneval.svg")]


def export_fig14(outdir: Path) -> list[Path]:
    """Render Fig. 14's recovery progress curves as SVG."""
    data = figures.fig14()
    from repro.analysis.plotting import SvgFigure

    figure = SvgFigure("Fig 14: training progress with recovery",
                       "wall-clock (days)", "iteration")
    for name, run in data.items():
        times, iterations = run["progress_curve"]
        figure.add_series(name, times / 86400.0, iterations)
    return [figure.save(outdir / "fig14_progress.svg")]


def export_fig16(outdir: Path) -> list[Path]:
    """Render Fig. 16's loading sweep and makespan bars as SVG."""
    data = figures.fig16()
    trials, rates = zip(*data["loading_speed_by_trials"])
    from repro.analysis.plotting import SvgFigure

    figure = SvgFigure("Fig 16 left: model loading under contention",
                       "concurrent trials", "per-trial Gb/s", log_x=True)
    figure.add_series("load speed", np.array(trials, dtype=float),
                      np.array(rates) * 8 / 1e9)
    written = [figure.save(outdir / "fig16_loading.svg")]
    bars = {setup: info["speedup"]
            for setup, info in data["makespan"].items()}
    written.append(plot_bars(bars, "Fig 16 right: makespan speedup",
                             "speedup (x)",
                             outdir / "fig16_speedup.svg"))
    return written


def export_fig17(outdir: Path, n_jobs: int, seed: int) -> list[Path]:
    """Render Fig. 17's final-status shares as SVG bars."""
    data = figures.fig17(n_jobs, seed)
    written = []
    for cluster, cluster_data in data.items():
        written.append(plot_bars(
            cluster_data["gpu_time_share"],
            f"Fig 17: GPU time by final status ({cluster})", "share",
            outdir / f"fig17_{cluster}.svg"))
    return written


def export_fig21(outdir: Path, n_jobs: int, seed: int) -> list[Path]:
    """Render Fig. 21's temperature CDFs as SVG."""
    data = figures.fig21(n_jobs, seed)
    return [plot_cdfs({"core": data["core_cdf"],
                       "memory": data["memory_cdf"]},
                      "Fig 21: GPU temperatures", "celsius",
                      outdir / "fig21_temperature.svg")]


def export_fig22(outdir: Path) -> list[Path]:
    """Render Fig. 22's MoE SM-activity timeline as SVG."""
    data = figures.fig22()
    return [plot_timeline(data["timeline"],
                          "Fig 22: MoE pretraining SM activity",
                          outdir / "fig22_moe.svg")]


def export_all(outdir: str | Path, n_jobs: int = 6000,
               seed: int = 0) -> list[Path]:
    """Export every renderable figure; returns the written paths."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    written += export_fig2(outdir, n_jobs, seed)
    written += export_fig6(outdir, n_jobs, seed)
    written += export_fig10(outdir)
    written += export_fig12(outdir)
    written += export_fig13(outdir)
    written += export_fig14(outdir)
    written += export_fig16(outdir)
    written += export_fig17(outdir, n_jobs, seed)
    written += export_fig21(outdir, n_jobs, seed)
    written += export_fig22(outdir)
    return written
