"""Dependency-free SVG rendering of the paper's figures.

matplotlib is unavailable offline, so this module draws the three chart
shapes the paper uses — CDF/line plots, timelines, and bar charts — as
standalone SVG files with axes, ticks, and legends.  Output is valid XML
(the tests parse it back).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

PALETTE = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
           "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf"]


def _nice_ticks(low: float, high: float, n: int = 5) -> list[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    step = 10 ** math.floor(math.log10(span / max(n, 1)))
    for multiplier in (1, 2, 5, 10):
        if span / (step * multiplier) <= n:
            step *= multiplier
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-12:
        ticks.append(round(value, 10))
        value += step
    return ticks or [low, high]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:g}"


@dataclass
class Series:
    """One named line on a chart."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError("x and y must have the same shape")


class SvgFigure:
    """A single-axes SVG chart."""

    def __init__(self, title: str, xlabel: str, ylabel: str,
                 width: int = 640, height: int = 400,
                 log_x: bool = False) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.log_x = log_x
        self.series: list[Series] = []
        self.margin = dict(left=70, right=20, top=40, bottom=50)

    def add_series(self, label: str, x, y) -> None:
        """Add one labeled line to the chart."""
        series = Series(label, x, y)
        if self.log_x and (series.x <= 0).any():
            raise ValueError("log-x plots need positive x values")
        self.series.append(series)

    # -- coordinate transforms ---------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = np.concatenate([np.log10(s.x) if self.log_x else s.x
                             for s in self.series])
        ys = np.concatenate([s.y for s in self.series])
        x0, x1 = float(xs.min()), float(xs.max())
        y0, y1 = float(ys.min()), float(ys.max())
        if x1 == x0:
            x1 = x0 + 1.0
        if y1 == y0:
            y1 = y0 + 1.0
        return x0, x1, y0, y1

    def _to_px(self, x: float, y: float,
               bounds: tuple[float, float, float, float]
               ) -> tuple[float, float]:
        x0, x1, y0, y1 = bounds
        plot_w = self.width - self.margin["left"] - self.margin["right"]
        plot_h = self.height - self.margin["top"] - self.margin["bottom"]
        px = self.margin["left"] + (x - x0) / (x1 - x0) * plot_w
        py = (self.height - self.margin["bottom"]
              - (y - y0) / (y1 - y0) * plot_h)
        return px, py

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """Produce the SVG document as a string."""
        if not self.series:
            raise ValueError("no series to plot")
        bounds = self._bounds()
        x0, x1, y0, y1 = bounds
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-family="sans-serif" '
            f'font-weight="bold">{escape(self.title)}</text>',
        ]
        # axes box
        left, top = self.margin["left"], self.margin["top"]
        right = self.width - self.margin["right"]
        bottom = self.height - self.margin["bottom"]
        parts.append(f'<rect x="{left}" y="{top}" '
                     f'width="{right - left}" height="{bottom - top}" '
                     f'fill="none" stroke="#333"/>')
        # ticks
        for tick in _nice_ticks(x0, x1):
            px, _ = self._to_px(tick, y0, bounds)
            if not left <= px <= right:
                continue
            label = (_format_tick(10 ** tick) if self.log_x
                     else _format_tick(tick))
            parts.append(f'<line x1="{px:.1f}" y1="{bottom}" '
                         f'x2="{px:.1f}" y2="{bottom + 5}" '
                         f'stroke="#333"/>')
            parts.append(f'<text x="{px:.1f}" y="{bottom + 18}" '
                         f'text-anchor="middle" font-size="10" '
                         f'font-family="sans-serif">{label}</text>')
        for tick in _nice_ticks(y0, y1):
            _, py = self._to_px(x0, tick, bounds)
            if not top <= py <= bottom:
                continue
            parts.append(f'<line x1="{left - 5}" y1="{py:.1f}" '
                         f'x2="{left}" y2="{py:.1f}" stroke="#333"/>')
            parts.append(f'<text x="{left - 8}" y="{py + 3:.1f}" '
                         f'text-anchor="end" font-size="10" '
                         f'font-family="sans-serif">'
                         f'{_format_tick(tick)}</text>')
        # axis labels
        parts.append(f'<text x="{(left + right) / 2}" '
                     f'y="{self.height - 10}" text-anchor="middle" '
                     f'font-size="12" font-family="sans-serif">'
                     f'{escape(self.xlabel)}</text>')
        parts.append(f'<text x="15" y="{(top + bottom) / 2}" '
                     f'text-anchor="middle" font-size="12" '
                     f'font-family="sans-serif" transform="rotate(-90 15 '
                     f'{(top + bottom) / 2})">{escape(self.ylabel)}'
                     f'</text>')
        # series
        for index, series in enumerate(self.series):
            color = PALETTE[index % len(PALETTE)]
            xs = np.log10(series.x) if self.log_x else series.x
            points = " ".join(
                f"{px:.1f},{py:.1f}"
                for px, py in (self._to_px(x, y, bounds)
                               for x, y in zip(xs, series.y)))
            parts.append(f'<polyline points="{points}" fill="none" '
                         f'stroke="{color}" stroke-width="1.5"/>')
            legend_y = top + 14 + 14 * index
            parts.append(f'<line x1="{right - 110}" y1="{legend_y}" '
                         f'x2="{right - 90}" y2="{legend_y}" '
                         f'stroke="{color}" stroke-width="2"/>')
            parts.append(f'<text x="{right - 85}" y="{legend_y + 4}" '
                         f'font-size="10" font-family="sans-serif">'
                         f'{escape(series.label)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        """Render and write the SVG to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path


def plot_cdfs(series: dict[str, tuple[np.ndarray, np.ndarray]],
              title: str, xlabel: str, path: str | Path,
              log_x: bool = False) -> Path:
    """Render named (values, probability) CDF series."""
    figure = SvgFigure(title, xlabel, "CDF", log_x=log_x)
    for label, (values, probability) in sorted(series.items()):
        values = np.asarray(values, dtype=float)
        probability = np.asarray(probability, dtype=float)
        if log_x:
            mask = values > 0
            values, probability = values[mask], probability[mask]
        if values.size:
            figure.add_series(label, values, probability)
    return figure.save(path)


def plot_timeline(timeline, title: str, path: str | Path,
                  ylabel: str = "SM activity") -> Path:
    """Render a :class:`UtilizationTimeline` (Figs. 10/13/22)."""
    figure = SvgFigure(title, "time (s)", ylabel)
    figure.add_series("SM", timeline.times, timeline.sm)
    figure.add_series("TC", timeline.times, timeline.tc)
    return figure.save(path)


def plot_bars(values: dict[str, float], title: str, ylabel: str,
              path: str | Path, width: int = 640,
              height: int = 400) -> Path:
    """A simple labeled bar chart (Figs. 9/12/17)."""
    if not values:
        raise ValueError("no bars to plot")
    labels = list(values.keys())
    heights = np.array([values[label] for label in labels], dtype=float)
    top_value = float(heights.max()) or 1.0
    margin_left, margin_bottom, margin_top = 70, 70, 40
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    bar_w = plot_w / len(labels) * 0.7
    gap = plot_w / len(labels)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-family="sans-serif" font-weight="bold">'
        f'{escape(title)}</text>',
    ]
    for index, (label, value) in enumerate(zip(labels, heights)):
        bar_h = value / top_value * plot_h
        x = margin_left + index * gap + (gap - bar_w) / 2
        y = margin_top + plot_h - bar_h
        color = PALETTE[index % len(PALETTE)]
        parts.append(f'<rect x="{x:.1f}" y="{y:.1f}" '
                     f'width="{bar_w:.1f}" height="{bar_h:.1f}" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
                     f'text-anchor="middle" font-size="10" '
                     f'font-family="sans-serif">'
                     f'{_format_tick(float(value))}</text>')
        parts.append(f'<text x="{x + bar_w / 2:.1f}" '
                     f'y="{margin_top + plot_h + 14}" '
                     f'text-anchor="middle" font-size="9" '
                     f'font-family="sans-serif">{escape(label)}</text>')
    parts.append(f'<text x="15" y="{margin_top + plot_h / 2}" '
                 f'text-anchor="middle" font-size="12" '
                 f'font-family="sans-serif" transform="rotate(-90 15 '
                 f'{margin_top + plot_h / 2})">{escape(ylabel)}</text>')
    parts.append("</svg>")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(parts))
    return path
