"""Statistical helpers for the figure generators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probability)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return np.empty(0), np.empty(0)
    ordered = np.sort(array)
    probability = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probability


def cdf_at(values, points) -> np.ndarray:
    """CDF evaluated at arbitrary points."""
    array = np.sort(np.asarray(values, dtype=float))
    points = np.asarray(points, dtype=float)
    if array.size == 0:
        return np.zeros_like(points)
    return np.searchsorted(array, points, side="right") / array.size


def percentile(values, q: float) -> float:
    """The q-th percentile of a sample."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("empty sample")
    return float(np.percentile(array, q))


def median(values) -> float:
    """The sample median."""
    return percentile(values, 50.0)


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary with 1.5-IQR whiskers (Fig. 5's boxes)."""

    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values) -> BoxplotStats:
    """Five-number summary with 1.5-IQR whiskers."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("empty sample")
    q1 = float(np.percentile(array, 25))
    q2 = float(np.percentile(array, 50))
    q3 = float(np.percentile(array, 75))
    iqr = q3 - q1
    low_bound = q1 - 1.5 * iqr
    high_bound = q3 + 1.5 * iqr
    inside = array[(array >= low_bound) & (array <= high_bound)]
    if inside.size == 0:
        inside = array
    return BoxplotStats(q1=q1, median=q2, q3=q3,
                        whisker_low=float(inside.min()),
                        whisker_high=float(inside.max()))


def weighted_share(keys, weights) -> dict:
    """Normalized share of ``weights`` grouped by ``keys``."""
    totals: dict = {}
    total = 0.0
    for key, weight in zip(keys, weights):
        totals[key] = totals.get(key, 0.0) + weight
        total += weight
    if total == 0:
        return {key: 0.0 for key in totals}
    return {key: value / total for key, value in totals.items()}
