"""Decoupled scheduling for evaluation (§6.2).

Three techniques behind the trial coordinator:

1. **Decoupled remote model loading** — precursor jobs stage the model
   into each node's shared memory once, instead of 8 concurrent trials
   fighting over the 25 Gb/s storage NIC (Fig. 16);
2. **Decoupled metric computation** — inference outputs are dumped to
   files and metric computation becomes CPU jobs, freeing the GPU;
3. **Prior-based elastic scheduling** — datasets are batched/split using
   runtime priors and packed longest-first round-robin, with
   heavy-CPU-metric trials prioritized so their metric work overlaps.
"""

from repro.core.evalsched.loading import (ModelStager, LoadPlanComparison,
                                          loading_stress_test)
from repro.core.evalsched.packing import (PackedAssignment, lpt_pack,
                                          elastic_decompose, pack_makespan)
from repro.core.evalsched.coordinator import (TrialCoordinator,
                                              EvaluationRound,
                                              CoordinatorConfig)
from repro.core.evalsched.simulation import (EventDrivenEvalRound,
                                             SimulatedRound)

__all__ = [
    "ModelStager",
    "LoadPlanComparison",
    "loading_stress_test",
    "PackedAssignment",
    "lpt_pack",
    "elastic_decompose",
    "pack_makespan",
    "TrialCoordinator",
    "EvaluationRound",
    "CoordinatorConfig",
    "EventDrivenEvalRound",
    "SimulatedRound",
]
