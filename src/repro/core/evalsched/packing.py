"""Prior-based elastic scheduling (§6.2, technique 3).

The coordinator knows each dataset's approximate runtime, can merge small
datasets into one trial (amortizing model loading) and split large ones
(bounding the straggler), and packs work longest-first round-robin over
sorted queues.  Trials with lengthy CPU metric phases are prioritized so
their decoupled metric jobs overlap the rest of the round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq

from repro.evaluation.datasets import EvalDataset


@dataclass
class PackedAssignment:
    """Datasets assigned to one GPU slot, in execution order."""

    gpu_index: int
    datasets: list[EvalDataset] = field(default_factory=list)

    def gpu_seconds(self, per_dataset_overhead: float = 0.0) -> float:
        """GPU time this slot's datasets consume."""
        return sum(d.inference_seconds + d.preprocess_seconds
                   + per_dataset_overhead for d in self.datasets)


def elastic_decompose(datasets: list[EvalDataset], gpus: int,
                      target_seconds: float | None = None
                      ) -> list[EvalDataset]:
    """Split oversized datasets so no single shard dominates the round.

    ``target_seconds`` defaults to the ideal balanced share (total work /
    GPUs); any splittable dataset longer than that is partitioned into
    shards of roughly the target size.
    """
    if gpus <= 0:
        raise ValueError("gpus must be positive")
    if not datasets:
        return []
    total = sum(d.inference_seconds for d in datasets)
    if target_seconds is None:
        target_seconds = max(total / gpus, 1.0)
    result: list[EvalDataset] = []
    for dataset in datasets:
        if (dataset.splittable
                and dataset.inference_seconds > 1.5 * target_seconds):
            parts = min(gpus, max(
                2, round(dataset.inference_seconds / target_seconds)))
            result.extend(dataset.split(parts))
        else:
            result.append(dataset)
    return result


def lpt_pack(datasets: list[EvalDataset], gpus: int,
             prioritize_cpu_metrics: bool = True,
             per_dataset_overhead: float = 0.0
             ) -> list[PackedAssignment]:
    """Longest-processing-time-first packing over ``gpus`` slots.

    ``prioritize_cpu_metrics`` puts heavy-metric datasets at the *front*
    of each slot's execution order so their CPU metric jobs start early
    and overlap the remaining GPU work (§6.2).
    """
    if gpus <= 0:
        raise ValueError("gpus must be positive")
    assignments = [PackedAssignment(gpu_index=i) for i in range(gpus)]
    heap: list[tuple[float, int]] = [(0.0, i) for i in range(gpus)]
    heapq.heapify(heap)
    ordered = sorted(datasets,
                     key=lambda d: -(d.inference_seconds
                                     + d.preprocess_seconds))
    for dataset in ordered:
        load, index = heapq.heappop(heap)
        assignments[index].datasets.append(dataset)
        load += (dataset.inference_seconds + dataset.preprocess_seconds
                 + per_dataset_overhead)
        heapq.heappush(heap, (load, index))
    if prioritize_cpu_metrics:
        for assignment in assignments:
            assignment.datasets.sort(key=lambda d: -d.metric_cpu_seconds)
    return assignments


def pack_makespan(assignments: list[PackedAssignment],
                  per_dataset_overhead: float = 0.0) -> float:
    """GPU-side makespan of a packing."""
    if not assignments:
        return 0.0
    return max(a.gpu_seconds(per_dataset_overhead) for a in assignments)
