"""The trial coordinator (§6.2): baseline vs decoupled evaluation rounds.

Baseline (Fig. 16 right (a)): every dataset is submitted as its own trial.
Each trial loads the model from remote storage itself (contending on the
node's storage NIC with its neighbors), preprocesses, infers, and runs
metric computation inline — holding the GPU through every stage.

Decoupled (Fig. 16 right (b)): the coordinator stages the model into node
shared memory with precursor jobs, merges/splits datasets using runtime
priors, packs them longest-first over the GPUs with heavy-CPU-metric work
prioritized, and dumps inference outputs to files so metric computation
runs as parallel CPU jobs off the GPU.

``TrialCoordinator.compare`` reproduces the §6.2 experiment: the makespan
of a 63-dataset round on a 7B model, on one node and on four nodes
(paper: 1.3x and 1.8x reduction).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.cluster.storage import SharedStorage
from repro.core.evalsched.loading import ModelStager
from repro.core.evalsched.packing import (elastic_decompose, lpt_pack)
from repro.evaluation.datasets import EvalDataset
from repro.obs.tracer import NULL_TRACER, TracerLike

GB = 10 ** 9


@dataclass(frozen=True)
class CoordinatorConfig:
    """One evaluation round's setup."""

    n_nodes: int
    gpus_per_node: int = 8
    model_bytes: float = 14 * GB        # fp16 7B checkpoint
    #: wall-clock divisor for decoupled CPU metric jobs (they fan out over
    #: idle cores as dedicated CPU jobs)
    metric_workers: int = 8
    #: baseline trials run metrics inline, single-process (Fig. 13 shows
    #: the GPU idle through the whole metric phase); raise for ablations
    baseline_metric_workers: int = 1
    preprocess_cache: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("nodes and gpus_per_node must be positive")

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node


@dataclass
class EvaluationRound:
    """Result of simulating one scheduling strategy."""

    strategy: str
    makespan: float
    gpu_busy_seconds: float
    gpu_occupied_seconds: float
    trial_count: int
    events: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def gpu_efficiency(self) -> float:
        """Inference seconds / GPU-occupied seconds."""
        if self.gpu_occupied_seconds == 0:
            return 0.0
        return self.gpu_busy_seconds / self.gpu_occupied_seconds


class TrialCoordinator:
    """Simulates both strategies for a dataset round."""

    def __init__(self, config: CoordinatorConfig,
                 storage: SharedStorage | None = None,
                 tracer: TracerLike | None = None) -> None:
        self.config = config
        # Seren-style storage: 25 Gb/s storage NIC per node (§6.2).
        self.storage = storage or SharedStorage(
            backend_bandwidth=400e9, node_nic_bandwidth=25e9 / 8.0)
        self.stager = ModelStager(self.storage, config.model_bytes)
        # trial times are computed analytically, so spans are recorded
        # post-hoc with explicit start/end (tracer.complete)
        self.tracer = tracer or NULL_TRACER

    # -- baseline ------------------------------------------------------------

    def run_baseline(self, datasets: list[EvalDataset]) -> EvaluationRound:
        """One dataset per trial; greedy list scheduling over all GPUs."""
        cfg = self.config
        gpus = cfg.total_gpus
        # While the round is saturated every GPU on a node is loading or
        # working, so loads contend ~gpus_per_node-way on the storage NIC.
        concurrent = min(gpus, len(datasets))
        per_node = min(cfg.gpus_per_node,
                       max(1, concurrent // cfg.n_nodes))
        load = self.stager.trial_load_seconds_baseline(
            trials_per_node=per_node, total_trials=concurrent)
        free_at = [0.0] * gpus
        heapq.heapify(free_at)
        makespan = 0.0
        durations: list[float] = []
        events = []
        for dataset in datasets:
            start = heapq.heappop(free_at)
            duration = (load + dataset.preprocess_seconds
                        + dataset.inference_seconds
                        + dataset.metric_cpu_seconds
                        / cfg.baseline_metric_workers)
            end = start + duration
            heapq.heappush(free_at, end)
            makespan = max(makespan, end)
            durations.append(duration)
            events.append((dataset.name, start, end))
            self.tracer.complete(
                f"trial:{dataset.name}", start, end,
                "evalsched.baseline", load_seconds=load,
                inference_seconds=dataset.inference_seconds,
                metric_seconds=(dataset.metric_cpu_seconds
                                / cfg.baseline_metric_workers))
        busy = math.fsum(d.inference_seconds for d in datasets)
        return EvaluationRound(
            strategy="baseline", makespan=makespan,
            gpu_busy_seconds=busy,
            gpu_occupied_seconds=math.fsum(durations),
            trial_count=len(datasets), events=events)

    # -- decoupled ------------------------------------------------------------

    def run_decoupled(self, datasets: list[EvalDataset]
                      ) -> EvaluationRound:
        """Precursor staging + elastic packing + CPU metric jobs."""
        cfg = self.config
        gpus = cfg.total_gpus
        precursor = self.stager.stage(
            [f"node-{i}" for i in range(cfg.n_nodes)])
        staged_load = self.stager.trial_load_seconds_staged()
        shards = elastic_decompose(datasets, gpus)
        assignments = lpt_pack(shards, gpus,
                               prioritize_cpu_metrics=True)
        cache_factor = 0.05 if cfg.preprocess_cache else 1.0
        self.tracer.complete("stage_model", 0.0, precursor,
                             "evalsched.decoupled",
                             nodes=cfg.n_nodes)
        inference_seconds: list[float] = []
        occupancies: list[float] = []
        gpu_makespan = 0.0
        metric_finish = 0.0
        events = []
        for assignment in assignments:
            if not assignment.datasets:
                continue
            # One trial per GPU slot: the model is mapped from shared
            # memory once, then datasets run back-to-back.
            cursor = precursor + staged_load
            for dataset in assignment.datasets:
                cursor += dataset.preprocess_seconds * cache_factor
                cursor += dataset.inference_seconds
                inference_seconds.append(dataset.inference_seconds)
                metric_wall = (dataset.metric_cpu_seconds
                               / cfg.metric_workers)
                metric_finish = max(metric_finish, cursor + metric_wall)
                events.append((dataset.name, cursor
                               - dataset.inference_seconds, cursor))
                self.tracer.complete(
                    f"trial:{dataset.name}",
                    cursor - dataset.inference_seconds, cursor,
                    "evalsched.decoupled",
                    inference_seconds=dataset.inference_seconds)
                if metric_wall > 0.0:
                    self.tracer.complete(
                        f"metric:{dataset.name}", cursor,
                        cursor + metric_wall, "evalsched.metrics",
                        workers=cfg.metric_workers)
            occupancies.append(cursor - precursor)
            gpu_makespan = max(gpu_makespan, cursor)
        self.stager.clear()
        makespan = max(gpu_makespan, metric_finish)
        return EvaluationRound(
            strategy="decoupled", makespan=makespan,
            gpu_busy_seconds=math.fsum(inference_seconds),
            gpu_occupied_seconds=math.fsum(occupancies),
            trial_count=sum(1 for a in assignments if a.datasets),
            events=events)

    # -- the §6.2 experiment -------------------------------------------------

    def compare(self, datasets: list[EvalDataset]
                ) -> dict[str, EvaluationRound | float]:
        """Run both strategies; returns rounds plus the speedup."""
        baseline = self.run_baseline(datasets)
        decoupled = self.run_decoupled(datasets)
        return {
            "baseline": baseline,
            "decoupled": decoupled,
            "speedup": baseline.makespan / decoupled.makespan,
        }
