"""Event-driven replay of an evaluation round (§6.2).

The analytic :class:`~repro.core.evalsched.coordinator.TrialCoordinator`
computes makespans in closed form.  This module replays the same two
strategies on the discrete-event engine with explicit per-node storage
volumes, GPU slots, and CPU metric workers — contention emerges from the
event dynamics instead of being assumed.  The test suite cross-validates
the two implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.storage import StorageVolume
from repro.core.evalsched.coordinator import CoordinatorConfig
from repro.core.evalsched.packing import elastic_decompose, lpt_pack
from repro.evaluation.datasets import EvalDataset
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.sim.engine import Engine


@dataclass
class SimulatedRound:
    """Result of one event-driven strategy replay."""

    strategy: str
    makespan: float
    trial_completions: list[tuple[str, float]]


class EventDrivenEvalRound:
    """Replays baseline and decoupled rounds on the event engine."""

    def __init__(self, config: CoordinatorConfig,
                 deserialize_rate: float = 1.5e9,
                 node_nic_bandwidth: float = 25e9 / 8.0,
                 pcie_rate: float = 20e9,
                 tracer: TracerLike | None = None) -> None:
        self.config = config
        self.deserialize_rate = deserialize_rate
        self.node_nic_bandwidth = node_nic_bandwidth
        self.pcie_rate = pcie_rate
        self.tracer = tracer or NULL_TRACER

    # -- baseline ----------------------------------------------------------

    def run_baseline(self, datasets: list[EvalDataset]) -> SimulatedRound:
        """Event-driven replay of the per-dataset-trial baseline."""
        cfg = self.config
        engine = Engine()
        self.tracer.bind_clock(lambda: engine.now)
        volumes = [StorageVolume(engine, self.node_nic_bandwidth)
                   for _ in range(cfg.n_nodes)]
        gpus = [engine.resource(cfg.gpus_per_node)
                for _ in range(cfg.n_nodes)]
        completions: list[tuple[str, float]] = []

        def trial(dataset: EvalDataset, node: int):
            span = self.tracer.begin(f"trial:{dataset.name}",
                                     "evalsched", node=node)
            grant = yield gpus[node].acquire(1)
            del grant
            yield volumes[node].read(cfg.model_bytes)
            yield cfg.model_bytes / self.deserialize_rate
            yield dataset.preprocess_seconds
            yield dataset.inference_seconds
            yield dataset.metric_cpu_seconds / cfg.baseline_metric_workers
            gpus[node].release(1)
            completions.append((dataset.name, engine.now))
            self.tracer.end(span)

        round_span = self.tracer.begin("round:baseline", "evalsched",
                                       at=0.0)
        for index, dataset in enumerate(datasets):
            engine.process(trial(dataset, index % cfg.n_nodes),
                           name=dataset.name)
        makespan = engine.run()
        self.tracer.end(round_span, at=makespan)
        return SimulatedRound("baseline", makespan, completions)

    # -- decoupled -----------------------------------------------------------

    def run_decoupled(self, datasets: list[EvalDataset]
                      ) -> SimulatedRound:
        """Event-driven replay of staging + packing + CPU metrics."""
        cfg = self.config
        engine = Engine()
        self.tracer.bind_clock(lambda: engine.now)
        volumes = [StorageVolume(engine, self.node_nic_bandwidth)
                   for _ in range(cfg.n_nodes)]
        completions: list[tuple[str, float]] = []
        metric_done: list[float] = []
        cache_factor = 0.05 if cfg.preprocess_cache else 1.0

        shards = elastic_decompose(datasets, cfg.total_gpus)
        assignments = lpt_pack(shards, cfg.total_gpus,
                               prioritize_cpu_metrics=True)

        staged = [engine.event() for _ in range(cfg.n_nodes)]

        def precursor(node: int):
            span = self.tracer.begin(f"stage:{node}", "evalsched")
            yield volumes[node].read(cfg.model_bytes)
            staged[node].succeed()
            self.tracer.end(span)

        def metric_job(dataset: EvalDataset):
            span = self.tracer.begin(f"metric:{dataset.name}",
                                     "evalsched")
            yield dataset.metric_cpu_seconds / cfg.metric_workers
            metric_done.append(engine.now)
            self.tracer.end(span)

        def gpu_slot(assignment, slot: int, node: int):
            span = self.tracer.begin(f"slot:{slot}", "evalsched",
                                     node=node,
                                     datasets=len(assignment.datasets))
            yield staged[node]
            # map the staged model over PCIe + deserialize, once
            yield (cfg.model_bytes / self.pcie_rate
                   + cfg.model_bytes / self.deserialize_rate)
            for dataset in assignment.datasets:
                yield dataset.preprocess_seconds * cache_factor
                yield dataset.inference_seconds
                completions.append((dataset.name, engine.now))
                if dataset.metric_cpu_seconds > 0:
                    engine.process(metric_job(dataset),
                                   name=f"metric:{dataset.name}")
            self.tracer.end(span)

        round_span = self.tracer.begin("round:decoupled", "evalsched",
                                       at=0.0)
        for node in range(cfg.n_nodes):
            engine.process(precursor(node), name=f"precursor:{node}")
        for index, assignment in enumerate(assignments):
            if assignment.datasets:
                engine.process(
                    gpu_slot(assignment, index, index % cfg.n_nodes),
                    name=f"slot:{index}")
        makespan = engine.run()
        self.tracer.end(round_span, at=makespan)
        return SimulatedRound("decoupled", makespan, completions)

    def compare(self, datasets: list[EvalDataset]) -> dict:
        """Run both replays; returns rounds plus the speedup."""
        baseline = self.run_baseline(datasets)
        decoupled = self.run_decoupled(datasets)
        return {
            "baseline": baseline,
            "decoupled": decoupled,
            "speedup": baseline.makespan / decoupled.makespan,
        }
