"""Decoupled remote model loading (§6.2, technique 1; Fig. 16 left).

Baseline: every evaluation trial loads the checkpoint from remote storage
itself; with 8 single-GPU trials per node, the storage NIC is split 8 ways
and per-trial load speed collapses (Fig. 16 left).

Decoupled: the coordinator first asks the cluster scheduler for the node
list, launches one *precursor job* per node that pulls the model into
local shared memory at full NIC speed, then the trials map it over PCIe.
Spare host memory makes this free (Fig. 7b), and the files are cleared
after the round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.storage import SharedStorage


@dataclass
class ModelStager:
    """Stages a checkpoint into each node's shared memory."""

    storage: SharedStorage
    model_bytes: float
    pcie_rate: float = 20e9
    #: deserialization cost folded into the trial-visible load path
    deserialize_rate: float = 1.5e9
    staged_nodes: set[str] = field(default_factory=set)

    def precursor_seconds(self, n_nodes: int) -> float:
        """Wall time for all precursor jobs (they run in parallel)."""
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        # One stream per node at full NIC rate; backend shared by nodes.
        rate = self.storage.per_trial_load_rate(trials_per_node=1,
                                                total_trials=n_nodes)
        return self.model_bytes / rate

    def stage(self, nodes: list[str]) -> float:
        """Mark nodes staged; returns the wall time spent."""
        seconds = self.precursor_seconds(len(nodes))
        self.staged_nodes.update(nodes)
        return seconds

    def clear(self) -> None:
        """Release the shared-memory copies after the round (§6.2)."""
        self.staged_nodes.clear()

    # -- per-trial load costs ----------------------------------------------

    def trial_load_seconds_baseline(self, trials_per_node: int,
                                    total_trials: int | None = None
                                    ) -> float:
        """Per-trial load straight from remote storage, with contention."""
        network = self.storage.load_time(self.model_bytes,
                                         trials_per_node, total_trials)
        return network + self.model_bytes / self.deserialize_rate

    def trial_load_seconds_staged(self) -> float:
        """Per-trial load from node shared memory over PCIe."""
        return (self.model_bytes / self.pcie_rate
                + self.model_bytes / self.deserialize_rate)


@dataclass(frozen=True)
class LoadPlanComparison:
    """Baseline vs decoupled loading cost for one evaluation round."""

    baseline_per_trial: float
    precursor_wall: float
    staged_per_trial: float

    def total_baseline(self, n_trials: int, gpus: int) -> float:
        """Aggregate serialized load time across trial waves."""
        waves = -(-n_trials // gpus)  # ceil
        return waves * self.baseline_per_trial

    def total_staged(self, n_trials: int, gpus: int) -> float:
        """Aggregate decoupled loading cost across trial waves."""
        waves = -(-n_trials // gpus)
        return self.precursor_wall + waves * self.staged_per_trial


def loading_stress_test(storage: SharedStorage, model_bytes: float,
                        trial_counts: list[int] | None = None,
                        gpus_per_node: int = 8
                        ) -> list[tuple[int, float]]:
    """Reproduce Fig. 16 (left): per-trial load *speed* vs concurrency.

    Returns (concurrent trials, bytes/s per trial).  Trials pack 8 per
    node before spilling to more nodes, so speed collapses from 1 to 8
    and then flattens out to 256.
    """
    counts = trial_counts or [1, 2, 4, 8, 16, 32, 64, 128, 256]
    return storage.stress_test(model_bytes, counts, gpus_per_node)
