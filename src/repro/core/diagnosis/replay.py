"""Batch diagnosis replay over a trace's failed jobs.

Closes the loop between the workload substrate and the diagnosis system:
every failed job in a trace gets a synthetic runtime log for its
assigned failure reason, the full Fig. 15 pipeline diagnoses it, and the
results are aggregated into a Table-3-style attribution with accuracy
accounting — the experiment behind the paper's "~90% less manual
intervention" estimate, run end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.diagnosis.agents import DiagnosisSystem
from repro.failures.injector import FailureInjector
from repro.failures.logs import LogGenerator
from repro.failures.taxonomy import FailureCategory, taxonomy_by_reason
from repro.scheduler.job import FinalStatus
from repro.workload.trace import Trace


@dataclass
class ReplayReport:
    """Aggregated outcome of a diagnosis replay."""

    total: int = 0
    correct: int = 0
    category_correct: int = 0
    auto_recovered: int = 0
    needs_human: int = 0
    by_reason: dict = field(default_factory=dict)
    mean_compression_ratio: float = 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def category_accuracy(self) -> float:
        return self.category_correct / self.total if self.total else 0.0

    @property
    def manual_intervention_rate(self) -> float:
        return self.needs_human / self.total if self.total else 0.0

    def rows(self) -> list[dict]:
        """Per-reason accuracy rows for rendering."""
        return [{"reason": reason, **stats}
                for reason, stats in sorted(self.by_reason.items())]


def replay_trace_failures(trace: Trace,
                          max_jobs: int | None = None,
                          seed: int = 0,
                          log_steps: int = 60,
                          system: DiagnosisSystem | None = None
                          ) -> ReplayReport:
    """Diagnose every failed job of ``trace`` from synthesized logs.

    If the trace's failed jobs lack ``failure_reason`` tags, the Table 3
    injector assigns them first (demand-conditioned, §5.2 style).
    """
    failed = [job for job in trace.gpu_jobs()
              if job.final_status is FinalStatus.FAILED]
    if not failed:
        raise ValueError("trace has no failed jobs")
    if any(job.failure_reason is None for job in failed):
        FailureInjector(seed=seed).assign_to_trace(trace)
    if max_jobs is not None:
        failed = failed[:max_jobs]

    generator = LogGenerator(seed=seed)
    system = system or DiagnosisSystem()
    taxonomy = taxonomy_by_reason()
    report = ReplayReport()
    compression_ratios: list[float] = []
    for job in failed:
        truth = job.failure_reason
        log = generator.failed_log(truth, n_steps=log_steps)
        diagnosis = system.diagnose(log.lines)
        report.total += 1
        compression_ratios.append(
            diagnosis.compression.compression_ratio)
        stats = report.by_reason.setdefault(
            truth, {"count": 0, "correct": 0})
        stats["count"] += 1
        if diagnosis.reason == truth:
            report.correct += 1
            stats["correct"] += 1
        true_category = taxonomy[truth].category
        if diagnosis.category is true_category:
            report.category_correct += 1
        # A human is needed exactly when the (diagnosed) failure is a
        # user error — automatic restart cannot fix the script.
        if diagnosis.category is FailureCategory.SCRIPT:
            report.needs_human += 1
        else:
            report.auto_recovered += 1
    report.mean_compression_ratio = (math.fsum(compression_ratios)
                                     / report.total)
    return report
