"""LLM-assisted failure diagnosis (§6.1, design 2).

Pipeline (Fig. 15):

1. **Real-time log compression** — a template miner learns the fixed
   patterns of routine output (metric records, init banners); learned
   *filter rules* strip them, shrinking hundreds of MB to the error lines.
2. **Rule-based diagnosis** — an ordered regex rule set built from past
   incidents; cheap and first in line.
3. **LLM-assisted diagnosis** — when rules miss, the compressed log is
   embedded into a vector store; the Failure Agent retrieves similar past
   incidents and asks the LLM for the root cause, with self-consistency
   voting.  Each resolved failure is written back as a new regex rule, so
   the rule base grows over time.

GPT-4 is not available offline; :class:`~repro.core.diagnosis.llm.TemplateLLM`
is a deterministic stand-in behind the same :class:`LLMClient` interface
(see DESIGN.md's substitution table).
"""

from repro.core.diagnosis.templates import TemplateMiner, LogTemplate
from repro.core.diagnosis.compression import (FilterRules, LogCompressor,
                                              CompressionResult)
from repro.core.diagnosis.llm import LLMClient, TemplateLLM, LLMVerdict
from repro.core.diagnosis.vector_store import VectorStore, embed_text
from repro.core.diagnosis.rules import RuleBasedDiagnoser, DiagnosisRule
from repro.core.diagnosis.agents import (LogAgent, FailureAgent,
                                         DiagnosisSystem, Diagnosis)
from repro.core.diagnosis.self_consistency import majority_vote
from repro.core.diagnosis.replay import ReplayReport, replay_trace_failures

__all__ = [
    "TemplateMiner",
    "LogTemplate",
    "FilterRules",
    "LogCompressor",
    "CompressionResult",
    "LLMClient",
    "TemplateLLM",
    "LLMVerdict",
    "VectorStore",
    "embed_text",
    "RuleBasedDiagnoser",
    "DiagnosisRule",
    "LogAgent",
    "FailureAgent",
    "DiagnosisSystem",
    "Diagnosis",
    "majority_vote",
    "ReplayReport",
    "replay_trace_failures",
]
