"""Compressed-log embedding and retrieval (§6.1 Fig. 15 right).

Failed-job logs that rules cannot classify are embedded and stored; the
Failure Agent retrieves the most similar past incidents as context for the
LLM.  Offline we use a hashed character-n-gram TF vector with L2
normalization — robust to the payload variation (ranks, addresses, paths)
that defeats exact matching, which is the property the paper's pipeline
relies on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

_DIM = 1024
_NGRAM = 4


def embed_text(text: str, dim: int = _DIM) -> np.ndarray:
    """Hashed character n-gram term-frequency embedding, L2-normalized."""
    vector = np.zeros(dim, dtype=float)
    data = text.lower()
    if len(data) < _NGRAM:
        data = data + " " * (_NGRAM - len(data))
    for i in range(len(data) - _NGRAM + 1):
        gram = data[i:i + _NGRAM]
        # crc32, not hash(): builtin string hashing is randomized per
        # process, so hash-bucketed embeddings would not be comparable
        # across runs (or with persisted incident stores)
        vector[zlib.crc32(gram.encode("utf-8")) % dim] += 1.0
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


@dataclass(frozen=True)
class StoredDocument:
    """An embedded incident with its metadata (e.g. resolved reason)."""

    doc_id: str
    text: str
    metadata: dict


@dataclass(frozen=True)
class QueryHit:
    """One retrieval result with its cosine similarity."""
    document: StoredDocument
    similarity: float


class VectorStore:
    """A small in-memory cosine-similarity index."""

    def __init__(self, dim: int = _DIM) -> None:
        self.dim = dim
        self._documents: list[StoredDocument] = []
        self._matrix = np.empty((0, dim))

    def add(self, doc_id: str, text: str,
            metadata: dict | None = None) -> None:
        """Embed and index a document."""
        vector = embed_text(text, self.dim)
        self._documents.append(StoredDocument(doc_id, text,
                                              metadata or {}))
        self._matrix = np.vstack([self._matrix, vector])

    def query(self, text: str, top_k: int = 3) -> list[QueryHit]:
        """Top-k most similar stored documents."""
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if not self._documents:
            return []
        vector = embed_text(text, self.dim)
        similarities = self._matrix @ vector
        order = np.argsort(-similarities)[:top_k]
        return [QueryHit(self._documents[int(i)],
                         float(similarities[int(i)]))
                for i in order]

    def __len__(self) -> int:
        return len(self._documents)
