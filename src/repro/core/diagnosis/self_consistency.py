"""Self-consistency voting (§6.1).

The Log/Failure agents run each LLM query several times and keep the
majority answer, absorbing sampling noise.  The paper cites Wang et al.'s
self-consistency; the mechanism here is a plain mode with deterministic
tie-breaking.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


def majority_vote(answers: Sequence[T]) -> tuple[T, float]:
    """Returns (winning answer, agreement fraction).

    Ties break toward the answer that appeared first — with a sampled LLM
    the first answer at low temperature is the highest-probability one.
    """
    if not answers:
        raise ValueError("no answers to vote on")
    counts = Counter(answers)
    best_count = max(counts.values())
    for answer in answers:  # first-appearance tie-break
        if counts[answer] == best_count:
            return answer, best_count / len(answers)
    raise AssertionError("unreachable")


def sample_and_vote(query: Callable[[], T], samples: int = 3
                    ) -> tuple[T, float]:
    """Run ``query`` ``samples`` times and majority-vote the results."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    return majority_vote([query() for _ in range(samples)])
