"""Real-time log compression (§6.1, Fig. 15 left).

``FilterRules`` is the continuously-updated collection of regular
expressions that strip routine output; ``LogCompressor`` applies them
streamingly and reports what survived (the error candidates) plus the
compression ratio.  Rule learning itself lives in the Log Agent
(``repro.core.diagnosis.agents``), which mines templates and promotes the
high-support ones here.

Rules can be serialized so that "repetitive or similar tasks" reuse an
existing rule set instead of re-learning it (§6.1).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Error evidence must never be filtered, whatever the rules say.
_PROTECTED = re.compile(
    r"(error|exception|traceback|fatal|killed|abort|assert|xid|cancelled"
    r"|timeout|heartbeat|notready|refused|denied|corrupt|failure|failed"
    r"|no space left|quota exceeded)",
    re.IGNORECASE)


class FilterRules:
    """An ordered set of compiled filter regexes."""

    def __init__(self, patterns: list[str] | None = None) -> None:
        self._patterns: list[str] = []
        self._compiled: list[re.Pattern] = []
        for pattern in patterns or []:
            self.add(pattern)

    def add(self, pattern: str) -> bool:
        """Add a pattern; returns False if it was already present."""
        if pattern in self._patterns:
            return False
        compiled = re.compile(pattern)
        self._patterns.append(pattern)
        self._compiled.append(compiled)
        return True

    def matches(self, line: str) -> bool:
        """Whether a (non-protected) line is filtered by any rule."""
        if _PROTECTED.search(line):
            return False
        return any(regex.search(line) for regex in self._compiled)

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern: str) -> bool:
        return pattern in self._patterns

    @property
    def patterns(self) -> list[str]:
        return list(self._patterns)

    # -- persistence (rule reuse across similar tasks, §6.1) --------------

    def save(self, path: str | Path) -> None:
        """Persist the rule set as JSON."""
        Path(path).write_text(json.dumps(self._patterns, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FilterRules":
        """Load a rule set saved with :meth:`save`."""
        return cls(json.loads(Path(path).read_text()))


@dataclass
class CompressionResult:
    """Outcome of compressing one log."""

    kept_lines: list[str]
    total_lines: int
    filtered_lines: int
    input_bytes: int
    output_bytes: int
    error_lines: list[str] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """input size / output size (higher is better)."""
        if self.output_bytes == 0:
            return float("inf")
        return self.input_bytes / self.output_bytes

    @property
    def filtered_fraction(self) -> float:
        if self.total_lines == 0:
            return 0.0
        return self.filtered_lines / self.total_lines


class LogCompressor:
    """Applies filter rules to a log and extracts error candidates."""

    def __init__(self, rules: FilterRules | None = None) -> None:
        self.rules = rules or FilterRules()

    def compress(self, lines: list[str]) -> CompressionResult:
        """Filter routine lines; returns kept lines and error evidence."""
        kept: list[str] = []
        errors: list[str] = []
        input_bytes = 0
        for line in lines:
            input_bytes += len(line) + 1
            if self.rules.matches(line):
                continue
            kept.append(line)
            if _PROTECTED.search(line):
                errors.append(line)
        output_bytes = sum(len(line) + 1 for line in kept)
        return CompressionResult(
            kept_lines=kept,
            total_lines=len(lines),
            filtered_lines=len(lines) - len(kept),
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            error_lines=errors,
        )
