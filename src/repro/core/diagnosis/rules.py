"""Rule-based diagnosis: the fast path of Fig. 15.

An ordered list of (regex -> reason) rules built up from previously
diagnosed incidents.  Rules are checked against the *compressed* log's
error lines; the first match on the most recent lines wins.  The Failure
Agent appends a new rule after every LLM-diagnosed incident, so the rule
base converges toward catching everything cheaply — the "continuous
learning" loop of §6.1.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.failures.taxonomy import FailureCategory, taxonomy_by_reason


@dataclass(frozen=True)
class DiagnosisRule:
    """One learned or seeded rule."""

    pattern: str
    reason: str
    #: higher-priority rules are consulted first (hardware signatures
    #: outrank generic exceptions in cascades)
    priority: int = 0

    def compiled(self) -> re.Pattern:
        """The compiled regex for this rule."""
        return re.compile(self.pattern)


#: Seed rules: the unambiguous hardware signatures an operator writes on
#: day one.  Generic Python exceptions are deliberately NOT seeded — they
#: mis-fire on cascades, which is the paper's motivation for the LLM path.
SEED_RULES: list[DiagnosisRule] = [
    DiagnosisRule(r"NVLink: fatal error|uncorrectable NVLink",
                  "NVLinkError", priority=10),
    DiagnosisRule(r"ECC row remapping|uncorrectable ECC error",
                  "ECCError", priority=10),
    DiagnosisRule(r"CANCELLED DUE TO NODE FAILURE|lost heartbeat",
                  "NodeFailure", priority=9),
    DiagnosisRule(r"CUDA error: (an illegal memory access|device-side "
                  r"assert)", "CUDAError", priority=8),
    DiagnosisRule(r"transport retry counter exceeded",
                  "NetworkError", priority=7),
    DiagnosisRule(r"Could not connect to the endpoint URL|S3 GET timed "
                  r"out", "S3StorageError", priority=7),
    DiagnosisRule(r"DataLoader worker \(pid \d+\) is killed",
                  "DataloaderKilled", priority=8),
    DiagnosisRule(r"CUDA out of memory", "OutOfMemoryError", priority=8),
]


class RuleBasedDiagnoser:
    """Ordered regex matching over error lines."""

    def __init__(self, rules: list[DiagnosisRule] | None = None) -> None:
        self.rules: list[DiagnosisRule] = list(
            rules if rules is not None else SEED_RULES)
        self._taxonomy = taxonomy_by_reason()
        self.hits = 0
        self.misses = 0

    def add_rule(self, rule: DiagnosisRule) -> bool:
        """Add a learned rule; returns False on duplicates."""
        if any(existing.pattern == rule.pattern
               and existing.reason == rule.reason
               for existing in self.rules):
            return False
        re.compile(rule.pattern)  # fail fast on malformed regex
        self.rules.append(rule)
        return True

    def diagnose(self, error_lines: list[str]) -> str | None:
        """Returns the matched reason or None.

        Rules are tried in priority order; within a priority, matches on
        *later* lines win (cascades end with the root cause).
        """
        ordered = sorted(self.rules, key=lambda rule: -rule.priority)
        for rule in ordered:
            regex = rule.compiled()
            for line in reversed(error_lines):
                if regex.search(line):
                    self.hits += 1
                    return rule.reason
        self.misses += 1
        return None

    def category_of(self, reason: str) -> FailureCategory:
        """Taxonomy category for a diagnosed reason."""
        spec = self._taxonomy.get(reason)
        return spec.category if spec else FailureCategory.FRAMEWORK

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the rule base as JSON."""
        payload = [{"pattern": rule.pattern, "reason": rule.reason,
                    "priority": rule.priority} for rule in self.rules]
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "RuleBasedDiagnoser":
        """Load a rule base saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        rules = [DiagnosisRule(**record) for record in payload]
        return cls(rules)
