"""The Log Agent, the Failure Agent, and the assembled diagnosis system.

Mirrors Fig. 15:

* :class:`LogAgent` watches raw log segments, mines templates for routine
  output, asks the LLM to write filter regexes for them, updates the
  shared :class:`FilterRules`, and forwards error lines onward.
* :class:`FailureAgent` takes the compressed error evidence; tries the
  rule base; on a miss embeds the evidence, retrieves similar past
  incidents from the vector store, queries the LLM with self-consistency
  voting, and writes the resolved signature back as a new rule.
* :class:`DiagnosisSystem` wires both together behind one
  ``diagnose(log_lines)`` call and tracks how often each path fired —
  the basis of the paper's "~90% less manual intervention" claim.

Every stage reads its tracer through the ``tracer=None →``
:data:`~repro.obs.NULL_TRACER` seam, so a traced chaos run shows where
diagnosis time goes (compression, rule match, retrieval, voting) while
untraced runs pay nothing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.diagnosis.compression import (CompressionResult,
                                              FilterRules, LogCompressor)
from repro.core.diagnosis.llm import LLMClient, LLMVerdict, TemplateLLM
from repro.core.diagnosis.rules import DiagnosisRule, RuleBasedDiagnoser
from repro.core.diagnosis.self_consistency import sample_and_vote
from repro.core.diagnosis.templates import TemplateMiner
from repro.core.diagnosis.vector_store import VectorStore
from repro.failures.taxonomy import FailureCategory, taxonomy_by_reason
from repro.obs import NULL_TRACER, TracerLike

_MITIGATION_FALLBACK = "Escalate to the operations team for manual triage."


@dataclass(frozen=True)
class Diagnosis:
    """The system's answer for one failed job."""

    reason: str
    category: FailureCategory
    recoverable: bool
    mitigation: str
    #: which path produced it: "rules", "agent", or "unknown"
    path: str
    confidence: float
    compression: CompressionResult


class LogAgent:
    """Learns filter rules from streaming log segments."""

    def __init__(self, rules: FilterRules, llm: TemplateLLM | None = None,
                 min_support: int = 5,
                 tracer: TracerLike | None = None) -> None:
        self.rules = rules
        self.llm = llm or TemplateLLM()
        self.miner = TemplateMiner()
        self.min_support = min_support
        self.rules_written = 0
        self.tracer = tracer or NULL_TRACER

    def observe_segment(self, lines: list[str]) -> list[str]:
        """Consume a raw segment; returns the error lines found in it.

        Mines templates from the segment and promotes routine ones (high
        support, no error vocabulary) to filter rules via the LLM.
        """
        self.miner.add_lines(lines)
        for template in self.miner.routine_templates(self.min_support):
            if re.search(r"(?i)(error|exception|traceback|fatal|killed)",
                         template.masked):
                continue
            pattern = self.llm.propose_filter_regex(template.masked)
            if self.rules.add(pattern):
                self.rules_written += 1
        with self.tracer.span("diagnosis:compress", "diagnosis"):
            compressor = LogCompressor(self.rules)
            return compressor.compress(lines).error_lines


class FailureAgent:
    """Root-cause identification over compressed evidence."""

    def __init__(self, diagnoser: RuleBasedDiagnoser | None = None,
                 llm: LLMClient | None = None,
                 store: VectorStore | None = None,
                 consistency_samples: int = 3,
                 tracer: TracerLike | None = None) -> None:
        self.diagnoser = diagnoser or RuleBasedDiagnoser()
        self.llm = llm or TemplateLLM()
        self.store = store or VectorStore()
        self.consistency_samples = consistency_samples
        self._taxonomy = taxonomy_by_reason()
        self.rule_path_count = 0
        self.agent_path_count = 0
        self.unknown_count = 0
        self.tracer = tracer or NULL_TRACER

    def diagnose(self, error_lines: list[str],
                 compression: CompressionResult) -> Diagnosis:
        """Identify the root cause of the given error evidence."""
        if not error_lines:
            self.unknown_count += 1
            self.tracer.count("diagnosis.unknown")
            return Diagnosis(
                reason="Unknown", category=FailureCategory.FRAMEWORK,
                recoverable=False, mitigation=_MITIGATION_FALLBACK,
                path="unknown", confidence=0.0, compression=compression)

        with self.tracer.span("diagnosis:rules", "diagnosis"):
            matched = self.diagnoser.diagnose(error_lines)
        if matched is not None:
            self.rule_path_count += 1
            self.tracer.count("diagnosis.rule_hits")
            category = self.diagnoser.category_of(matched)
            return Diagnosis(
                reason=matched, category=category,
                recoverable=category is not FailureCategory.SCRIPT,
                mitigation=self._mitigation(category),
                path="rules", confidence=1.0, compression=compression)

        # LLM path: vote over the evidence; retrieval from the incident
        # store only breaks low-confidence verdicts (a high-similarity
        # past incident of known cause outranks a weak guess).
        distinctive = [line for line in error_lines
                       if not self._GENERIC.search(line)]
        evidence_text = "\n".join(distinctive or error_lines)

        def one_sample() -> str:
            return self.llm.classify_error(error_lines).reason

        with self.tracer.span("diagnosis:vote", "diagnosis"):
            reason, agreement = sample_and_vote(one_sample,
                                                self.consistency_samples)
            verdict = self._verdict_for(reason, error_lines)
        if verdict.confidence < 0.3:
            with self.tracer.span("diagnosis:retrieve", "diagnosis"):
                hits = self.store.query(evidence_text, top_k=1)
            if hits and hits[0].similarity > 0.85:
                past_reason = hits[0].document.metadata.get("reason")
                if past_reason and past_reason != "Unknown":
                    verdict = self._verdict_for(past_reason, error_lines)
        self.agent_path_count += 1
        self.tracer.count("diagnosis.agent_path")
        doc_id = f"incident-{len(self.store):06d}"
        self.store.add(doc_id, evidence_text, {"reason": verdict.reason})
        self._learn_rule(error_lines, verdict.reason)
        return Diagnosis(
            reason=verdict.reason, category=verdict.category,
            recoverable=verdict.recoverable,
            mitigation=verdict.mitigation, path="agent",
            confidence=verdict.confidence * agreement,
            compression=compression)

    def _verdict_for(self, reason: str,
                     context_lines: list[str]) -> LLMVerdict:
        verdict = self.llm.classify_error(context_lines)
        if verdict.reason == reason:
            return verdict
        # The vote disagreed with this sample; rebuild the verdict around
        # the voted reason.
        spec = self._taxonomy.get(reason)
        category = spec.category if spec else FailureCategory.FRAMEWORK
        return LLMVerdict(reason=reason, category=category,
                          confidence=verdict.confidence,
                          mitigation=self._mitigation(category))

    #: lines too generic to ever become a rule — they appear in every
    #: cascade regardless of the root cause
    _GENERIC = re.compile(
        r"(Traceback \(most recent call last\)|caught exception"
        r"|^\s*File \"|^\s{2,})")

    def _learn_rule(self, error_lines: list[str], reason: str) -> None:
        """Write the resolved incident back as a regex rule (Fig. 15).

        Learning is conservative: the rule anchors on a line that names
        the diagnosed reason (or matches the LLM's signature corpus for
        it); generic cascade lines are never promoted — an over-broad
        learned rule would misroute every later diagnosis.
        """
        if reason == "Unknown":
            return
        signature = None
        reason_patterns = getattr(self.llm, "_patterns", {}).get(reason, [])
        for line in reversed(error_lines):
            if self._GENERIC.search(line):
                continue
            if (reason.lower() in line.lower()
                    or any(p.search(line) for p in reason_patterns)):
                signature = line
                break
        if signature is None:
            return  # nothing distinctive to anchor on; do not learn
        # Generalize digits/hex payloads, then anchor on the stable text.
        pattern = re.escape(signature.strip()[:120])
        pattern = re.sub(r"\\?\d+", r"\\d+", pattern)
        try:
            self.diagnoser.add_rule(DiagnosisRule(pattern=pattern,
                                                  reason=reason,
                                                  priority=5))
        except re.error:
            pass  # never let a bad learned rule break diagnosis

    @staticmethod
    def _mitigation(category: FailureCategory) -> str:
        from repro.core.diagnosis.llm import _MITIGATIONS

        return _MITIGATIONS[category]


@dataclass
class DiagnosisStats:
    """Where diagnoses came from — the manual-intervention accounting."""

    total: int = 0
    via_rules: int = 0
    via_agent: int = 0
    unknown: int = 0

    @property
    def automated_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.via_rules + self.via_agent) / self.total


class DiagnosisSystem:
    """The full Fig. 15 pipeline behind one call."""

    def __init__(self, llm: TemplateLLM | None = None,
                 consistency_samples: int = 3,
                 segment_lines: int = 500,
                 tracer: TracerLike | None = None) -> None:
        llm = llm or TemplateLLM()
        self.tracer = tracer or NULL_TRACER
        self.filter_rules = FilterRules()
        self.log_agent = LogAgent(self.filter_rules, llm,
                                  tracer=self.tracer)
        self.failure_agent = FailureAgent(llm=llm,
                                          consistency_samples=(
                                              consistency_samples),
                                          tracer=self.tracer)
        self.segment_lines = segment_lines
        self.stats = DiagnosisStats()

    def diagnose(self, log_lines: list[str]) -> Diagnosis:
        """Compress a raw job log and identify the failure root cause."""
        error_lines: list[str] = []
        for start in range(0, len(log_lines), self.segment_lines):
            segment = log_lines[start:start + self.segment_lines]
            error_lines.extend(self.log_agent.observe_segment(segment))
        with self.tracer.span("diagnosis:compress", "diagnosis"):
            compression = LogCompressor(
                self.filter_rules).compress(log_lines)
        diagnosis = self.failure_agent.diagnose(error_lines, compression)
        self.stats.total += 1
        if diagnosis.path == "rules":
            self.stats.via_rules += 1
        elif diagnosis.path == "agent":
            self.stats.via_agent += 1
        else:
            self.stats.unknown += 1
        return diagnosis
