"""The diagnosis LLM interface and its offline stand-in.

The paper uses GPT-4 behind the Failure Agent.  Offline, we provide
:class:`TemplateLLM`: a deterministic classifier that scores the error
lines of a compressed log against the known failure signatures, weighting
by *specificity* (an Xid/NVLink line is stronger evidence than a generic
``RuntimeError``) and *recency* (root causes appear in the final error
blocks of a cascade).  It exposes the same ``LLMClient`` interface, so a
real model can be dropped in.

The stand-in is intentionally imperfect under sampling temperature —
self-consistency voting (§6.1) exists precisely because single LLM calls
are noisy, and the tests exercise that machinery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.failures.logs import REASON_SIGNATURES
from repro.failures.taxonomy import FailureCategory, taxonomy_by_reason


@dataclass(frozen=True)
class LLMVerdict:
    """A structured diagnosis answer."""

    reason: str
    category: FailureCategory
    confidence: float
    mitigation: str

    @property
    def recoverable(self) -> bool:
        return self.category is not FailureCategory.SCRIPT


class LLMClient(Protocol):
    """Anything that can turn error lines into a verdict."""

    def classify_error(self, error_lines: list[str]) -> LLMVerdict:
        """Score the evidence against known signatures; returns a verdict."""
        ...


#: Evidence weight per reason — hardware signatures are near-unambiguous,
#: generic Python exceptions are weak (they appear in every cascade).
_SPECIFICITY: dict[str, float] = {
    "NVLinkError": 10.0,
    "ECCError": 10.0,
    "NodeFailure": 9.0,
    "CUDAError": 8.0,
    "DataloaderKilled": 8.0,
    "OutOfMemoryError": 8.0,
    "NetworkError": 7.0,
    "S3StorageError": 7.0,
    "NCCLRemoteError": 6.0,
    "ModelLoadingError": 6.0,
    "DatasetLoadingError": 6.0,
    "NCCLTimeoutError": 4.0,
    "ConnectionError": 3.0,
    "RuntimeError": 1.5,
}
_DEFAULT_SPECIFICITY = 5.0

_MITIGATIONS: dict[FailureCategory, str] = {
    FailureCategory.INFRASTRUCTURE: (
        "Run the hardware detection toolkit (two-round NCCL test), cordon "
        "faulty nodes, and restart from the latest checkpoint."),
    FailureCategory.FRAMEWORK: (
        "Inspect the training configuration (shapes, dtypes, memory "
        "budget); fix and resubmit — usually reproducible at step 0."),
    FailureCategory.SCRIPT: (
        "User-code error: fix the script/paths/arguments and resubmit; "
        "automatic restart would fail identically."),
}


def _keyword_patterns() -> dict[str, list[re.Pattern]]:
    """Per-reason matchers derived from the known signature corpus."""
    patterns: dict[str, list[re.Pattern]] = {}
    for reason, signatures in REASON_SIGNATURES.items():
        compiled = []
        for signature in signatures:
            # Match on the distinctive head of the signature, not exact
            # payloads (addresses, paths and ranks vary).
            head = re.escape(signature[:48])
            head = re.sub(r"\\\d+", r"\\d+", head)
            compiled.append(re.compile(head[:200]))
        # Also match the bare exception name when it leads a line.
        compiled.append(re.compile(rf"(?:^|\s){re.escape(reason)}\b"))
        patterns[reason] = compiled
    return patterns


class TemplateLLM:
    """Deterministic signature-scoring classifier behind ``LLMClient``.

    ``temperature`` adds Gumbel noise to scores — at 0 the argmax is
    deterministic; above 0 occasional wrong answers emerge, which the
    self-consistency voter is designed to absorb.
    """

    def __init__(self, temperature: float = 0.0, seed: int = 0) -> None:
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        self.temperature = temperature
        self.rng = np.random.default_rng(seed)
        self._patterns = _keyword_patterns()
        self._taxonomy = taxonomy_by_reason()
        self.calls = 0

    def _score(self, error_lines: list[str]) -> dict[str, float]:
        scores: dict[str, float] = {}
        n = max(len(error_lines), 1)
        for index, line in enumerate(error_lines):
            recency = 0.5 + 1.5 * (index + 1) / n  # later lines weigh more
            for reason, patterns in self._patterns.items():
                if any(p.search(line) for p in patterns):
                    weight = _SPECIFICITY.get(reason, _DEFAULT_SPECIFICITY)
                    scores[reason] = (scores.get(reason, 0.0)
                                      + weight * recency)
        return scores

    def classify_error(self, error_lines: list[str]) -> LLMVerdict:
        """Score the evidence against known signatures; returns a verdict."""
        self.calls += 1
        scores = self._score(error_lines)
        if not scores:
            return LLMVerdict(
                reason="Unknown",
                category=FailureCategory.FRAMEWORK,
                confidence=0.0,
                mitigation="No known signature found; escalate to a human.")
        if self.temperature > 0:
            noisy = {reason: score + self.temperature
                     * float(self.rng.gumbel())
                     for reason, score in scores.items()}
        else:
            noisy = scores
        best = max(noisy, key=lambda r: (noisy[r], r))
        total = sum(scores.values())
        spec = self._taxonomy.get(best)
        category = (spec.category if spec else FailureCategory.FRAMEWORK)
        return LLMVerdict(
            reason=best,
            category=category,
            confidence=scores.get(best, 0.0) / total if total else 0.0,
            mitigation=_MITIGATIONS[category],
        )

    # -- the Log Agent also asks the LLM to write filter regexes ------------

    def propose_filter_regex(self, template_masked: str) -> str:
        """Write a filter regex for a mined routine-output template."""
        from repro.core.diagnosis.templates import template_to_regex

        return template_to_regex(template_masked)
