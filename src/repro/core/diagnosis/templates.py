"""Log template mining (the Log Agent's pattern discovery).

A lightweight Drain-style miner: lines are tokenized, variable tokens
(numbers, hex ids, paths, percentages, timestamps) are masked to ``<*>``,
and lines sharing a masked skeleton form a template.  Templates with high
support are "fixed patterns" — exactly what the paper's Log Agent turns
into filter rules for compression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_TIMESTAMP = re.compile(
    r"^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}[,.]\d+")
_VARIABLE_TOKEN = re.compile(
    r"^("
    r"[-+]?\d+(\.\d+)?([eE][-+]?\d+)?%?"   # numbers / scientific / percent
    r"|0x[0-9a-fA-F]+"                      # hex
    r"|[0-9a-fA-F]{8,}"                     # long hex-ish ids
    r"|/[^\s]*"                             # absolute paths
    r"|[a-zA-Z_]+=\S*"                      # key=value pairs
    r"|\d+:\d+(:\d+)?"                      # times
    r")$")


def mask_line(line: str) -> str:
    """Replace variable tokens with ``<*>``; strip leading timestamps."""
    line = _TIMESTAMP.sub("<ts>", line.strip())
    tokens = line.split()
    masked = ["<*>" if _VARIABLE_TOKEN.match(token) else token
              for token in tokens]
    return " ".join(masked)


def template_to_regex(template: str) -> str:
    """Turn a masked template into an anchored matching regex."""
    parts = []
    for token in template.split():
        if token == "<*>":
            parts.append(r"\S+")
        elif token == "<ts>":
            parts.append(r"\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}[,.]\d+")
        else:
            parts.append(re.escape(token))
    return r"\s+".join(parts)


@dataclass
class LogTemplate:
    """One mined template with its support count."""

    masked: str
    count: int = 0
    examples: list[str] = field(default_factory=list)

    @property
    def regex(self) -> str:
        return template_to_regex(self.masked)


class TemplateMiner:
    """Accumulates lines and exposes high-support templates."""

    def __init__(self, max_examples: int = 3) -> None:
        self._templates: dict[str, LogTemplate] = {}
        self.max_examples = max_examples
        self.lines_seen = 0

    def add_line(self, line: str) -> LogTemplate:
        """Mask a line and fold it into its template."""
        self.lines_seen += 1
        masked = mask_line(line)
        template = self._templates.get(masked)
        if template is None:
            template = LogTemplate(masked=masked)
            self._templates[masked] = template
        template.count += 1
        if len(template.examples) < self.max_examples:
            template.examples.append(line)
        return template

    def add_lines(self, lines: list[str]) -> None:
        """Feed many lines through :meth:`add_line`."""
        for line in lines:
            self.add_line(line)

    def templates(self, min_support: int = 1) -> list[LogTemplate]:
        """Templates sorted by support, highest first."""
        found = [t for t in self._templates.values()
                 if t.count >= min_support]
        return sorted(found, key=lambda t: -t.count)

    def routine_templates(self, min_support: int = 5,
                          min_fraction: float = 0.0) -> list[LogTemplate]:
        """Templates frequent enough to be routine output.

        ``min_fraction`` additionally requires the template to cover that
        share of all lines seen — guards against promoting a repeated
        error line to a filter rule on small logs.
        """
        threshold = max(min_support, int(min_fraction * self.lines_seen))
        return self.templates(min_support=threshold)

    @property
    def unique_templates(self) -> int:
        return len(self._templates)
