"""Asynchronous checkpointing (§6.1, design 1).

LLMs produce TB-scale model states; saving them synchronously can slow
training by tens of percent.  The paper's strategy: snapshot the state into
spare host memory (fast, blocks training briefly) and persist to remote
storage from a background thread (slow, off the critical path).

Two layers are provided:

* **Executable checkpointers** (:class:`SyncCheckpointer`,
  :class:`AsyncCheckpointer`) — real implementations over numpy state
  dicts and pluggable storage backends, with checksummed integrity and a
  bounded in-memory buffer.  These are what the tests and the checkpoint
  benchmark drive.
* **Analytic cost model** (:class:`CheckpointCostModel`) — blocking-time
  arithmetic at datacenter scale, reproducing the paper's 3.6–58.7x
  blocking-overhead reduction between 7B and 123B configurations.

The persist path is **storage-fault tolerant** (Table 3 lists
network-storage outages among the recurring Kalos failure classes):

* every write/read runs under a :class:`RetryPolicy` — exponential
  backoff with jitter, bounded attempts, and a deadline;
* an optional *secondary* backend receives replicas and serves reads
  when the primary copy is missing or corrupt;
* restore is **multi-generation**: a generation that fails its checksum
  (or cannot be read) is quarantined and the previous one is loaded;
* the pipeline exposes a :class:`PersistHealth` state
  (HEALTHY / DEGRADED / FAILED) instead of dying silently, so a
  recovery controller can react to a sick storage path.
"""

from __future__ import annotations

import hashlib
import pickle
import queue
import re
import threading
import time
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Callable

import numpy as np

from repro.cluster.storage import (MonotonicClock, SharedStorage,
                                   StorageError)
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.training.model import TransformerConfig

StateDict = dict[str, np.ndarray]


class CheckpointError(RuntimeError):
    """Raised on checkpoint corruption or persist failures."""
    pass


def _serialize(step: int, state: StateDict) -> bytes:
    payload = pickle.dumps({"step": step, "state": state},
                           protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    return digest + payload


def _deserialize(blob: bytes) -> tuple[int, StateDict]:
    digest, payload = blob[:32], blob[32:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError("checkpoint corrupted: checksum mismatch")
    record = pickle.loads(payload)
    return record["step"], record["state"]


# -- storage backends -----------------------------------------------------


class InMemoryStorage:
    """Remote storage stand-in with optional bandwidth throttling.

    ``bandwidth`` (bytes/s) injects a sleep proportional to payload size,
    emulating the slow persist path that async checkpointing hides.
    """

    def __init__(self, bandwidth: float | None = None) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.write_count = 0

    def _throttle(self, size: int) -> None:
        if self.bandwidth is not None:
            # deliberate wall-sleep: this backend emulates persist
            # bandwidth for the *threaded* async pipeline, which runs
            # in real time (simulations inject a VirtualClock instead)
            time.sleep(size / self.bandwidth)  # reprolint: disable=CLK001

    def write(self, key: str, blob: bytes) -> None:
        """Store a blob under ``key``."""
        self._throttle(len(blob))
        with self._lock:
            self._blobs[key] = blob
            self.write_count += 1

    def read(self, key: str) -> bytes:
        """Fetch the blob stored under ``key``."""
        with self._lock:
            if key not in self._blobs:
                raise KeyError(key)
            return self._blobs[key]

    def keys(self) -> list[str]:
        """Stored checkpoint keys, sorted."""
        with self._lock:
            return sorted(self._blobs)

    def delete(self, key: str) -> None:
        """Remove a stored checkpoint (no-op if absent)."""
        with self._lock:
            self._blobs.pop(key, None)


class DirectoryStorage:
    """Filesystem-backed storage (one file per checkpoint)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # a crashed writer leaves *.tmp files behind; sweep them so they
        # neither accumulate forever nor collide with a future write
        self.stale_tmp_swept = 0
        for stale in self.root.glob("*.tmp"):
            stale.unlink(missing_ok=True)
            self.stale_tmp_swept += 1

    def write(self, key: str, blob: bytes) -> None:
        """Store a blob under ``key``."""
        tmp = self.root / (key + ".tmp")
        final = self.root / key
        tmp.write_bytes(blob)
        tmp.replace(final)  # atomic: never expose a torn checkpoint

    def read(self, key: str) -> bytes:
        """Fetch the blob stored under ``key``."""
        path = self.root / key
        if not path.exists():
            raise KeyError(key)
        return path.read_bytes()

    def keys(self) -> list[str]:
        """Stored checkpoint keys, sorted."""
        return sorted(p.name for p in self.root.iterdir()
                      if not p.name.endswith(".tmp"))

    def delete(self, key: str) -> None:
        """Remove a stored checkpoint (no-op if absent)."""
        path = self.root / key
        if path.exists():
            path.unlink()


_CKPT_KEY_RE = re.compile(r"ckpt-(\d+)\Z")


def _checkpoint_key(step: int) -> str:
    return f"ckpt-{step:012d}"


def _key_step(key: str) -> int:
    return int(key.split("-")[1])


# -- the resilient persist pipeline ----------------------------------------


class PersistHealth(Enum):
    """Health of the persist pipeline, surfaced to recovery controllers.

    * HEALTHY  — the last persist succeeded on the first attempt.
    * DEGRADED — the last persist succeeded, but needed retries or lost
      its replica write.
    * FAILED   — the last persist exhausted its retry budget; that
      checkpoint generation was lost.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, bounded attempts, and a deadline.

    ``delay(attempt)`` grows as ``base_delay * backoff ** attempt``
    capped at ``max_delay``; ``jitter`` scales each delay by a uniform
    factor in ``[1 - jitter, 1 + jitter]`` (seeded by the checkpointer,
    so retry timing is reproducible).  The ``deadline`` bounds the total
    clock time one operation may consume across all attempts.
    """

    max_attempts: int = 5
    base_delay: float = 0.5
    backoff: float = 2.0
    max_delay: float = 8.0
    deadline: float = 60.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.deadline <= 0:
            raise ValueError("delays must be non-negative, deadline "
                             "positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng) -> float:
        raw = min(self.base_delay * self.backoff ** attempt,
                  self.max_delay)
        if self.jitter:
            raw *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(raw, 0.0)


@dataclass(frozen=True)
class PersistResult:
    """Outcome of one persist through the pipeline."""

    key: str
    ok: bool
    attempts: int
    elapsed: float
    #: True/False when a secondary exists, None otherwise
    replicated: bool | None
    error: str | None = None


class _CheckpointerBase:
    """Shared persist/restore pipeline for both checkpointers.

    All storage traffic (writes, reads, key listings) runs under the
    :class:`RetryPolicy` against ``clock``; restore walks generations
    newest-first, quarantining any that fail their checksum.
    """

    def __init__(self, storage, retry: RetryPolicy | None = None,
                 secondary=None, clock=None, retry_seed: int = 0,
                 tracer: TracerLike | None = None) -> None:
        self.storage = storage
        self.secondary = secondary
        self.retry = retry or RetryPolicy()
        self.clock = clock or MonotonicClock()
        # persist/restore spans are stamped with this pipeline's own
        # clock (the sim harness injects an engine-backed one), so the
        # trace shows retry stalls in simulated seconds
        self.tracer = tracer or NULL_TRACER
        self._retry_rng = np.random.default_rng(retry_seed)
        self.health = PersistHealth.HEALTHY
        self.saves = 0
        self.retries_total = 0
        self.failed_saves = 0
        self.replication_failures = 0
        #: (step, reason) for every generation quarantined during restore
        self.quarantined: list[tuple[int, str]] = []
        #: generations skipped (fallen past) across all restores
        self.restore_fallbacks = 0
        self.last_result: PersistResult | None = None

    # -- retry plumbing ---------------------------------------------------

    def _run_with_retry(self, op: Callable[[], object]
                        ) -> tuple[bool, object, int, Exception | None]:
        """Run ``op`` under the retry policy.

        Returns ``(ok, value, attempts, error)``.  Only storage/OS
        errors are retried; a ``KeyError`` (missing key) is definitive
        and propagates to the caller.
        """
        deadline = self.clock.now() + self.retry.deadline
        attempts = 0
        while True:
            attempts += 1
            try:
                return True, op(), attempts, None
            except (StorageError, OSError) as exc:
                if attempts >= self.retry.max_attempts:
                    return False, None, attempts, exc
                delay = self.retry.delay(attempts - 1, self._retry_rng)
                if self.clock.now() + delay > deadline:
                    return False, None, attempts, exc
                self.clock.sleep(delay)

    # -- persist ----------------------------------------------------------

    def _persist(self, step: int, blob: bytes) -> PersistResult:
        """Write one generation with retries (+ optional replication).

        Never raises on storage failure: the outcome (and the updated
        :attr:`health`) is the interface.
        """
        key = _checkpoint_key(step)
        started = self.clock.now()
        ok, _, attempts, error = self._run_with_retry(
            lambda: self.storage.write(key, blob))
        replicated = None
        if ok and self.secondary is not None:
            replicated, _, extra, _ = self._run_with_retry(
                lambda: self.secondary.write(key, blob))
            attempts += extra - 1
            if not replicated:
                self.replication_failures += 1
        self.retries_total += max(attempts - 1, 0)
        result = PersistResult(
            key=key, ok=ok, attempts=attempts,
            elapsed=self.clock.now() - started, replicated=replicated,
            error=None if error is None
            else f"{type(error).__name__}: {error}")
        self.last_result = result
        self.tracer.complete(
            "checkpoint.persist", started, self.clock.now(),
            "checkpoint", step=step, ok=ok, attempts=attempts,
            replicated=replicated)
        if not ok:
            self.failed_saves += 1
            self.health = PersistHealth.FAILED
        elif attempts > 1 or replicated is False:
            self.health = PersistHealth.DEGRADED
        else:
            self.health = PersistHealth.HEALTHY
        return result

    # -- restore ----------------------------------------------------------

    def _sources(self) -> list:
        return [self.storage] + ([self.secondary]
                                 if self.secondary is not None else [])

    def _generation_steps(self, at_or_before: int | None) -> list[int]:
        """Candidate generation steps across all sources, newest first.

        Raises :class:`StorageError` when *no* backend can even list its
        keys — the caller should defer the restore, not conclude that
        nothing was ever persisted.
        """
        steps: set[int] = set()
        reachable = False
        last_error: Exception | None = None
        for source in self._sources():
            ok, keys, _, error = self._run_with_retry(source.keys)
            if ok:
                reachable = True
                for key in keys:
                    match = _CKPT_KEY_RE.fullmatch(key)
                    if match:
                        steps.add(int(match.group(1)))
            else:
                last_error = error
        if not reachable:
            raise StorageError(
                "no storage backend reachable for restore"
            ) from last_error
        return sorted((step for step in steps
                       if at_or_before is None or step <= at_or_before),
                      reverse=True)

    def _quarantine(self, step: int, reason: str) -> None:
        """Move a bad generation out of the restore path, keeping the
        evidence under a ``quarantine-`` key where possible."""
        self.quarantined.append((step, reason))
        key = _checkpoint_key(step)
        for source in self._sources():
            try:
                source.write("quarantine-" + key, source.read(key))
            except Exception:  # reprolint: disable=EXC001
                pass  # best effort: the backend may be down or key gone
            try:
                source.delete(key)
            except Exception:  # reprolint: disable=EXC001
                pass  # best effort, as above; quarantined[] records it

    def load_at_or_before(self, step: int | None = None
                          ) -> tuple[int, StateDict] | None:
        """Newest checksum-valid generation at or before ``step``.

        A generation that is corrupt (or missing) in every source is
        quarantined and the walk falls back to the previous one.  Raises
        :class:`StorageError` when the backend is unreachable — restoring
        *nothing* and restoring *an older generation* are different
        failures, and the caller should retry later rather than silently
        losing progress.  Returns None when no readable generation
        exists at all.
        """
        started = self.clock.now()
        quarantined_before = len(self.quarantined)
        try:
            loaded = self._restore_walk(step)
        except StorageError:
            self.tracer.complete(
                "checkpoint.restore", started, self.clock.now(),
                "checkpoint", planned=step, outcome="unreachable",
                quarantined=len(self.quarantined) - quarantined_before)
            raise
        self.tracer.complete(
            "checkpoint.restore", started, self.clock.now(),
            "checkpoint", planned=step,
            outcome="ok" if loaded is not None else "empty",
            restored=None if loaded is None else loaded[0],
            quarantined=len(self.quarantined) - quarantined_before)
        return loaded

    def _restore_walk(self, step: int | None
                      ) -> tuple[int, StateDict] | None:
        for candidate in self._generation_steps(step):
            key = _checkpoint_key(candidate)
            corrupt = 0
            unreachable = 0
            for source in self._sources():
                try:
                    ok, blob, _, _ = self._run_with_retry(
                        lambda src=source: src.read(key))
                except KeyError:
                    continue  # this source never got the replica
                if not ok:
                    unreachable += 1
                    continue
                try:
                    return _deserialize(blob)
                except CheckpointError:
                    corrupt += 1
            if unreachable:
                # a copy might still be good behind the outage: defer
                raise StorageError(
                    f"generation {candidate} unreachable during restore")
            if corrupt:
                self._quarantine(candidate, "checksum mismatch")
            # else: key vanished between keys() and read(); just fall back
            self.restore_fallbacks += 1
        return None

    def load_latest(self) -> tuple[int, StateDict] | None:
        """Load the newest durable checkpoint, or None."""
        return self.load_at_or_before(None)


# -- checkpointers ---------------------------------------------------------


class SyncCheckpointer(_CheckpointerBase):
    """Baseline: serialize and persist inline, blocking the caller."""

    def save(self, step: int, state: StateDict) -> float:
        """Persist now (with retries); returns blocking seconds.

        Raises :class:`CheckpointError` when the retry budget is
        exhausted — the generation was lost and :attr:`health` is FAILED.
        """
        started = self.clock.now()
        result = self._persist(step, _serialize(step, state))
        self.saves += 1
        if not result.ok:
            raise CheckpointError(
                f"persist of step {step} failed after {result.attempts} "
                f"attempts: {result.error}")
        return self.clock.now() - started

    def close(self) -> None:  # symmetry with AsyncCheckpointer
        """Flush pending work and stop the background thread."""
        pass


@dataclass
class _PendingSave:
    step: int
    blob: bytes


class AsyncCheckpointer(_CheckpointerBase):
    """The §6.1 strategy: snapshot to host memory, persist in background.

    ``save`` blocks only for the in-memory snapshot (deep copy +
    serialization); a worker thread drains the persist queue through the
    retrying pipeline.  The queue is bounded by ``buffer_slots`` — host
    memory holds only a few checkpoints (Fig. 7b observation) — with an
    explicit ``overflow`` policy when it is full:

    * ``"drop_oldest"`` (default) — evict the oldest unpersisted
      snapshot in favor of the newer one, because recovery only ever
      wants the latest durable state;
    * ``"error"`` — raise :class:`CheckpointError` back to the trainer;
    * ``"block"`` — wait (wall-clock) for a slot to free up.

    A persist that exhausts its retry budget no longer kills the worker:
    the step lands in :attr:`failed_steps`, the optional
    ``on_persist_failure(step, error)`` callback fires, :attr:`health`
    flips to FAILED, and the worker keeps draining newer snapshots.
    """

    _OVERFLOW_POLICIES = ("drop_oldest", "error", "block")

    def __init__(self, storage, buffer_slots: int = 2,
                 retry: RetryPolicy | None = None, secondary=None,
                 clock=None, retry_seed: int = 0,
                 overflow: str = "drop_oldest",
                 on_persist_failure:
                 Callable[[int, str], None] | None = None) -> None:
        if buffer_slots < 1:
            raise ValueError("buffer_slots must be >= 1")
        if overflow not in self._OVERFLOW_POLICIES:
            raise ValueError(f"overflow must be one of "
                             f"{self._OVERFLOW_POLICIES}")
        super().__init__(storage, retry=retry, secondary=secondary,
                         clock=clock, retry_seed=retry_seed)
        self.buffer_slots = buffer_slots
        self.overflow = overflow
        self.on_persist_failure = on_persist_failure
        self._queue: queue.Queue[_PendingSave | None] = queue.Queue()
        self._pending: list[_PendingSave] = []
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._error: BaseException | None = None
        self.dropped = 0
        #: steps whose persist exhausted the retry budget
        self.failed_steps: list[int] = []
        self._failed_reported = 0
        self._worker = threading.Thread(target=self._drain, daemon=True)
        self._worker.start()

    # -- worker ----------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            try:
                if item.blob:  # dropped snapshots have been cleared
                    result = self._persist(item.step, item.blob)
                    if not result.ok:
                        self.failed_steps.append(item.step)
                        if self.on_persist_failure is not None:
                            try:
                                self.on_persist_failure(
                                    item.step, result.error or "")
                            except Exception:  # reprolint: disable=EXC001
                                pass  # a sick callback must not kill us
            except BaseException as exc:
                # Unexpected (non-storage) error: remember it for the
                # next save/flush, but keep the worker alive — a poisoned
                # snapshot must not strand every later one in memory.
                self._error = exc
            finally:
                with self._lock:
                    if item in self._pending:
                        self._pending.remove(item)
                    self._slot_free.notify_all()

    # -- API --------------------------------------------------------------

    def save(self, step: int, state: StateDict) -> float:
        """Snapshot to host memory; returns blocking seconds."""
        if self._error is not None:
            raise CheckpointError(
                "background persist failed") from self._error
        started = self.clock.now()
        # The snapshot is the blocking part: copy tensors off the "GPU"
        # so training can mutate them immediately after we return.
        snapshot = {name: np.array(array, copy=True)
                    for name, array in state.items()}
        blob = _serialize(step, snapshot)
        pending = _PendingSave(step=step, blob=blob)
        with self._lock:
            if (self.overflow == "error"
                    and len(self._pending) >= self.buffer_slots):
                raise CheckpointError(
                    f"persist buffer full ({self.buffer_slots} slots)")
            if self.overflow == "block":
                waited = self._slot_free.wait_for(
                    lambda: len(self._pending) < self.buffer_slots,
                    timeout=30.0)
                if not waited:
                    raise CheckpointError(
                        "timed out waiting for a persist buffer slot")
            while len(self._pending) >= self.buffer_slots:
                victim = min(self._pending, key=lambda p: p.step)
                self._pending.remove(victim)
                victim.blob = b""  # release memory; worker will skip it
                self.dropped += 1
            self._pending.append(pending)
        self._queue.put(pending)
        self.saves += 1
        return self.clock.now() - started

    def flush(self, timeout: float = 30.0,
              raise_on_failed: bool = True) -> None:
        """Block until every queued snapshot has been attempted.

        With ``raise_on_failed`` (default), raises
        :class:`CheckpointError` if any persist attempted since the last
        flush exhausted its retries — those generations are lost.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    break
            time.sleep(0.001)
        else:
            raise CheckpointError("flush timed out")
        if self._error is not None:
            raise CheckpointError(
                "background persist failed") from self._error
        if raise_on_failed:
            fresh = self.failed_steps[self._failed_reported:]
            self._failed_reported = len(self.failed_steps)
            if fresh:
                raise CheckpointError(
                    f"persist failed for steps {fresh}; pipeline health "
                    f"is {self.health.value}")

    def close(self, join_timeout: float = 10.0) -> None:
        """Flush pending work and stop the background thread.

        Raises :class:`CheckpointError` if the worker thread fails to
        terminate within ``join_timeout`` — a leaked worker holding a
        storage handle must never look like a clean shutdown.
        """
        try:
            self.flush()
        finally:
            self._queue.put(None)
            self._worker.join(timeout=join_timeout)
            if self._worker.is_alive():
                raise CheckpointError(
                    f"persist worker did not terminate within "
                    f"{join_timeout}s; thread leaked")

    def __enter__(self) -> "AsyncCheckpointer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the datacenter-scale cost model ------------------------------------------


@dataclass(frozen=True)
class CheckpointCost:
    """Blocking time per checkpoint under both modes, seconds."""

    snapshot: float
    persist: float

    @property
    def sync_blocking(self) -> float:
        return self.snapshot + self.persist

    @property
    def async_blocking(self) -> float:
        return self.snapshot

    @property
    def reduction(self) -> float:
        """sync blocking / async blocking — the §6.1 headline factor."""
        return self.sync_blocking / self.async_blocking

    def overhead_fraction(self, interval: float, asynchronous: bool
                          ) -> float:
        """Training-time overhead at a checkpoint interval (§6.1 uses
        interval = 30 min)."""
        blocking = self.async_blocking if asynchronous else \
            self.sync_blocking
        return blocking / (interval + blocking)


@dataclass
class CheckpointCostModel:
    """Blocking-time arithmetic for a model sharded over a cluster.

    Model state (16Ψ bytes) is spread across the job's nodes; every GPU
    snapshots its shard over PCIe in parallel, then each node persists its
    share through its storage NIC, all nodes contending on the backend.
    """

    storage: SharedStorage
    gpus_per_node: int = 8
    pcie_bandwidth: float = 20e9   # effective host-copy rate, bytes/s
    state_bytes_multiplier: float = 16.0

    def cost(self, model: TransformerConfig, world_size: int
             ) -> CheckpointCost:
        """Blocking-time cost of checkpointing ``model`` at this scale."""
        if world_size <= 0 or world_size % self.gpus_per_node:
            raise ValueError("world_size must be a multiple of "
                             f"{self.gpus_per_node}")
        nodes = world_size // self.gpus_per_node
        total_state = self.state_bytes_multiplier * model.param_count
        per_node = total_state / nodes
        per_gpu = per_node / self.gpus_per_node
        snapshot = per_gpu / self.pcie_bandwidth
        persist = self.storage.write_time(per_node,
                                          concurrent_writers=nodes)
        return CheckpointCost(snapshot=snapshot, persist=persist)
