"""Asynchronous checkpointing (§6.1, design 1).

LLMs produce TB-scale model states; saving them synchronously can slow
training by tens of percent.  The paper's strategy: snapshot the state into
spare host memory (fast, blocks training briefly) and persist to remote
storage from a background thread (slow, off the critical path).

Two layers are provided:

* **Executable checkpointers** (:class:`SyncCheckpointer`,
  :class:`AsyncCheckpointer`) — real implementations over numpy state
  dicts and pluggable storage backends, with checksummed integrity and a
  bounded in-memory buffer.  These are what the tests and the checkpoint
  benchmark drive.
* **Analytic cost model** (:class:`CheckpointCostModel`) — blocking-time
  arithmetic at datacenter scale, reproducing the paper's 3.6–58.7x
  blocking-overhead reduction between 7B and 123B configurations.
"""

from __future__ import annotations

import hashlib
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.storage import SharedStorage
from repro.training.model import TransformerConfig

StateDict = dict[str, np.ndarray]


class CheckpointError(RuntimeError):
    """Raised on checkpoint corruption or persist failures."""
    pass


def _serialize(step: int, state: StateDict) -> bytes:
    payload = pickle.dumps({"step": step, "state": state},
                           protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    return digest + payload


def _deserialize(blob: bytes) -> tuple[int, StateDict]:
    digest, payload = blob[:32], blob[32:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError("checkpoint corrupted: checksum mismatch")
    record = pickle.loads(payload)
    return record["step"], record["state"]


# -- storage backends -----------------------------------------------------


class InMemoryStorage:
    """Remote storage stand-in with optional bandwidth throttling.

    ``bandwidth`` (bytes/s) injects a sleep proportional to payload size,
    emulating the slow persist path that async checkpointing hides.
    """

    def __init__(self, bandwidth: float | None = None) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.write_count = 0

    def _throttle(self, size: int) -> None:
        if self.bandwidth is not None:
            time.sleep(size / self.bandwidth)

    def write(self, key: str, blob: bytes) -> None:
        """Store a blob under ``key``."""
        self._throttle(len(blob))
        with self._lock:
            self._blobs[key] = blob
            self.write_count += 1

    def read(self, key: str) -> bytes:
        """Fetch the blob stored under ``key``."""
        with self._lock:
            if key not in self._blobs:
                raise KeyError(key)
            return self._blobs[key]

    def keys(self) -> list[str]:
        """Stored checkpoint keys, sorted."""
        with self._lock:
            return sorted(self._blobs)

    def delete(self, key: str) -> None:
        """Remove a stored checkpoint (no-op if absent)."""
        with self._lock:
            self._blobs.pop(key, None)


class DirectoryStorage:
    """Filesystem-backed storage (one file per checkpoint)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def write(self, key: str, blob: bytes) -> None:
        """Store a blob under ``key``."""
        tmp = self.root / (key + ".tmp")
        final = self.root / key
        tmp.write_bytes(blob)
        tmp.replace(final)  # atomic: never expose a torn checkpoint

    def read(self, key: str) -> bytes:
        """Fetch the blob stored under ``key``."""
        path = self.root / key
        if not path.exists():
            raise KeyError(key)
        return path.read_bytes()

    def keys(self) -> list[str]:
        """Stored checkpoint keys, sorted."""
        return sorted(p.name for p in self.root.iterdir()
                      if not p.name.endswith(".tmp"))

    def delete(self, key: str) -> None:
        """Remove a stored checkpoint (no-op if absent)."""
        path = self.root / key
        if path.exists():
            path.unlink()


def _checkpoint_key(step: int) -> str:
    return f"ckpt-{step:012d}"


def _key_step(key: str) -> int:
    return int(key.split("-")[1])


# -- checkpointers ---------------------------------------------------------


class SyncCheckpointer:
    """Baseline: serialize and persist inline, blocking the caller."""

    def __init__(self, storage) -> None:
        self.storage = storage
        self.saves = 0

    def save(self, step: int, state: StateDict) -> float:
        """Persist now; returns blocking seconds."""
        started = time.monotonic()
        self.storage.write(_checkpoint_key(step), _serialize(step, state))
        self.saves += 1
        return time.monotonic() - started

    def load_latest(self) -> tuple[int, StateDict] | None:
        """Load the newest durable checkpoint, or None."""
        keys = self.storage.keys()
        if not keys:
            return None
        return _deserialize(self.storage.read(keys[-1]))

    def close(self) -> None:  # symmetry with AsyncCheckpointer
        """Flush pending work and stop the background thread."""
        pass


@dataclass
class _PendingSave:
    step: int
    blob: bytes


class AsyncCheckpointer:
    """The §6.1 strategy: snapshot to host memory, persist in background.

    ``save`` blocks only for the in-memory snapshot (deep copy +
    serialization); a worker thread drains the persist queue.  The queue
    is bounded by ``buffer_slots`` — host memory holds only a few
    checkpoints (Fig. 7b observation) — and when full, the *oldest
    unpersisted* snapshot is dropped in favor of the newer one, because
    recovery only ever wants the latest durable state.
    """

    def __init__(self, storage, buffer_slots: int = 2) -> None:
        if buffer_slots < 1:
            raise ValueError("buffer_slots must be >= 1")
        self.storage = storage
        self.buffer_slots = buffer_slots
        self._queue: queue.Queue[_PendingSave | None] = queue.Queue()
        self._pending: list[_PendingSave] = []
        self._lock = threading.Lock()
        self._error: BaseException | None = None
        self.saves = 0
        self.dropped = 0
        self._worker = threading.Thread(target=self._drain, daemon=True)
        self._worker.start()

    # -- worker ----------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            try:
                if item.blob:  # dropped snapshots have been cleared
                    self.storage.write(_checkpoint_key(item.step),
                                       item.blob)
            except BaseException as exc:  # surfaces on next save/flush
                self._error = exc
            finally:
                with self._lock:
                    if item in self._pending:
                        self._pending.remove(item)

    # -- API --------------------------------------------------------------

    def save(self, step: int, state: StateDict) -> float:
        """Snapshot to host memory; returns blocking seconds."""
        if self._error is not None:
            raise CheckpointError(
                "background persist failed") from self._error
        started = time.monotonic()
        # The snapshot is the blocking part: copy tensors off the "GPU"
        # so training can mutate them immediately after we return.
        snapshot = {name: np.array(array, copy=True)
                    for name, array in state.items()}
        blob = _serialize(step, snapshot)
        pending = _PendingSave(step=step, blob=blob)
        with self._lock:
            while len(self._pending) >= self.buffer_slots:
                victim = min(self._pending, key=lambda p: p.step)
                self._pending.remove(victim)
                victim.blob = b""  # release memory; worker will skip it
                self.dropped += 1
            self._pending.append(pending)
        self._queue.put(pending)
        self.saves += 1
        return time.monotonic() - started

    def flush(self, timeout: float = 30.0) -> None:
        """Block until every queued snapshot is durable."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    break
            time.sleep(0.001)
        else:
            raise CheckpointError("flush timed out")
        if self._error is not None:
            raise CheckpointError(
                "background persist failed") from self._error

    def load_latest(self) -> tuple[int, StateDict] | None:
        """Load the newest durable checkpoint, or None."""
        keys = [key for key in self.storage.keys()
                if self.storage.read(key)]
        if not keys:
            return None
        latest = max(keys, key=_key_step)
        return _deserialize(self.storage.read(latest))

    def close(self) -> None:
        """Flush pending work and stop the background thread."""
        self.flush()
        self._queue.put(None)
        self._worker.join(timeout=10.0)

    def __enter__(self) -> "AsyncCheckpointer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the datacenter-scale cost model ------------------------------------------


@dataclass(frozen=True)
class CheckpointCost:
    """Blocking time per checkpoint under both modes, seconds."""

    snapshot: float
    persist: float

    @property
    def sync_blocking(self) -> float:
        return self.snapshot + self.persist

    @property
    def async_blocking(self) -> float:
        return self.snapshot

    @property
    def reduction(self) -> float:
        """sync blocking / async blocking — the §6.1 headline factor."""
        return self.sync_blocking / self.async_blocking

    def overhead_fraction(self, interval: float, asynchronous: bool
                          ) -> float:
        """Training-time overhead at a checkpoint interval (§6.1 uses
        interval = 30 min)."""
        blocking = self.async_blocking if asynchronous else \
            self.sync_blocking
        return blocking / (interval + blocking)


@dataclass
class CheckpointCostModel:
    """Blocking-time arithmetic for a model sharded over a cluster.

    Model state (16Ψ bytes) is spread across the job's nodes; every GPU
    snapshots its shard over PCIe in parallel, then each node persists its
    share through its storage NIC, all nodes contending on the backend.
    """

    storage: SharedStorage
    gpus_per_node: int = 8
    pcie_bandwidth: float = 20e9   # effective host-copy rate, bytes/s
    state_bytes_multiplier: float = 16.0

    def cost(self, model: TransformerConfig, world_size: int
             ) -> CheckpointCost:
        """Blocking-time cost of checkpointing ``model`` at this scale."""
        if world_size <= 0 or world_size % self.gpus_per_node:
            raise ValueError("world_size must be a multiple of "
                             f"{self.gpus_per_node}")
        nodes = world_size // self.gpus_per_node
        total_state = self.state_bytes_multiplier * model.param_count
        per_node = total_state / nodes
        per_gpu = per_node / self.gpus_per_node
        snapshot = per_gpu / self.pcie_bandwidth
        persist = self.storage.write_time(per_node,
                                          concurrent_writers=nodes)
        return CheckpointCost(snapshot=snapshot, persist=persist)
