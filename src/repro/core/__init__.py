"""The paper's deployed systems (§6).

* ``repro.core.checkpoint`` — asynchronous checkpointing (§6.1.1);
* ``repro.core.diagnosis`` — LLM-assisted failure diagnosis (§6.1.2);
* ``repro.core.recovery`` — fault detection and automatic recovery
  (§6.1.3);
* ``repro.core.evalsched`` — decoupled scheduling for evaluation (§6.2).
"""

from repro.core.checkpoint import (AsyncCheckpointer, SyncCheckpointer,
                                   CheckpointCostModel, InMemoryStorage,
                                   DirectoryStorage)
from repro.core.sharded import ShardedCheckpointer

__all__ = [
    "AsyncCheckpointer",
    "SyncCheckpointer",
    "CheckpointCostModel",
    "InMemoryStorage",
    "DirectoryStorage",
    "ShardedCheckpointer",
]
