"""Sharded checkpointing across ranks (§6.1 at TB scale).

A 123B model's state is 16Ψ ≈ 2 TB spread over thousands of ranks; each
rank checkpoints its own shard.  A checkpoint is *usable* only if every
rank's shard for that step is durable — if a failure interrupts the
flush, some ranks will have persisted step N while others stopped at
N-k, and recovery must fall back to the newest step **complete across
all ranks**.

``ShardedCheckpointer`` coordinates per-rank async checkpointers and
implements that consistency rule; ``latest_complete_step`` is what the
recovery controller's :class:`CheckpointCatalog` should be fed with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.checkpoint import (AsyncCheckpointer, InMemoryStorage,
                                   StateDict, _deserialize,
                                   _checkpoint_key, _key_step)


@dataclass(frozen=True)
class ShardInfo:
    """One rank's durable checkpoint steps."""

    rank: int
    steps: tuple[int, ...]


class ShardedCheckpointer:
    """Per-rank async checkpointing with all-ranks-complete recovery."""

    def __init__(self, world_size: int,
                 storage_factory=None,
                 buffer_slots: int = 2) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        storage_factory = storage_factory or InMemoryStorage
        self.world_size = world_size
        self.storages = [storage_factory() for _ in range(world_size)]
        self.checkpointers = [
            AsyncCheckpointer(storage, buffer_slots=buffer_slots)
            for storage in self.storages]

    # -- saving ------------------------------------------------------------

    def save(self, step: int, shards: list[StateDict],
             fail_after_rank: int | None = None) -> float:
        """Snapshot every rank's shard; returns total blocking seconds.

        ``fail_after_rank`` emulates a crash mid-save: ranks beyond it
        never snapshot this step (their latest durable step stays
        older) — the inconsistency the recovery rule exists for.
        """
        if len(shards) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} shards, got {len(shards)}")
        blocking: list[float] = []
        for rank, (checkpointer, shard) in enumerate(
                zip(self.checkpointers, shards)):
            if fail_after_rank is not None and rank > fail_after_rank:
                break
            blocking.append(checkpointer.save(step, shard))
        return math.fsum(blocking)

    def flush(self) -> None:
        """Block until every rank's snapshots are durable."""
        for checkpointer in self.checkpointers:
            checkpointer.flush()

    def close(self) -> None:
        """Flush and stop all per-rank background threads."""
        for checkpointer in self.checkpointers:
            checkpointer.close()

    def __enter__(self) -> "ShardedCheckpointer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery -------------------------------------------------------------

    def shard_infos(self) -> list[ShardInfo]:
        """Durable steps per rank."""
        infos = []
        for rank, storage in enumerate(self.storages):
            steps = tuple(sorted(_key_step(key)
                                 for key in storage.keys()))
            infos.append(ShardInfo(rank=rank, steps=steps))
        return infos

    def latest_complete_step(self) -> int | None:
        """Newest step durable on **every** rank (None if no such step)."""
        common: set[int] | None = None
        for info in self.shard_infos():
            steps = set(info.steps)
            common = steps if common is None else common & steps
            if not common:
                return None
        return max(common) if common else None

    def load_complete(self) -> tuple[int, list[StateDict]] | None:
        """Load the newest all-ranks-complete checkpoint."""
        step = self.latest_complete_step()
        if step is None:
            return None
        shards = []
        for storage in self.storages:
            loaded_step, state = _deserialize(
                storage.read(_checkpoint_key(step)))
            assert loaded_step == step
            shards.append(state)
        return step, shards

    # -- accounting -----------------------------------------------------------

    def total_state_bytes(self) -> int:
        """Durable bytes across all ranks (for capacity accounting)."""
        return sum(len(storage.read(key))
                   for storage in self.storages
                   for key in storage.keys())


def demo_inconsistent_save(world_size: int = 4, seed: int = 0) -> dict:
    """A worked example of the consistency rule.

    Saves step 100 everywhere, then crashes halfway through saving step
    200 — recovery must come back at 100, not 200.
    """
    rng = np.random.default_rng(seed)

    def shards_for(step: int) -> list[StateDict]:
        return [{"weights": rng.normal(size=64),
                 "step": np.array([step])}
                for _ in range(world_size)]

    with ShardedCheckpointer(world_size) as checkpointer:
        checkpointer.save(100, shards_for(100))
        checkpointer.flush()
        checkpointer.save(200, shards_for(200),
                          fail_after_rank=world_size // 2 - 1)
        checkpointer.flush()
        step = checkpointer.latest_complete_step()
        loaded = checkpointer.load_complete()
    return {
        "latest_complete_step": step,
        "loaded_step": loaded[0] if loaded else None,
        "ranks_with_step_200": world_size // 2,
    }
