"""Fast fault detection and recovery (§6.1, design 3).

* ``nccl_test`` — the two-round NCCL allgather procedure that pinpoints
  faulty nodes;
* ``detector`` — training-anomaly detectors (loss spikes, hangs);
* ``controller`` — the orchestrator that ties diagnosis, detection,
  cordoning, and checkpoint rollback into automatic restarts.
"""

from repro.core.recovery.nccl_test import (CollectiveTester,
                                           FabricCollectiveTester,
                                           LinkLocalizationResult,
                                           leaf_segment, pod_segment,
                                           localize_network_faults,
                                           two_round_nccl_test, World)
from repro.core.recovery.detector import (LossSpikeDetector, HangDetector,
                                          StepTimeDeviationDetector,
                                          AnomalyEvent)
from repro.core.recovery.controller import (RecoveryController,
                                            RecoveryAction, RecoveryPlan,
                                            CheckpointCatalog,
                                            HotSparePool)

__all__ = [
    "CheckpointCatalog",
    "CollectiveTester",
    "FabricCollectiveTester",
    "LinkLocalizationResult",
    "leaf_segment",
    "pod_segment",
    "localize_network_faults",
    "two_round_nccl_test",
    "World",
    "LossSpikeDetector",
    "HangDetector",
    "StepTimeDeviationDetector",
    "AnomalyEvent",
    "RecoveryController",
    "RecoveryAction",
    "RecoveryPlan",
    "HotSparePool",
]
