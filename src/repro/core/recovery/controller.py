"""The recovery orchestrator: diagnosis -> detection -> restart (§6.1).

Given a failed (or anomalous) pretraining job, the controller decides and
executes the recovery plan:

* infrastructure failure -> run the two-round NCCL test over the job's
  nodes, cordon convicted nodes, restart from the latest checkpoint on
  the surviving pool;
* framework failure -> restart from the latest checkpoint (configs often
  salvageable), flagging for human follow-up;
* script failure -> do **not** restart (it would fail identically);
  notify the owner with the diagnosis and mitigation;
* loss spike -> roll back to an *earlier* healthy checkpoint and skip the
  offending data batches;
* hang -> treat as a suspected infrastructure failure (silent stalls are
  usually hardware, Appendix A.1).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.cluster.machine import Node
from repro.core.diagnosis.agents import Diagnosis, DiagnosisSystem
from repro.core.recovery.detector import AnomalyEvent
from repro.core.recovery.nccl_test import (CollectiveTester,
                                           FabricCollectiveTester,
                                           localize_network_faults,
                                           two_round_nccl_test)
from repro.failures.taxonomy import FailureCategory


@dataclass(frozen=True)
class RecoveryAction:
    """One concrete action the controller took."""

    kind: str      # "nccl_test", "cordon", "restart", "rollback", "notify"
    detail: str


@dataclass
class RecoveryPlan:
    """The controller's decision for one incident."""

    diagnosis: Diagnosis | None
    restart: bool
    restart_checkpoint_step: int | None
    cordoned_nodes: set[str] = field(default_factory=set)
    #: fabric path segments (leaf uplinks) cordoned by localization —
    #: placement must not span them until they are repaired
    cordoned_segments: set[str] = field(default_factory=set)
    skip_batches: bool = False
    actions: list[RecoveryAction] = field(default_factory=list)
    #: victim node -> hot spare swapped in for it (empty without a pool)
    spare_swaps: dict[str, str] = field(default_factory=dict)
    #: how the gang comes back: "spare_swap" (preemptive migration onto
    #: warm standbys) or "gang_reschedule" (full re-placement)
    recovery_policy: str = "gang_reschedule"


class HotSparePool:
    """Warm standby nodes for preemptive migration (ByteDance-style).

    Instead of tearing the gang down and re-placing it after every
    conviction, a fleet keeps a small pool of powered, imaged spares:
    a convicted node swaps against a spare in ``swap_delay`` seconds
    (NCCL re-init on a warm host) rather than the full
    ``reschedule_delay`` gang restart.  The pool rotates — a repaired
    victim re-enters as the new spare — so capacity is conserved.
    Invariant 13 guards the accounting: a spare is never allocated to
    two victims at once.
    """

    def __init__(self, spares: Iterable[str], swap_delay: float = 120.0,
                 reschedule_delay: float = 300.0,
                 gang_gpus: int = 0) -> None:
        if swap_delay < 0 or reschedule_delay < 0:
            raise ValueError("delays must be non-negative")
        self._available: list[str] = sorted(spares)
        if len(set(self._available)) != len(self._available):
            raise ValueError("duplicate spare names")
        #: spare name -> victim it currently covers
        self.allocated: dict[str, str] = {}
        self.swap_delay = swap_delay
        self.reschedule_delay = reschedule_delay
        self.gang_gpus = gang_gpus

    @property
    def available(self) -> tuple[str, ...]:
        """Spares currently free, in name order."""
        return tuple(self._available)

    @property
    def dry(self) -> bool:
        return not self._available

    def swap_cost_gpu_hours(self) -> float:
        """GPU-hours the gang loses to one warm spare swap."""
        return self.swap_delay * self.gang_gpus / 3600.0

    def reschedule_cost_gpu_hours(self) -> float:
        """GPU-hours a full gang reschedule would cost instead."""
        return self.reschedule_delay * self.gang_gpus / 3600.0

    def acquire(self, victim: str,
                eligible: Callable[[str], bool] | None = None
                ) -> str | None:
        """Allocate the first eligible spare to ``victim`` (None = dry)."""
        for index, spare in enumerate(self._available):
            if eligible is None or eligible(spare):
                del self._available[index]
                self.allocated[spare] = victim
                return spare
        return None

    def reclaim(self, victim: str) -> str | None:
        """A repaired victim rotates in as the new spare.

        The spare that covered it stays in service (the gang already
        migrated onto it); the victim becomes available standby
        capacity.  Returns the covering spare's name, or None if the
        victim was never swapped.
        """
        for spare, covered in sorted(self.allocated.items()):
            if covered == victim:
                del self.allocated[spare]
                insort(self._available, victim)
                return spare
        return None


class CheckpointCatalog:
    """Minimal view of available checkpoints the controller restarts from."""

    def __init__(self, steps: list[int] | None = None) -> None:
        self._steps = sorted(steps or [])
        #: steps quarantined after failing restore (checksum mismatch);
        #: they never come back into the restart path
        self.quarantined: list[int] = []

    def add(self, step: int) -> None:
        """Record a newly persisted checkpoint step."""
        self._steps.append(step)
        self._steps.sort()

    def mark_bad(self, step: int) -> None:
        """Quarantine a generation that failed restore; ``latest`` and
        ``earlier_healthy`` will skip it from now on."""
        if step in self._steps:
            self._steps.remove(step)
        if step not in self.quarantined:
            self.quarantined.append(step)

    def latest(self) -> int | None:
        """Newest checkpoint step, or None."""
        return self._steps[-1] if self._steps else None

    def earlier_healthy(self, before_step: int, back: int = 2
                        ) -> int | None:
        """A checkpoint ``back`` saves earlier than the last one before
        ``before_step`` — the loss-spike rollback target."""
        eligible = [step for step in self._steps if step <= before_step]
        if not eligible:
            return None
        index = max(len(eligible) - 1 - back, 0)
        return eligible[index]

    def __len__(self) -> int:
        return len(self._steps)


class RecoveryController:
    """Drives automatic recovery for one pretraining job."""

    #: convictions before a node escalates from cordoned to faulty
    ESCALATION_THRESHOLD = 2

    def __init__(self, diagnosis_system: DiagnosisSystem,
                 checkpoints: CheckpointCatalog,
                 nodes: list[Node],
                 leaf_of: dict[str, int] | None = None,
                 pod_of_leaf: dict[int, int] | None = None,
                 spare_pool: HotSparePool | None = None) -> None:
        self.diagnosis_system = diagnosis_system
        self.checkpoints = checkpoints
        self.nodes = {node.name: node for node in nodes}
        #: node name -> leaf switch index; required by the network
        #: fault path (localization needs to know the topology)
        self.leaf_of = dict(leaf_of or {})
        #: leaf index -> pod index; enables core-tier localization
        self.pod_of_leaf = dict(pod_of_leaf) if pod_of_leaf else None
        #: warm standby pool; None = always gang-reschedule
        self.spare_pool = spare_pool
        self.incidents: list[RecoveryPlan] = []
        #: NCCL-test convictions per node, across incidents.  A node
        #: convicted repeatedly is not flaky software — it is broken
        #: hardware, and escalates to ``NodeHealth.FAULTY`` (replacement)
        #: instead of bouncing through cordon/uncordon cycles.
        self.conviction_counts: dict[str, int] = {}
        #: (step, detail) alerts raised by a sick persist pipeline —
        #: failed or degraded checkpoint saves.  These are storage-side
        #: incidents the automatic system absorbs (retry/fallback), so
        #: they do not count against :meth:`automation_rate`.
        self.storage_alerts: list[tuple[int, str]] = []
        #: localization convictions per fabric segment, across
        #: incidents — the fabric-side analogue of conviction_counts.
        self.segment_convictions: dict[str, int] = {}

    def record_storage_alert(self, step: int, detail: str) -> None:
        """Note a degraded/failed checkpoint persist at ``step``."""
        self.storage_alerts.append((step, detail))

    # -- failure path ---------------------------------------------------------

    def handle_failure(self, log_lines: list[str],
                       tester: CollectiveTester | None = None
                       ) -> RecoveryPlan:
        """Diagnose a failed job's log and execute the recovery plan."""
        diagnosis = self.diagnosis_system.diagnose(log_lines)
        plan = RecoveryPlan(diagnosis=diagnosis, restart=False,
                            restart_checkpoint_step=None)
        if diagnosis.category is FailureCategory.SCRIPT:
            plan.actions.append(RecoveryAction(
                "notify",
                f"script error {diagnosis.reason}: {diagnosis.mitigation}"))
        elif diagnosis.category is FailureCategory.INFRASTRUCTURE:
            self._isolate_faulty_nodes(plan, tester)
            self._restart_from_latest(plan)
        else:  # framework
            self._restart_from_latest(plan)
            plan.actions.append(RecoveryAction(
                "notify",
                f"framework error {diagnosis.reason}; flagged for review"))
        self.incidents.append(plan)
        return plan

    # -- anomaly path ---------------------------------------------------------

    def handle_anomaly(self, event: AnomalyEvent,
                       tester: CollectiveTester | None = None
                       ) -> RecoveryPlan:
        """React to a loss spike or hang with the matching plan."""
        plan = RecoveryPlan(diagnosis=None, restart=False,
                            restart_checkpoint_step=None)
        if event.kind == "loss_spike":
            target = self.checkpoints.earlier_healthy(event.step)
            if target is not None:
                plan.restart = True
                plan.restart_checkpoint_step = target
                plan.skip_batches = True
                plan.actions.append(RecoveryAction(
                    "rollback",
                    f"loss spike at step {event.step}: restart from "
                    f"{target} and skip offending batches"))
            else:
                plan.actions.append(RecoveryAction(
                    "notify", "loss spike but no checkpoint to roll "
                              "back to"))
        elif event.kind == "hang":
            self._isolate_faulty_nodes(plan, tester)
            self._restart_from_latest(plan)
        else:
            raise ValueError(f"unknown anomaly kind {event.kind!r}")
        self.incidents.append(plan)
        return plan

    # -- network fault path ---------------------------------------------------

    def handle_network_fault(self, detail: str,
                             tester: FabricCollectiveTester,
                             restart: bool = True) -> RecoveryPlan:
        """Localize a fabric fault and cordon what the test convicts.

        Runs the topology-aware localization over the schedulable pool:
        convicted *segments* are cordoned (placement must route around
        them until repair), convicted *nodes* go through the usual
        cordon/escalation path, and ambiguous segments are flagged for
        the fabric team rather than cordoned — localization must never
        convict a healthy segment.  ``restart=False`` is the degraded
        path: the job migrates but resumes in place (no iteration
        loss), so no checkpoint restart is planned.
        """
        if not self.leaf_of:
            raise ValueError("controller has no topology map; pass "
                             "leaf_of to handle network faults")
        plan = RecoveryPlan(diagnosis=None, restart=False,
                            restart_checkpoint_step=None)
        schedulable = [name for name, node in self.nodes.items()
                       if node.schedulable]
        result = localize_network_faults(schedulable, tester,
                                         self.leaf_of,
                                         pod_of_leaf=self.pod_of_leaf)
        plan.actions.append(RecoveryAction(
            "localize",
            f"{detail}: {result.tests_run} collectives, "
            f"{len(result.faulty_nodes)} node(s) and "
            f"{len(result.faulty_segments)} segment(s) convicted"))
        for segment in sorted(result.faulty_segments):
            self.segment_convictions[segment] = (
                self.segment_convictions.get(segment, 0) + 1)
            plan.cordoned_segments.add(segment)
            plan.actions.append(RecoveryAction("cordon_segment", segment))
        for segment in sorted(result.ambiguous_segments):
            plan.actions.append(RecoveryAction(
                "notify",
                f"segment {segment} implicated but not convicted; "
                "flagged for fabric team"))
        for name in sorted(result.unresolved):
            plan.actions.append(RecoveryAction(
                "notify",
                f"{name} unresolved (no trustworthy probe path)"))
        for name in sorted(result.faulty_nodes):
            self._convict_node(plan, name)
        if restart:
            self._restart_from_latest(plan)
        self.incidents.append(plan)
        return plan

    # -- straggler path -------------------------------------------------------

    def handle_straggler(self, detail: str,
                         node_factors: Mapping[str, float],
                         min_factor: float = 0.95) -> RecoveryPlan:
        """Convict measurably slow nodes after a timeseries deviation.

        Detection came from the training timeseries drifting (the
        deviation detector), never from the injector; localization is
        a targeted DCGM sweep over the gang: every node whose measured
        step contribution sits below ``min_factor`` is convicted —
        including co-resident silent degraders the aggregate
        timeseries could not attribute on its own.  Convicted nodes
        cordon/escalate like NCCL convictions and swap against the
        hot-spare pool when one is configured.  No checkpoint rollback
        is planned: nothing diverged, the gang was just slow.
        """
        plan = RecoveryPlan(diagnosis=None, restart=False,
                            restart_checkpoint_step=None)
        slow = sorted(name for name, factor in node_factors.items()
                      if factor < min_factor)
        plan.actions.append(RecoveryAction(
            "dcgm_scan",
            f"{detail}: {len(node_factors)} node(s) scanned, "
            f"{len(slow)} below {min_factor:.2f}"))
        for name in slow:
            self._convict_node(plan, name)
        self.incidents.append(plan)
        return plan

    # -- helpers --------------------------------------------------------------

    def _isolate_faulty_nodes(self, plan: RecoveryPlan,
                              tester: CollectiveTester | None) -> None:
        if tester is None:
            return
        schedulable = [name for name, node in self.nodes.items()
                       if node.schedulable]
        result = two_round_nccl_test(schedulable, tester)
        plan.actions.append(RecoveryAction(
            "nccl_test",
            f"{result.tests_run} collectives, "
            f"{len(result.faulty)} faulty"))
        for name in sorted(result.faulty):
            self._convict_node(plan, name)

    def _convict_node(self, plan: RecoveryPlan, name: str) -> None:
        self.conviction_counts[name] = (
            self.conviction_counts.get(name, 0) + 1)
        plan.cordoned_nodes.add(name)
        if self.conviction_counts[name] >= self.ESCALATION_THRESHOLD:
            self.nodes[name].mark_faulty()
            plan.actions.append(RecoveryAction(
                "escalate",
                f"{name}: {self.conviction_counts[name]} convictions; "
                "marked faulty for hardware replacement"))
        else:
            self.nodes[name].cordon()
            plan.actions.append(RecoveryAction("cordon", name))
        if self.spare_pool is not None:
            self._swap_against_pool(plan, name)

    def _swap_against_pool(self, plan: RecoveryPlan, victim: str) -> None:
        """Cover a fresh conviction with a warm spare if one is free."""
        pool = self.spare_pool
        assert pool is not None
        spare = pool.acquire(
            victim,
            eligible=lambda name: (name in self.nodes
                                   and self.nodes[name].schedulable
                                   and name not in plan.cordoned_nodes))
        if spare is not None:
            plan.spare_swaps[victim] = spare
            plan.recovery_policy = "spare_swap"
            plan.actions.append(RecoveryAction(
                "spare_swap",
                f"{victim} -> {spare} (preemptive migration, "
                f"~{pool.swap_cost_gpu_hours():.2f} GPU-h vs "
                f"~{pool.reschedule_cost_gpu_hours():.2f} GPU-h gang "
                "reschedule)"))
        else:
            plan.recovery_policy = "gang_reschedule"
            plan.actions.append(RecoveryAction(
                "notify",
                f"hot-spare pool dry for {victim}; falling back to "
                "gang reschedule"))

    def _restart_from_latest(self, plan: RecoveryPlan) -> None:
        latest = self.checkpoints.latest()
        if latest is None:
            plan.actions.append(RecoveryAction(
                "notify", "no checkpoint available; restart from scratch"))
            plan.restart = True
            plan.restart_checkpoint_step = 0
            return
        plan.restart = True
        plan.restart_checkpoint_step = latest
        plan.actions.append(RecoveryAction(
            "restart", f"restart from checkpoint step {latest}"))

    # -- reporting ------------------------------------------------------------

    def manual_interventions(self) -> int:
        """Incidents that still need a human (script errors / unknowns)."""
        count = 0
        for plan in self.incidents:
            if plan.diagnosis is None:
                continue
            if (plan.diagnosis.category is FailureCategory.SCRIPT
                    or plan.diagnosis.reason == "Unknown"):
                count += 1
        return count

    def automation_rate(self) -> float:
        """Fraction of incidents recovered without a human in the loop."""
        if not self.incidents:
            return 0.0
        return 1.0 - self.manual_interventions() / len(self.incidents)
