"""Two-round NCCL test for locating faulty nodes (§6.1).

The paper's procedure for frequent NVLink errors:

1. Split all nodes into two-node worlds (one world of three if the count
   is odd) and run an allgather in each.  A world whose allgather fails
   contains at least one faulty node — its members become suspects.
2. Pair every suspect with a node from a passing world and re-run the
   allgather.  A failing pair convicts the suspect; a passing pair clears
   it.  Convicted nodes are cordoned off.

The collective itself is abstracted behind :class:`CollectiveTester` so
the algorithm is exactly the production pairing logic, independent of the
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class World:
    """One test world (group of nodes running an allgather together)."""

    members: tuple[str, ...]


class CollectiveTester:
    """Runs (simulated) allgather tests against a hidden faulty set.

    A real deployment implements ``run_allgather`` with nccl-tests; here
    the collective fails iff any participant is in the injected faulty
    set.  ``tests_run`` counts collective launches — the efficiency the
    two-round scheme is optimizing.
    """

    def __init__(self, faulty_nodes: Iterable[str]) -> None:
        self.faulty_nodes = frozenset(faulty_nodes)
        self.tests_run = 0

    def run_allgather(self, world: World) -> bool:
        """True if the collective succeeds."""
        if not world.members:
            raise ValueError("empty world")
        self.tests_run += 1
        return not any(member in self.faulty_nodes
                       for member in world.members)


def _make_worlds(nodes: Sequence[str]) -> list[World]:
    """Pair nodes two at a time; fold a leftover into a world of three."""
    worlds = []
    count = len(nodes)
    even_end = count if count % 2 == 0 else count - 3
    for index in range(0, max(even_end, 0), 2):
        worlds.append(World((nodes[index], nodes[index + 1])))
    if count % 2 == 1:
        if count >= 3:
            worlds.append(World(tuple(nodes[-3:])))
        else:  # a single node cannot be paired; test it alone
            worlds.append(World((nodes[-1],)))
    return worlds


@dataclass
class NcclTestResult:
    """Outcome of the two-round procedure."""

    faulty: set[str] = field(default_factory=set)
    cleared: set[str] = field(default_factory=set)
    suspects_after_round1: set[str] = field(default_factory=set)
    tests_run: int = 0


def two_round_nccl_test(nodes: Sequence[str],
                        tester: CollectiveTester) -> NcclTestResult:
    """Identify the faulty nodes among ``nodes``.

    Guarantees (under the fail-iff-any-member-faulty model): every faulty
    node is convicted and no healthy node is, provided at least one world
    passes round 1 (otherwise there is no trusted partner and all
    suspects are conservatively convicted).
    """
    if len(set(nodes)) != len(nodes):
        raise ValueError("duplicate node names")
    result = NcclTestResult()
    if not nodes:
        result.tests_run = tester.tests_run
        return result

    # Round 1: pairwise sweep.
    suspects: list[str] = []
    healthy_pool: list[str] = []
    for world in _make_worlds(list(nodes)):
        if tester.run_allgather(world):
            healthy_pool.extend(world.members)
        else:
            suspects.extend(world.members)
    result.suspects_after_round1 = set(suspects)

    if not suspects:
        result.cleared = set(nodes)
        result.tests_run = tester.tests_run
        return result

    if not healthy_pool:
        # No trusted partner exists; cordon everything suspicious rather
        # than risk restarting onto broken hardware.
        result.faulty = set(suspects)
        result.tests_run = tester.tests_run
        return result

    # Round 2: pair each suspect with a known-good node.
    probe = healthy_pool[0]
    for suspect in suspects:
        if tester.run_allgather(World((suspect, probe))):
            result.cleared.add(suspect)
        else:
            result.faulty.add(suspect)
    result.cleared.update(healthy_pool)
    result.tests_run = tester.tests_run
    return result
